# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_signal[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_dtw[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_sensing[1]_include.cmake")
include("/root/repo/build/tests/test_mcs[1]_include.cmake")
include("/root/repo/build/tests/test_truth[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_ml_extra[1]_include.cmake")
include("/root/repo/build/tests/test_fastdtw[1]_include.cmake")
include("/root/repo/build/tests/test_welch[1]_include.cmake")
include("/root/repo/build/tests/test_combo[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_incentive[1]_include.cmake")
include("/root/repo/build/tests/test_online_crh[1]_include.cmake")
include("/root/repo/build/tests/test_evasion[1]_include.cmake")
include("/root/repo/build/tests/test_categorical[1]_include.cmake")
include("/root/repo/build/tests/test_scalability[1]_include.cmake")
include("/root/repo/build/tests/test_spatial[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_reputation[1]_include.cmake")
