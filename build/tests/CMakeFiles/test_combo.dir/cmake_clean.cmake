file(REMOVE_RECURSE
  "CMakeFiles/test_combo.dir/combo_test.cpp.o"
  "CMakeFiles/test_combo.dir/combo_test.cpp.o.d"
  "test_combo"
  "test_combo.pdb"
  "test_combo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
