# Empty dependencies file for test_evasion.
# This may be replaced when dependencies are built.
