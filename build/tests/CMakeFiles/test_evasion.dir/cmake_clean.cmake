file(REMOVE_RECURSE
  "CMakeFiles/test_evasion.dir/evasion_test.cpp.o"
  "CMakeFiles/test_evasion.dir/evasion_test.cpp.o.d"
  "test_evasion"
  "test_evasion.pdb"
  "test_evasion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
