file(REMOVE_RECURSE
  "CMakeFiles/test_mcs.dir/mcs_test.cpp.o"
  "CMakeFiles/test_mcs.dir/mcs_test.cpp.o.d"
  "test_mcs"
  "test_mcs.pdb"
  "test_mcs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
