file(REMOVE_RECURSE
  "CMakeFiles/test_incentive.dir/incentive_test.cpp.o"
  "CMakeFiles/test_incentive.dir/incentive_test.cpp.o.d"
  "test_incentive"
  "test_incentive.pdb"
  "test_incentive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incentive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
