file(REMOVE_RECURSE
  "CMakeFiles/test_truth.dir/truth_test.cpp.o"
  "CMakeFiles/test_truth.dir/truth_test.cpp.o.d"
  "test_truth"
  "test_truth.pdb"
  "test_truth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
