file(REMOVE_RECURSE
  "CMakeFiles/test_online_crh.dir/online_crh_test.cpp.o"
  "CMakeFiles/test_online_crh.dir/online_crh_test.cpp.o.d"
  "test_online_crh"
  "test_online_crh.pdb"
  "test_online_crh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_crh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
