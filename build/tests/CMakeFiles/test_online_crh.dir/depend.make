# Empty dependencies file for test_online_crh.
# This may be replaced when dependencies are built.
