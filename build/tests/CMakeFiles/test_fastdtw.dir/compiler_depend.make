# Empty compiler generated dependencies file for test_fastdtw.
# This may be replaced when dependencies are built.
