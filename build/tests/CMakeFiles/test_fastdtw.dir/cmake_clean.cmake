file(REMOVE_RECURSE
  "CMakeFiles/test_fastdtw.dir/fastdtw_test.cpp.o"
  "CMakeFiles/test_fastdtw.dir/fastdtw_test.cpp.o.d"
  "test_fastdtw"
  "test_fastdtw.pdb"
  "test_fastdtw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastdtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
