file(REMOVE_RECURSE
  "CMakeFiles/test_ml_extra.dir/ml_extra_test.cpp.o"
  "CMakeFiles/test_ml_extra.dir/ml_extra_test.cpp.o.d"
  "test_ml_extra"
  "test_ml_extra.pdb"
  "test_ml_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
