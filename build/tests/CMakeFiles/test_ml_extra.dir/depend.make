# Empty dependencies file for test_ml_extra.
# This may be replaced when dependencies are built.
