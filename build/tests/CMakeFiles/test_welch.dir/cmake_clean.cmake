file(REMOVE_RECURSE
  "CMakeFiles/test_welch.dir/welch_test.cpp.o"
  "CMakeFiles/test_welch.dir/welch_test.cpp.o.d"
  "test_welch"
  "test_welch.pdb"
  "test_welch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_welch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
