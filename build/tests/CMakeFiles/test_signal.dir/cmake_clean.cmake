file(REMOVE_RECURSE
  "CMakeFiles/test_signal.dir/signal_test.cpp.o"
  "CMakeFiles/test_signal.dir/signal_test.cpp.o.d"
  "test_signal"
  "test_signal.pdb"
  "test_signal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
