# Empty compiler generated dependencies file for wifi_mapping.
# This may be replaced when dependencies are built.
