file(REMOVE_RECURSE
  "CMakeFiles/wifi_mapping.dir/wifi_mapping.cpp.o"
  "CMakeFiles/wifi_mapping.dir/wifi_mapping.cpp.o.d"
  "wifi_mapping"
  "wifi_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
