file(REMOVE_RECURSE
  "CMakeFiles/noise_monitoring.dir/noise_monitoring.cpp.o"
  "CMakeFiles/noise_monitoring.dir/noise_monitoring.cpp.o.d"
  "noise_monitoring"
  "noise_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
