# Empty dependencies file for noise_monitoring.
# This may be replaced when dependencies are built.
