# Empty dependencies file for reputation_campaigns.
# This may be replaced when dependencies are built.
