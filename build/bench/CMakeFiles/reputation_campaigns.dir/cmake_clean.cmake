file(REMOVE_RECURSE
  "CMakeFiles/reputation_campaigns.dir/reputation_campaigns.cpp.o"
  "CMakeFiles/reputation_campaigns.dir/reputation_campaigns.cpp.o.d"
  "reputation_campaigns"
  "reputation_campaigns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reputation_campaigns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
