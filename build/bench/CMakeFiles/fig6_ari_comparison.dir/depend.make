# Empty dependencies file for fig6_ari_comparison.
# This may be replaced when dependencies are built.
