# Empty dependencies file for ablation_incentive.
# This may be replaced when dependencies are built.
