file(REMOVE_RECURSE
  "CMakeFiles/ablation_incentive.dir/ablation_incentive.cpp.o"
  "CMakeFiles/ablation_incentive.dir/ablation_incentive.cpp.o.d"
  "ablation_incentive"
  "ablation_incentive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_incentive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
