# Empty compiler generated dependencies file for categorical_attack.
# This may be replaced when dependencies are built.
