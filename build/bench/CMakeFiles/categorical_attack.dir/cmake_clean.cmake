file(REMOVE_RECURSE
  "CMakeFiles/categorical_attack.dir/categorical_attack.cpp.o"
  "CMakeFiles/categorical_attack.dir/categorical_attack.cpp.o.d"
  "categorical_attack"
  "categorical_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/categorical_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
