
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/categorical_attack.cpp" "bench/CMakeFiles/categorical_attack.dir/categorical_attack.cpp.o" "gcc" "bench/CMakeFiles/categorical_attack.dir/categorical_attack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sybiltd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/sybiltd_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sybiltd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/sybiltd_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sybiltd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/sybiltd_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/mcs/CMakeFiles/sybiltd_mcs.dir/DependInfo.cmake"
  "/root/repo/build/src/incentive/CMakeFiles/sybiltd_incentive.dir/DependInfo.cmake"
  "/root/repo/build/src/truth/CMakeFiles/sybiltd_truth.dir/DependInfo.cmake"
  "/root/repo/build/src/reputation/CMakeFiles/sybiltd_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sybiltd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/sybiltd_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sybiltd_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
