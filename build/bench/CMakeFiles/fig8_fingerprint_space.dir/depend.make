# Empty dependencies file for fig8_fingerprint_space.
# This may be replaced when dependencies are built.
