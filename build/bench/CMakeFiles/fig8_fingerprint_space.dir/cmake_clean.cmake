file(REMOVE_RECURSE
  "CMakeFiles/fig8_fingerprint_space.dir/fig8_fingerprint_space.cpp.o"
  "CMakeFiles/fig8_fingerprint_space.dir/fig8_fingerprint_space.cpp.o.d"
  "fig8_fingerprint_space"
  "fig8_fingerprint_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fingerprint_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
