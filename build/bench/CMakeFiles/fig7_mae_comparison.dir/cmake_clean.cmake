file(REMOVE_RECURSE
  "CMakeFiles/fig7_mae_comparison.dir/fig7_mae_comparison.cpp.o"
  "CMakeFiles/fig7_mae_comparison.dir/fig7_mae_comparison.cpp.o.d"
  "fig7_mae_comparison"
  "fig7_mae_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mae_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
