# Empty compiler generated dependencies file for fig7_mae_comparison.
# This may be replaced when dependencies are built.
