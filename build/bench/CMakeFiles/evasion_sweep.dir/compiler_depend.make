# Empty compiler generated dependencies file for evasion_sweep.
# This may be replaced when dependencies are built.
