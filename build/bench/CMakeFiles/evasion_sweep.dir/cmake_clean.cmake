file(REMOVE_RECURSE
  "CMakeFiles/evasion_sweep.dir/evasion_sweep.cpp.o"
  "CMakeFiles/evasion_sweep.dir/evasion_sweep.cpp.o.d"
  "evasion_sweep"
  "evasion_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
