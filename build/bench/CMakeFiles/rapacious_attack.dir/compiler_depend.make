# Empty compiler generated dependencies file for rapacious_attack.
# This may be replaced when dependencies are built.
