file(REMOVE_RECURSE
  "CMakeFiles/rapacious_attack.dir/rapacious_attack.cpp.o"
  "CMakeFiles/rapacious_attack.dir/rapacious_attack.cpp.o.d"
  "rapacious_attack"
  "rapacious_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapacious_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
