# Empty dependencies file for ablation_kselection.
# This may be replaced when dependencies are built.
