file(REMOVE_RECURSE
  "CMakeFiles/ablation_kselection.dir/ablation_kselection.cpp.o"
  "CMakeFiles/ablation_kselection.dir/ablation_kselection.cpp.o.d"
  "ablation_kselection"
  "ablation_kselection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kselection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
