# Empty dependencies file for fig3_agts_example.
# This may be replaced when dependencies are built.
