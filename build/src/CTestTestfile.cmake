# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("signal")
subdirs("ml")
subdirs("dtw")
subdirs("graph")
subdirs("sensing")
subdirs("mcs")
subdirs("incentive")
subdirs("truth")
subdirs("reputation")
subdirs("core")
subdirs("spatial")
subdirs("eval")
