file(REMOVE_RECURSE
  "libsybiltd_truth.a"
)
