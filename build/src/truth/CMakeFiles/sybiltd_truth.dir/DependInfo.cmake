
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/truth/baselines.cpp" "src/truth/CMakeFiles/sybiltd_truth.dir/baselines.cpp.o" "gcc" "src/truth/CMakeFiles/sybiltd_truth.dir/baselines.cpp.o.d"
  "/root/repo/src/truth/catd.cpp" "src/truth/CMakeFiles/sybiltd_truth.dir/catd.cpp.o" "gcc" "src/truth/CMakeFiles/sybiltd_truth.dir/catd.cpp.o.d"
  "/root/repo/src/truth/categorical.cpp" "src/truth/CMakeFiles/sybiltd_truth.dir/categorical.cpp.o" "gcc" "src/truth/CMakeFiles/sybiltd_truth.dir/categorical.cpp.o.d"
  "/root/repo/src/truth/crh.cpp" "src/truth/CMakeFiles/sybiltd_truth.dir/crh.cpp.o" "gcc" "src/truth/CMakeFiles/sybiltd_truth.dir/crh.cpp.o.d"
  "/root/repo/src/truth/gtm.cpp" "src/truth/CMakeFiles/sybiltd_truth.dir/gtm.cpp.o" "gcc" "src/truth/CMakeFiles/sybiltd_truth.dir/gtm.cpp.o.d"
  "/root/repo/src/truth/observation_table.cpp" "src/truth/CMakeFiles/sybiltd_truth.dir/observation_table.cpp.o" "gcc" "src/truth/CMakeFiles/sybiltd_truth.dir/observation_table.cpp.o.d"
  "/root/repo/src/truth/online_crh.cpp" "src/truth/CMakeFiles/sybiltd_truth.dir/online_crh.cpp.o" "gcc" "src/truth/CMakeFiles/sybiltd_truth.dir/online_crh.cpp.o.d"
  "/root/repo/src/truth/truthfinder.cpp" "src/truth/CMakeFiles/sybiltd_truth.dir/truthfinder.cpp.o" "gcc" "src/truth/CMakeFiles/sybiltd_truth.dir/truthfinder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sybiltd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
