# Empty dependencies file for sybiltd_truth.
# This may be replaced when dependencies are built.
