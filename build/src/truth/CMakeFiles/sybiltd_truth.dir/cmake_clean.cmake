file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_truth.dir/baselines.cpp.o"
  "CMakeFiles/sybiltd_truth.dir/baselines.cpp.o.d"
  "CMakeFiles/sybiltd_truth.dir/catd.cpp.o"
  "CMakeFiles/sybiltd_truth.dir/catd.cpp.o.d"
  "CMakeFiles/sybiltd_truth.dir/categorical.cpp.o"
  "CMakeFiles/sybiltd_truth.dir/categorical.cpp.o.d"
  "CMakeFiles/sybiltd_truth.dir/crh.cpp.o"
  "CMakeFiles/sybiltd_truth.dir/crh.cpp.o.d"
  "CMakeFiles/sybiltd_truth.dir/gtm.cpp.o"
  "CMakeFiles/sybiltd_truth.dir/gtm.cpp.o.d"
  "CMakeFiles/sybiltd_truth.dir/observation_table.cpp.o"
  "CMakeFiles/sybiltd_truth.dir/observation_table.cpp.o.d"
  "CMakeFiles/sybiltd_truth.dir/online_crh.cpp.o"
  "CMakeFiles/sybiltd_truth.dir/online_crh.cpp.o.d"
  "CMakeFiles/sybiltd_truth.dir/truthfinder.cpp.o"
  "CMakeFiles/sybiltd_truth.dir/truthfinder.cpp.o.d"
  "libsybiltd_truth.a"
  "libsybiltd_truth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
