file(REMOVE_RECURSE
  "libsybiltd_sensing.a"
)
