# Empty dependencies file for sybiltd_sensing.
# This may be replaced when dependencies are built.
