file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_sensing.dir/device.cpp.o"
  "CMakeFiles/sybiltd_sensing.dir/device.cpp.o.d"
  "CMakeFiles/sybiltd_sensing.dir/fingerprint.cpp.o"
  "CMakeFiles/sybiltd_sensing.dir/fingerprint.cpp.o.d"
  "CMakeFiles/sybiltd_sensing.dir/imu_stream.cpp.o"
  "CMakeFiles/sybiltd_sensing.dir/imu_stream.cpp.o.d"
  "libsybiltd_sensing.a"
  "libsybiltd_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
