
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensing/device.cpp" "src/sensing/CMakeFiles/sybiltd_sensing.dir/device.cpp.o" "gcc" "src/sensing/CMakeFiles/sybiltd_sensing.dir/device.cpp.o.d"
  "/root/repo/src/sensing/fingerprint.cpp" "src/sensing/CMakeFiles/sybiltd_sensing.dir/fingerprint.cpp.o" "gcc" "src/sensing/CMakeFiles/sybiltd_sensing.dir/fingerprint.cpp.o.d"
  "/root/repo/src/sensing/imu_stream.cpp" "src/sensing/CMakeFiles/sybiltd_sensing.dir/imu_stream.cpp.o" "gcc" "src/sensing/CMakeFiles/sybiltd_sensing.dir/imu_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sybiltd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/sybiltd_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
