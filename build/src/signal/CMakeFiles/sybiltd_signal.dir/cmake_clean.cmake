file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_signal.dir/features.cpp.o"
  "CMakeFiles/sybiltd_signal.dir/features.cpp.o.d"
  "CMakeFiles/sybiltd_signal.dir/fft.cpp.o"
  "CMakeFiles/sybiltd_signal.dir/fft.cpp.o.d"
  "CMakeFiles/sybiltd_signal.dir/spectrum.cpp.o"
  "CMakeFiles/sybiltd_signal.dir/spectrum.cpp.o.d"
  "CMakeFiles/sybiltd_signal.dir/welch.cpp.o"
  "CMakeFiles/sybiltd_signal.dir/welch.cpp.o.d"
  "CMakeFiles/sybiltd_signal.dir/window.cpp.o"
  "CMakeFiles/sybiltd_signal.dir/window.cpp.o.d"
  "libsybiltd_signal.a"
  "libsybiltd_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
