file(REMOVE_RECURSE
  "libsybiltd_signal.a"
)
