
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/features.cpp" "src/signal/CMakeFiles/sybiltd_signal.dir/features.cpp.o" "gcc" "src/signal/CMakeFiles/sybiltd_signal.dir/features.cpp.o.d"
  "/root/repo/src/signal/fft.cpp" "src/signal/CMakeFiles/sybiltd_signal.dir/fft.cpp.o" "gcc" "src/signal/CMakeFiles/sybiltd_signal.dir/fft.cpp.o.d"
  "/root/repo/src/signal/spectrum.cpp" "src/signal/CMakeFiles/sybiltd_signal.dir/spectrum.cpp.o" "gcc" "src/signal/CMakeFiles/sybiltd_signal.dir/spectrum.cpp.o.d"
  "/root/repo/src/signal/welch.cpp" "src/signal/CMakeFiles/sybiltd_signal.dir/welch.cpp.o" "gcc" "src/signal/CMakeFiles/sybiltd_signal.dir/welch.cpp.o.d"
  "/root/repo/src/signal/window.cpp" "src/signal/CMakeFiles/sybiltd_signal.dir/window.cpp.o" "gcc" "src/signal/CMakeFiles/sybiltd_signal.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sybiltd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
