# Empty compiler generated dependencies file for sybiltd_signal.
# This may be replaced when dependencies are built.
