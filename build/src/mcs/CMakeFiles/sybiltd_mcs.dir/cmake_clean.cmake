file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_mcs.dir/scenario.cpp.o"
  "CMakeFiles/sybiltd_mcs.dir/scenario.cpp.o.d"
  "CMakeFiles/sybiltd_mcs.dir/task.cpp.o"
  "CMakeFiles/sybiltd_mcs.dir/task.cpp.o.d"
  "CMakeFiles/sybiltd_mcs.dir/trace_io.cpp.o"
  "CMakeFiles/sybiltd_mcs.dir/trace_io.cpp.o.d"
  "CMakeFiles/sybiltd_mcs.dir/trajectory.cpp.o"
  "CMakeFiles/sybiltd_mcs.dir/trajectory.cpp.o.d"
  "libsybiltd_mcs.a"
  "libsybiltd_mcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_mcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
