file(REMOVE_RECURSE
  "libsybiltd_mcs.a"
)
