# Empty compiler generated dependencies file for sybiltd_mcs.
# This may be replaced when dependencies are built.
