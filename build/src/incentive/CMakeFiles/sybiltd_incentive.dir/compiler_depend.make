# Empty compiler generated dependencies file for sybiltd_incentive.
# This may be replaced when dependencies are built.
