file(REMOVE_RECURSE
  "libsybiltd_incentive.a"
)
