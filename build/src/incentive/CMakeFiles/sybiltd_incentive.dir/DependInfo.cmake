
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/incentive/auction.cpp" "src/incentive/CMakeFiles/sybiltd_incentive.dir/auction.cpp.o" "gcc" "src/incentive/CMakeFiles/sybiltd_incentive.dir/auction.cpp.o.d"
  "/root/repo/src/incentive/selection.cpp" "src/incentive/CMakeFiles/sybiltd_incentive.dir/selection.cpp.o" "gcc" "src/incentive/CMakeFiles/sybiltd_incentive.dir/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sybiltd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mcs/CMakeFiles/sybiltd_mcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/sybiltd_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/sybiltd_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
