file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_incentive.dir/auction.cpp.o"
  "CMakeFiles/sybiltd_incentive.dir/auction.cpp.o.d"
  "CMakeFiles/sybiltd_incentive.dir/selection.cpp.o"
  "CMakeFiles/sybiltd_incentive.dir/selection.cpp.o.d"
  "libsybiltd_incentive.a"
  "libsybiltd_incentive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_incentive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
