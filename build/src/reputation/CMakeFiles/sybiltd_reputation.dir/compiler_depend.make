# Empty compiler generated dependencies file for sybiltd_reputation.
# This may be replaced when dependencies are built.
