file(REMOVE_RECURSE
  "libsybiltd_reputation.a"
)
