file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_reputation.dir/ledger.cpp.o"
  "CMakeFiles/sybiltd_reputation.dir/ledger.cpp.o.d"
  "libsybiltd_reputation.a"
  "libsybiltd_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
