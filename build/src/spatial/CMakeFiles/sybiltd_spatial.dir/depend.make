# Empty dependencies file for sybiltd_spatial.
# This may be replaced when dependencies are built.
