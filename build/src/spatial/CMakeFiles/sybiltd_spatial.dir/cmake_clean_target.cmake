file(REMOVE_RECURSE
  "libsybiltd_spatial.a"
)
