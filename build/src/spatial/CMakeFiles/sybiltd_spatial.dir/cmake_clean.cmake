file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_spatial.dir/interpolation.cpp.o"
  "CMakeFiles/sybiltd_spatial.dir/interpolation.cpp.o.d"
  "CMakeFiles/sybiltd_spatial.dir/kriging.cpp.o"
  "CMakeFiles/sybiltd_spatial.dir/kriging.cpp.o.d"
  "libsybiltd_spatial.a"
  "libsybiltd_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
