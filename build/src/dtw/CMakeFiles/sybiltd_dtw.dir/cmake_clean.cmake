file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_dtw.dir/dtw.cpp.o"
  "CMakeFiles/sybiltd_dtw.dir/dtw.cpp.o.d"
  "CMakeFiles/sybiltd_dtw.dir/fastdtw.cpp.o"
  "CMakeFiles/sybiltd_dtw.dir/fastdtw.cpp.o.d"
  "libsybiltd_dtw.a"
  "libsybiltd_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
