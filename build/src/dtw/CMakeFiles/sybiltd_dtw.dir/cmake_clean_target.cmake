file(REMOVE_RECURSE
  "libsybiltd_dtw.a"
)
