# Empty dependencies file for sybiltd_dtw.
# This may be replaced when dependencies are built.
