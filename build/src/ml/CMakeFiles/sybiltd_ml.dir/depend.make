# Empty dependencies file for sybiltd_ml.
# This may be replaced when dependencies are built.
