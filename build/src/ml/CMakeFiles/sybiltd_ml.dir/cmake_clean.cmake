file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_ml.dir/agglomerative.cpp.o"
  "CMakeFiles/sybiltd_ml.dir/agglomerative.cpp.o.d"
  "CMakeFiles/sybiltd_ml.dir/clustering_metrics.cpp.o"
  "CMakeFiles/sybiltd_ml.dir/clustering_metrics.cpp.o.d"
  "CMakeFiles/sybiltd_ml.dir/dbscan.cpp.o"
  "CMakeFiles/sybiltd_ml.dir/dbscan.cpp.o.d"
  "CMakeFiles/sybiltd_ml.dir/elbow.cpp.o"
  "CMakeFiles/sybiltd_ml.dir/elbow.cpp.o.d"
  "CMakeFiles/sybiltd_ml.dir/kmeans.cpp.o"
  "CMakeFiles/sybiltd_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/sybiltd_ml.dir/kselect.cpp.o"
  "CMakeFiles/sybiltd_ml.dir/kselect.cpp.o.d"
  "CMakeFiles/sybiltd_ml.dir/pca.cpp.o"
  "CMakeFiles/sybiltd_ml.dir/pca.cpp.o.d"
  "CMakeFiles/sybiltd_ml.dir/preprocess.cpp.o"
  "CMakeFiles/sybiltd_ml.dir/preprocess.cpp.o.d"
  "libsybiltd_ml.a"
  "libsybiltd_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
