file(REMOVE_RECURSE
  "libsybiltd_ml.a"
)
