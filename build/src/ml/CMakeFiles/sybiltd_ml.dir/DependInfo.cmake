
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/agglomerative.cpp" "src/ml/CMakeFiles/sybiltd_ml.dir/agglomerative.cpp.o" "gcc" "src/ml/CMakeFiles/sybiltd_ml.dir/agglomerative.cpp.o.d"
  "/root/repo/src/ml/clustering_metrics.cpp" "src/ml/CMakeFiles/sybiltd_ml.dir/clustering_metrics.cpp.o" "gcc" "src/ml/CMakeFiles/sybiltd_ml.dir/clustering_metrics.cpp.o.d"
  "/root/repo/src/ml/dbscan.cpp" "src/ml/CMakeFiles/sybiltd_ml.dir/dbscan.cpp.o" "gcc" "src/ml/CMakeFiles/sybiltd_ml.dir/dbscan.cpp.o.d"
  "/root/repo/src/ml/elbow.cpp" "src/ml/CMakeFiles/sybiltd_ml.dir/elbow.cpp.o" "gcc" "src/ml/CMakeFiles/sybiltd_ml.dir/elbow.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/sybiltd_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/sybiltd_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/kselect.cpp" "src/ml/CMakeFiles/sybiltd_ml.dir/kselect.cpp.o" "gcc" "src/ml/CMakeFiles/sybiltd_ml.dir/kselect.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/sybiltd_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/sybiltd_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/preprocess.cpp" "src/ml/CMakeFiles/sybiltd_ml.dir/preprocess.cpp.o" "gcc" "src/ml/CMakeFiles/sybiltd_ml.dir/preprocess.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sybiltd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
