# Empty dependencies file for sybiltd_eval.
# This may be replaced when dependencies are built.
