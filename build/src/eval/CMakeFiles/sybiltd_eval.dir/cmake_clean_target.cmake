file(REMOVE_RECURSE
  "libsybiltd_eval.a"
)
