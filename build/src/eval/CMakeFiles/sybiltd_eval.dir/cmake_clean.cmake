file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_eval.dir/adapters.cpp.o"
  "CMakeFiles/sybiltd_eval.dir/adapters.cpp.o.d"
  "CMakeFiles/sybiltd_eval.dir/experiment.cpp.o"
  "CMakeFiles/sybiltd_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/sybiltd_eval.dir/metrics.cpp.o"
  "CMakeFiles/sybiltd_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/sybiltd_eval.dir/paper_example.cpp.o"
  "CMakeFiles/sybiltd_eval.dir/paper_example.cpp.o.d"
  "libsybiltd_eval.a"
  "libsybiltd_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
