# Empty compiler generated dependencies file for sybiltd_core.
# This may be replaced when dependencies are built.
