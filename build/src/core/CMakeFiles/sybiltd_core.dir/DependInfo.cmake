
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ag_auto.cpp" "src/core/CMakeFiles/sybiltd_core.dir/ag_auto.cpp.o" "gcc" "src/core/CMakeFiles/sybiltd_core.dir/ag_auto.cpp.o.d"
  "/root/repo/src/core/ag_combo.cpp" "src/core/CMakeFiles/sybiltd_core.dir/ag_combo.cpp.o" "gcc" "src/core/CMakeFiles/sybiltd_core.dir/ag_combo.cpp.o.d"
  "/root/repo/src/core/ag_fp.cpp" "src/core/CMakeFiles/sybiltd_core.dir/ag_fp.cpp.o" "gcc" "src/core/CMakeFiles/sybiltd_core.dir/ag_fp.cpp.o.d"
  "/root/repo/src/core/ag_tr.cpp" "src/core/CMakeFiles/sybiltd_core.dir/ag_tr.cpp.o" "gcc" "src/core/CMakeFiles/sybiltd_core.dir/ag_tr.cpp.o.d"
  "/root/repo/src/core/ag_ts.cpp" "src/core/CMakeFiles/sybiltd_core.dir/ag_ts.cpp.o" "gcc" "src/core/CMakeFiles/sybiltd_core.dir/ag_ts.cpp.o.d"
  "/root/repo/src/core/categorical_framework.cpp" "src/core/CMakeFiles/sybiltd_core.dir/categorical_framework.cpp.o" "gcc" "src/core/CMakeFiles/sybiltd_core.dir/categorical_framework.cpp.o.d"
  "/root/repo/src/core/data_grouping.cpp" "src/core/CMakeFiles/sybiltd_core.dir/data_grouping.cpp.o" "gcc" "src/core/CMakeFiles/sybiltd_core.dir/data_grouping.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/sybiltd_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/sybiltd_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/grouping.cpp" "src/core/CMakeFiles/sybiltd_core.dir/grouping.cpp.o" "gcc" "src/core/CMakeFiles/sybiltd_core.dir/grouping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sybiltd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sybiltd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/sybiltd_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sybiltd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/truth/CMakeFiles/sybiltd_truth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
