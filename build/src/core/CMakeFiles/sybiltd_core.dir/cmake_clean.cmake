file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_core.dir/ag_auto.cpp.o"
  "CMakeFiles/sybiltd_core.dir/ag_auto.cpp.o.d"
  "CMakeFiles/sybiltd_core.dir/ag_combo.cpp.o"
  "CMakeFiles/sybiltd_core.dir/ag_combo.cpp.o.d"
  "CMakeFiles/sybiltd_core.dir/ag_fp.cpp.o"
  "CMakeFiles/sybiltd_core.dir/ag_fp.cpp.o.d"
  "CMakeFiles/sybiltd_core.dir/ag_tr.cpp.o"
  "CMakeFiles/sybiltd_core.dir/ag_tr.cpp.o.d"
  "CMakeFiles/sybiltd_core.dir/ag_ts.cpp.o"
  "CMakeFiles/sybiltd_core.dir/ag_ts.cpp.o.d"
  "CMakeFiles/sybiltd_core.dir/categorical_framework.cpp.o"
  "CMakeFiles/sybiltd_core.dir/categorical_framework.cpp.o.d"
  "CMakeFiles/sybiltd_core.dir/data_grouping.cpp.o"
  "CMakeFiles/sybiltd_core.dir/data_grouping.cpp.o.d"
  "CMakeFiles/sybiltd_core.dir/framework.cpp.o"
  "CMakeFiles/sybiltd_core.dir/framework.cpp.o.d"
  "CMakeFiles/sybiltd_core.dir/grouping.cpp.o"
  "CMakeFiles/sybiltd_core.dir/grouping.cpp.o.d"
  "libsybiltd_core.a"
  "libsybiltd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
