file(REMOVE_RECURSE
  "libsybiltd_core.a"
)
