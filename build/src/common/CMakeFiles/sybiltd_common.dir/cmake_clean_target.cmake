file(REMOVE_RECURSE
  "libsybiltd_common.a"
)
