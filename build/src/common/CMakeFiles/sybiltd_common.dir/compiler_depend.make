# Empty compiler generated dependencies file for sybiltd_common.
# This may be replaced when dependencies are built.
