file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_common.dir/linalg.cpp.o"
  "CMakeFiles/sybiltd_common.dir/linalg.cpp.o.d"
  "CMakeFiles/sybiltd_common.dir/matrix.cpp.o"
  "CMakeFiles/sybiltd_common.dir/matrix.cpp.o.d"
  "CMakeFiles/sybiltd_common.dir/rng.cpp.o"
  "CMakeFiles/sybiltd_common.dir/rng.cpp.o.d"
  "CMakeFiles/sybiltd_common.dir/stats.cpp.o"
  "CMakeFiles/sybiltd_common.dir/stats.cpp.o.d"
  "CMakeFiles/sybiltd_common.dir/table.cpp.o"
  "CMakeFiles/sybiltd_common.dir/table.cpp.o.d"
  "libsybiltd_common.a"
  "libsybiltd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
