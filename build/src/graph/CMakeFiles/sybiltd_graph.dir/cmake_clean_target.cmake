file(REMOVE_RECURSE
  "libsybiltd_graph.a"
)
