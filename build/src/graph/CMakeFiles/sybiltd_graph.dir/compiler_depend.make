# Empty compiler generated dependencies file for sybiltd_graph.
# This may be replaced when dependencies are built.
