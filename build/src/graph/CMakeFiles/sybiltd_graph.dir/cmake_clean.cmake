file(REMOVE_RECURSE
  "CMakeFiles/sybiltd_graph.dir/graph.cpp.o"
  "CMakeFiles/sybiltd_graph.dir/graph.cpp.o.d"
  "CMakeFiles/sybiltd_graph.dir/union_find.cpp.o"
  "CMakeFiles/sybiltd_graph.dir/union_find.cpp.o.d"
  "libsybiltd_graph.a"
  "libsybiltd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybiltd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
