// Quickstart: the smallest end-to-end use of the library.
//
// Builds a tiny MCS campaign by hand (4 tasks, 3 honest accounts, one
// Sybil attacker with 3 accounts submitting a fabricated value), runs the
// classic CRH truth discovery and the Sybil-resistant framework with
// AG-TR, and prints both estimates next to the ground truth.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "common/rng.h"
#include "core/ag_tr.h"
#include "core/framework.h"
#include "truth/crh.h"

using namespace sybiltd;

int main() {
  // Ground truth the platform wants to discover (e.g. Wi-Fi RSSI in dBm).
  const std::vector<double> ground_truth{-78.0, -65.0, -82.0, -71.0};
  const std::size_t n_tasks = ground_truth.size();

  // --- 1. honest accounts: truth + small sensing noise -------------------
  Rng rng(7);
  core::FrameworkInput input;
  input.task_count = n_tasks;
  for (int u = 0; u < 3; ++u) {
    core::AccountTrace account;
    account.name = "honest-" + std::to_string(u + 1);
    // Each user walks their own route at their own time of day.
    std::vector<std::size_t> route(n_tasks);
    for (std::size_t j = 0; j < n_tasks; ++j) route[j] = j;
    rng.shuffle(route);
    double t = 8.0 + 2.0 * u + rng.uniform(0.0, 1.0);  // walk start, hours
    for (std::size_t j : route) {
      t += rng.uniform(0.05, 0.2);  // walking + dwell between POIs
      account.reports.push_back({j, ground_truth[j] + rng.normal(0.0, 2.0), t});
    }
    input.accounts.push_back(std::move(account));
  }

  // --- 2. a Sybil attacker: one walk, three accounts, fabricated -50 -----
  // The accounts replay the same trajectory minutes apart — the signature
  // AG-TR detects.
  double walk_start = 10.5;
  std::vector<double> visit_times;
  for (std::size_t j = 0; j < n_tasks; ++j) {
    walk_start += rng.uniform(0.05, 0.2);
    visit_times.push_back(walk_start);
  }
  for (int a = 0; a < 3; ++a) {
    core::AccountTrace account;
    account.name = "sybil-" + std::to_string(a + 1);
    const double account_delay = a * rng.uniform(0.01, 0.02);  // hours
    for (std::size_t j = 0; j < n_tasks; ++j) {
      account.reports.push_back({j, -50.0 + rng.normal(0.0, 0.3),
                                 visit_times[j] + account_delay});
    }
    input.accounts.push_back(std::move(account));
  }

  // --- 3. account-level CRH (vulnerable) ----------------------------------
  truth::ObservationTable table(input.accounts.size(), n_tasks);
  for (std::size_t i = 0; i < input.accounts.size(); ++i) {
    for (const auto& r : input.accounts[i].reports) {
      table.add(i, r.task, r.value);
    }
  }
  const auto crh = truth::Crh().run(table);

  // --- 4. the Sybil-resistant framework with AG-TR ------------------------
  const auto framework = core::run_framework(input, core::AgTr());

  std::printf("grouping found by AG-TR:\n");
  for (const auto& group : framework.grouping.groups()) {
    std::printf("  {");
    for (std::size_t k = 0; k < group.size(); ++k) {
      std::printf("%s%s", k ? ", " : "",
                  input.accounts[group[k]].name.c_str());
    }
    std::printf("}\n");
  }

  std::printf("\n%-8s %12s %12s %18s\n", "task", "truth", "CRH",
              "framework (AG-TR)");
  for (std::size_t j = 0; j < n_tasks; ++j) {
    std::printf("T%-7zu %12.2f %12.2f %18.2f\n", j + 1, ground_truth[j],
                crh.truths[j], framework.truths[j]);
  }

  double crh_mae = 0.0, fw_mae = 0.0;
  for (std::size_t j = 0; j < n_tasks; ++j) {
    crh_mae += std::abs(crh.truths[j] - ground_truth[j]) / n_tasks;
    fw_mae += std::abs(framework.truths[j] - ground_truth[j]) / n_tasks;
  }
  std::printf("\nMAE: CRH %.2f dBm vs framework %.2f dBm\n", crh_mae, fw_mae);
  return 0;
}
