// Urban noise monitoring (Ear-Phone-style) — a second MCS domain showing
// that nothing in the framework is Wi-Fi specific.
//
// 15 noise-level POIs (dBA), 10 legitimate users, and one Attack-II
// attacker whose goal is to make the city center look QUIETER than it is
// (offset fabrication of -20 dBA), e.g. to dodge a noise ordinance.  The
// example also shows the rapacious-attacker variant (honest duplicates).
#include <cstdio>

#include "common/table.h"
#include "eval/adapters.h"
#include "eval/experiment.h"

using namespace sybiltd;

namespace {

mcs::ScenarioConfig make_noise_campaign(mcs::Fabrication fabrication,
                                        std::uint64_t seed) {
  mcs::ScenarioConfig config;
  config.task_count = 15;
  config.task_kind = mcs::TaskKind::kNoiseLevel;
  config.seed = seed;

  Rng rng(seed);
  const char* phones[] = {"iPhone 6", "iPhone 6S", "iPhone 7", "iPhone X",
                          "Nexus 6P", "LG G5",     "Nexus 5",  "iPhone SE",
                          "Nexus 6P", "iPhone 7"};
  for (const char* phone : phones) {
    mcs::LegitimateUserConfig user;
    user.activeness = rng.uniform(0.4, 0.9);
    user.noise_stddev = rng.uniform(1.5, 4.0);  // dBA sensing error
    user.device_model = phone;
    config.legit_users.push_back(std::move(user));
  }

  mcs::AttackerConfig attacker;
  attacker.type = mcs::AttackType::kMultiDevice;
  attacker.account_count = 6;
  attacker.device_models = {"Nexus 5", "LG G5"};
  attacker.activeness = 0.8;
  attacker.fabrication = fabrication;
  attacker.offset = -20.0;  // "the city center is quiet, honestly"
  config.attackers.push_back(std::move(attacker));
  return config;
}

void run_campaign(const char* title, mcs::Fabrication fabrication) {
  std::printf("--- %s ---\n", title);
  const auto data = mcs::generate_scenario(make_noise_campaign(fabrication,
                                                               515));
  const auto crh = eval::run_method(eval::Method::kCrh, data);
  const auto tr = eval::run_method(eval::Method::kTdTr, data);
  const auto grouping = eval::run_grouping(eval::GroupingMethod::kAgTr,
                                           data);

  TextTable table({"POI", "truth dBA", "CRH", "TD-TR"});
  for (std::size_t j = 0; j < std::min<std::size_t>(6, data.tasks.size());
       ++j) {
    table.add_row(data.tasks[j].name,
                  {data.tasks[j].ground_truth, crh.truths[j], tr.truths[j]},
                  1);
  }
  std::printf("%s", table.render().c_str());
  std::printf("(first 6 of %zu POIs)\n", data.tasks.size());
  std::printf("MAE: CRH %.2f dBA, TD-TR %.2f dBA | AG-TR ARI %.3f\n\n",
              crh.mae, tr.mae, grouping.ari);
}

}  // namespace

int main() {
  std::printf("Urban noise monitoring with a Sybil attacker\n\n");
  run_campaign("malicious attacker: offset fabrication (-20 dBA)",
               mcs::Fabrication::kOffsetFromTruth);
  run_campaign("rapacious attacker: honest duplicates (reward farming)",
               mcs::Fabrication::kDuplicateHonest);
  std::printf(
      "The malicious attacker corrupts CRH but not the framework; the\n"
      "rapacious attacker barely affects values either way (duplicated\n"
      "honest data), yet the framework collapses its 6 accounts into one\n"
      "group so it cannot earn 6x the weight (or 6x the reward).\n");
  return 0;
}
