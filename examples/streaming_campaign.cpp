// Streaming campaign: replay a generated MCS scenario through the
// concurrent campaign engine and watch the truth estimates converge.
//
// The paper evaluates Algorithm 2 as a one-shot batch computation; a real
// platform receives the same reports as a stream.  This example generates
// the paper's Wi-Fi scenario (8 legitimate users, one Attack-I and one
// Attack-II Sybil attacker), sorts every account's submissions by
// timestamp, and feeds them to pipeline::CampaignEngine in ten slices.
// After each slice it prints the MAE of the engine's snapshot against the
// ground truth plus what the incremental AG-TS grouping currently
// believes — showing the estimate tightening as evidence accumulates, and
// the Sybil accounts collapsing into shared groups long before the stream
// ends.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/streaming_campaign
//
// Observability: run with SYBILTD_TRACE=<path> to record a Chrome trace of
// the shard steps / regroups / framework runs, and pass
// `--metrics <path>` to dump the process metrics registry as JSON at exit
// (docs/OBSERVABILITY.md describes both).  Ctrl-C mid-stream is handled
// gracefully: the replay stops at the current slice, the engine drains, and
// the metrics/trace exports still run, so an interrupted run never leaves a
// truncated dump behind.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "eval/adapters.h"
#include "eval/metrics.h"
#include "mcs/scenario.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/engine.h"

using namespace sybiltd;

namespace {

// Set by the SIGINT handler; the replay loop polls it between submissions.
volatile std::sig_atomic_t g_interrupted = 0;

void handle_sigint(int) { g_interrupted = 1; }

}  // namespace

int main(int argc, char** argv) {
  struct sigaction action {};
  action.sa_handler = handle_sigint;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);

  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--metrics <path>]\n", argv[0]);
      return 2;
    }
  }

  // --- 1. a full campaign scenario (the paper's Section V-A setup) --------
  const auto config = mcs::make_paper_scenario(/*legit_activeness=*/0.5,
                                               /*sybil_activeness=*/0.8,
                                               /*seed=*/17);
  const auto data = mcs::generate_scenario(config);
  const auto input = eval::to_framework_input(data);
  const std::vector<double> ground_truth = data.ground_truths();

  // Flatten every account's reports into one stream ordered by timestamp —
  // the platform's ingestion order.
  std::vector<pipeline::Report> stream;
  for (std::size_t a = 0; a < input.accounts.size(); ++a) {
    for (const auto& report : input.accounts[a].reports) {
      stream.push_back(
          {0, a, report.task, report.value, report.timestamp_hours});
    }
  }
  std::sort(stream.begin(), stream.end(),
            [](const pipeline::Report& lhs, const pipeline::Report& rhs) {
              return lhs.timestamp_hours < rhs.timestamp_hours;
            });

  std::size_t sybil_accounts = 0;
  for (const auto& account : data.accounts) {
    if (account.is_sybil) ++sybil_accounts;
  }
  std::printf("scenario: %zu tasks, %zu accounts (%zu Sybil), %zu reports\n\n",
              input.task_count, input.accounts.size(), sybil_accounts,
              stream.size());

  // --- 2. stream through the engine in ten slices -------------------------
  pipeline::EngineOptions options;
  options.shard_count = 1;
  options.max_batch = 32;
  pipeline::CampaignEngine engine(options);
  engine.add_campaign(input.task_count);
  engine.start();

  std::printf("%8s %10s %8s %8s %8s %6s %10s %8s\n", "reports", "mae(dBm)",
              "groups", "live", "version", "iters", "residual", "entropy");
  const std::size_t slices = 10;
  std::size_t sent = 0;
  for (std::size_t s = 0; s < slices && !g_interrupted; ++s) {
    const std::size_t end = stream.size() * (s + 1) / slices;
    for (; sent < end && !g_interrupted; ++sent) engine.submit(stream[sent]);
    engine.drain();  // barrier: converge before reading this slice's MAE
    const auto snap = engine.snapshot(0);
    const double mae = eval::mean_absolute_error(
        std::span<const double>(snap->truths),
        std::span<const double>(ground_truth));
    std::printf("%8zu %10.3f %8zu %8zu %8llu %6zu %10.2e %8.3f\n", sent, mae,
                snap->group_count, snap->live_observations,
                static_cast<unsigned long long>(snap->version),
                snap->iterations, snap->final_residual,
                snap->weight_entropy);
  }

  if (g_interrupted) {
    // Drain once more so the final snapshot covers everything submitted
    // before the interrupt — the metrics dump below then matches what the
    // engine actually aggregated.
    engine.drain();
    std::printf("\ninterrupted after %zu reports; drained and finishing\n",
                sent);
  }

  // --- 3. final snapshot: grouped accounts vs ground truth ----------------
  const auto snap = engine.snapshot(0);
  engine.stop();
  std::printf("\nfinal per-task estimates:\n");
  for (std::size_t j = 0; j < input.task_count; ++j) {
    std::printf("  task %2zu: estimate %7.2f  truth %7.2f\n", j,
                snap->truths[j], ground_truth[j]);
  }
  std::printf("\naccount groups (AG-TS, incremental):\n");
  for (std::size_t a = 0; a < snap->group_of.size(); ++a) {
    std::printf("  %-12s group %2zu%s\n", data.accounts[a].name.c_str(),
                snap->group_of[a], data.accounts[a].is_sybil ? "  [sybil]" : "");
  }
  std::printf(
      "\nconvergence: %zu iterations, residual %.2e, weight entropy %.3f "
      "(converged: %s)\n",
      snap->iterations, snap->final_residual, snap->weight_entropy,
      snap->converged ? "yes" : "no");

  // --- 4. observability exports -------------------------------------------
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
    out << obs::to_json(obs::snapshot());
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (obs::trace_enabled()) {
    obs::flush_trace();
    std::printf("trace flushed (%zu spans)\n", obs::trace_event_count());
  }
  return 0;
}
