// trace_analyzer — a command-line tool a platform operator can point at an
// archived campaign trace (mcs/trace_io CSV) to re-run the analysis:
// grouping, per-method estimates, Sybil flags, and accuracy if the trace
// carries ground truth.
//
// Usage:
//   trace_analyzer <trace.csv> [--method crh|td-fp|td-ts|td-tr|all]
//   trace_analyzer --demo      (writes demo_trace.csv and analyzes it)
#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "ml/clustering_metrics.h"
#include "mcs/trace_io.h"

using namespace sybiltd;

namespace {

int analyze(const mcs::ScenarioData& data, const std::string& method) {
  std::printf("trace: %zu tasks, %zu accounts, %zu reports\n\n",
              data.tasks.size(), data.accounts.size(),
              [&] {
                std::size_t n = 0;
                for (const auto& a : data.accounts) n += a.reports.size();
                return n;
              }());

  // Grouping report.
  const auto grouping = eval::run_grouping(eval::GroupingMethod::kAgTr, data);
  std::printf("AG-TR grouping (%zu groups; multi-account groups are "
              "suspected Sybil users):\n",
              grouping.grouping.group_count());
  for (const auto& group : grouping.grouping.groups()) {
    if (group.size() < 2) continue;
    std::printf("  suspected:");
    for (std::size_t i : group) {
      std::printf(" %s", data.accounts[i].name.c_str());
    }
    std::printf("\n");
  }
  const auto user_labels = data.true_user_labels();
  const bool has_truth = !user_labels.empty();
  if (has_truth) {
    std::printf("  ARI vs recorded user labels: %.3f\n", grouping.ari);
  }

  // Method table.
  std::vector<eval::Method> methods;
  if (method == "all") {
    methods = {eval::Method::kCrh, eval::Method::kTdFp, eval::Method::kTdTs,
               eval::Method::kTdTr};
  } else if (method == "crh") {
    methods = {eval::Method::kCrh};
  } else if (method == "td-fp") {
    methods = {eval::Method::kTdFp};
  } else if (method == "td-ts") {
    methods = {eval::Method::kTdTs};
  } else if (method == "td-tr") {
    methods = {eval::Method::kTdTr};
  } else {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return 2;
  }

  std::vector<std::string> header{"task", "ground truth"};
  for (auto m : methods) header.push_back(eval::method_name(m));
  TextTable table(header);
  std::vector<eval::MethodRun> runs;
  for (auto m : methods) runs.push_back(eval::run_method(m, data));
  for (std::size_t j = 0; j < data.tasks.size(); ++j) {
    std::vector<double> row{data.tasks[j].ground_truth};
    for (const auto& run : runs) row.push_back(run.truths[j]);
    table.add_row(data.tasks[j].name, row);
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("\nMAE:");
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::printf("  %s %.2f", eval::method_name(methods[m]).c_str(),
                runs[m].mae);
  }
  std::printf("\n");

  // Convergence telemetry for the framework methods: how many CRH
  // iterations each needed, how far the last truth update moved, and how
  // concentrated the final group weights are (entropy near 0 = one group
  // dominates).
  bool printed_header = false;
  for (std::size_t m = 0; m < methods.size(); ++m) {
    if (runs[m].iterations == 0) continue;  // baseline, no framework run
    if (!printed_header) {
      std::printf("\nconvergence (framework methods):\n");
      std::printf("  %-10s %6s %10s %9s %10s\n", "method", "iters",
                  "residual", "entropy", "converged");
      printed_header = true;
    }
    std::printf("  %-10s %6zu %10.2e %9.3f %10s\n",
                eval::method_name(methods[m]).c_str(), runs[m].iterations,
                runs[m].final_residual, runs[m].weight_entropy,
                runs[m].converged ? "yes" : "no");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.csv> [--method crh|td-fp|td-ts|td-tr|all]"
                 "\n       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }

  std::string method = "all";
  for (int i = 2; i + 1 < argc + 1; ++i) {
    if (i < argc && std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
      method = argv[i + 1];
    }
  }

  try {
    if (std::strcmp(argv[1], "--demo") == 0) {
      const auto data =
          mcs::generate_scenario(mcs::make_paper_scenario(0.6, 0.8, 404));
      mcs::save_trace(data, "demo_trace.csv");
      std::printf("wrote demo_trace.csv\n\n");
      return analyze(mcs::load_trace("demo_trace.csv"), method);
    }
    return analyze(mcs::load_trace(argv[1]), method);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
