// Wi-Fi signal-strength mapping — the paper's own application, end to end.
//
// Generates the full Section V experiment (10 POIs, 8 legitimate users with
// Table IV phones, one Attack-I and one Attack-II attacker with 5 accounts
// each), shows the per-POI estimates of every method, the grouping quality,
// and how accuracy responds to the attackers' activeness.
//
// Usage: wifi_mapping [legit_activeness] [sybil_activeness] [seed]
#include <cstdio>
#include <algorithm>
#include <cstdlib>

#include "common/table.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "ml/clustering_metrics.h"
#include "spatial/kriging.h"

using namespace sybiltd;

int main(int argc, char** argv) {
  const double legit = argc > 1 ? std::atof(argv[1]) : 0.8;
  const double sybil = argc > 2 ? std::atof(argv[2]) : 0.8;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                      : 2026;

  std::printf("Wi-Fi mapping campaign: legit activeness %.1f, Sybil "
              "activeness %.1f, seed %llu\n\n",
              legit, sybil, static_cast<unsigned long long>(seed));

  const auto config = mcs::make_paper_scenario(legit, sybil, seed);
  const auto data = mcs::generate_scenario(config);

  std::printf("participants (%zu accounts, %zu devices):\n",
              data.accounts.size(), data.devices.size());
  for (const auto& account : data.accounts) {
    std::printf("  %-9s %-11s %s  %zu tasks\n", account.name.c_str(),
                data.devices[account.device].model_name().c_str(),
                account.is_sybil ? "[SYBIL]" : "       ",
                account.reports.size());
  }

  // --- grouping quality ----------------------------------------------------
  std::printf("\naccount grouping (ARI vs true users):\n");
  for (auto method : {eval::GroupingMethod::kAgFp,
                      eval::GroupingMethod::kAgTs,
                      eval::GroupingMethod::kAgTr}) {
    const auto run = eval::run_grouping(method, data);
    std::printf("  %-6s ARI %.3f, %zu groups\n",
                eval::grouping_method_name(method).c_str(), run.ari,
                run.grouping.group_count());
  }

  // --- per-POI estimates ---------------------------------------------------
  const eval::Method methods[] = {eval::Method::kCrh, eval::Method::kTdFp,
                                  eval::Method::kTdTs, eval::Method::kTdTr};
  std::vector<eval::MethodRun> runs;
  for (auto m : methods) runs.push_back(eval::run_method(m, data));

  std::printf("\nper-POI estimates (dBm):\n");
  TextTable table({"POI", "truth", "CRH", "TD-FP", "TD-TS", "TD-TR"});
  for (std::size_t j = 0; j < data.tasks.size(); ++j) {
    table.add_row(data.tasks[j].name,
                  {data.tasks[j].ground_truth, runs[0].truths[j],
                   runs[1].truths[j], runs[2].truths[j], runs[3].truths[j]});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nMAE (dBm):");
  for (std::size_t m = 0; m < 4; ++m) {
    std::printf("  %s %.2f", eval::method_name(methods[m]).c_str(),
                runs[m].mae);
  }
  std::printf("\n");

  // --- the product: an interpolated coverage map ---------------------------
  // Kriging over the POI estimates; corrupted estimates corrupt the whole
  // map, which is how end users experience the Sybil attack.
  auto samples_from = [&](const std::vector<double>& values) {
    std::vector<spatial::Sample> samples;
    for (std::size_t j = 0; j < data.tasks.size(); ++j) {
      if (!std::isnan(values[j])) {
        samples.push_back({data.tasks[j].location, values[j]});
      }
    }
    return samples;
  };
  const mcs::CampusConfig campus;
  const auto truth_map = spatial::rasterize(
      spatial::KrigingInterpolator(samples_from(data.ground_truths())),
      campus, 24, 24);
  std::printf("\ncoverage-map MAE vs ground-truth map (kriging, 24x24 "
              "cells, dBm):\n");
  for (std::size_t m = 0; m < 4; ++m) {
    const auto map = spatial::rasterize(
        spatial::KrigingInterpolator(samples_from(runs[m].truths)), campus,
        24, 24);
    std::printf("  %-6s %6.2f\n", eval::method_name(methods[m]).c_str(),
                spatial::raster_mae(map, truth_map));
  }

  // A small ASCII rendering of the TD-TR coverage map (darker = weaker).
  const auto tdtr_map = spatial::rasterize(
      spatial::KrigingInterpolator(samples_from(runs[3].truths)), campus,
      24, 12);
  std::printf("\nTD-TR coverage map (signal strength; '#' strong ... '.' "
              "weak):\n");
  const char* shades = "#%+=-:. ";
  for (const auto& row : tdtr_map) {
    std::printf("  ");
    for (double v : row) {
      // Map roughly [-90, -50] dBm onto the shade ramp.
      int idx = static_cast<int>((-50.0 - v) / 40.0 * 7.0);
      idx = std::clamp(idx, 0, 7);
      std::printf("%c", shades[7 - idx]);
    }
    std::printf("\n");
  }
  return 0;
}
