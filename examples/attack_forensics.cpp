// Attack forensics: a platform operator's view of a suspicious campaign.
//
// Generates a campaign with both attack types, then walks through the
// evidence each grouping method sees: the fingerprint clusters (AG-FP),
// the task-set affinity matrix (AG-TS), and the trajectory dissimilarity
// matrix (AG-TR) — then cross-references the three verdicts per account
// and reports precision/recall of "flagged as Sybil" against ground truth.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/ag_fp.h"
#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "eval/adapters.h"
#include "ml/clustering_metrics.h"
#include "mcs/scenario.h"

using namespace sybiltd;

namespace {

// An account is "flagged" by a grouping if it shares a group with at least
// one other account — some user appears to own several accounts.
std::vector<bool> flagged_accounts(const core::AccountGrouping& grouping) {
  std::vector<bool> flagged(grouping.account_count(), false);
  for (const auto& group : grouping.groups()) {
    if (group.size() < 2) continue;
    for (std::size_t account : group) flagged[account] = true;
  }
  return flagged;
}

void report_flags(const char* method, const std::vector<bool>& flagged,
                  const mcs::ScenarioData& data) {
  int tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < data.accounts.size(); ++i) {
    if (flagged[i] && data.accounts[i].is_sybil) ++tp;
    if (flagged[i] && !data.accounts[i].is_sybil) ++fp;
    if (!flagged[i] && data.accounts[i].is_sybil) ++fn;
  }
  const double precision = tp + fp > 0 ? 1.0 * tp / (tp + fp) : 1.0;
  const double recall = tp + fn > 0 ? 1.0 * tp / (tp + fn) : 1.0;
  std::printf("  %-6s flags %2d accounts: precision %.2f, recall %.2f\n",
              method, tp + fp, precision, recall);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 99;
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.6, 0.7, seed));
  const auto input = eval::to_framework_input(data);
  const std::size_t n = data.accounts.size();

  std::printf("campaign: %zu accounts / %zu true users (seed %llu)\n\n", n,
              data.user_count, static_cast<unsigned long long>(seed));

  // --- AG-FP evidence -------------------------------------------------------
  const auto fp_grouping = core::AgFp().group(input);
  std::printf("AG-FP device-fingerprint clusters:\n");
  for (const auto& group : fp_grouping.groups()) {
    if (group.size() < 2) continue;
    std::printf("  cluster:");
    for (std::size_t i : group) {
      std::printf(" %s(%s)", data.accounts[i].name.c_str(),
                  data.devices[data.accounts[i].device].model_name().c_str());
    }
    std::printf("\n");
  }

  // --- AG-TS evidence -------------------------------------------------------
  const auto affinity = core::AgTs::affinity_matrix(input);
  std::printf("\nAG-TS strongest task-set affinities (A > 1):\n");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (affinity[i][j] > 1.0) {
        std::printf("  %-9s ~ %-9s  A = %.2f\n",
                    data.accounts[i].name.c_str(),
                    data.accounts[j].name.c_str(), affinity[i][j]);
      }
    }
  }

  // --- AG-TR evidence -------------------------------------------------------
  const core::AgTr agtr;
  const auto matrices = agtr.dissimilarity_matrices(input);
  std::printf("\nAG-TR most similar trajectories (D < 1):\n");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (matrices.dissimilarity[i][j] < 1.0) {
        std::printf("  %-9s ~ %-9s  D = %.3f\n",
                    data.accounts[i].name.c_str(),
                    data.accounts[j].name.c_str(),
                    matrices.dissimilarity[i][j]);
      }
    }
  }

  // --- verdicts ---------------------------------------------------------------
  const auto ts_grouping = core::AgTs().group(input);
  const auto tr_grouping = agtr.group(input);
  std::printf("\nflagging quality (account shares a group with another):\n");
  report_flags("AG-FP", flagged_accounts(fp_grouping), data);
  report_flags("AG-TS", flagged_accounts(ts_grouping), data);
  report_flags("AG-TR", flagged_accounts(tr_grouping), data);

  std::printf("\nper-account verdict matrix:\n");
  TextTable table({"account", "device", "truth", "FP", "TS", "TR"});
  const auto fp_flags = flagged_accounts(fp_grouping);
  const auto ts_flags = flagged_accounts(ts_grouping);
  const auto tr_flags = flagged_accounts(tr_grouping);
  for (std::size_t i = 0; i < n; ++i) {
    table.add_row({data.accounts[i].name,
                   data.devices[data.accounts[i].device].model_name(),
                   data.accounts[i].is_sybil ? "SYBIL" : "legit",
                   fp_flags[i] ? "flag" : "-", ts_flags[i] ? "flag" : "-",
                   tr_flags[i] ? "flag" : "-"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
