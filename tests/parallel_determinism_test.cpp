// Determinism of the parallelized kernels: every grouper, the framework
// truths, and the evaluation sweeps must produce identical results at
// pool size 1 (the serial fallback) and pool size 8 on the same seeded
// scenario.  This is the contract documented in docs/PERFORMANCE.md —
// parallel tasks write disjoint slots and reductions fold serially, so
// the outputs are bit-identical, not merely close.
//
// The SIMD dispatch level is a second determinism axis: the grouping
// labels (the ARI-relevant output) must be identical at every available
// level, and at each level the pool-size invariance must hold too.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/thread_pool.h"
#include "core/ag_fp.h"
#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "core/framework.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "mcs/scenario.h"
#include "simd/simd.h"

namespace sybiltd {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new mcs::ScenarioData(
        mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.5, 4242)));
    input_ = new core::FrameworkInput(eval::to_framework_input(*data_));
  }
  static void TearDownTestSuite() {
    ThreadPool::set_global_concurrency(
        ThreadPool::configured_concurrency());
    delete input_;
    delete data_;
    input_ = nullptr;
    data_ = nullptr;
  }

  // Runs `compute` at 1 and 8 threads and returns the two results.
  template <typename Fn>
  static auto at_1_and_8(Fn compute) {
    ThreadPool::set_global_concurrency(1);
    auto serial = compute();
    ThreadPool::set_global_concurrency(8);
    auto pooled = compute();
    return std::array{std::move(serial), std::move(pooled)};
  }

  static mcs::ScenarioData* data_;
  static core::FrameworkInput* input_;
};

mcs::ScenarioData* ParallelDeterminismTest::data_ = nullptr;
core::FrameworkInput* ParallelDeterminismTest::input_ = nullptr;

TEST_F(ParallelDeterminismTest, AgTrGroupingAndMatrices) {
  const core::AgTr grouper;
  const auto groupings =
      at_1_and_8([&] { return grouper.group(*input_).labels(); });
  EXPECT_EQ(groupings[0], groupings[1]);

  const auto matrices =
      at_1_and_8([&] { return grouper.dissimilarity_matrices(*input_); });
  // Bit-identical: each pair's DTW is computed once and written to slots
  // the pair owns, in both runs.
  EXPECT_EQ(matrices[0].task_dtw, matrices[1].task_dtw);
  EXPECT_EQ(matrices[0].time_dtw, matrices[1].time_dtw);
  EXPECT_EQ(matrices[0].dissimilarity, matrices[1].dissimilarity);
}

TEST_F(ParallelDeterminismTest, AgTrPrunedMatchesAtBothSizes) {
  core::AgTrOptions options;
  options.prune_with_lower_bound = true;
  const core::AgTr pruned(options);
  core::AgTrStats stats1, stats8;
  ThreadPool::set_global_concurrency(1);
  const auto g1 = pruned.group_with_stats(*input_, &stats1);
  ThreadPool::set_global_concurrency(8);
  const auto g8 = pruned.group_with_stats(*input_, &stats8);
  EXPECT_EQ(g1.labels(), g8.labels());
  // The prefilter decision per pair depends only on the pair, so the
  // counters match too.
  EXPECT_EQ(stats1.lb_pruned, stats8.lb_pruned);
  EXPECT_EQ(stats1.task_abandoned, stats8.task_abandoned);
  EXPECT_EQ(stats1.exact_pairs, stats8.exact_pairs);
  // And pruning never changes the grouping.
  const auto exact = core::AgTr().group(*input_);
  EXPECT_EQ(g8.labels(), exact.labels());
}

TEST_F(ParallelDeterminismTest, AgTsAffinityAndGrouping) {
  const auto affinities =
      at_1_and_8([&] { return core::AgTs::affinity_matrix(*input_); });
  EXPECT_EQ(affinities[0], affinities[1]);
  const auto groupings =
      at_1_and_8([&] { return core::AgTs().group(*input_).labels(); });
  EXPECT_EQ(groupings[0], groupings[1]);
}

TEST_F(ParallelDeterminismTest, AgFpGrouping) {
  const auto groupings =
      at_1_and_8([&] { return core::AgFp().group(*input_).labels(); });
  EXPECT_EQ(groupings[0], groupings[1]);
}

TEST_F(ParallelDeterminismTest, FrameworkTruths) {
  const auto truths = at_1_and_8(
      [&] { return core::run_framework(*input_, core::AgTr()).truths; });
  ASSERT_EQ(truths[0].size(), truths[1].size());
  for (std::size_t j = 0; j < truths[0].size(); ++j) {
    EXPECT_NEAR(truths[0][j], truths[1][j], 1e-12) << "task " << j;
  }
}

// Pin SYBILTD_SIMD at each available level and re-run the groupers: the
// labels feeding ARI must be identical whether the hot loops ran through
// the scalar reference, SSE2, NEON, or AVX2 kernels — and at every level
// the 1-vs-8-thread invariance above must still hold.
TEST_F(ParallelDeterminismTest, GroupingIdenticalAtEveryDispatchLevel) {
  const simd::Level before = simd::active_level();
  simd::set_active_level(simd::Level::kScalar);
  ThreadPool::set_global_concurrency(1);
  const auto tr_ref = core::AgTr().group(*input_).labels();
  const auto ts_ref = core::AgTs().group(*input_).labels();
  const auto fp_ref = core::AgFp().group(*input_).labels();
  const auto truths_ref = core::run_framework(*input_, core::AgTr()).truths;

  for (simd::Level level : simd::available_levels()) {
    simd::set_active_level(level);
    for (int threads : {1, 8}) {
      ThreadPool::set_global_concurrency(threads);
      EXPECT_EQ(core::AgTr().group(*input_).labels(), tr_ref)
          << "AG-TR at " << simd::level_name(level) << " threads=" << threads;
      EXPECT_EQ(core::AgTs().group(*input_).labels(), ts_ref)
          << "AG-TS at " << simd::level_name(level) << " threads=" << threads;
      EXPECT_EQ(core::AgFp().group(*input_).labels(), fp_ref)
          << "AG-FP at " << simd::level_name(level) << " threads=" << threads;
      // Truths go through the envelope-bounded reductions, so compare
      // within the documented 1e-12 envelope rather than bitwise.
      const auto truths =
          core::run_framework(*input_, core::AgTr()).truths;
      ASSERT_EQ(truths.size(), truths_ref.size());
      for (std::size_t j = 0; j < truths.size(); ++j) {
        EXPECT_NEAR(truths[j], truths_ref[j], 1e-9)
            << "task " << j << " at " << simd::level_name(level);
      }
    }
  }
  simd::set_active_level(before);
}

TEST_F(ParallelDeterminismTest, EvaluationSweeps) {
  const std::vector<double> sybil = {0.3, 0.7};
  const auto ari = at_1_and_8([&] {
    return eval::sweep_ari_stats(eval::GroupingMethod::kAgTs, 0.5, sybil, 3,
                                 77, {});
  });
  ASSERT_EQ(ari[0].size(), ari[1].size());
  for (std::size_t p = 0; p < ari[0].size(); ++p) {
    EXPECT_NEAR(ari[0][p].mean, ari[1][p].mean, 1e-12);
    EXPECT_NEAR(ari[0][p].stddev, ari[1][p].stddev, 1e-12);
  }
  const auto mae = at_1_and_8([&] {
    return eval::sweep_mae(eval::Method::kTdTs, 0.5, sybil, 2, 77, {});
  });
  ASSERT_EQ(mae[0].size(), mae[1].size());
  for (std::size_t p = 0; p < mae[0].size(); ++p) {
    EXPECT_NEAR(mae[0][p], mae[1][p], 1e-12);
  }
}

}  // namespace
}  // namespace sybiltd
