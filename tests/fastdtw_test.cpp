// Tests for the approximate DTW layer: LB_Keogh lower bound and FastDTW.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dtw/dtw.h"
#include "dtw/fastdtw.h"

namespace sybiltd::dtw {
namespace {

std::vector<double> noisy_sine(std::size_t n, double phase,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = std::sin(0.15 * static_cast<double>(t) + phase) +
             rng.normal(0.0, 0.05);
  }
  return out;
}

class LbKeoghBound : public ::testing::TestWithParam<std::uint64_t> {};

// Property: LB_Keogh never exceeds the banded DTW total cost.
TEST_P(LbKeoghBound, IsALowerBoundOnBandedDtw) {
  Rng rng(GetParam());
  const std::size_t n = 32;
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.uniform(-2, 2);
  for (auto& v : b) v = rng.uniform(-2, 2);
  for (std::size_t band : {1ul, 3ul, 8ul}) {
    const double bound = lb_keogh(a, b, band);
    DtwOptions opt;
    opt.band = band;
    const double exact = dtw_full(a, b, opt).total_cost;
    EXPECT_LE(bound, exact + 1e-9) << "band " << band;
    EXPECT_GE(bound, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LbKeoghBound,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LbKeogh, ZeroForSeriesInsideEnvelope) {
  const std::vector<double> a{0, 0, 0, 0};
  const std::vector<double> b{1, -1, 1, -1};
  // Query constant 0 always lies within [min, max] of any window of b.
  EXPECT_EQ(lb_keogh(a, b, 1), 0.0);
}

TEST(LbKeogh, PositiveForSeparatedSeries) {
  const std::vector<double> a{5, 5, 5, 5};
  const std::vector<double> b{0, 0, 0, 0};
  EXPECT_NEAR(lb_keogh(a, b, 1), 4 * 25.0, 1e-12);
}

TEST(LbKeogh, ValidatesInput) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{1};
  EXPECT_THROW(lb_keogh(a, b, 1), std::invalid_argument);
  EXPECT_THROW(lb_keogh({}, {}, 1), std::invalid_argument);
}

TEST(FastDtw, ExactOnShortSeries) {
  // At or below the base-case length FastDTW IS the exact DP.
  Rng rng(9);
  std::vector<double> a(12), b(10);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto exact = dtw_full(a, b);
  const auto fast = fast_dtw(a, b);
  EXPECT_NEAR(fast.total_cost, exact.total_cost, 1e-12);
  EXPECT_EQ(fast.path.size(), exact.path.size());
}

TEST(FastDtw, UpperBoundsExactCost) {
  // The approximation explores a subset of cells, so its cost can never be
  // below the exact optimum.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto a = noisy_sine(100, 0.0, 100 + seed);
    const auto b = noisy_sine(90, 0.4, 200 + seed);
    const double exact = dtw_full(a, b).total_cost;
    const double fast = fast_dtw(a, b).total_cost;
    EXPECT_GE(fast + 1e-9, exact);
  }
}

TEST(FastDtw, CloseToExactWithModestRadius) {
  double worst_ratio = 1.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto a = noisy_sine(128, 0.0, 300 + seed);
    const auto b = noisy_sine(128, 0.3, 400 + seed);
    const double exact = dtw_full(a, b).total_cost;
    FastDtwOptions opt;
    opt.radius = 2;
    const double fast = fast_dtw(a, b, opt).total_cost;
    if (exact > 1e-9) {
      worst_ratio = std::max(worst_ratio, fast / exact);
    }
  }
  EXPECT_LT(worst_ratio, 1.25);
}

TEST(FastDtw, LargerRadiusNeverWorse) {
  const auto a = noisy_sine(150, 0.0, 500);
  const auto b = noisy_sine(140, 0.5, 501);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t radius : {0ul, 1ul, 3ul, 8ul}) {
    FastDtwOptions opt;
    opt.radius = radius;
    const double cost = fast_dtw(a, b, opt).total_cost;
    EXPECT_LE(cost, prev + 1e-9) << "radius " << radius;
    prev = cost;
  }
}

TEST(FastDtw, PathIsValid) {
  const auto a = noisy_sine(70, 0.0, 600);
  const auto b = noisy_sine(64, 0.2, 601);
  const auto result = fast_dtw(a, b);
  EXPECT_EQ(result.path.front(),
            (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(result.path.back(),
            (std::pair<std::size_t, std::size_t>{a.size() - 1,
                                                 b.size() - 1}));
  double cost = 0.0;
  for (std::size_t k = 0; k < result.path.size(); ++k) {
    const auto [i, j] = result.path[k];
    cost += (a[i] - b[j]) * (a[i] - b[j]);
    if (k > 0) {
      const auto [pi, pj] = result.path[k - 1];
      EXPECT_TRUE((i == pi || i == pi + 1) && (j == pj || j == pj + 1));
      EXPECT_TRUE(i > pi || j > pj);
    }
  }
  EXPECT_NEAR(cost, result.total_cost, 1e-9);
}

TEST(FastDtw, IdenticalSeriesZero) {
  const auto a = noisy_sine(200, 0.0, 700);
  EXPECT_NEAR(fast_dtw(a, a).total_cost, 0.0, 1e-12);
}

TEST(FastDtw, RejectsEmpty) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(fast_dtw({}, a), std::invalid_argument);
}

}  // namespace
}  // namespace sybiltd::dtw
