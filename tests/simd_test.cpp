// SIMD-vs-scalar property sweep: every routed kernel, at every dispatch
// level the host supports, over random lengths (including tails that are
// not a multiple of the lane width), unaligned base pointers, and NaN/±Inf
// values.  Elementwise and min/max kernels must be bit-identical to the
// scalar reference; the two sum reductions must agree within the 1e-12
// relative envelope and be bit-identical across the *vector* levels (they
// share the virtual 4-lane tree).  Runs under ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dtw/dtw.h"
#include "simd/simd.h"

namespace sybiltd {
namespace {

using simd::KernelTable;
using simd::Level;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

const std::size_t kLengths[] = {0,  1,  2,  3,  4,   5,   7,  8,
                                15, 16, 17, 31, 33, 64, 100, 257};
constexpr std::size_t kMaxOffset = 3;

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string dump(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g (0x%016llx)", v,
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buf;
}

// Values in a padded buffer starting at `offset`, so the kernel sees an
// unaligned base pointer.  With specials, ~10% of slots are NaN or ±Inf.
std::vector<double> random_buffer(Rng& rng, std::size_t n,
                                  std::size_t offset, bool specials) {
  std::vector<double> buf(n + offset + 4, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double v = rng.uniform(-100.0, 100.0);
    if (specials) {
      const double roll = rng.uniform();
      if (roll < 0.04) {
        v = kNan;
      } else if (roll < 0.07) {
        v = kInf;
      } else if (roll < 0.10) {
        v = -kInf;
      }
    }
    buf[offset + i] = v;
  }
  return buf;
}

void expect_bitwise(const double* expected, const double* actual,
                    std::size_t n, const char* kernel, Level level) {
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(bits_equal(expected[i], actual[i]))
        << kernel << " at " << simd::level_name(level) << " index " << i
        << ": scalar " << dump(expected[i]) << " vs " << dump(actual[i]);
  }
}

std::vector<Level> vector_levels() {
  std::vector<Level> out;
  for (Level level : simd::available_levels()) {
    if (level != Level::kScalar) out.push_back(level);
  }
  return out;
}

class SimdKernelTest : public ::testing::Test {
 protected:
  const KernelTable& ref_ = *simd::table_for(Level::kScalar);
};

TEST_F(SimdKernelTest, ScalarTableAlwaysAvailable) {
  ASSERT_NE(simd::table_for(Level::kScalar), nullptr);
  ASSERT_FALSE(simd::available_levels().empty());
  EXPECT_EQ(simd::available_levels().front(), Level::kScalar);
}

TEST_F(SimdKernelTest, ElementwiseKernelsBitIdentical) {
  Rng rng(20260806);
  for (Level level : vector_levels()) {
    const KernelTable& table = *simd::table_for(level);
    for (std::size_t n : kLengths) {
      for (std::size_t offset = 0; offset <= kMaxOffset; ++offset) {
        const auto xs = random_buffer(rng, n, offset, true);
        const auto ys = random_buffer(rng, n, offset, true);
        const double* x = xs.data() + offset;
        const double* y = ys.data() + offset;
        std::vector<double> expected(n + 1, 0.0), actual(n + 1, 0.0);

        const double mu = rng.uniform(-5.0, 5.0);
        for (double sd : {2.5, 0.0}) {  // 0.0 exercises the sd <= 1e-12 arm
          ref_.znorm(x, n, mu, sd, expected.data());
          table.znorm(x, n, mu, sd, actual.data());
          expect_bitwise(expected.data(), actual.data(), n, "znorm", level);
        }

        ref_.sq_diff(x, y, n, expected.data());
        table.sq_diff(x, y, n, actual.data());
        expect_bitwise(expected.data(), actual.data(), n, "sq_diff", level);

        ref_.residual_sq(x, n, mu, 1.75, expected.data());
        table.residual_sq(x, n, mu, 1.75, actual.data());
        expect_bitwise(expected.data(), actual.data(), n, "residual_sq",
                       level);

        ref_.safe_divide(x, y, n, expected.data());
        table.safe_divide(x, y, n, actual.data());
        expect_bitwise(expected.data(), actual.data(), n, "safe_divide",
                       level);
      }
    }
  }
}

TEST_F(SimdKernelTest, ComplexKernelsBitIdentical) {
  Rng rng(77001);
  for (Level level : vector_levels()) {
    const KernelTable& table = *simd::table_for(level);
    for (std::size_t n : kLengths) {
      for (std::size_t offset = 0; offset <= kMaxOffset; ++offset) {
        const auto xs = random_buffer(rng, n, offset, true);
        const auto ws = random_buffer(rng, n, offset, false);
        const double* x = xs.data() + offset;
        const double* w = ws.data() + offset;

        std::vector<double> expected(2 * n + 1, -1.0);
        std::vector<double> actual(2 * n + 1, -1.0);
        ref_.window_multiply_complex(x, w, n, expected.data());
        table.window_multiply_complex(x, w, n, actual.data());
        expect_bitwise(expected.data(), actual.data(), 2 * n,
                       "window_multiply_complex", level);

        // Interleaved (re, im) spectrum plus a non-zero accumulator start.
        const auto seg = random_buffer(rng, 2 * n, offset, true);
        auto psd_expected = random_buffer(rng, n, 0, false);
        auto psd_actual = psd_expected;
        ref_.psd_accumulate(seg.data() + offset, n, 2.0, 48000.0,
                            psd_expected.data());
        table.psd_accumulate(seg.data() + offset, n, 2.0, 48000.0,
                             psd_actual.data());
        expect_bitwise(psd_expected.data(), psd_actual.data(), n,
                       "psd_accumulate", level);
      }
    }
  }
}

TEST_F(SimdKernelTest, DtwWaveKernelsBitIdentical) {
  Rng rng(424242);
  for (Level level : vector_levels()) {
    const KernelTable& table = *simd::table_for(level);
    for (std::size_t n : kLengths) {
      for (std::size_t offset = 0; offset <= kMaxOffset; ++offset) {
        auto cost = random_buffer(rng, n, offset, false);
        auto diag_c = random_buffer(rng, n, offset, false);
        auto vert_c = random_buffer(rng, n, offset, false);
        auto horiz_c = random_buffer(rng, n, offset, false);
        // Mimic real wavefronts: infinity edge cells and exact cost ties
        // (the tie-break path), plus integer-valued path lengths.
        std::vector<double> diag_l(n + offset, 0.0), vert_l(n + offset, 0.0),
            horiz_l(n + offset, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
          if (rng.uniform() < 0.15) diag_c[offset + i] = kInf;
          if (rng.uniform() < 0.15) vert_c[offset + i] = kInf;
          if (rng.uniform() < 0.25) vert_c[offset + i] = diag_c[offset + i];
          if (rng.uniform() < 0.25) horiz_c[offset + i] = vert_c[offset + i];
          diag_l[i] = static_cast<double>(rng.uniform_index(64));
          vert_l[i] = static_cast<double>(rng.uniform_index(64));
          horiz_l[i] = static_cast<double>(rng.uniform_index(64));
        }

        std::vector<double> expected(n + 1, 0.0), actual(n + 1, 0.0);
        ref_.dtw_wave_cost(cost.data() + offset, diag_c.data() + offset,
                           vert_c.data() + offset, horiz_c.data() + offset,
                           n, expected.data());
        table.dtw_wave_cost(cost.data() + offset, diag_c.data() + offset,
                            vert_c.data() + offset, horiz_c.data() + offset,
                            n, actual.data());
        expect_bitwise(expected.data(), actual.data(), n, "dtw_wave_cost",
                       level);

        std::vector<double> exp_c(n + 1, 0.0), exp_l(n + 1, 0.0);
        std::vector<double> act_c(n + 1, 0.0), act_l(n + 1, 0.0);
        ref_.dtw_wave_cell(cost.data() + offset, diag_c.data() + offset,
                           diag_l.data(), vert_c.data() + offset,
                           vert_l.data(), horiz_c.data() + offset,
                           horiz_l.data(), n, exp_c.data(), exp_l.data());
        table.dtw_wave_cell(cost.data() + offset, diag_c.data() + offset,
                            diag_l.data(), vert_c.data() + offset,
                            vert_l.data(), horiz_c.data() + offset,
                            horiz_l.data(), n, act_c.data(), act_l.data());
        expect_bitwise(exp_c.data(), act_c.data(), n, "dtw_wave_cell cost",
                       level);
        expect_bitwise(exp_l.data(), act_l.data(), n, "dtw_wave_cell len",
                       level);
      }
    }
  }
}

TEST_F(SimdKernelTest, MaxAbsDiffBitIdentical) {
  Rng rng(5150);
  for (Level level : vector_levels()) {
    const KernelTable& table = *simd::table_for(level);
    for (std::size_t n : kLengths) {
      for (std::size_t offset = 0; offset <= kMaxOffset; ++offset) {
        const auto xs = random_buffer(rng, n, offset, true);
        const auto ys = random_buffer(rng, n, offset, true);
        const double expected = ref_.max_abs_diff(xs.data() + offset,
                                                  ys.data() + offset, n);
        const double actual = table.max_abs_diff(xs.data() + offset,
                                                 ys.data() + offset, n);
        ASSERT_TRUE(bits_equal(expected, actual))
            << "max_abs_diff at " << simd::level_name(level) << " n=" << n
            << ": " << dump(expected) << " vs " << dump(actual);
      }
    }
  }
}

TEST_F(SimdKernelTest, ByteScanKernelsExactAtEveryLevel) {
  Rng rng(777111);
  // Random byte soups biased toward long whitespace runs (scan_json_ws)
  // and long clean-string runs (scan_json_string), so the vector loops
  // actually advance before the first hit.
  const char kWs[] = {' ', '\t', '\n', '\r'};
  for (Level level : vector_levels()) {
    const KernelTable& table = *simd::table_for(level);
    for (std::size_t n : kLengths) {
      for (std::size_t offset = 0; offset <= kMaxOffset; ++offset) {
        std::vector<char> buf(n + offset + 4, 'x');
        for (std::size_t i = 0; i < n; ++i) {
          const double roll = rng.uniform();
          char c;
          if (roll < 0.55) {
            c = kWs[static_cast<std::size_t>(rng.uniform(0.0, 4.0)) % 4];
          } else if (roll < 0.60) {
            c = '"';
          } else if (roll < 0.65) {
            c = '\\';
          } else if (roll < 0.70) {
            c = static_cast<char>(rng.uniform(0.0, 32.0));
          } else {
            c = static_cast<char>(rng.uniform(32.0, 256.0));
          }
          buf[offset + i] = c;
        }
        const char* data = buf.data();
        // Every begin position: the scans must agree on the exact index.
        for (std::size_t begin = offset; begin <= offset + n; ++begin) {
          const std::size_t end = offset + n;
          ASSERT_EQ(ref_.scan_json_ws(data, begin, end),
                    table.scan_json_ws(data, begin, end))
              << "scan_json_ws at " << simd::level_name(level) << " n=" << n
              << " begin=" << begin;
          ASSERT_EQ(ref_.scan_json_string(data, begin, end),
                    table.scan_json_string(data, begin, end))
              << "scan_json_string at " << simd::level_name(level)
              << " n=" << n << " begin=" << begin;
        }
      }
    }
    // Exhaustive single-byte coverage: for each of the 256 byte values,
    // a long homogeneous run followed by that byte.
    for (int value = 0; value < 256; ++value) {
      std::vector<char> ws_run(70, ' ');
      ws_run[64] = static_cast<char>(value);
      std::vector<char> clean_run(70, 'a');
      clean_run[64] = static_cast<char>(value);
      ASSERT_EQ(ref_.scan_json_ws(ws_run.data(), 0, ws_run.size()),
                table.scan_json_ws(ws_run.data(), 0, ws_run.size()))
          << "scan_json_ws byte " << value << " at "
          << simd::level_name(level);
      ASSERT_EQ(ref_.scan_json_string(clean_run.data(), 0, clean_run.size()),
                table.scan_json_string(clean_run.data(), 0, clean_run.size()))
          << "scan_json_string byte " << value << " at "
          << simd::level_name(level);
    }
  }
}

TEST_F(SimdKernelTest, SumReductionsWithinEnvelopeAndLaneStable) {
  Rng rng(987654);
  for (std::size_t n : kLengths) {
    for (std::size_t offset = 0; offset <= kMaxOffset; ++offset) {
      const auto xs = random_buffer(rng, n, offset, false);
      const auto ys = random_buffer(rng, n, offset, false);
      const std::size_t n_groups = 9;
      std::vector<double> weights(n_groups);
      for (double& w : weights) w = rng.uniform(0.0, 4.0);
      std::vector<std::uint32_t> groups(n + 1, 0);
      for (std::size_t i = 0; i < n; ++i) {
        groups[i] = static_cast<std::uint32_t>(rng.uniform_index(n_groups));
      }

      const double sd_ref = ref_.squared_distance(xs.data() + offset,
                                                  ys.data() + offset, n);
      double num_ref = 0.0, den_ref = 0.0;
      ref_.weighted_sum_gather(xs.data() + offset, groups.data(),
                               weights.data(), n, &num_ref, &den_ref);

      std::vector<double> sd_by_level, num_by_level, den_by_level;
      for (Level level : vector_levels()) {
        const KernelTable& table = *simd::table_for(level);
        const double sd = table.squared_distance(xs.data() + offset,
                                                 ys.data() + offset, n);
        EXPECT_LE(std::abs(sd - sd_ref),
                  1e-12 * std::max(1.0, std::abs(sd_ref)))
            << "squared_distance at " << simd::level_name(level)
            << " n=" << n;
        double num = 0.0, den = 0.0;
        table.weighted_sum_gather(xs.data() + offset, groups.data(),
                                  weights.data(), n, &num, &den);
        EXPECT_LE(std::abs(num - num_ref),
                  1e-12 * std::max(1.0, std::abs(num_ref)));
        EXPECT_LE(std::abs(den - den_ref),
                  1e-12 * std::max(1.0, std::abs(den_ref)));
        sd_by_level.push_back(sd);
        num_by_level.push_back(num);
        den_by_level.push_back(den);
      }
      // Every vector level shares the virtual 4-lane tree: identical bits.
      for (std::size_t l = 1; l < sd_by_level.size(); ++l) {
        EXPECT_TRUE(bits_equal(sd_by_level[0], sd_by_level[l]));
        EXPECT_TRUE(bits_equal(num_by_level[0], num_by_level[l]));
        EXPECT_TRUE(bits_equal(den_by_level[0], den_by_level[l]));
      }
      if (n < 4) {
        // Shorter than one vector: the vector paths take the serial loop
        // and must match the scalar reference exactly.
        for (double sd : sd_by_level) EXPECT_TRUE(bits_equal(sd, sd_ref));
        for (double num : num_by_level) {
          EXPECT_TRUE(bits_equal(num, num_ref));
        }
      }
    }
  }
}

// End-to-end: the diagonal-wavefront DTW selected at vector levels must
// reproduce the serial rolling-row DP bit for bit, and the cost-only DP
// must match dtw_full's total_cost, at every level and band width.
TEST(SimdDtwDispatch, WavefrontMatchesScalarRowsBitwise) {
  const Level before = simd::active_level();
  Rng rng(314159);
  for (const auto& [m, n] : {std::pair<std::size_t, std::size_t>{1, 1},
                            {1, 9},
                            {7, 3},
                            {16, 16},
                            {33, 31},
                            {64, 64},
                            {100, 73}}) {
    std::vector<double> a(m), b(n);
    for (double& v : a) v = rng.uniform(-10.0, 10.0);
    for (double& v : b) v = rng.uniform(-10.0, 10.0);
    // Integer-valued series hit exact cost ties, the tie-break path.
    std::vector<double> ai(m), bi(n);
    for (double& v : ai) v = static_cast<double>(rng.uniform_index(4));
    for (double& v : bi) v = static_cast<double>(rng.uniform_index(4));
    for (std::size_t band : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                             std::size_t{8}}) {
      const dtw::DtwOptions options{band};
      simd::set_active_level(Level::kScalar);
      const double d_scalar = dtw::dtw_distance(a, b, options);
      const double di_scalar = dtw::dtw_distance(ai, bi, options);
      const double c_scalar = dtw::dtw_total_cost(a, b, options);
      const double full_cost = dtw::dtw_full(a, b, options).total_cost;
      ASSERT_TRUE(bits_equal(c_scalar, full_cost));
      for (Level level : simd::available_levels()) {
        simd::set_active_level(level);
        EXPECT_TRUE(bits_equal(d_scalar, dtw::dtw_distance(a, b, options)))
            << simd::level_name(level) << " m=" << m << " n=" << n
            << " band=" << band;
        EXPECT_TRUE(bits_equal(di_scalar,
                               dtw::dtw_distance(ai, bi, options)))
            << simd::level_name(level) << " (integer series)";
        EXPECT_TRUE(bits_equal(c_scalar,
                               dtw::dtw_total_cost(a, b, options)))
            << simd::level_name(level);
      }
    }
  }
  simd::set_active_level(before);
}

TEST(SimdDispatch, ParseAndClamp) {
  Level parsed = Level::kAvx2;
  EXPECT_TRUE(simd::parse_level("scalar", &parsed));
  EXPECT_EQ(parsed, Level::kScalar);
  EXPECT_TRUE(simd::parse_level("off", &parsed));
  EXPECT_EQ(parsed, Level::kScalar);
  EXPECT_TRUE(simd::parse_level("SSE2", &parsed));
  EXPECT_EQ(parsed, Level::kSse2);
  EXPECT_TRUE(simd::parse_level("avx2", &parsed));
  EXPECT_EQ(parsed, Level::kAvx2);
  EXPECT_TRUE(simd::parse_level("neon", &parsed));
  EXPECT_EQ(parsed, Level::kNeon);
  EXPECT_FALSE(simd::parse_level("avx512", &parsed));
  EXPECT_FALSE(simd::parse_level("", &parsed));

  const Level before = simd::active_level();
  // Requesting the best level never clamps below a supported request, and
  // a scalar request always lands exactly on scalar.
  EXPECT_EQ(simd::set_active_level(Level::kScalar), Level::kScalar);
  EXPECT_EQ(simd::active_level(), Level::kScalar);
  const Level best = simd::available_levels().back();
  EXPECT_EQ(simd::set_active_level(Level::kAvx2), best);
  simd::set_active_level(before);
}

}  // namespace
}  // namespace sybiltd
