// Unit and property tests for src/ml: preprocessing, k-means, elbow, PCA,
// and clustering metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "ml/clustering_metrics.h"
#include "ml/elbow.h"
#include "ml/kmeans.h"
#include "ml/pca.h"
#include "ml/preprocess.h"

namespace sybiltd::ml {
namespace {

// Three well-separated Gaussian blobs in 2-D.
Matrix make_blobs(std::size_t per_cluster, std::uint64_t seed,
                  std::vector<std::size_t>* labels = nullptr) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 12}};
  Matrix data(3 * per_cluster, 2);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::size_t row = c * per_cluster + i;
      data(row, 0) = centers[c][0] + rng.normal(0.0, 0.5);
      data(row, 1) = centers[c][1] + rng.normal(0.0, 0.5);
      if (labels) labels->push_back(c);
    }
  }
  return data;
}

TEST(Standardize, ZeroMeanUnitVariance) {
  Rng rng(1);
  Matrix data(50, 3);
  for (std::size_t r = 0; r < 50; ++r) {
    data(r, 0) = rng.normal(5.0, 2.0);
    data(r, 1) = rng.normal(-3.0, 0.1);
    data(r, 2) = 7.0;  // constant column
  }
  const Matrix z = standardize(data);
  for (std::size_t c = 0; c < 2; ++c) {
    double m = 0.0, v = 0.0;
    for (std::size_t r = 0; r < 50; ++r) m += z(r, c);
    m /= 50;
    for (std::size_t r = 0; r < 50; ++r) v += (z(r, c) - m) * (z(r, c) - m);
    v /= 50;
    EXPECT_NEAR(m, 0.0, 1e-9);
    EXPECT_NEAR(v, 1.0, 1e-9);
  }
  for (std::size_t r = 0; r < 50; ++r) EXPECT_NEAR(z(r, 2), 0.0, 1e-12);
}

TEST(Standardize, InverseTransformRoundTrips) {
  Rng rng(2);
  Matrix data(20, 2);
  for (std::size_t r = 0; r < 20; ++r) {
    data(r, 0) = rng.uniform(-5, 5);
    data(r, 1) = rng.uniform(100, 200);
  }
  const auto s = Standardizer::fit(data);
  const Matrix back = s.inverse_transform(s.transform(data));
  EXPECT_LT(back.distance_frobenius(data), 1e-9);
}

TEST(MinMaxScale, MapsToUnitInterval) {
  Matrix data{{1, 10}, {2, 20}, {3, 30}};
  const Matrix scaled = min_max_scale(data);
  EXPECT_NEAR(scaled(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(scaled(2, 0), 1.0, 1e-12);
  EXPECT_NEAR(scaled(1, 1), 0.5, 1e-12);
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  std::vector<std::size_t> truth;
  const Matrix data = make_blobs(20, 3, &truth);
  const KMeansResult result = kmeans(data, 3, {});
  EXPECT_NEAR(adjusted_rand_index(result.labels, truth), 1.0, 1e-12);
  EXPECT_LT(result.sse, 60.0);  // ~2 * n * sigma^2
}

TEST(KMeans, KEqualsOneGivesGlobalCentroid) {
  const Matrix data{{0, 0}, {2, 0}, {4, 0}};
  const KMeansResult result = kmeans(data, 1, {});
  EXPECT_NEAR(result.centroids(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(result.sse, 8.0, 1e-12);
}

TEST(KMeans, KEqualsNGivesZeroSse) {
  std::vector<std::size_t> truth;
  const Matrix data = make_blobs(2, 4, &truth);
  const KMeansResult result = kmeans(data, data.rows(), {});
  EXPECT_NEAR(result.sse, 0.0, 1e-9);
  std::set<std::size_t> distinct(result.labels.begin(), result.labels.end());
  EXPECT_EQ(distinct.size(), data.rows());
}

TEST(KMeans, DeterministicForSameSeed) {
  const Matrix data = make_blobs(10, 5);
  KMeansOptions opt;
  opt.seed = 77;
  const auto a = kmeans(data, 3, opt);
  const auto b = kmeans(data, 3, opt);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.sse, b.sse);
}

TEST(KMeans, ValidatesArguments) {
  const Matrix data = make_blobs(2, 6);
  EXPECT_THROW(kmeans(data, 0, {}), std::invalid_argument);
  EXPECT_THROW(kmeans(data, data.rows() + 1, {}), std::invalid_argument);
  EXPECT_THROW(kmeans(Matrix{}, 1, {}), std::invalid_argument);
}

TEST(KMeans, HandlesDuplicatePoints) {
  Matrix data(6, 1);
  for (std::size_t r = 0; r < 6; ++r) data(r, 0) = r < 3 ? 1.0 : 1.0;
  const auto result = kmeans(data, 2, {});
  EXPECT_EQ(result.labels.size(), 6u);  // no crash, all same point
}

class KMeansSseMonotone : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansSseMonotone, MoreClustersNeverRaiseBestSse) {
  const Matrix data = make_blobs(8, GetParam());
  KMeansOptions opt;
  opt.restarts = 8;
  opt.seed = GetParam();
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= 6; ++k) {
    const double sse = kmeans(data, k, opt).sse;
    EXPECT_LE(sse, prev * 1.0 + 1e-9) << "k=" << k;
    prev = sse;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KMeansSseMonotone,
                         ::testing::Values(11, 12, 13, 14));

TEST(Elbow, FindsTrueClusterCountOnBlobs) {
  const Matrix data = make_blobs(15, 9);
  ElbowOptions opt;
  opt.method = ElbowMethod::kCurvature;
  EXPECT_EQ(elbow_select_k(data, opt).best_k, 3u);
  opt.method = ElbowMethod::kExplainedVariance;
  opt.explained_variance_threshold = 0.9;
  EXPECT_EQ(elbow_select_k(data, opt).best_k, 3u);
}

TEST(Elbow, StopsEarlyOnPerfectFit) {
  // Four identical points: SSE is 0 at k=1 already.
  Matrix data(4, 2, 1.0);
  const auto result = elbow_select_k(data, {});
  EXPECT_EQ(result.best_k, 1u);
}

TEST(Elbow, RespectsRangeBounds) {
  const Matrix data = make_blobs(5, 10);
  ElbowOptions opt;
  opt.min_k = 2;
  opt.max_k = 4;
  const auto result = elbow_select_k(data, opt);
  EXPECT_GE(result.best_k, 2u);
  EXPECT_LE(result.best_k, 4u);
  opt.min_k = 5;
  opt.max_k = 4;
  EXPECT_THROW(elbow_select_k(data, opt), std::invalid_argument);
}

TEST(Jacobi, DiagonalizesKnownMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix a{{2, 1}, {1, 2}};
  const auto eig = jacobi_eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), std::numbers::sqrt2 / 2.0, 1e-8);
}

TEST(Jacobi, ReconstructsMatrix) {
  Rng rng(20);
  Matrix a(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i; j < 5; ++j) {
      a(i, j) = a(j, i) = rng.uniform(-2, 2);
    }
  }
  const auto eig = jacobi_eigen_symmetric(a);
  // A = V * diag(lambda) * V^T
  Matrix lambda(5, 5, 0.0);
  for (std::size_t i = 0; i < 5; ++i) lambda(i, i) = eig.values[i];
  const Matrix rebuilt = eig.vectors * lambda * eig.vectors.transpose();
  EXPECT_LT(rebuilt.distance_frobenius(a), 1e-8);
}

TEST(Jacobi, RejectsNonSquare) {
  EXPECT_THROW(jacobi_eigen_symmetric(Matrix(2, 3)), std::invalid_argument);
}

TEST(Pca, FindsDominantDirection) {
  // Points spread along y = x with tiny orthogonal noise.
  Rng rng(21);
  Matrix data(200, 2);
  for (std::size_t r = 0; r < 200; ++r) {
    const double t = rng.normal(0.0, 3.0);
    const double eps = rng.normal(0.0, 0.05);
    data(r, 0) = t + eps;
    data(r, 1) = t - eps;
  }
  const PcaModel pca = fit_pca(data, 2);
  EXPECT_GT(pca.explained_variance_ratio[0], 0.99);
  // First component is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(pca.components(0, 0)), std::numbers::sqrt2 / 2, 1e-2);
  EXPECT_NEAR(std::abs(pca.components(1, 0)), std::numbers::sqrt2 / 2, 1e-2);
}

TEST(Pca, TransformCentersData) {
  Matrix data{{1, 2}, {3, 4}, {5, 6}};
  const PcaModel pca = fit_pca(data, 1);
  const Matrix scores = pca.transform(data);
  double sum = 0.0;
  for (std::size_t r = 0; r < 3; ++r) sum += scores(r, 0);
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Pca, VarianceRatiosSumToOne) {
  Rng rng(22);
  Matrix data(40, 4);
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < 4; ++c) data(r, c) = rng.normal();
  }
  const PcaModel pca = fit_pca(data, 0);
  double total = 0.0;
  for (double v : pca.explained_variance_ratio) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (std::size_t i = 1; i < pca.explained_variance.size(); ++i) {
    EXPECT_LE(pca.explained_variance[i], pca.explained_variance[i - 1]);
  }
}

TEST(Ari, IdenticalPartitionsGiveOne) {
  const std::vector<std::size_t> a{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(adjusted_rand_index(a, a), 1.0, 1e-12);
}

TEST(Ari, LabelPermutationInvariant) {
  const std::vector<std::size_t> a{0, 0, 1, 1, 2, 2};
  const std::vector<std::size_t> b{5, 5, 9, 9, 1, 1};
  EXPECT_NEAR(adjusted_rand_index(a, b), 1.0, 1e-12);
}

TEST(Ari, KnownValueForPartialAgreement) {
  // Classic example: ARI is symmetric and < 1 for differing partitions.
  const std::vector<std::size_t> a{0, 0, 0, 1, 1, 1};
  const std::vector<std::size_t> b{0, 0, 1, 1, 2, 2};
  const double ab = adjusted_rand_index(a, b);
  const double ba = adjusted_rand_index(b, a);
  EXPECT_NEAR(ab, ba, 1e-12);
  EXPECT_GT(ab, 0.0);
  EXPECT_LT(ab, 1.0);
  // Hand-computed: 15 pairs, 2 together-in-both, 8 apart-in-both -> 10/15.
  EXPECT_NEAR(rand_index(a, b), 10.0 / 15.0, 1e-12);
}

TEST(Ari, IndependentRandomPartitionsNearZero) {
  Rng rng(30);
  std::vector<std::size_t> a(2000), b(2000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform_index(4);
    b[i] = rng.uniform_index(4);
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.05);
}

TEST(Ari, DisagreementCanBeNegative) {
  // Perfectly "anti-correlated" partitions can push ARI below 0.
  const std::vector<std::size_t> a{0, 1, 0, 1};
  const std::vector<std::size_t> b{0, 0, 1, 1};
  EXPECT_LT(adjusted_rand_index(a, b), 0.0 + 1e-9);
}

TEST(Ari, RejectsLengthMismatch) {
  const std::vector<std::size_t> a{0, 1};
  const std::vector<std::size_t> b{0};
  EXPECT_THROW(adjusted_rand_index(a, b), std::invalid_argument);
}

TEST(PairwiseScores, PerfectPrediction) {
  const std::vector<std::size_t> t{0, 0, 1, 1};
  const auto s = pairwise_scores(t, t);
  EXPECT_EQ(s.precision, 1.0);
  EXPECT_EQ(s.recall, 1.0);
  EXPECT_EQ(s.f1, 1.0);
}

TEST(PairwiseScores, AllSingletonsHaveFullPrecisionZeroRecall) {
  const std::vector<std::size_t> pred{0, 1, 2, 3};
  const std::vector<std::size_t> truth{0, 0, 1, 1};
  const auto s = pairwise_scores(pred, truth);
  EXPECT_EQ(s.precision, 1.0);  // vacuous: no predicted pairs
  EXPECT_EQ(s.recall, 0.0);
}

TEST(PairwiseScores, OneBigClusterHasFullRecall) {
  const std::vector<std::size_t> pred{0, 0, 0, 0};
  const std::vector<std::size_t> truth{0, 0, 1, 1};
  const auto s = pairwise_scores(pred, truth);
  EXPECT_EQ(s.recall, 1.0);
  EXPECT_NEAR(s.precision, 2.0 / 6.0, 1e-12);
}

TEST(Purity, MajorityLabelFraction) {
  const std::vector<std::size_t> pred{0, 0, 0, 1, 1};
  const std::vector<std::size_t> truth{0, 0, 1, 1, 1};
  EXPECT_NEAR(purity(pred, truth), 4.0 / 5.0, 1e-12);
}

TEST(Silhouette, HighForSeparatedLowForMixed) {
  std::vector<std::size_t> truth;
  const Matrix data = make_blobs(10, 31, &truth);
  EXPECT_GT(mean_silhouette(data, truth), 0.8);
  // Random labels should score much worse.
  Rng rng(32);
  std::vector<std::size_t> random_labels(truth.size());
  for (auto& l : random_labels) l = rng.uniform_index(3);
  EXPECT_LT(mean_silhouette(data, random_labels),
            mean_silhouette(data, truth));
}

TEST(Silhouette, DegenerateCasesReturnZero) {
  const Matrix data{{0, 0}, {1, 1}};
  const std::vector<std::size_t> one_cluster{0, 0};
  EXPECT_EQ(mean_silhouette(data, one_cluster), 0.0);
  const std::vector<std::size_t> all_singletons{0, 1};
  EXPECT_EQ(mean_silhouette(data, all_singletons), 0.0);
}

}  // namespace
}  // namespace sybiltd::ml
