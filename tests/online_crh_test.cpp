// Tests for online (incremental) CRH.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "truth/crh.h"
#include "truth/online_crh.h"

namespace sybiltd::truth {
namespace {

TEST(OnlineCrh, MatchesBatchCrhWithoutDecay) {
  Rng rng(1);
  const std::size_t accounts = 6, tasks = 8;
  std::vector<double> truths(tasks);
  for (auto& t : truths) t = rng.uniform(-90, -50);

  ObservationTable batch(accounts, tasks);
  OnlineCrh online(accounts, tasks);
  for (std::size_t i = 0; i < accounts; ++i) {
    const double sigma = i == accounts - 1 ? 10.0 : 1.0;
    for (std::size_t j = 0; j < tasks; ++j) {
      const double value = truths[j] + rng.normal(0.0, sigma);
      batch.add(i, j, value);
      online.observe(i, j, value);
    }
  }
  online.refine(100);
  const Result reference = Crh().run(batch);
  for (std::size_t j = 0; j < tasks; ++j) {
    EXPECT_NEAR(online.truths()[j], reference.truths[j], 1e-6) << j;
  }
  // Weight ordering agrees (noisy account last).
  for (std::size_t i = 0; i + 1 < accounts; ++i) {
    EXPECT_GT(online.weights()[i], online.weights()[accounts - 1]);
  }
}

TEST(OnlineCrh, IncrementalEstimatesAreUsableMidStream) {
  OnlineCrh online(3, 2);
  EXPECT_TRUE(std::isnan(online.truths()[0]));
  online.observe(0, 0, -70.0);
  EXPECT_NEAR(online.truths()[0], -70.0, 1e-9);
  EXPECT_TRUE(std::isnan(online.truths()[1]));
  online.observe(1, 0, -72.0);
  online.observe(2, 1, -60.0);
  EXPECT_FALSE(std::isnan(online.truths()[1]));
  EXPECT_EQ(online.live_observation_count(), 3u);
}

TEST(OnlineCrh, DecayTracksDriftingTruth) {
  // The truth drifts from -80 to -55; with decay the estimate follows,
  // without decay it lags near the overall mean.
  OnlineCrhOptions decaying;
  decaying.decay = 0.9;
  OnlineCrh with_decay(4, 1, decaying);
  OnlineCrh without_decay(4, 1);
  Rng rng(2);
  double truth = -80.0;
  for (int round = 0; round < 50; ++round) {
    truth += 0.5;  // drift
    for (std::size_t account = 0; account < 4; ++account) {
      const double value = truth + rng.normal(0.0, 1.0);
      with_decay.observe(account, 0, value);
      without_decay.observe(account, 0, value);
    }
  }
  with_decay.refine(20);
  without_decay.refine(20);
  const double final_truth = truth;
  EXPECT_LT(std::abs(with_decay.truths()[0] - final_truth),
            std::abs(without_decay.truths()[0] - final_truth));
  EXPECT_NEAR(with_decay.truths()[0], final_truth, 4.0);
}

TEST(OnlineCrh, DecayEvictsStaleObservations) {
  OnlineCrhOptions opt;
  opt.decay = 0.5;
  opt.influence_floor = 1e-3;
  OnlineCrh online(2, 1, opt);
  for (int i = 0; i < 100; ++i) {
    online.observe(static_cast<std::size_t>(i % 2), 0, -70.0);
  }
  // 0.5^k < 1e-3 for k > 10, so at most ~11 observations stay live.
  EXPECT_LE(online.live_observation_count(), 12u);
}

TEST(OnlineCrh, InfluenceFloorDropsOldObservationsAndTracksRegimeChange) {
  // With decay = 0.9 and floor = 1e-4 an observation's influence falls
  // below the floor after ceil(ln(1e-4)/ln(0.9)) = 88 observe-steps, so at
  // most 88 observations can ever be live — and a level shift older than
  // the horizon must stop influencing the estimate entirely.
  OnlineCrhOptions opt;
  opt.decay = 0.9;
  opt.influence_floor = 1e-4;
  OnlineCrh online(4, 2, opt);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    online.observe(static_cast<std::size_t>(i % 4),
                   static_cast<std::size_t>(i % 2),
                   -80.0 + rng.normal(0.0, 0.5));
  }
  for (int i = 0; i < 1000; ++i) {
    online.observe(static_cast<std::size_t>(i % 4),
                   static_cast<std::size_t>(i % 2),
                   -50.0 + rng.normal(0.0, 0.5));
  }
  EXPECT_LE(online.live_observation_count(), 88u);
  online.refine(20);
  // Every live observation post-dates the regime change; the old level
  // cannot drag the estimate.
  EXPECT_NEAR(online.truths()[0], -50.0, 1.0);
  EXPECT_NEAR(online.truths()[1], -50.0, 1.0);
}

TEST(OnlineCrh, LiveObservationCountStaysBoundedUnderLongStream) {
  // decay = 0.99, floor = 1e-3: horizon = ceil(ln(1e-3)/ln(0.99)) = 688
  // steps.  Over a 10k-observation stream the live multiset must never
  // exceed the horizon — the memory bound that makes unbounded streams
  // safe to aggregate.
  OnlineCrhOptions opt;
  opt.decay = 0.99;
  opt.influence_floor = 1e-3;
  opt.refine_iterations = 1;  // keep the long stream cheap
  OnlineCrh online(8, 4, opt);
  Rng rng(10);
  std::size_t max_live = 0;
  for (int i = 0; i < 10000; ++i) {
    online.observe(static_cast<std::size_t>(i % 8),
                   static_cast<std::size_t>(i % 4),
                   -70.0 + rng.normal(0.0, 2.0));
    max_live = std::max(max_live, online.live_observation_count());
  }
  EXPECT_LE(max_live, 688u);
  EXPECT_GT(online.live_observation_count(), 0u);
  // The state still aggregates sensibly at the end of the stream.
  online.refine(10);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(online.truths()[j], -70.0, 2.0);
  }
}

TEST(OnlineCrh, DownweightsStreamingOutlierAccount) {
  OnlineCrh online(3, 4);
  Rng rng(3);
  for (std::size_t j = 0; j < 4; ++j) {
    for (int round = 0; round < 3; ++round) {
      online.observe(0, j, -70.0 + rng.normal(0.0, 0.5));
      online.observe(1, j, -70.0 + rng.normal(0.0, 0.5));
      online.observe(2, j, -40.0 + rng.normal(0.0, 0.5));  // liar
    }
  }
  online.refine(20);
  EXPECT_GT(online.weights()[0], online.weights()[2]);
  EXPECT_NEAR(online.truths()[0], -70.0, 3.0);
}

TEST(OnlineCrh, ValidatesArguments) {
  EXPECT_THROW(OnlineCrh(1, 1, {.decay = 0.0}), std::invalid_argument);
  EXPECT_THROW(OnlineCrh(1, 1, {.decay = 1.5}), std::invalid_argument);
  OnlineCrh online(2, 2);
  EXPECT_THROW(online.observe(2, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(online.observe(0, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(online.observe(0, 0, std::nan("")), std::invalid_argument);
}

}  // namespace
}  // namespace sybiltd::truth
