// Tests for src/truth: the observation table, CRH (including on the exact
// Table I data of the paper), CATD, GTM, TruthFinder, and the baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "eval/paper_example.h"
#include "truth/baselines.h"
#include "truth/catd.h"
#include "truth/crh.h"
#include "truth/gtm.h"
#include "truth/observation_table.h"
#include "truth/truthfinder.h"

namespace sybiltd::truth {
namespace {

// A clean dataset: `reliable` accounts with small noise and one noisy
// account, over `tasks` tasks with known truths.
ObservationTable make_clean_data(std::size_t accounts, std::size_t tasks,
                                 std::vector<double>* truths,
                                 std::uint64_t seed,
                                 double noisy_account_sigma = 12.0) {
  Rng rng(seed);
  truths->clear();
  for (std::size_t j = 0; j < tasks; ++j) {
    truths->push_back(rng.uniform(-90.0, -50.0));
  }
  ObservationTable table(accounts, tasks);
  for (std::size_t i = 0; i < accounts; ++i) {
    const double sigma = (i == accounts - 1) ? noisy_account_sigma : 1.0;
    for (std::size_t j = 0; j < tasks; ++j) {
      table.add(i, j, (*truths)[j] + rng.normal(0.0, sigma));
    }
  }
  return table;
}

TEST(ObservationTable, BasicIndexing) {
  ObservationTable t(3, 2);
  t.add(0, 0, -70.0);
  t.add(1, 0, -72.0);
  t.add(0, 1, -60.0);
  EXPECT_EQ(t.observation_count(), 3u);
  EXPECT_TRUE(t.has(0, 0));
  EXPECT_FALSE(t.has(2, 0));
  EXPECT_EQ(t.value(1, 0).value(), -72.0);
  EXPECT_FALSE(t.value(2, 1).has_value());
  EXPECT_EQ(t.accounts_for_task(0).size(), 2u);
  EXPECT_EQ(t.tasks_for_account(0).size(), 2u);
  EXPECT_NEAR(t.task_mean(0), -71.0, 1e-12);
  EXPECT_TRUE(std::isnan(t.task_mean(1) - t.task_mean(1)) == false);
}

TEST(ObservationTable, RejectsDuplicatesAndBadIndices) {
  ObservationTable t(2, 2);
  t.add(0, 0, 1.0);
  EXPECT_THROW(t.add(0, 0, 2.0), std::invalid_argument);
  EXPECT_THROW(t.add(2, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(t.add(0, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(t.add(1, 1, std::nan("")), std::invalid_argument);
}

TEST(ObservationTable, TaskStddevAndEmptyTask) {
  ObservationTable t(3, 2);
  t.add(0, 0, 1.0);
  t.add(1, 0, 3.0);
  EXPECT_NEAR(t.task_stddev(0), 1.0, 1e-12);
  EXPECT_EQ(t.task_stddev(1), 0.0);
  EXPECT_TRUE(std::isnan(t.task_mean(1)));
}

TEST(Crh, RecoversTruthOnCleanData) {
  std::vector<double> truths;
  const auto data = make_clean_data(8, 12, &truths, 1);
  const Result r = Crh().run(data);
  EXPECT_TRUE(r.converged);
  for (std::size_t j = 0; j < truths.size(); ++j) {
    EXPECT_NEAR(r.truths[j], truths[j], 1.5) << "task " << j;
  }
}

TEST(Crh, ReliableAccountsGetHigherWeight) {
  std::vector<double> truths;
  const auto data = make_clean_data(6, 10, &truths, 2);
  const Result r = Crh().run(data);
  // Account 5 is the noisy one.
  for (std::size_t i = 0; i + 1 < 6; ++i) {
    EXPECT_GT(r.account_weights[i], r.account_weights[5]);
  }
}

TEST(Crh, BeatsPlainMeanOnHeterogeneousReliability) {
  std::vector<double> truths;
  double crh_err = 0.0, mean_err = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto data = make_clean_data(6, 10, &truths, 100 + seed, 25.0);
    const Result crh = Crh().run(data);
    const Result mean = MeanAggregator().run(data);
    for (std::size_t j = 0; j < truths.size(); ++j) {
      crh_err += std::abs(crh.truths[j] - truths[j]);
      mean_err += std::abs(mean.truths[j] - truths[j]);
    }
  }
  EXPECT_LT(crh_err, mean_err);
}

TEST(Crh, PaperTableOneWithoutAttack) {
  // Paper reports TD without the attack: -84.23, -82.01, -75.22, -72.72.
  // Our CRH instantiation differs in minor details, so check it lands close
  // to the reliable users' values and far from any corruption.
  const auto data = eval::paper_example_observations_no_attack();
  const Result r = Crh().run(data);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.truths[1], -82.0, 6.0);  // T2
  EXPECT_NEAR(r.truths[2], -76.2, 2.1);  // T3: between -75.16 and -77.21
  EXPECT_NEAR(r.truths[3], -73.1, 1.0);  // T4: between -72.71 and -73.55
}

TEST(Crh, PaperTableOneAttackCorruptsResults) {
  // Table I: with the Sybil attack, T1/T3/T4 are dragged toward -50 while
  // T2 (which the attacker skips) stays put.
  const auto with_attack = eval::paper_example_observations();
  const auto without = eval::paper_example_observations_no_attack();
  const Result attacked = Crh().run(with_attack);
  const Result clean = Crh().run(without);
  // Attacked estimates for T1, T3, T4 move strongly toward -50.
  EXPECT_GT(attacked.truths[0], -65.0);
  EXPECT_GT(attacked.truths[2], -65.0);
  EXPECT_GT(attacked.truths[3], -65.0);
  // T2 barely moves.
  EXPECT_NEAR(attacked.truths[1], clean.truths[1], 4.0);
  // And each corrupted task moved by more than 10 dBm.
  for (std::size_t j : {0ul, 2ul, 3ul}) {
    EXPECT_GT(std::abs(attacked.truths[j] - clean.truths[j]), 10.0);
  }
}

TEST(Crh, EmptyTasksYieldNan) {
  ObservationTable t(2, 3);
  t.add(0, 0, 1.0);
  t.add(1, 0, 2.0);
  const Result r = Crh().run(t);
  EXPECT_FALSE(std::isnan(r.truths[0]));
  EXPECT_TRUE(std::isnan(r.truths[1]));
  EXPECT_TRUE(std::isnan(r.truths[2]));
}

TEST(Crh, SingleAccountGetsItsOwnValues) {
  ObservationTable t(1, 2);
  t.add(0, 0, -55.0);
  t.add(0, 1, -60.0);
  const Result r = Crh().run(t);
  EXPECT_NEAR(r.truths[0], -55.0, 1e-9);
  EXPECT_NEAR(r.truths[1], -60.0, 1e-9);
}

TEST(Crh, RandomInitStillConverges) {
  std::vector<double> truths;
  const auto data = make_clean_data(8, 10, &truths, 3);
  CrhOptions opt;
  opt.random_init = true;
  opt.init_seed = 77;
  const Result r = Crh(opt).run(data);
  EXPECT_TRUE(r.converged);
  for (std::size_t j = 0; j < truths.size(); ++j) {
    EXPECT_NEAR(r.truths[j], truths[j], 2.0);
  }
}

TEST(Crh, TruthsWithinObservedRange) {
  Rng rng(4);
  ObservationTable t(5, 4);
  double lo = 1e9, hi = -1e9;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      const double v = rng.uniform(-100, 0);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      t.add(i, j, v);
    }
  }
  const Result r = Crh().run(t);
  for (double truth : r.truths) {
    EXPECT_GE(truth, lo - 1e-9);
    EXPECT_LE(truth, hi + 1e-9);
  }
}

TEST(Catd, RecoversTruthAndDownweightsNoise) {
  std::vector<double> truths;
  const auto data = make_clean_data(8, 12, &truths, 5);
  const Result r = Catd().run(data);
  for (std::size_t j = 0; j < truths.size(); ++j) {
    EXPECT_NEAR(r.truths[j], truths[j], 1.5);
  }
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    EXPECT_GT(r.account_weights[i], r.account_weights[7]);
  }
}

TEST(Catd, ChiSquaredQuantileSanity) {
  // chi2 median ~ k(1-2/(9k))^3; also monotone in p and k.
  EXPECT_NEAR(chi_squared_quantile(0.5, 10.0), 9.34, 0.15);
  EXPECT_LT(chi_squared_quantile(0.1, 5.0), chi_squared_quantile(0.9, 5.0));
  EXPECT_LT(chi_squared_quantile(0.9, 2.0), chi_squared_quantile(0.9, 20.0));
  EXPECT_THROW(chi_squared_quantile(0.0, 1.0), std::invalid_argument);
}

TEST(Catd, NormalQuantileMatchesKnownValues) {
  EXPECT_NEAR(standard_normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(standard_normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(standard_normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(standard_normal_quantile(0.999), 3.090232, 1e-4);
}

TEST(Gtm, RecoversTruthOnCleanData) {
  std::vector<double> truths;
  const auto data = make_clean_data(8, 12, &truths, 6);
  const Result r = Gtm().run(data);
  for (std::size_t j = 0; j < truths.size(); ++j) {
    EXPECT_NEAR(r.truths[j], truths[j], 1.5);
  }
  // Precision weights: reliable > noisy.
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    EXPECT_GT(r.account_weights[i], r.account_weights[7]);
  }
}

TEST(TruthFinder, RecoversTruthOnCleanData) {
  std::vector<double> truths;
  const auto data = make_clean_data(8, 12, &truths, 7);
  const Result r = TruthFinder().run(data);
  for (std::size_t j = 0; j < truths.size(); ++j) {
    EXPECT_NEAR(r.truths[j], truths[j], 2.5);
  }
  // Trust scores live in [0, 1].
  for (double t : r.account_weights) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(Baselines, MeanAndMedian) {
  ObservationTable t(3, 1);
  t.add(0, 0, 1.0);
  t.add(1, 0, 2.0);
  t.add(2, 0, 9.0);
  EXPECT_NEAR(MeanAggregator().run(t).truths[0], 4.0, 1e-12);
  EXPECT_NEAR(MedianAggregator().run(t).truths[0], 2.0, 1e-12);
}

TEST(Baselines, MedianRobustToOutlier) {
  std::vector<double> truths;
  const auto data = make_clean_data(9, 10, &truths, 8, 60.0);
  const Result mean = MeanAggregator().run(data);
  const Result med = MedianAggregator().run(data);
  double mean_err = 0.0, med_err = 0.0;
  for (std::size_t j = 0; j < truths.size(); ++j) {
    mean_err += std::abs(mean.truths[j] - truths[j]);
    med_err += std::abs(med.truths[j] - truths[j]);
  }
  EXPECT_LT(med_err, mean_err);
}

// All account-level truth discovery algorithms are vulnerable to the Sybil
// attack — the paper's Section III-C claim, parameterized over algorithms.
class Vulnerability : public ::testing::TestWithParam<int> {
 protected:
  static Result run_algo(int which, const ObservationTable& data) {
    switch (which) {
      case 0: return Crh().run(data);
      case 1: return Catd().run(data);
      case 2: return Gtm().run(data);
      case 3: return TruthFinder().run(data);
      default: return MeanAggregator().run(data);
    }
  }
};

TEST_P(Vulnerability, SybilAttackShiftsEstimates) {
  const auto attacked = run_algo(GetParam(),
                                 eval::paper_example_observations());
  const auto clean = run_algo(GetParam(),
                              eval::paper_example_observations_no_attack());
  // The attacked T1/T3/T4 estimates move toward -50 by at least 5 dBm.
  double total_shift = 0.0;
  for (std::size_t j : {0ul, 2ul, 3ul}) {
    EXPECT_GT(attacked.truths[j], clean.truths[j]);
    total_shift += attacked.truths[j] - clean.truths[j];
  }
  EXPECT_GT(total_shift, 15.0);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, Vulnerability,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace sybiltd::truth
