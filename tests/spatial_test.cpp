// Tests for the spatial substrate: Cholesky solver, IDW, k-NN, kriging,
// and the raster utilities — plus the end-to-end property that Sybil
// corruption of POI estimates propagates into the interpolated map.
#include <gtest/gtest.h>

#include <cmath>

#include "common/linalg.h"
#include "common/rng.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "spatial/interpolation.h"
#include "spatial/kriging.h"

namespace sybiltd {
namespace {

TEST(Cholesky, FactorizesAndSolves) {
  const Matrix a{{4, 2, 0}, {2, 5, 1}, {0, 1, 3}};
  const Matrix lower = cholesky_decompose(a);
  // L is lower triangular and L·Lᵀ = A.
  EXPECT_EQ(lower(0, 1), 0.0);
  EXPECT_EQ(lower(0, 2), 0.0);
  EXPECT_LT((lower * lower.transpose()).distance_frobenius(a), 1e-10);
  // Solve against a known RHS.
  const std::vector<double> x_true{1.0, -2.0, 3.0};
  const auto b = a.multiply(x_true);
  const auto x = cholesky_solve(lower, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Cholesky, RejectsNonPositiveDefinite) {
  const Matrix bad{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky_decompose(bad), std::invalid_argument);
  EXPECT_THROW(cholesky_decompose(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, RidgeRescuesSingularSystem) {
  const Matrix singular{{1, 1}, {1, 1}};
  EXPECT_THROW(solve_spd(singular, std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(solve_spd(singular, std::vector<double>{1.0, 1.0}, 1e-6));
}

std::vector<spatial::Sample> grid_samples() {
  // A tilted plane sampled on a 3x3 grid: v = 2 + 0.01 x + 0.02 y.
  std::vector<spatial::Sample> samples;
  for (double x : {0.0, 50.0, 100.0}) {
    for (double y : {0.0, 50.0, 100.0}) {
      samples.push_back({{x, y}, 2.0 + 0.01 * x + 0.02 * y});
    }
  }
  return samples;
}

TEST(Idw, ExactAtSamplesAndBounded) {
  const spatial::IdwInterpolator idw(grid_samples());
  EXPECT_NEAR(idw({50.0, 50.0}), 2.0 + 0.5 + 1.0, 1e-9);  // on a sample
  // Between samples, the value stays within the sample range.
  const double v = idw({25.0, 75.0});
  EXPECT_GT(v, 2.0);
  EXPECT_LT(v, 5.0);
  EXPECT_THROW(spatial::IdwInterpolator({}), std::invalid_argument);
}

TEST(Knn, AveragesNearestNeighbors) {
  std::vector<spatial::Sample> samples = {
      {{0, 0}, 10.0}, {{1, 0}, 20.0}, {{100, 100}, 1000.0}};
  const spatial::KnnInterpolator knn(samples, 2);
  EXPECT_NEAR(knn({0.4, 0.0}), 15.0, 1e-9);
  const spatial::KnnInterpolator knn1(samples, 1);
  EXPECT_NEAR(knn1({99.0, 99.0}), 1000.0, 1e-9);
}

TEST(Kriging, ExactAtSamplesWithZeroVariance) {
  const spatial::KrigingInterpolator kriging(grid_samples());
  const auto prediction = kriging.predict({50.0, 50.0});
  EXPECT_NEAR(prediction.value, 3.5, 1e-6);
  EXPECT_NEAR(prediction.variance, 0.0, 1e-6);
}

TEST(Kriging, VarianceGrowsAwayFromSamples) {
  const spatial::KrigingInterpolator kriging(grid_samples());
  const double near = kriging.predict({50.0, 55.0}).variance;
  const double far = kriging.predict({400.0, 400.0}).variance;
  EXPECT_LT(near, far);
}

TEST(Kriging, BeatsIdwOnSmoothField) {
  // Samples from a smooth field; compare interpolation error at held-out
  // points.  Kriging's covariance model should win on average.
  Rng rng(5);
  auto field = [](const mcs::Point& p) {
    return std::sin(p.x / 60.0) + std::cos(p.y / 45.0);
  };
  std::vector<spatial::Sample> samples;
  for (int i = 0; i < 40; ++i) {
    const mcs::Point p{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)};
    samples.push_back({p, field(p)});
  }
  spatial::KrigingOptions opt;
  opt.range_m = 60.0;
  const spatial::KrigingInterpolator kriging(samples, opt);
  const spatial::IdwInterpolator idw(samples);
  double kriging_err = 0.0, idw_err = 0.0;
  for (int i = 0; i < 100; ++i) {
    const mcs::Point p{rng.uniform(20.0, 280.0), rng.uniform(20.0, 280.0)};
    kriging_err += std::abs(kriging(p) - field(p));
    idw_err += std::abs(idw(p) - field(p));
  }
  EXPECT_LT(kriging_err, idw_err);
}

TEST(Raster, ShapeAndMae) {
  const spatial::IdwInterpolator idw(grid_samples());
  mcs::CampusConfig campus{100.0, 100.0};
  const auto grid = spatial::rasterize(idw, campus, 8, 6);
  EXPECT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].size(), 8u);
  EXPECT_NEAR(spatial::raster_mae(grid, grid), 0.0, 1e-12);
  auto shifted = grid;
  for (auto& row : shifted) {
    for (double& v : row) v += 1.5;
  }
  EXPECT_NEAR(spatial::raster_mae(grid, shifted), 1.5, 1e-12);
}

TEST(SpatialIntegration, SybilCorruptionPropagatesIntoTheMap) {
  // Build the coverage map from CRH estimates vs framework estimates under
  // attack; compare both maps against the map built from ground truth.
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.8, 0.8, 555));
  auto samples_from = [&](const std::vector<double>& values) {
    std::vector<spatial::Sample> samples;
    for (std::size_t j = 0; j < data.tasks.size(); ++j) {
      if (std::isnan(values[j])) continue;
      samples.push_back({data.tasks[j].location, values[j]});
    }
    return samples;
  };
  const mcs::CampusConfig campus;
  const auto truth_map = spatial::rasterize(
      spatial::IdwInterpolator(samples_from(data.ground_truths())), campus,
      16, 16);
  const auto crh = eval::run_method(eval::Method::kCrh, data);
  const auto tdtr = eval::run_method(eval::Method::kTdTr, data);
  const auto crh_map = spatial::rasterize(
      spatial::IdwInterpolator(samples_from(crh.truths)), campus, 16, 16);
  const auto tdtr_map = spatial::rasterize(
      spatial::IdwInterpolator(samples_from(tdtr.truths)), campus, 16, 16);
  const double crh_map_mae = spatial::raster_mae(crh_map, truth_map);
  const double tdtr_map_mae = spatial::raster_mae(tdtr_map, truth_map);
  EXPECT_GT(crh_map_mae, 3.0 * tdtr_map_mae);
}

}  // namespace
}  // namespace sybiltd
