// Unit and property tests for src/dtw, including the exact values of the
// paper's Fig. 4 worked example.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "common/rng.h"
#include "dtw/dtw.h"

namespace sybiltd::dtw {
namespace {

TEST(Dtw, IdenticalSeriesHaveZeroDistance) {
  const std::vector<double> a{1, 2, 3, 4};
  const auto r = dtw_full(a, a);
  EXPECT_EQ(r.total_cost, 0.0);
  EXPECT_EQ(r.distance, 0.0);
  EXPECT_EQ(r.path.size(), a.size());
}

TEST(Dtw, RejectsEmptySeries) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(dtw_full({}, a), std::invalid_argument);
  EXPECT_THROW(dtw_distance(a, {}), std::invalid_argument);
}

TEST(Dtw, SingletonSeries) {
  const std::vector<double> a{3.0};
  const std::vector<double> b{5.0};
  const auto r = dtw_full(a, b);
  EXPECT_NEAR(r.total_cost, 4.0, 1e-12);
  EXPECT_EQ(r.path.size(), 1u);
}

// --- The paper's Fig. 4(a) task-series values ----------------------------
// X_1=(1,2,3,4), X_2=(2,3), X_3=(1,2,4), X_4'=X_4''=X_4'''=(1,3,4).
TEST(Dtw, PaperFig4TaskSeriesTotalCosts) {
  const std::vector<double> x1{1, 2, 3, 4};
  const std::vector<double> x2{2, 3};
  const std::vector<double> x3{1, 2, 4};
  const std::vector<double> x4{1, 3, 4};
  EXPECT_NEAR(dtw_full(x1, x2).total_cost, 2.0, 1e-12);
  EXPECT_NEAR(dtw_full(x1, x3).total_cost, 1.0, 1e-12);
  EXPECT_NEAR(dtw_full(x1, x4).total_cost, 1.0, 1e-12);
  EXPECT_NEAR(dtw_full(x2, x3).total_cost, 2.0, 1e-12);
  EXPECT_NEAR(dtw_full(x2, x4).total_cost, 2.0, 1e-12);
  EXPECT_NEAR(dtw_full(x3, x4).total_cost, 1.0, 1e-12);
  EXPECT_NEAR(dtw_full(x4, x4).total_cost, 0.0, 1e-12);
}

TEST(Dtw, SymmetricInArguments) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(3 + rng.uniform_index(8));
    std::vector<double> b(3 + rng.uniform_index(8));
    for (auto& v : a) v = rng.uniform(-5, 5);
    for (auto& v : b) v = rng.uniform(-5, 5);
    EXPECT_NEAR(dtw_full(a, b).total_cost, dtw_full(b, a).total_cost, 1e-9);
    EXPECT_NEAR(dtw_distance(a, b), dtw_distance(b, a), 1e-9);
  }
}

TEST(Dtw, PathIsValidWarpingPath) {
  Rng rng(2);
  std::vector<double> a(12), b(9);
  for (auto& v : a) v = rng.uniform(-3, 3);
  for (auto& v : b) v = rng.uniform(-3, 3);
  const auto r = dtw_full(a, b);
  // Boundary conditions.
  EXPECT_EQ(r.path.front(), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(r.path.back(),
            (std::pair<std::size_t, std::size_t>{a.size() - 1,
                                                 b.size() - 1}));
  // Monotonicity and continuity.
  for (std::size_t k = 1; k < r.path.size(); ++k) {
    const auto [pi, pj] = r.path[k - 1];
    const auto [ci, cj] = r.path[k];
    EXPECT_TRUE(ci == pi || ci == pi + 1);
    EXPECT_TRUE(cj == pj || cj == pj + 1);
    EXPECT_TRUE(ci > pi || cj > pj);
  }
  // Path length bounds from the paper: max(m,n) <= K <= m + n - 1.
  EXPECT_GE(r.path.size(), std::max(a.size(), b.size()));
  EXPECT_LE(r.path.size(), a.size() + b.size() - 1);
  // Path cost equals reported total cost.
  double cost = 0.0;
  for (const auto& [i, j] : r.path) cost += (a[i] - b[j]) * (a[i] - b[j]);
  EXPECT_NEAR(cost, r.total_cost, 1e-9);
}

TEST(Dtw, DistanceOnlyMatchesFullDp) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> a(2 + rng.uniform_index(10));
    std::vector<double> b(2 + rng.uniform_index(10));
    for (auto& v : a) v = rng.uniform(-2, 2);
    for (auto& v : b) v = rng.uniform(-2, 2);
    const auto full = dtw_full(a, b);
    EXPECT_NEAR(dtw_distance(a, b), full.distance, 1e-9);
  }
}

TEST(Dtw, Eq7NormalizationUsesPathLength) {
  const std::vector<double> a{0, 0};
  const std::vector<double> b{1, 1};
  const auto r = dtw_full(a, b);
  EXPECT_NEAR(r.total_cost, 2.0, 1e-12);
  EXPECT_EQ(r.path.size(), 2u);
  EXPECT_NEAR(r.distance, std::sqrt(2.0 / 2.0), 1e-12);
}

TEST(Dtw, TimeShiftCheaperThanValueShift) {
  // DTW should align a shifted copy almost perfectly.
  std::vector<double> a(32), shifted(32), scaled(32);
  for (std::size_t t = 0; t < 32; ++t) {
    a[t] = std::sin(0.4 * static_cast<double>(t));
    shifted[t] = std::sin(0.4 * (static_cast<double>(t) - 2.0));
    scaled[t] = a[t] + 2.0;
  }
  EXPECT_LT(dtw_full(a, shifted).total_cost,
            dtw_full(a, scaled).total_cost);
}

TEST(Dtw, BandZeroMeansUnconstrained) {
  Rng rng(4);
  std::vector<double> a(15), b(10);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  DtwOptions none;
  DtwOptions wide;
  wide.band = 100;
  EXPECT_NEAR(dtw_full(a, b, none).total_cost,
              dtw_full(a, b, wide).total_cost, 1e-12);
}

TEST(Dtw, TighterBandNeverLowersCost) {
  Rng rng(5);
  std::vector<double> a(20), b(20);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  double prev = -1.0;
  for (std::size_t band : {20ul, 5ul, 2ul, 1ul}) {
    DtwOptions opt;
    opt.band = band;
    const double cost = dtw_full(a, b, opt).total_cost;
    if (prev >= 0.0) EXPECT_GE(cost + 1e-12, prev);
    prev = cost;
  }
}

TEST(Dtw, BandWidensForUnequalLengths) {
  // A band narrower than the length difference must still find a path.
  std::vector<double> a(20, 1.0);
  std::vector<double> b(5, 1.0);
  DtwOptions opt;
  opt.band = 1;
  EXPECT_NO_THROW(dtw_full(a, b, opt));
  EXPECT_NEAR(dtw_full(a, b, opt).total_cost, 0.0, 1e-12);
}

TEST(Dtw, ZnormRemovesOffsetAndScale) {
  std::vector<double> a(40), b(40);
  for (std::size_t t = 0; t < 40; ++t) {
    a[t] = std::sin(0.3 * static_cast<double>(t));
    b[t] = 5.0 + 3.0 * a[t];  // affine copy
  }
  EXPECT_GT(dtw_distance(a, b), 1.0);
  EXPECT_NEAR(dtw_distance_znorm(a, b), 0.0, 1e-9);
}

TEST(Dtw, ZnormConstantSeriesIsZeroVector) {
  const std::vector<double> a{2, 2, 2};
  const std::vector<double> b{7, 7, 7};
  EXPECT_NEAR(dtw_distance_znorm(a, b), 0.0, 1e-12);
}

// --- Banded vs dense-reference equivalence ---------------------------------
// The production kernels store only the band (dtw_full) or two rolling rows
// with band-edge infinity clears (dtw_distance).  This reference builds the
// obviously-correct dense m*n matrix, infinity-filled up front, with the
// same Sakoe–Chiba band and the same (cost, path-length) tie-breaking —
// any stale-cell bug in the banded storage shows up as a mismatch here.

struct RefCell {
  double cost;
  std::size_t len;
};

RefCell dense_banded_reference(std::span<const double> a,
                               std::span<const double> b, std::size_t band) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  std::size_t w = band == 0 ? std::max(m, n) : band;
  const std::size_t diff = m > n ? m - n : n - m;
  w = std::max(w, diff);  // same widening as the implementation

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<RefCell> dp(m * n, {inf, 0});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t gap = i > j ? i - j : j - i;
      if (gap > w) continue;
      const double cost = (a[i] - b[j]) * (a[i] - b[j]);
      RefCell best{inf, 0};
      auto consider = [&](const RefCell& c) {
        if (c.cost < best.cost ||
            (c.cost == best.cost && c.len < best.len)) {
          best = c;
        }
      };
      if (i == 0 && j == 0) {
        best = {0.0, 0};
      } else {
        if (i > 0 && j > 0) consider(dp[(i - 1) * n + (j - 1)]);
        if (i > 0) consider(dp[(i - 1) * n + j]);
        if (j > 0) consider(dp[i * n + (j - 1)]);
      }
      dp[i * n + j] = {cost + best.cost, best.len + 1};
    }
  }
  return dp[m * n - 1];
}

TEST(DtwBandedEquivalence, DistanceMatchesDenseReference) {
  Rng rng(40);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<double> a(2 + rng.uniform_index(24));
    std::vector<double> b(2 + rng.uniform_index(24));
    for (auto& v : a) v = rng.uniform(-3, 3);
    for (auto& v : b) v = rng.uniform(-3, 3);
    for (const std::size_t band : {0ul, 1ul, 2ul, 4ul, 8ul}) {
      DtwOptions opt;
      opt.band = band;
      const RefCell ref = dense_banded_reference(a, b, band);
      ASSERT_TRUE(std::isfinite(ref.cost));
      const double expected =
          std::sqrt(ref.cost / static_cast<double>(ref.len));
      EXPECT_EQ(dtw_distance(a, b, opt), expected)
          << "m=" << a.size() << " n=" << b.size() << " band=" << band
          << " trial=" << trial;
    }
  }
}

TEST(DtwBandedEquivalence, FullMatchesDenseReference) {
  Rng rng(41);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> a(2 + rng.uniform_index(16));
    std::vector<double> b(2 + rng.uniform_index(16));
    for (auto& v : a) v = rng.uniform(-3, 3);
    for (auto& v : b) v = rng.uniform(-3, 3);
    for (const std::size_t band : {0ul, 1ul, 3ul, 6ul}) {
      DtwOptions opt;
      opt.band = band;
      const RefCell ref = dense_banded_reference(a, b, band);
      const auto r = dtw_full(a, b, opt);
      EXPECT_EQ(r.total_cost, ref.cost)
          << "m=" << a.size() << " n=" << b.size() << " band=" << band;
      // The recovered path must realize the optimal cost inside the band.
      double path_cost = 0.0;
      for (const auto& [i, j] : r.path) {
        const std::size_t gap = i > j ? i - j : j - i;
        const std::size_t diff = a.size() > b.size()
                                     ? a.size() - b.size()
                                     : b.size() - a.size();
        const std::size_t w =
            band == 0 ? std::max(a.size(), b.size()) : std::max(band, diff);
        EXPECT_LE(gap, w) << "path left the band";
        path_cost += (a[i] - b[j]) * (a[i] - b[j]);
      }
      EXPECT_NEAR(path_cost, r.total_cost, 1e-9);
    }
  }
}

TEST(DtwBandedEquivalence, RepeatedCallsDoNotLeakStaleCells) {
  // Stale rolling-row state from a previous (larger or differently-banded)
  // call must not bleed into later results: interleave shapes and compare
  // every call against a fresh reference.
  Rng rng(42);
  std::vector<double> big_a(48), big_b(48);
  for (auto& v : big_a) v = rng.uniform(-2, 2);
  for (auto& v : big_b) v = rng.uniform(-2, 2);
  std::vector<double> small_a(7), small_b(9);
  for (auto& v : small_a) v = rng.uniform(-2, 2);
  for (auto& v : small_b) v = rng.uniform(-2, 2);

  DtwOptions narrow;
  narrow.band = 2;
  DtwOptions wide;
  wide.band = 30;
  for (int round = 0; round < 5; ++round) {
    for (const auto* opt : {&narrow, &wide}) {
      const RefCell ref_big =
          dense_banded_reference(big_a, big_b, opt->band);
      EXPECT_EQ(dtw_distance(big_a, big_b, *opt),
                std::sqrt(ref_big.cost / static_cast<double>(ref_big.len)));
      const RefCell ref_small =
          dense_banded_reference(small_a, small_b, opt->band);
      EXPECT_EQ(
          dtw_distance(small_a, small_b, *opt),
          std::sqrt(ref_small.cost / static_cast<double>(ref_small.len)));
    }
  }
}

class DtwLowerBound : public ::testing::TestWithParam<std::uint64_t> {};

// Property: DTW total cost is at most the direct (lock-step) cost for
// equal-length series, and nonnegative.
TEST_P(DtwLowerBound, NeverExceedsLockStepCost) {
  Rng rng(GetParam());
  std::vector<double> a(16), b(16);
  for (auto& v : a) v = rng.uniform(-4, 4);
  for (auto& v : b) v = rng.uniform(-4, 4);
  double lock_step = 0.0;
  for (std::size_t t = 0; t < 16; ++t) {
    lock_step += (a[t] - b[t]) * (a[t] - b[t]);
  }
  const double cost = dtw_full(a, b).total_cost;
  EXPECT_GE(cost, 0.0);
  EXPECT_LE(cost, lock_step + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtwLowerBound,
                         ::testing::Values(100, 101, 102, 103, 104, 105));

}  // namespace
}  // namespace sybiltd::dtw
