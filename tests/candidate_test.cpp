// Tests for the candidate-generation layer (src/candidate/): endpoint-grid
// blocking exactness, the lower-bound cascade, the sparse AG-TS set join,
// the incremental component tracker, and the SYBILTD_CANDIDATES escape
// hatch — in particular the recall properties the docs promise: AG-TR
// candidate mode is bit-identical to exact grouping, and AG-TS sparse mode
// reproduces the dense partition on seed-scale scenarios.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <set>
#include <vector>

#include "candidate/blocking.h"
#include "candidate/candidate.h"
#include "candidate/cascade.h"
#include "candidate/features.h"
#include "candidate/setjoin.h"
#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "core/ag_auto.h"
#include "dtw/dtw.h"
#include "dtw/fastdtw.h"
#include "eval/adapters.h"
#include "graph/incremental.h"
#include "graph/union_find.h"
#include "mcs/scenario.h"
#include "pipeline/shard.h"

namespace sybiltd {
namespace {

core::FrameworkInput scenario_input(std::size_t legit, std::size_t attackers,
                                    std::size_t accounts_per_attacker,
                                    std::size_t tasks, std::uint64_t seed) {
  const auto data = mcs::generate_scenario(mcs::make_large_scenario(
      legit, attackers, accounts_per_attacker, tasks, seed));
  return eval::to_framework_input(data);
}

// RAII environment override so a throwing test cannot leak the variable
// into its neighbors.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

// --- Policy ----------------------------------------------------------------

TEST(CandidatePolicy, AutoEngagesAtThreshold) {
  candidate::Policy policy;
  policy.min_accounts = 100;
  EXPECT_FALSE(candidate::enabled(policy, 99));
  EXPECT_TRUE(candidate::enabled(policy, 100));
  policy.mode = candidate::Mode::kOn;
  EXPECT_TRUE(candidate::enabled(policy, 0));
  policy.mode = candidate::Mode::kOff;
  EXPECT_FALSE(candidate::enabled(policy, 1u << 20));
}

TEST(CandidatePolicy, EnvOverridesConfiguredMode) {
  candidate::Policy on;
  on.mode = candidate::Mode::kOn;
  {
    ScopedEnv env("SYBILTD_CANDIDATES", "off");
    EXPECT_FALSE(candidate::enabled(on, 1u << 20));
  }
  candidate::Policy off;
  off.mode = candidate::Mode::kOff;
  {
    ScopedEnv env("SYBILTD_CANDIDATES", "on");
    EXPECT_TRUE(candidate::enabled(off, 1));
  }
  {
    ScopedEnv env("SYBILTD_CANDIDATES", "banana");
    EXPECT_THROW(candidate::resolve_mode(candidate::Mode::kAuto),
                 std::invalid_argument);
  }
}

// --- Blocking --------------------------------------------------------------

TEST(EndpointGrid, DroppedPairsAreProvablyBeyondPhi) {
  const auto input = scenario_input(60, 5, 4, 20, 7);
  const std::size_t n = input.accounts.size();
  std::vector<std::vector<double>> xs(n), ys(n);
  std::vector<candidate::TrajectoryFingerprint> fps(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = core::AgTr::task_series(input.accounts[i]);
    ys[i] = core::AgTr::timestamp_series(input.accounts[i]);
    fps[i].task = candidate::profile_of(xs[i]);
    fps[i].time = candidate::profile_of(ys[i]);
  }
  const double phi = 1.0;
  candidate::BlockingStats stats;
  const auto pairs = candidate::endpoint_grid_candidates(fps, phi, &stats);
  EXPECT_EQ(stats.candidates, pairs.size());
  EXPECT_GT(stats.occupied_cells, 0u);
  // Sorted and unique — the order contract the edge fold depends on.
  for (std::size_t k = 1; k < pairs.size(); ++k) {
    EXPECT_LT(pairs[k - 1], pairs[k]);
  }
  std::set<std::uint64_t> emitted(pairs.begin(), pairs.end());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (emitted.count(candidate::pack_pair(i, j)) > 0) continue;
      if (xs[i].empty() || xs[j].empty()) continue;  // excluded by design
      // Every dropped pair must already be unreachable from phi by the
      // endpoint bound alone — the grid's exactness invariant.
      const double bound = dtw::endpoint_lower_bound(xs[i], xs[j]) +
                           dtw::endpoint_lower_bound(ys[i], ys[j]);
      EXPECT_GE(bound, phi) << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST(EndpointGrid, NonPositivePhiEmitsNothing) {
  std::vector<candidate::TrajectoryFingerprint> fps(3);
  for (auto& fp : fps) {
    const std::vector<double> series{1.0, 2.0};
    fp.task = candidate::profile_of(series);
    fp.time = candidate::profile_of(series);
  }
  EXPECT_TRUE(candidate::endpoint_grid_candidates(fps, 0.0).empty());
  EXPECT_TRUE(candidate::endpoint_grid_candidates(fps, -1.0).empty());
}

// --- Cascade ---------------------------------------------------------------

TEST(LbCascade, PrunesOnlyPairsBeyondPhiAndReturnsExactValues) {
  std::mt19937_64 rng(1234);
  std::uniform_real_distribution<double> value(0.0, 4.0);
  std::uniform_int_distribution<std::size_t> length(1, 12);
  const std::size_t n = 48;
  std::vector<std::vector<double>> xs(n), ys(n);
  std::vector<candidate::TrajectoryFingerprint> fps(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = length(rng);
    for (std::size_t k = 0; k < len; ++k) {
      xs[i].push_back(value(rng));
      ys[i].push_back(value(rng));
    }
    fps[i].task = candidate::profile_of(xs[i]);
    fps[i].time = candidate::profile_of(ys[i]);
  }
  candidate::CascadeOptions options;
  options.phi = 6.0;
  const candidate::LbCascade cascade(xs, ys, fps, options);
  candidate::CascadeStats stats;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double d = -1.0;
      const auto outcome = cascade.evaluate(i, j, &d);
      stats.count(outcome);
      const double exact = dtw::dtw_total_cost(xs[i], xs[j], {}) +
                           dtw::dtw_total_cost(ys[i], ys[j], {});
      if (outcome == candidate::CascadeOutcome::kExact) {
        EXPECT_DOUBLE_EQ(d, exact);
      } else {
        // Every prune stage is a valid lower bound: a discarded pair's true
        // dissimilarity really is at or beyond phi.
        EXPECT_GE(exact, options.phi)
            << "outcome " << static_cast<int>(outcome);
      }
    }
  }
  // The random data should exercise the funnel, not bypass it.
  EXPECT_GT(stats.endpoint_pruned + stats.envelope_pruned, 0u);
  EXPECT_GT(stats.exact_pairs, 0u);
  EXPECT_EQ(stats.evaluated, n * (n - 1) / 2);
}

// --- AG-TR candidate mode --------------------------------------------------

TEST(AgTrCandidates, GroupingBitIdenticalToExactAllPairs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 11ull}) {
    const auto input = scenario_input(40, 4, 5, 20, seed);
    core::AgTrOptions exact_opt;  // all-pairs, no pruning
    core::AgTrOptions cand_opt;
    cand_opt.candidates.mode = candidate::Mode::kOn;
    core::AgTrStats stats;
    const auto exact = core::AgTr(exact_opt).group(input);
    const auto cand =
        core::AgTr(cand_opt).group_with_stats(input, &stats);
    // Bit-identical, not merely equivalent: same groups, same member
    // order, same labels (the candidate edge fold replays the all-pairs
    // insertion order).
    EXPECT_EQ(exact.labels(), cand.labels()) << "seed " << seed;
    EXPECT_EQ(exact.groups(), cand.groups()) << "seed " << seed;
    EXPECT_EQ(stats.blocked + stats.candidates, stats.pairs);
    EXPECT_GT(stats.blocked, 0u) << "blocking should drop some pairs";
  }
}

TEST(AgTrCandidates, FunnelCountersAreConsistent) {
  const auto input = scenario_input(50, 5, 4, 25, 5);
  core::AgTrOptions opt;
  opt.candidates.mode = candidate::Mode::kOn;
  core::AgTrStats stats;
  (void)core::AgTr(opt).group_with_stats(input, &stats);
  EXPECT_EQ(stats.lb_pruned,
            stats.endpoint_pruned + stats.envelope_pruned +
                stats.keogh_pruned);
  EXPECT_EQ(stats.candidates, stats.lb_pruned + stats.task_abandoned +
                                  stats.exact_pairs);
}

TEST(AgTrCandidates, ExplicitOnRequiresTotalCostMode) {
  core::AgTrOptions opt;
  opt.mode = core::DtwMode::kPathNormalized;
  opt.candidates.mode = candidate::Mode::kOn;
  const auto input = scenario_input(10, 1, 2, 10, 3);
  EXPECT_THROW(core::AgTr(opt).group(input), std::invalid_argument);
}

// --- AG-TS sparse mode -----------------------------------------------------

TEST(AgTsSparse, MatchesDensePartitionOnScenarios) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 11ull}) {
    const auto input = scenario_input(40, 4, 5, 20, seed);
    core::AgTsOptions dense_opt;  // kAuto stays dense at this size
    core::AgTsOptions sparse_opt;
    sparse_opt.candidates.mode = candidate::Mode::kOn;
    core::AgTsStats stats;
    const auto dense = core::AgTs(dense_opt).group(input);
    const auto sparse =
        core::AgTs(sparse_opt).group_with_stats(input, &stats);
    EXPECT_TRUE(stats.sparse);
    EXPECT_TRUE(stats.join.exhaustive);  // few distinct sets at this scale
    EXPECT_EQ(dense.labels(), sparse.labels()) << "seed " << seed;
  }
}

TEST(AgTsSparse, LshTierMatchesDenseOnScenarios) {
  for (std::uint64_t seed : {1ull, 2ull, 7ull}) {
    const auto input = scenario_input(60, 6, 4, 24, seed);
    core::AgTsOptions dense_opt;
    core::AgTsOptions lsh_opt;
    lsh_opt.candidates.mode = candidate::Mode::kOn;
    lsh_opt.set_join.exact_distinct_cap = 0;  // force the MinHash tier
    core::AgTsStats stats;
    const auto dense = core::AgTs(dense_opt).group(input);
    const auto sparse =
        core::AgTs(lsh_opt).group_with_stats(input, &stats);
    EXPECT_TRUE(stats.sparse);
    EXPECT_FALSE(stats.join.exhaustive);
    EXPECT_EQ(dense.labels(), sparse.labels()) << "seed " << seed;
  }
}

TEST(AgTsSparse, NegativeRhoKeepsDensePath) {
  const auto input = scenario_input(20, 2, 3, 12, 9);
  core::AgTsOptions opt;
  opt.rho = -0.5;
  opt.candidates.mode = candidate::Mode::kOn;
  core::AgTsStats stats;
  (void)core::AgTs(opt).group_with_stats(input, &stats);
  EXPECT_FALSE(stats.sparse) << "rho < 0 must stay dense";
}

TEST(SetJoin, ComponentsMatchBruteForceOnRandomSets) {
  std::mt19937_64 rng(99);
  const std::size_t m = 30;
  const std::size_t n = 120;
  std::uniform_int_distribution<std::uint32_t> task(0, m - 1);
  std::uniform_int_distribution<int> size(0, 10);
  std::vector<std::vector<std::uint32_t>> sets(n);
  for (auto& set : sets) {
    const int s = size(rng);
    std::set<std::uint32_t> chosen;
    while (static_cast<int>(chosen.size()) < s) chosen.insert(task(rng));
    set.assign(chosen.begin(), chosen.end());
  }
  // Clone a few sets to exercise the collapse tier.
  for (std::size_t k = 0; k < 20; ++k) sets[n - 1 - k] = sets[k];
  const double rho = 0.2;
  const auto is_edge = [&](std::size_t both, std::size_t alone) {
    return core::AgTs::affinity(both, alone, m) > rho;
  };
  candidate::SetJoinStats stats;
  const auto edges =
      candidate::sparse_affinity_edges(sets, is_edge, {}, &stats);
  EXPECT_GT(stats.collapsed, 0u);
  graph::UnionFind sparse_uf(n);
  for (const std::uint64_t e : edges) {
    sparse_uf.unite(candidate::pair_first(e), candidate::pair_second(e));
  }
  graph::UnionFind brute_uf(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      std::size_t both = 0;
      for (std::uint32_t t : sets[i]) {
        both += std::binary_search(sets[j].begin(), sets[j].end(), t);
      }
      const std::size_t alone = sets[i].size() + sets[j].size() - 2 * both;
      if (is_edge(both, alone)) brute_uf.unite(i, j);
    }
  }
  EXPECT_EQ(sparse_uf.labels(), brute_uf.labels());
}

// --- Incremental components ------------------------------------------------

TEST(IncrementalComponents, MatchesFullRebuildUnderChurn) {
  std::mt19937_64 rng(4242);
  const std::size_t n = 64;
  graph::IncrementalComponents inc;
  inc.resize(n);
  // Reference adjacency as sets; set_neighbors must track it exactly.
  std::vector<std::set<std::uint32_t>> ref(n);
  std::uniform_int_distribution<std::size_t> node(0, n - 1);
  std::uniform_int_distribution<int> degree(0, 6);
  for (int round = 0; round < 400; ++round) {
    const std::size_t u = node(rng);
    // New neighbor set for u: some survivors, some fresh nodes.
    std::set<std::uint32_t> next;
    for (std::uint32_t v : ref[u]) {
      if (rng() % 2 == 0) next.insert(v);
    }
    const int fresh = degree(rng);
    for (int k = 0; k < fresh; ++k) {
      const std::size_t v = node(rng);
      if (v != u) next.insert(static_cast<std::uint32_t>(v));
    }
    // Mirror the row replacement in the reference model.
    for (std::uint32_t v : ref[u]) ref[v].erase(static_cast<std::uint32_t>(u));
    ref[u] = next;
    for (std::uint32_t v : next) ref[v].insert(static_cast<std::uint32_t>(u));
    inc.set_neighbors(u,
                      std::vector<std::uint32_t>(next.begin(), next.end()));
    if (round % 7 == 0) {
      graph::UnionFind full(n);
      for (std::size_t a = 0; a < n; ++a) {
        for (std::uint32_t b : ref[a]) {
          if (b > a) full.unite(a, b);
        }
      }
      EXPECT_EQ(inc.labels(), full.labels()) << "round " << round;
    }
  }
  // The churn must have exercised both the cheap and the rebuild paths.
  EXPECT_GT(inc.rebuilds(), 0u);
  EXPECT_GT(inc.incremental_reuses(), 0u);
}

TEST(IncrementalComponents, GrowKeepsExistingMerges) {
  graph::IncrementalComponents inc;
  inc.resize(3);
  inc.set_neighbors(0, {1});
  inc.resize(5);
  const auto labels = inc.labels();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[3], labels[4]);
  EXPECT_EQ(inc.component_count(), 4u);
}

TEST(UnionFind, GrowAddsIsolatedElements) {
  graph::UnionFind uf(2);
  uf.unite(0, 1);
  uf.grow(4);
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_THROW(uf.grow(1), std::invalid_argument);
}

// --- Pipeline lazy regroup -------------------------------------------------

TEST(PipelineIncrementalRegroup, MatchesFullRegroupUnderChurnAndDecay) {
  pipeline::ShardOptions incremental_options;
  incremental_options.candidates.mode = candidate::Mode::kOn;
  incremental_options.decay = 0.9;  // force evictions → edge removals
  incremental_options.influence_floor = 1e-2;
  pipeline::ShardOptions full_options = incremental_options;
  full_options.candidates.mode = candidate::Mode::kOff;

  const std::size_t kTasks = 12;
  pipeline::SnapshotCell cell_a, cell_b;
  pipeline::ShardCounters counters_a, counters_b;
  pipeline::CampaignState incremental(0, kTasks, &incremental_options,
                                      &cell_a, &counters_a);
  pipeline::CampaignState full(0, kTasks, &full_options, &cell_b,
                               &counters_b);

  std::mt19937_64 rng(77);
  std::uniform_int_distribution<std::size_t> account(0, 39);
  std::uniform_int_distribution<std::size_t> task(0, kTasks - 1);
  std::normal_distribution<double> value(-60.0, 3.0);
  for (int step = 0; step < 600; ++step) {
    pipeline::Report report;
    report.campaign = 0;
    report.account = account(rng);
    report.task = task(rng);
    report.value = value(rng);
    report.timestamp_hours = step * 0.01;
    incremental.apply(report);
    full.apply(report);
    if (step % 20 == 19) {
      incremental.evict_stale();
      full.evict_stale();
    }
    if (step % 5 == 4) {
      EXPECT_EQ(incremental.grouping().labels(), full.grouping().labels())
          << "step " << step;
    }
  }
}

TEST(PipelineIncrementalRegroup, EscapeHatchForcesFullPath) {
  ScopedEnv env("SYBILTD_CANDIDATES", "off");
  pipeline::ShardOptions options;
  options.candidates.mode = candidate::Mode::kOn;  // env wins
  pipeline::SnapshotCell cell;
  pipeline::ShardCounters counters;
  pipeline::CampaignState state(0, 4, &options, &cell, &counters);
  pipeline::Report report;
  report.campaign = 0;
  report.account = 0;
  report.task = 1;
  report.value = 1.0;
  state.apply(report);
  // With the env off, grouping uses the historical full-rebuild path; the
  // result is the same partition either way — this pins the routing.
  EXPECT_EQ(state.grouping().group_count(), 1u);
}

// --- Escape hatch ----------------------------------------------------------

TEST(EscapeHatch, OffReproducesPrePrGroupingBitIdentically) {
  const auto input = scenario_input(40, 4, 5, 20, 2);
  // Reference: the all-pairs paths, taken because the default kAuto policy
  // stays off below min_accounts — this is the pre-candidate behavior.
  const auto agtr_ref = core::AgTr().group(input);
  core::AgTrOptions tr_pruned;
  tr_pruned.prune_with_lower_bound = true;
  const auto agtr_pruned_ref = core::AgTr(tr_pruned).group(input);
  const auto agts_ref = core::AgTs().group(input);

  ScopedEnv env("SYBILTD_CANDIDATES", "off");
  // Even with the policy forced on, the env escape hatch must route every
  // method through the legacy code and reproduce it bit for bit.
  core::AgTrOptions tr_on;
  tr_on.candidates.mode = candidate::Mode::kOn;
  core::AgTrStats tr_stats;
  const auto agtr_off =
      core::AgTr(tr_on).group_with_stats(input, &tr_stats);
  EXPECT_EQ(tr_stats.blocked, 0u);
  EXPECT_EQ(tr_stats.candidates, tr_stats.pairs);
  EXPECT_EQ(agtr_ref.labels(), agtr_off.labels());
  EXPECT_EQ(agtr_ref.groups(), agtr_off.groups());

  core::AgTrOptions tr_on_pruned = tr_on;
  tr_on_pruned.prune_with_lower_bound = true;
  const auto agtr_off_pruned = core::AgTr(tr_on_pruned).group(input);
  EXPECT_EQ(agtr_pruned_ref.labels(), agtr_off_pruned.labels());
  EXPECT_EQ(agtr_pruned_ref.groups(), agtr_off_pruned.groups());

  core::AgTsOptions ts_on;
  ts_on.candidates.mode = candidate::Mode::kOn;
  core::AgTsStats ts_stats;
  const auto agts_off =
      core::AgTs(ts_on).group_with_stats(input, &ts_stats);
  EXPECT_FALSE(ts_stats.sparse);
  EXPECT_EQ(agts_ref.labels(), agts_off.labels());
  EXPECT_EQ(agts_ref.groups(), agts_off.groups());
}

}  // namespace
}  // namespace sybiltd
