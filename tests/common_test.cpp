// Unit tests for src/common: RNG determinism and distributions, running
// moments, batch statistics, matrices, and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/linalg.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace sybiltd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  Rng parent2(7);
  Rng child2 = parent2.split();
  EXPECT_EQ(child.next(), child2.next());  // deterministic split
  // Child and parent streams differ.
  Rng p(9);
  Rng c = p.split();
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (p.next() == c.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(Rng, NormalMomentsReasonable) {
  Rng rng(8);
  RunningMoments m;
  for (int i = 0; i < 20000; ++i) m.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(m.mean(), 3.0, 0.1);
  EXPECT_NEAR(m.stddev(), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Rng rng(10);
  double total = 0.0;
  for (int i = 0; i < 20000; ++i) total += rng.exponential(2.0);
  EXPECT_NEAR(total / 20000.0, 0.5, 0.03);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  const auto sample = rng.sample_without_replacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::size_t s : sample) EXPECT_LT(s, 20u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RunningMoments, MatchesBatchFormulas) {
  const std::vector<double> xs{1.0, 2.0, 2.0, 3.0, 7.0, -1.0};
  RunningMoments m;
  for (double x : xs) m.add(x);
  EXPECT_NEAR(m.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(m.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(m.min(), -1.0, 1e-12);
  EXPECT_NEAR(m.max(), 7.0, 1e-12);
}

TEST(RunningMoments, MergeEqualsSequential) {
  Rng rng(13);
  RunningMoments all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(1.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.skewness(), all.skewness(), 1e-9);
  EXPECT_NEAR(a.excess_kurtosis(), all.excess_kurtosis(), 1e-9);
}

TEST(Stats, SkewnessSignsMakeSense) {
  // Right-tailed data has positive skew.
  const std::vector<double> right{1, 1, 1, 2, 2, 10};
  EXPECT_GT(skewness(right), 0.0);
  const std::vector<double> left{-10, -2, -2, -1, -1, -1};
  EXPECT_LT(skewness(left), 0.0);
  const std::vector<double> sym{-1, 0, 1};
  EXPECT_NEAR(skewness(sym), 0.0, 1e-12);
}

TEST(Stats, KurtosisOfUniformIsNegative) {
  std::vector<double> xs;
  for (int i = 0; i <= 1000; ++i) xs.push_back(i / 1000.0);
  EXPECT_LT(excess_kurtosis(xs), 0.0);  // uniform: -1.2
  EXPECT_NEAR(excess_kurtosis(xs), -1.2, 0.05);
}

TEST(Stats, QuantileAndMedian) {
  const std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_NEAR(median(xs), 3.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.25), 2.0, 1e-12);
  EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, ZeroCrossingRate) {
  const std::vector<double> alternating{1, -1, 1, -1, 1};
  EXPECT_NEAR(zero_crossing_rate(alternating), 1.0, 1e-12);
  const std::vector<double> constant{2, 2, 2};
  EXPECT_NEAR(zero_crossing_rate(constant), 0.0, 1e-12);
}

TEST(Stats, NonNegativeCount) {
  const std::vector<double> xs{-1.0, 0.0, 2.0, -0.5, 3.0};
  EXPECT_EQ(non_negative_count(xs), 3u);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, zs), -1.0, 1e-12);
  const std::vector<double> constant{5, 5, 5, 5};
  EXPECT_NEAR(pearson_correlation(xs, constant), 0.0, 1e-12);
}

TEST(Stats, RootMeanSquare) {
  const std::vector<double> xs{3.0, -4.0};
  EXPECT_NEAR(root_mean_square(xs), std::sqrt(12.5), 1e-12);
}

TEST(Stats, TrimmedMeanDropsTails) {
  const std::vector<double> xs{1, 2, 3, 4, 100};
  EXPECT_NEAR(trimmed_mean(xs, 0.0), 22.0, 1e-12);
  EXPECT_NEAR(trimmed_mean(xs, 0.2), 3.0, 1e-12);  // drops 1 and 100
  EXPECT_THROW(trimmed_mean(xs, 0.5), std::invalid_argument);
  EXPECT_THROW(trimmed_mean({}, 0.1), std::invalid_argument);
  // Tiny sample with aggressive trim falls back to the median.
  const std::vector<double> pair{1.0, 9.0};
  EXPECT_NEAR(trimmed_mean(pair, 0.49), 5.0, 1e-12);
}

TEST(Stats, MedianAbsoluteDeviation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_NEAR(median_absolute_deviation(xs), 1.0, 1e-12);
  const std::vector<double> constant{7, 7, 7};
  EXPECT_NEAR(median_absolute_deviation(constant), 0.0, 1e-12);
}

TEST(Stats, HuberLocationRobustToOutliers) {
  // 9 values near 10, one wild outlier: Huber stays near 10 while the
  // mean is dragged.
  std::vector<double> xs{9.8, 10.1, 9.9, 10.2, 10.0,
                         9.7, 10.3, 10.0, 9.9,  500.0};
  const double huber = huber_location(xs);
  EXPECT_NEAR(huber, 10.0, 0.5);
  EXPECT_GT(mean(xs), 50.0);
  // On clean Gaussian-ish data it tracks the mean closely.
  const std::vector<double> clean{9.8, 10.1, 9.9, 10.2, 10.0};
  EXPECT_NEAR(huber_location(clean), mean(clean), 0.1);
  // Majority-identical data returns that value untouched.
  const std::vector<double> dup{5.0, 5.0, 5.0, 9.0};
  EXPECT_NEAR(huber_location(dup), 5.0, 1e-9);
  EXPECT_THROW(huber_location(xs, 0.0), std::invalid_argument);
}

TEST(Linalg, SolveSpdMatchesDirectInverse) {
  const Matrix a{{3, 1}, {1, 2}};
  const std::vector<double> b{5.0, 5.0};
  const auto x = solve_spd(a, b);
  // A x = b  =>  x = (1, 2).
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 6.0);
  EXPECT_THROW(m(2, 0), std::invalid_argument);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, TransposeAndProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
  Matrix t = a.transpose();
  EXPECT_EQ(t(0, 1), 3.0);
  EXPECT_THROW(a * Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplication) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, VectorMultiply) {
  Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v{1.0, 1.0};
  const auto out = a.multiply(v);
  EXPECT_EQ(out[0], 3.0);
  EXPECT_EQ(out[1], 7.0);
}

TEST(Matrix, ColumnMeansAndCentering) {
  Matrix a{{1, 10}, {3, 20}};
  const auto means = a.column_means();
  EXPECT_EQ(means[0], 2.0);
  EXPECT_EQ(means[1], 15.0);
  a.subtract_row_vector(means);
  EXPECT_EQ(a(0, 0), -1.0);
  EXPECT_EQ(a(1, 1), 5.0);
}

TEST(Matrix, FrobeniusDistance) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{0, 0}, {0, 0}};
  EXPECT_NEAR(a.distance_frobenius(b), std::sqrt(2.0), 1e-12);
}

TEST(TextTable, RendersAlignedTable) {
  TextTable t({"name", "v1", "v2"});
  t.add_row("row", {1.5, std::numeric_limits<double>::quiet_NaN()});
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("row"), std::string::npos);
  EXPECT_NE(rendered.find("1.50"), std::string::npos);
  EXPECT_NE(rendered.find(" x "), std::string::npos);
  EXPECT_THROW(t.add_row("bad", {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(TextTable, CsvOutput) {
  const std::string csv =
      to_csv({"a", "b"}, {{1.0, 2.0}, {3.0, 4.0}}, 1);
  EXPECT_NE(csv.find("a,b"), std::string::npos);
  EXPECT_NE(csv.find("1.0,2.0"), std::string::npos);
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    SYBILTD_CHECK(false, "context message");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace sybiltd
