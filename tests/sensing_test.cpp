// Tests for src/sensing: the device catalog, MEMS unit manufacturing,
// capture synthesis, and the fingerprint pipeline — including the core
// property AG-FP relies on: same-device captures are closer in feature
// space than cross-model captures.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/kmeans.h"
#include "ml/preprocess.h"
#include "sensing/device.h"
#include "sensing/fingerprint.h"
#include "sensing/imu_stream.h"

namespace sybiltd::sensing {
namespace {

TEST(DeviceCatalog, ContainsTableIvModels) {
  const auto& catalog = device_catalog();
  EXPECT_EQ(catalog.size(), 8u);
  for (const char* name :
       {"iPhone SE", "iPhone 6", "iPhone 6S", "iPhone 7", "iPhone X",
        "Nexus 6P", "LG G5", "Nexus 5"}) {
    EXPECT_NO_THROW(find_model(name)) << name;
  }
  EXPECT_THROW(find_model("Galaxy S9"), std::invalid_argument);
  EXPECT_EQ(find_model("LG G5").os, Os::kAndroid);
  EXPECT_EQ(find_model("iPhone X").os, Os::kIos);
}

TEST(Device, ManufactureIsDeterministicInSeed) {
  const auto& model = find_model("iPhone 7");
  Device a(model, 123), b(model, 123), c(model, 124);
  EXPECT_EQ(a.accelerometer().bias, b.accelerometer().bias);
  EXPECT_EQ(a.gyroscope().gain, b.gyroscope().gain);
  EXPECT_NE(a.accelerometer().bias, c.accelerometer().bias);
}

TEST(Device, UnitsStayNearModelNominal) {
  const auto& model = find_model("Nexus 5");
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Device d(model, seed);
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_NEAR(d.accelerometer().gain[axis],
                  model.accelerometer.gain_nominal[axis], 1e-2);
      EXPECT_NEAR(d.gyroscope().bias[axis],
                  model.gyroscope.bias_nominal[axis], 1e-2);
    }
  }
}

TEST(SensorUnit, QuantizationSnapsToGrid) {
  SensorSpec spec;
  spec.quantization_step = 0.5;
  Rng rng(1);
  const SensorUnit unit = SensorUnit::manufacture(spec, rng);
  Rng noise(2);
  const Vec3 out = unit.measure({1.23, -0.74, 0.1}, 0.0, noise);
  for (double v : out) {
    EXPECT_NEAR(std::remainder(v, 0.5), 0.0, 1e-9);
  }
}

TEST(Capture, ProducesRequestedSampleCount) {
  Device d(find_model("iPhone 6"), 7);
  CaptureOptions opt;
  opt.duration_s = 6.0;
  opt.sample_rate_hz = 100.0;
  Rng rng(3);
  const ImuCapture cap = capture_imu(d, opt, rng);
  EXPECT_EQ(cap.accel.size(), 600u);
  EXPECT_EQ(cap.gyro.size(), 600u);
  EXPECT_EQ(cap.sample_rate_hz, 100.0);
}

TEST(Capture, RejectsDegenerateOptions) {
  Device d(find_model("iPhone 6"), 7);
  Rng rng(4);
  CaptureOptions opt;
  opt.duration_s = 0.0;
  EXPECT_THROW(capture_imu(d, opt, rng), std::invalid_argument);
  opt.duration_s = 0.01;
  opt.sample_rate_hz = 100.0;
  EXPECT_THROW(capture_imu(d, opt, rng), std::invalid_argument);
}

TEST(Capture, AccelMagnitudeNearGravity) {
  Device d(find_model("iPhone SE"), 11);
  Rng rng(5);
  const ImuCapture cap = capture_imu(d, {}, rng);
  const auto streams = to_streams(cap);
  double mean_mag = 0.0;
  for (double m : streams.accel_magnitude) mean_mag += m;
  mean_mag /= static_cast<double>(streams.accel_magnitude.size());
  EXPECT_NEAR(mean_mag, 9.80665, 0.5);
}

TEST(Fingerprint, StreamsAlignWithCapture) {
  Device d(find_model("LG G5"), 13);
  Rng rng(6);
  const ImuCapture cap = capture_imu(d, {}, rng);
  const auto streams = to_streams(cap);
  EXPECT_EQ(streams.accel_magnitude.size(), cap.accel.size());
  EXPECT_EQ(streams.gyro_x.size(), cap.gyro.size());
  // Magnitude identity on the first sample.
  const Vec3& a = cap.accel.front();
  EXPECT_NEAR(streams.accel_magnitude.front(),
              std::sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2]), 1e-12);
  EXPECT_EQ(streams.gyro_y[3], cap.gyro[3][1]);
}

TEST(Fingerprint, FeatureVectorHasExpectedDimension) {
  Device d(find_model("Nexus 6P"), 17);
  Rng rng(7);
  const auto fp = capture_fingerprint(d, {}, rng);
  EXPECT_EQ(fp.size(), kFingerprintDim);
  EXPECT_EQ(kFingerprintDim, 80u);
  for (double v : fp) EXPECT_TRUE(std::isfinite(v));
}

TEST(Fingerprint, SameDeviceClosterThanCrossModel) {
  // The property AG-FP depends on: intra-device distance (across captures)
  // is smaller than cross-model distance.
  Device iphone(find_model("iPhone 7"), 21);
  Device nexus(find_model("Nexus 5"), 22);
  Rng rng(8);
  std::vector<std::vector<double>> fps;
  for (int c = 0; c < 3; ++c) {
    Rng r = rng.split();
    fps.push_back(capture_fingerprint(iphone, {}, r));
  }
  for (int c = 0; c < 3; ++c) {
    Rng r = rng.split();
    fps.push_back(capture_fingerprint(nexus, {}, r));
  }
  // Standardize jointly, then compare mean intra vs inter distances.
  const Matrix z = ml::standardize(Matrix::from_rows(fps));
  auto dist = [&](std::size_t i, std::size_t j) {
    return ml::squared_distance(z.row(i), z.row(j));
  };
  double intra = (dist(0, 1) + dist(0, 2) + dist(1, 2) + dist(3, 4) +
                  dist(3, 5) + dist(4, 5)) /
                 6.0;
  double inter = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 3; j < 6; ++j) inter += dist(i, j);
  }
  inter /= 9.0;
  EXPECT_LT(intra * 3.0, inter);
}

TEST(Fingerprint, SameModelUnitsCloserThanCrossModel) {
  // Two units of one model sit near each other relative to other models —
  // the structure of the paper's Fig. 8.
  Device a(find_model("iPhone 6S"), 31);
  Device b(find_model("iPhone 6S"), 32);
  Device c(find_model("LG G5"), 33);
  Rng rng(9);
  std::vector<std::vector<double>> fps;
  for (Device* d : {&a, &b, &c}) {
    Rng r = rng.split();
    fps.push_back(capture_fingerprint(*d, {}, r));
  }
  const Matrix z = ml::standardize(Matrix::from_rows(fps));
  const double same_model = ml::squared_distance(z.row(0), z.row(1));
  const double cross_model_a = ml::squared_distance(z.row(0), z.row(2));
  const double cross_model_b = ml::squared_distance(z.row(1), z.row(2));
  EXPECT_LT(same_model, cross_model_a);
  EXPECT_LT(same_model, cross_model_b);
}

TEST(Fingerprint, InstabilityIncreasesCaptureScatter) {
  Device d(find_model("iPhone X"), 41);
  auto scatter = [&](double instability) {
    CaptureOptions opt;
    opt.instability = instability;
    Rng rng(10);
    std::vector<std::vector<double>> fps;
    for (int c = 0; c < 4; ++c) {
      Rng r = rng.split();
      fps.push_back(capture_fingerprint(d, opt, r));
    }
    // Mean pairwise distance in raw feature space.
    double total = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i < fps.size(); ++i) {
      for (std::size_t j = i + 1; j < fps.size(); ++j) {
        double acc = 0.0;
        for (std::size_t f = 0; f < fps[i].size(); ++f) {
          const double diff = fps[i][f] - fps[j][f];
          acc += diff * diff;
        }
        total += std::sqrt(acc);
        ++pairs;
      }
    }
    return total / pairs;
  };
  EXPECT_LT(scatter(0.2), scatter(3.0));
}

TEST(SensorUnit, TemperatureShiftsBias) {
  SensorSpec spec;
  spec.temp_coefficient = 1e-2;
  Rng rng(50);
  const SensorUnit unit = SensorUnit::manufacture(spec, rng);
  Rng quiet_a(1), quiet_b(1);
  const Vec3 cold = unit.measure({0, 0, 0}, 0.0, quiet_a, 25.0);
  const Vec3 hot = unit.measure({0, 0, 0}, 0.0, quiet_b, 45.0);
  for (int axis = 0; axis < 3; ++axis) {
    EXPECT_NEAR(hot[axis] - cold[axis], 20.0 * unit.temp_coefficient, 1e-9);
  }
}

TEST(Fingerprint, TemperatureSpreadGrowsIntraDeviceScatter) {
  Device d(find_model("iPhone 6"), 71);
  auto scatter = [&](double temperature_delta) {
    Rng rng(51);
    std::vector<std::vector<double>> fps;
    for (int c = 0; c < 4; ++c) {
      sensing::CaptureOptions opt;
      opt.ambient_temperature_c = 25.0 + (c % 2 == 0 ? 0.0 : temperature_delta);
      Rng r = rng.split();
      fps.push_back(capture_fingerprint(d, opt, r));
    }
    double total = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i < fps.size(); ++i) {
      for (std::size_t j = i + 1; j < fps.size(); ++j) {
        double acc = 0.0;
        for (std::size_t f = 0; f < fps[i].size(); ++f) {
          const double diff = fps[i][f] - fps[j][f];
          acc += diff * diff;
        }
        total += std::sqrt(acc);
        ++pairs;
      }
    }
    return total / pairs;
  };
  EXPECT_LT(scatter(0.0), scatter(30.0));
}

TEST(Fingerprint, WindowedFeaturesMatchDimAndReduceScatter) {
  Device d(find_model("iPhone 7"), 81);
  Rng rng(52);
  auto scatter = [&](std::size_t windows) {
    Rng local(53);
    std::vector<std::vector<double>> fps;
    for (int c = 0; c < 5; ++c) {
      Rng r = local.split();
      const auto capture = capture_imu(d, {}, r);
      const auto streams = to_streams(capture);
      fps.push_back(windows == 0
                        ? fingerprint_features(streams)
                        : fingerprint_features_windowed(streams, windows));
      EXPECT_EQ(fps.back().size(), kFingerprintDim);
    }
    // Mean pairwise distance over the temporal max/min features (the
    // noisiest, most capture-dependent block).
    double total = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i < fps.size(); ++i) {
      for (std::size_t j = i + 1; j < fps.size(); ++j) {
        // feature 5 = t_max, 6 = t_min of the accel stream.
        total += std::abs(fps[i][5] - fps[j][5]) +
                 std::abs(fps[i][6] - fps[j][6]);
        ++pairs;
      }
    }
    return total / pairs;
  };
  // Averaging 3 windows shrinks the extrema scatter vs a single window.
  EXPECT_LT(scatter(3), scatter(0) + 1e-12);
}

TEST(Fingerprint, WindowedValidation) {
  Device d(find_model("iPhone 7"), 82);
  Rng rng(54);
  const auto streams = to_streams(capture_imu(d, {}, rng));
  EXPECT_THROW(fingerprint_features_windowed(streams, 0),
               std::invalid_argument);
  EXPECT_THROW(fingerprint_features_windowed(streams, 1000),
               std::invalid_argument);
  // One window reduces to the plain featurizer.
  EXPECT_EQ(fingerprint_features_windowed(streams, 1),
            fingerprint_features(streams));
}

TEST(Fingerprint, MatrixStacksRows) {
  const std::vector<std::vector<double>> fps{{1, 2}, {3, 4}, {5, 6}};
  const Matrix m = fingerprint_matrix(fps);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(2, 1), 6.0);
}

}  // namespace
}  // namespace sybiltd::sensing
