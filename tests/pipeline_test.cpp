// Tests for the streaming ingestion pipeline: the bounded MPMC report
// queue, the sharded campaign engine, and the equivalence of a drained
// engine with the one-shot batch framework.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/ag_ts.h"
#include "core/framework.h"
#include "pipeline/engine.h"
#include "pipeline/report_queue.h"

namespace sybiltd::pipeline {
namespace {

using std::chrono::milliseconds;

// --- ReportQueue -----------------------------------------------------------

TEST(ReportQueue, FifoOrderWithinCapacity) {
  ReportQueue queue(8);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(queue.push({0, k, 0, double(k), 0.0},
                         BackpressurePolicy::kBlock),
              PushResult::kOk);
  }
  EXPECT_EQ(queue.size(), 5u);
  Report out;
  for (std::size_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.account, k);
    EXPECT_DOUBLE_EQ(out.value, double(k));
  }
  EXPECT_TRUE(queue.empty());
}

TEST(ReportQueue, DropAndRejectPoliciesWhenFull) {
  ReportQueue queue(2);
  EXPECT_EQ(queue.push({}, BackpressurePolicy::kBlock), PushResult::kOk);
  EXPECT_EQ(queue.push({}, BackpressurePolicy::kBlock), PushResult::kOk);
  EXPECT_EQ(queue.push({}, BackpressurePolicy::kDropNewest),
            PushResult::kDropped);
  EXPECT_EQ(queue.push({}, BackpressurePolicy::kReject),
            PushResult::kRejected);
  EXPECT_EQ(queue.size(), 2u);  // the full ring was untouched
}

TEST(ReportQueueBatchLock, InsertsRunAtomicallyAndUpdatesWatermark) {
  ReportQueue queue(8);
  {
    ReportQueue::BatchLock lock(queue);
    EXPECT_FALSE(lock.closed());
    EXPECT_EQ(lock.free(), 8u);
    for (std::size_t k = 0; k < 3; ++k) {
      lock.push({0, k, 0, double(k), 0.0});
    }
    EXPECT_EQ(lock.free(), 5u);
  }
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.high_watermark(), 3u);
  Report out;
  for (std::size_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.account, k);  // FIFO order preserved through the run
  }
}

TEST(ReportQueueBatchLock, ReportsFreeSpaceAndClosedState) {
  ReportQueue queue(2);
  EXPECT_EQ(queue.push({}, BackpressurePolicy::kBlock), PushResult::kOk);
  {
    ReportQueue::BatchLock lock(queue);
    EXPECT_EQ(lock.free(), 1u);
    lock.push({});
    EXPECT_EQ(lock.free(), 0u);
  }
  EXPECT_EQ(queue.size(), 2u);
  queue.close();
  ReportQueue::BatchLock lock(queue);
  EXPECT_TRUE(lock.closed());
}

TEST(ReportQueue, BlockingPushWaitsForSpace) {
  ReportQueue queue(2);
  queue.push({0, 0, 0, 0.0, 0.0}, BackpressurePolicy::kBlock);
  queue.push({0, 1, 0, 0.0, 0.0}, BackpressurePolicy::kBlock);
  std::thread producer([&] {
    EXPECT_EQ(queue.push({0, 2, 0, 0.0, 0.0}, BackpressurePolicy::kBlock),
              PushResult::kOk);
  });
  Report out;
  ASSERT_TRUE(queue.pop(out));  // frees the slot the producer is waiting on
  producer.join();
  EXPECT_EQ(queue.size(), 2u);
}

TEST(ReportQueue, CloseUnblocksProducersAndConsumers) {
  ReportQueue queue(1);
  queue.push({}, BackpressurePolicy::kBlock);
  std::thread producer([&] {
    // Blocks on the full ring (no consumer is draining) until close()
    // fails the push from underneath.
    EXPECT_EQ(queue.push({}, BackpressurePolicy::kBlock), PushResult::kClosed);
  });
  std::this_thread::sleep_for(milliseconds(20));
  queue.close();
  producer.join();

  // The pre-close item is still delivered; afterwards pop() reports
  // closed-and-drained and further pushes fail immediately.
  std::thread consumer([&] {
    Report out;
    std::size_t drained = 0;
    while (queue.pop(out)) ++drained;
    EXPECT_EQ(drained, 1u);
  });
  consumer.join();
  EXPECT_EQ(queue.push({}, BackpressurePolicy::kBlock), PushResult::kClosed);
}

TEST(ReportQueue, MultiProducerMultiConsumerLosesNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 5000;
  ReportQueue queue(64);
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> value_sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      std::vector<Report> batch;
      for (;;) {
        batch.clear();
        if (queue.pop_batch(batch, 128, milliseconds(50)) == 0) {
          if (queue.closed() && queue.empty()) return;
          continue;
        }
        for (const Report& r : batch) {
          value_sum.fetch_add(r.account, std::memory_order_relaxed);
        }
        consumed.fetch_add(batch.size(), std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t k = 0; k < kPerProducer; ++k) {
        const std::size_t tag = p * kPerProducer + k;
        ASSERT_EQ(queue.push({0, tag, 0, 0.0, 0.0},
                             BackpressurePolicy::kBlock),
                  PushResult::kOk);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  const std::uint64_t total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  // Sum of all tags: every report arrived exactly once.
  EXPECT_EQ(value_sum.load(), total * (total - 1) / 2);
}

// --- Engine helpers --------------------------------------------------------

// A campaign whose accounts form clone blocks: account a performs the
// contiguous task block (a % blocks), so same-block accounts share their
// whole task set (grouped by AG-TS) and distinct blocks never connect.
std::vector<Report> block_campaign_reports(std::size_t campaign,
                                           std::size_t accounts,
                                           std::size_t tasks,
                                           std::size_t blocks, Rng& rng) {
  const std::size_t span = tasks / blocks;
  std::vector<Report> reports;
  reports.reserve(accounts * span);
  for (std::size_t a = 0; a < accounts; ++a) {
    const std::size_t base = (a % blocks) * span;
    for (std::size_t t = base; t < base + span; ++t) {
      reports.push_back({campaign, a, t, rng.uniform(-90.0, -50.0), 0.0});
    }
  }
  return reports;
}

void run_producers(CampaignEngine& engine, const std::vector<Report>& reports,
                   std::size_t producer_count) {
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < producer_count; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t k = p; k < reports.size(); k += producer_count) {
        ASSERT_EQ(engine.submit(reports[k]), PushResult::kOk);
      }
    });
  }
  for (auto& t : producers) t.join();
}

// --- Engine: lossless multi-producer ingest (acceptance a) -----------------

TEST(CampaignEngine, MultiProducerIngestLosesNothing) {
  constexpr std::size_t kCampaigns = 4;
  constexpr std::size_t kAccounts = 500;
  constexpr std::size_t kTasks = 200;
  constexpr std::size_t kBlocks = 4;
  constexpr std::size_t kProducers = 4;

  EngineOptions options;
  options.shard_count = 4;
  options.queue_capacity = 4096;
  options.max_batch = 512;
  CampaignEngine engine(options);
  for (std::size_t c = 0; c < kCampaigns; ++c) {
    ASSERT_EQ(engine.add_campaign(kTasks), c);
  }
  engine.start();

  Rng rng(11);
  std::vector<Report> reports;
  for (std::size_t c = 0; c < kCampaigns; ++c) {
    auto campaign_reports =
        block_campaign_reports(c, kAccounts, kTasks, kBlocks, rng);
    reports.insert(reports.end(), campaign_reports.begin(),
                   campaign_reports.end());
  }
  ASSERT_GE(reports.size(), 100000u);
  std::shuffle(reports.begin(), reports.end(), rng);

  run_producers(engine, reports, kProducers);
  engine.drain();

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.submitted, reports.size());
  EXPECT_EQ(counters.accepted, reports.size());
  EXPECT_EQ(counters.applied, reports.size());
  EXPECT_EQ(counters.dropped, 0u);
  EXPECT_EQ(counters.rejected, 0u);
  EXPECT_GT(counters.batches, 0u);

  const std::size_t per_campaign = kAccounts * (kTasks / kBlocks);
  std::size_t live_total = 0;
  for (std::size_t c = 0; c < kCampaigns; ++c) {
    const auto snap = engine.snapshot(c);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->applied_reports, per_campaign);
    EXPECT_EQ(snap->live_observations, per_campaign);
    EXPECT_EQ(snap->group_of.size(), kAccounts);
    EXPECT_EQ(snap->group_count, kBlocks);  // clone blocks found by AG-TS
    EXPECT_TRUE(snap->converged);
    live_total += snap->live_observations;
  }
  // Zero lost, zero duplicated: every accepted report is live exactly once.
  EXPECT_EQ(live_total, reports.size());
  engine.stop();
}

// --- Engine: drained state equals the batch framework (acceptance b) -------

TEST(CampaignEngine, DrainMatchesBatchFramework) {
  constexpr std::size_t kTasks = 12;
  Rng rng(23);

  // Ground-truth-ish task values plus two Sybil clone sets and legit users
  // with small distinct task subsets.
  std::vector<double> truth(kTasks);
  for (auto& t : truth) t = rng.uniform(-90.0, -50.0);

  core::FrameworkInput input;
  input.task_count = kTasks;
  auto add_account = [&](const std::vector<std::size_t>& tasks, double base,
                         double sigma) {
    core::AccountTrace trace;
    std::vector<std::size_t> sorted = tasks;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t t : sorted) {
      const double value =
          (base == 0.0 ? truth[t] : base) + rng.normal(0.0, sigma);
      trace.reports.push_back({t, value, 0.0});
    }
    input.accounts.push_back(std::move(trace));
  };
  // Sybil set 1: 3 clones over tasks 0..7 pushing -50.
  for (int s = 0; s < 3; ++s) {
    add_account({0, 1, 2, 3, 4, 5, 6, 7}, -50.0, 0.2);
  }
  // Sybil set 2: 2 clones over tasks 4..11 pushing -55.
  for (int s = 0; s < 2; ++s) {
    add_account({4, 5, 6, 7, 8, 9, 10, 11}, -55.0, 0.2);
  }
  // 8 legit accounts, three tasks each, honest noisy values.
  for (std::size_t u = 0; u < 8; ++u) {
    add_account({u % kTasks, (u + 3) % kTasks, (u + 6) % kTasks}, 0.0, 2.0);
  }

  std::vector<Report> reports;
  for (std::size_t a = 0; a < input.accounts.size(); ++a) {
    for (const auto& r : input.accounts[a].reports) {
      reports.push_back({0, a, r.task, r.value, r.timestamp_hours});
    }
  }
  std::shuffle(reports.begin(), reports.end(), rng);

  EngineOptions options;
  options.shard_count = 2;
  options.max_batch = 16;  // many micro-batches exercise the warm refine
  CampaignEngine engine(options);
  ASSERT_EQ(engine.add_campaign(kTasks), 0u);
  engine.start();
  run_producers(engine, reports, 3);
  engine.drain();
  const auto snap = engine.snapshot(0);
  engine.stop();

  const core::FrameworkOptions framework_options;  // engine default
  const core::FrameworkResult batch = core::run_framework(
      input, core::AgTs(core::AgTsOptions{.rho = 1.0}), framework_options);

  ASSERT_EQ(snap->truths.size(), batch.truths.size());
  for (std::size_t j = 0; j < kTasks; ++j) {
    ASSERT_FALSE(std::isnan(batch.truths[j]));
    EXPECT_NEAR(snap->truths[j], batch.truths[j], 1e-9) << "task " << j;
  }
  EXPECT_TRUE(snap->converged);
  EXPECT_EQ(snap->group_of, batch.grouping.labels());
  ASSERT_EQ(snap->group_weights.size(), batch.group_weights.size());
  for (std::size_t k = 0; k < batch.group_weights.size(); ++k) {
    EXPECT_NEAR(snap->group_weights[k], batch.group_weights[k], 1e-9);
  }

  // The incrementally maintained pair counts reproduce the full Eq. (6)
  // affinity matrix.
  const CampaignState* state = engine.debug_state(0);
  ASSERT_NE(state, nullptr);
  const auto incremental = state->affinity_matrix();
  const auto reference = core::AgTs::affinity_matrix(input);
  ASSERT_EQ(incremental.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    for (std::size_t j = 0; j < reference.size(); ++j) {
      EXPECT_DOUBLE_EQ(incremental[i][j], reference[i][j])
          << "pair " << i << "," << j;
    }
  }
}

// --- Engine: snapshots stay fresh without drain ----------------------------

TEST(CampaignEngine, SnapshotsAreFreshMidStream) {
  EngineOptions options;
  options.shard_count = 1;
  options.max_batch = 8;
  CampaignEngine engine(options);
  engine.add_campaign(4);
  engine.start();

  const auto initial = engine.snapshot(0);
  ASSERT_NE(initial, nullptr);
  EXPECT_EQ(initial->version, 0u);
  EXPECT_TRUE(std::isnan(initial->truths[0]));

  Rng rng(5);
  std::size_t submitted = 0;
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t t = 0; t < 4; ++t) {
      engine.submit({0, a, t, -70.0 + rng.normal(0.0, 1.0), 0.0});
      ++submitted;
    }
  }
  // No drain: poll until the worker has caught up and published.
  std::shared_ptr<const CampaignSnapshot> snap;
  for (int tries = 0; tries < 1000; ++tries) {
    snap = engine.snapshot(0);
    if (snap->applied_reports == submitted) break;
    std::this_thread::sleep_for(milliseconds(2));
  }
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->applied_reports, submitted);
  EXPECT_GT(snap->version, 0u);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_FALSE(std::isnan(snap->truths[t]));
    EXPECT_NEAR(snap->truths[t], -70.0, 3.0);
  }
  engine.stop();
}

// --- Engine: decay evicts abandoned observations ---------------------------

TEST(CampaignEngine, DecayEvictsAbandonedAccounts) {
  EngineOptions options;
  options.shard_count = 1;
  options.shard.decay = 0.9;
  options.shard.influence_floor = 1e-3;  // horizon ≈ 66 arrival steps
  CampaignEngine engine(options);
  engine.add_campaign(5);
  engine.start();
  // Ten accounts, each active for 100 consecutive arrivals then silent.
  for (std::size_t r = 0; r < 1000; ++r) {
    engine.submit({0, r / 100, r % 5, -70.0, 0.0});
  }
  engine.drain();
  const auto snap = engine.snapshot(0);
  // Only the last account's five observations are inside the horizon.
  EXPECT_EQ(snap->live_observations, 5u);
  EXPECT_EQ(snap->group_of.size(), 10u);  // accounts stay known
  EXPECT_EQ(engine.counters().evictions, 45u);  // 9 silent accounts × 5 tasks
  engine.stop();
}

// --- Engine: argument validation -------------------------------------------

TEST(CampaignEngine, ValidatesArguments) {
  {
    EngineOptions bad;
    bad.shard_count = 0;
    EXPECT_THROW(CampaignEngine{bad}, std::invalid_argument);
  }
  {
    EngineOptions bad;
    bad.shard.decay = 0.0;
    EXPECT_THROW(CampaignEngine{bad}, std::invalid_argument);
  }
  CampaignEngine engine;
  EXPECT_THROW(engine.add_campaign(0), std::invalid_argument);
  engine.add_campaign(3);
  EXPECT_THROW(engine.submit({0, 0, 0, -70.0, 0.0}),
               std::invalid_argument);  // not started
  engine.start();
  // Live registration is supported (see AddCampaignWhileRunning), but the
  // task count is still validated.
  EXPECT_THROW(engine.add_campaign(0), std::invalid_argument);
  EXPECT_THROW(engine.submit({1, 0, 0, -70.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(engine.submit({0, 0, 3, -70.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(engine.submit({0, 0, 0, std::nan(""), 0.0}),
               std::invalid_argument);
  engine.stop();
  EXPECT_THROW(engine.drain(), std::invalid_argument);
}

// --- Engine: concurrent producers + readers (the TSan stress target) -------

TEST(CampaignEngine, StressConcurrentProducersAndReaders) {
  constexpr std::size_t kCampaigns = 4;
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 5000;
  EngineOptions options;
  options.shard_count = 2;
  options.queue_capacity = 256;
  options.max_batch = 64;
  CampaignEngine engine(options);
  for (std::size_t c = 0; c < kCampaigns; ++c) engine.add_campaign(20);
  engine.start();

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      double sink = 0.0;
      std::uint64_t reads = 0;
      while (!done.load(std::memory_order_acquire)) {
        for (std::size_t c = 0; c < kCampaigns; ++c) {
          const auto snap = engine.snapshot(c);
          for (double t : snap->truths) {
            if (!std::isnan(t)) sink += t;
          }
          ++reads;
        }
      }
      EXPECT_GT(reads, 0u);
      (void)sink;
    });
  }

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(100 + p);
      for (std::size_t k = 0; k < kPerProducer; ++k) {
        // Random pairs: plenty of upserts exercising last-write-wins.
        const Report report{rng.uniform_index(kCampaigns),
                            rng.uniform_index(40), rng.uniform_index(20),
                            rng.uniform(-90.0, -50.0), 0.0};
        ASSERT_EQ(engine.submit(report), PushResult::kOk);
      }
    });
  }
  for (auto& t : producers) t.join();
  engine.drain();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.accepted, kProducers * kPerProducer);
  EXPECT_EQ(counters.applied, counters.accepted);
  std::size_t live = 0;
  for (std::size_t c = 0; c < kCampaigns; ++c) {
    live += engine.snapshot(c)->live_observations;
  }
  EXPECT_LE(live, kCampaigns * 40 * 20);  // distinct pairs only
  EXPECT_GT(live, 0u);
  engine.stop();
}

// --- Engine: live campaign registration ------------------------------------

TEST(CampaignEngine, AddCampaignWhileRunning) {
  EngineOptions options;
  options.shard_count = 2;
  options.max_batch = 8;
  CampaignEngine engine(options);
  const std::size_t first = engine.add_campaign(3);
  engine.start();

  // Submissions against a not-yet-registered id are refused, not lost.
  EXPECT_EQ(engine.try_submit({first + 1, 0, 0, 1.0, 0.0}),
            SubmitStatus::kUnknownCampaign);

  // Register on the running engine: readers immediately see the version-0
  // snapshot, and reports submitted right after registration land.
  const std::size_t second = engine.add_campaign(5);
  EXPECT_EQ(second, first + 1);
  EXPECT_EQ(engine.campaign_task_count(second), 5u);
  const auto empty = engine.snapshot(second);
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->version, 0u);
  EXPECT_TRUE(std::isnan(empty->truths[0]));

  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_EQ(engine.submit({second, a, a % 5, -60.0 + double(a), 0.0}),
              PushResult::kOk);
    EXPECT_EQ(engine.submit({first, a, a % 3, -70.0, 0.0}), PushResult::kOk);
  }
  engine.drain();
  const auto snap = engine.snapshot(second);
  EXPECT_EQ(snap->applied_reports, 4u);
  EXPECT_TRUE(snap->converged);
  EXPECT_EQ(engine.snapshot(first)->applied_reports, 4u);
  EXPECT_EQ(engine.campaign_count(), 2u);
  engine.stop();
}

// Hammer registration from one thread while another streams reports to the
// already-registered campaigns: every accepted report must still be applied
// exactly once and every new campaign must become immediately usable.
TEST(CampaignEngine, ConcurrentRegistrationAndIngestion) {
  EngineOptions options;
  options.shard_count = 2;
  options.max_batch = 16;
  CampaignEngine engine(options);
  engine.add_campaign(4);
  engine.start();

  std::atomic<std::size_t> registered{1};
  std::thread registrar([&] {
    for (int k = 0; k < 12; ++k) {
      engine.add_campaign(4);
      registered.fetch_add(1);
      std::this_thread::sleep_for(milliseconds(1));
    }
  });
  std::uint64_t sent = 0;
  Rng rng(11);
  for (int round = 0; round < 400; ++round) {
    const std::size_t visible = registered.load();
    const std::size_t campaign = rng.uniform_index(visible);
    EXPECT_EQ(engine.submit({campaign, rng.uniform_index(6),
                             rng.uniform_index(4), -60.0, 0.0}),
              PushResult::kOk);
    ++sent;
  }
  registrar.join();
  engine.drain();
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.accepted, sent);
  EXPECT_EQ(counters.applied, sent);
  std::uint64_t applied = 0;
  for (std::size_t c = 0; c < engine.campaign_count(); ++c) {
    applied += engine.snapshot(c)->applied_reports;
  }
  EXPECT_EQ(applied, sent);
  engine.stop();
}

// --- Engine: repeated drains are supported ---------------------------------

TEST(CampaignEngine, RepeatedDrainsSeeMonotoneState) {
  EngineOptions options;
  options.shard_count = 1;
  CampaignEngine engine(options);
  engine.add_campaign(3);
  engine.start();
  Rng rng(7);
  std::uint64_t sent = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t a = 0; a < 4; ++a) {
      for (std::size_t t = 0; t < 3; ++t) {
        engine.submit({0, a, t, -60.0 + rng.normal(0.0, 1.0), 0.0});
        ++sent;
      }
    }
    engine.drain();
    const auto snap = engine.snapshot(0);
    EXPECT_EQ(snap->applied_reports, sent);
    EXPECT_TRUE(snap->converged);
  }
  engine.stop();
}

// --- try_submit_batch: equivalence with a per-report loop -------------------

// The oracle try_submit_batch must match: call try_submit per report and
// stop at the first non-kAccepted result.
SubmitBatchResult submit_loop(CampaignEngine& engine,
                              const std::vector<Report>& reports) {
  SubmitBatchResult result;
  for (const Report& report : reports) {
    const SubmitStatus status = engine.try_submit(report);
    if (status != SubmitStatus::kAccepted) {
      result.status = status;
      return result;
    }
    ++result.accepted;
  }
  return result;
}

// Run the same batch through one engine's try_submit_batch and a twin
// engine's per-report loop; prefix, status, and every counter must agree.
void expect_batch_matches_loop(const std::vector<Report>& reports) {
  EngineOptions options;
  options.shard_count = 3;
  CampaignEngine batch_engine(options);
  CampaignEngine loop_engine(options);
  for (CampaignEngine* engine : {&batch_engine, &loop_engine}) {
    for (int c = 0; c < 3; ++c) engine->add_campaign(4);
    engine->start();
  }
  const SubmitBatchResult batch = batch_engine.try_submit_batch(reports);
  const SubmitBatchResult loop = submit_loop(loop_engine, reports);
  EXPECT_EQ(batch.accepted, loop.accepted);
  EXPECT_EQ(batch.status, loop.status);
  batch_engine.drain();
  loop_engine.drain();
  const EngineCounters bc = batch_engine.counters();
  const EngineCounters lc = loop_engine.counters();
  EXPECT_EQ(bc.submitted, lc.submitted);
  EXPECT_EQ(bc.accepted, lc.accepted);
  EXPECT_EQ(bc.rejected, lc.rejected);
  EXPECT_EQ(bc.applied, lc.applied);
  EXPECT_EQ(bc.accepted, bc.applied);  // every enqueued report was applied
  batch_engine.stop();
  loop_engine.stop();
}

TEST(TrySubmitBatch, MatchesPerReportLoopAcrossValidationStops) {
  // All valid, spanning all three shards.
  expect_batch_matches_loop({{0, 0, 0, 1.0, 0.0},
                             {1, 0, 1, 2.0, 0.0},
                             {2, 0, 2, 3.0, 0.0},
                             {0, 1, 3, 4.0, 0.0}});
  // Unknown campaign mid-batch: the prefix before it is still enqueued.
  expect_batch_matches_loop(
      {{0, 0, 0, 1.0, 0.0}, {9, 0, 0, 2.0, 0.0}, {1, 0, 0, 3.0, 0.0}});
  // Invalid task on the first report: empty prefix, nothing enqueued.
  expect_batch_matches_loop({{0, 0, 99, 1.0, 0.0}, {0, 0, 0, 2.0, 0.0}});
  // NaN value mid-batch.
  expect_batch_matches_loop({{1, 0, 0, 1.0, 0.0},
                             {2, 0, 1, std::nan(""), 0.0},
                             {0, 0, 0, 3.0, 0.0}});
}

TEST(TrySubmitBatch, EmptyBatchAndNotRunning) {
  CampaignEngine engine;
  engine.add_campaign(2);
  std::vector<Report> reports{{0, 0, 0, 1.0, 0.0}};
  const SubmitBatchResult before = engine.try_submit_batch(reports);
  EXPECT_EQ(before.accepted, 0u);
  EXPECT_EQ(before.status, SubmitStatus::kNotRunning);
  engine.start();
  const SubmitBatchResult empty = engine.try_submit_batch({});
  EXPECT_EQ(empty.accepted, 0u);
  EXPECT_EQ(empty.status, SubmitStatus::kAccepted);
  engine.stop();
}

// Deterministic queue-full coverage: shrink the global pool to one worker
// and park it, so no shard chain can pop while the batch lands.  Both the
// batch engine and the loop oracle hit the same frozen queues.
TEST(TrySubmitBatch, QueueFullStopsAtCleanPrefixAcrossShards) {
  ThreadPool::set_global_concurrency(1);
  {
    EngineOptions options;
    options.shard_count = 2;
    options.queue_capacity = 2;
    CampaignEngine batch_engine(options);
    CampaignEngine loop_engine(options);
    for (CampaignEngine* engine : {&batch_engine, &loop_engine}) {
      for (int c = 0; c < 2; ++c) engine->add_campaign(2);
      engine->start();
    }
    std::atomic<bool> blocker_running{false};
    std::atomic<bool> release{false};
    std::mutex blocker_mutex;
    std::condition_variable blocker_cv;
    ThreadPool::global().submit([&] {
      blocker_running.store(true);
      std::unique_lock<std::mutex> lock(blocker_mutex);
      blocker_cv.wait(lock, [&] { return release.load(); });
    });
    while (!blocker_running.load()) std::this_thread::yield();

    // Campaigns 0/1 land on shards 0/1; each shard holds 2.  The batch
    // interleaves shards so the stop lands mid-batch on shard 0: reports
    // 0,2 fill shard 0, report 1 goes to shard 1, report 4 (shard 0 again)
    // finds no budget — accepted prefix is exactly 4.
    const std::vector<Report> reports{{0, 0, 0, 1.0, 0.0},
                                      {1, 0, 0, 2.0, 0.0},
                                      {0, 1, 1, 3.0, 0.0},
                                      {1, 1, 1, 4.0, 0.0},
                                      {0, 2, 0, 5.0, 0.0},
                                      {1, 2, 0, 6.0, 0.0}};
    const SubmitBatchResult batch = batch_engine.try_submit_batch(reports);
    const SubmitBatchResult loop = submit_loop(loop_engine, reports);
    EXPECT_EQ(batch.accepted, 4u);
    EXPECT_EQ(batch.status, SubmitStatus::kQueueFull);
    EXPECT_EQ(batch.accepted, loop.accepted);
    EXPECT_EQ(batch.status, loop.status);
    const EngineCounters bc = batch_engine.counters();
    const EngineCounters lc = loop_engine.counters();
    // 4 accepted plus the one report that reached the queue and was turned
    // away; the rejection is charged to the stopping report's shard.
    EXPECT_EQ(bc.submitted, 5u);
    EXPECT_EQ(bc.submitted, lc.submitted);
    EXPECT_EQ(bc.rejected, 1u);
    EXPECT_EQ(bc.rejected, lc.rejected);
    EXPECT_EQ(bc.shards[0].rejected, 1u);

    {
      std::lock_guard<std::mutex> lock(blocker_mutex);
      release.store(true);
    }
    blocker_cv.notify_one();
    batch_engine.drain();
    loop_engine.drain();
    EXPECT_EQ(batch_engine.counters().applied, 4u);
    EXPECT_EQ(loop_engine.counters().applied, 4u);
    batch_engine.stop();
    loop_engine.stop();
  }
  ThreadPool::set_global_concurrency(ThreadPool::configured_concurrency());
}

}  // namespace
}  // namespace sybiltd::pipeline
