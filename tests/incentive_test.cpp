// Tests for the incentive substrate: the greedy budgeted coverage auction,
// its truthfulness properties, and participant selection on campaigns —
// including the paper's remark that incentive selection alleviates
// AG-TS/AG-TR false positives among similar legitimate users.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/ag_tr.h"
#include "eval/adapters.h"
#include "incentive/selection.h"
#include "ml/clustering_metrics.h"

namespace sybiltd::incentive {
namespace {

Bid make_bid(std::size_t user, double cost,
             std::initializer_list<std::size_t> tasks) {
  return {user, cost, std::vector<std::size_t>(tasks)};
}

TEST(Auction, SelectsHighValuePerCostFirst) {
  // Two bidders covering disjoint tasks; cheap one first, both fit.
  const std::vector<Bid> bids = {make_bid(0, 2.0, {0, 1}),
                                 make_bid(1, 1.0, {2, 3})};
  AuctionConfig config;
  config.budget = 10.0;
  const auto result = run_auction(bids, 4, config);
  ASSERT_EQ(result.selected.size(), 2u);
  EXPECT_EQ(result.selected.front(), 1u);  // better value/cost ratio
}

TEST(Auction, BudgetLimitsSelection) {
  const std::vector<Bid> bids = {make_bid(0, 3.0, {0}),
                                 make_bid(1, 3.0, {1}),
                                 make_bid(2, 3.0, {2})};
  AuctionConfig config;
  config.budget = 6.5;
  const auto result = run_auction(bids, 3, config);
  EXPECT_EQ(result.selected.size(), 2u);
}

TEST(Auction, RedundantCoverageHasLowMarginalValue) {
  // Twin bidders covering the same tasks: once one is in, the other's
  // marginal value collapses by the coverage decay, so a cheap
  // complementary bidder wins over the redundant twin.
  const std::vector<Bid> bids = {
      make_bid(0, 1.0, {0, 1, 2}),   // first twin
      make_bid(1, 1.0, {0, 1, 2}),   // second twin, fully redundant
      make_bid(2, 2.0, {3}),         // complementary but pricier per task
  };
  AuctionConfig config;
  config.budget = 3.2;  // room for exactly two of cost 1 + 2
  config.coverage_decay = 0.1;
  const auto result = run_auction(bids, 4, config);
  ASSERT_EQ(result.selected.size(), 2u);
  EXPECT_TRUE(std::find(result.selected.begin(), result.selected.end(), 2u)
              != result.selected.end());
  // The redundant twin is not selected.
  EXPECT_TRUE(std::find(result.selected.begin(), result.selected.end(), 1u)
              == result.selected.end());
}

TEST(Auction, CoverageValueIsSubmodular) {
  const std::vector<Bid> bids = {make_bid(0, 1.0, {0, 1}),
                                 make_bid(1, 1.0, {0, 1}),
                                 make_bid(2, 1.0, {0, 1})};
  AuctionConfig config;
  config.coverage_decay = 0.5;
  const double v1 = coverage_value(bids, {0}, 2, config);
  const double v2 = coverage_value(bids, {0, 1}, 2, config);
  const double v3 = coverage_value(bids, {0, 1, 2}, 2, config);
  EXPECT_GT(v2 - v1, v3 - v2);  // diminishing returns
  EXPECT_NEAR(v1, 2.0, 1e-12);
  EXPECT_NEAR(v2 - v1, 1.0, 1e-12);
}

TEST(Auction, CriticalPaymentsAtLeastBidAndWithinBudget) {
  Rng rng(1);
  std::vector<Bid> bids;
  for (std::size_t i = 0; i < 8; ++i) {
    Bid bid;
    bid.user = i;
    bid.cost = rng.uniform(0.5, 2.0);
    for (std::size_t t = 0; t < 5; ++t) {
      if (rng.bernoulli(0.5)) bid.tasks.push_back(t);
    }
    if (bid.tasks.empty()) bid.tasks.push_back(0);
    bids.push_back(std::move(bid));
  }
  AuctionConfig config;
  config.budget = 5.0;
  const auto result = run_auction(bids, 5, config);
  ASSERT_EQ(result.payments.size(), result.selected.size());
  for (std::size_t w = 0; w < result.selected.size(); ++w) {
    EXPECT_GE(result.payments[w] + 1e-6, bids[result.selected[w]].cost);
    EXPECT_LE(result.payments[w], config.budget + 1.0);
  }
}

TEST(Auction, SelectionMonotoneInOwnCost) {
  // Truthfulness precondition: if a winner lowers its cost, it still wins.
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Bid> bids;
    for (std::size_t i = 0; i < 6; ++i) {
      Bid bid;
      bid.user = i;
      bid.cost = rng.uniform(0.5, 2.0);
      bid.tasks = {rng.uniform_index(4), rng.uniform_index(4)};
      bids.push_back(std::move(bid));
    }
    AuctionConfig config;
    config.budget = 4.0;
    config.critical_payments = false;
    const auto before = run_auction(bids, 4, config);
    if (before.selected.empty()) continue;
    const std::size_t winner = before.selected.front();
    auto cheaper = bids;
    cheaper[winner].cost *= 0.5;
    const auto after = run_auction(cheaper, 4, config);
    EXPECT_TRUE(std::find(after.selected.begin(), after.selected.end(),
                          winner) != after.selected.end());
  }
}

TEST(Auction, ValidatesInput) {
  AuctionConfig config;
  EXPECT_THROW(run_auction({make_bid(0, 0.0, {0})}, 1, config),
               std::invalid_argument);
  EXPECT_THROW(run_auction({make_bid(0, 1.0, {5})}, 1, config),
               std::invalid_argument);
  config.budget = 0.0;
  EXPECT_THROW(run_auction({}, 1, config), std::invalid_argument);
}

TEST(Selection, FiltersCampaignToWinners) {
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.5, 31));
  SelectionConfig config;
  config.auction.budget = 8.0;
  const auto outcome = select_participants(data, config);
  EXPECT_LT(outcome.campaign.accounts.size(), data.accounts.size());
  EXPECT_EQ(outcome.campaign.accounts.size(),
            outcome.selected_accounts.size());
  EXPECT_EQ(outcome.campaign.tasks.size(), data.tasks.size());
  // Selected account records are copied verbatim.
  for (std::size_t k = 0; k < outcome.selected_accounts.size(); ++k) {
    EXPECT_EQ(outcome.campaign.accounts[k].name,
              data.accounts[outcome.selected_accounts[k]].name);
  }
}

TEST(Selection, ReducesTrajectoryFalsePositivesAmongTwins) {
  // Build a campaign with pairs of "twin" legitimate users: same home,
  // same start time, same activeness -> AG-TR tends to group each pair
  // (false positives).  Incentive selection should rarely pick both twins
  // (the second has little marginal coverage), cutting false positives.
  auto build = [](std::uint64_t seed) {
    mcs::ScenarioConfig config;
    config.task_count = 10;
    config.seed = seed;
    Rng rng(seed);
    for (int pair = 0; pair < 4; ++pair) {
      const mcs::Point home{rng.uniform(50.0, 450.0),
                            rng.uniform(50.0, 450.0)};
      const double start = rng.uniform(0.0, 3600.0);
      for (int twin = 0; twin < 2; ++twin) {
        mcs::LegitimateUserConfig user;
        // Full activeness: twins share the task set, the greedy route from
        // the shared home, and the start time — the AG-TR collision case.
        user.activeness = 1.0;
        user.noise_stddev = 2.0;
        user.device_model = twin == 0 ? "iPhone 6" : "Nexus 5";
        user.home = home;
        user.start_time_s = start;
        config.legit_users.push_back(std::move(user));
      }
    }
    return mcs::generate_scenario(config);
  };

  double fp_before = 0.0, fp_after = 0.0;
  int trials = 5;
  for (int t = 0; t < trials; ++t) {
    const auto data = build(400 + t);
    auto false_positive_pairs = [&](const mcs::ScenarioData& campaign) {
      const auto grouping =
          core::AgTr().group(eval::to_framework_input(campaign));
      const auto truth = campaign.true_user_labels();
      int fp = 0;
      for (std::size_t i = 0; i < campaign.accounts.size(); ++i) {
        for (std::size_t j = i + 1; j < campaign.accounts.size(); ++j) {
          if (grouping.group_of(i) == grouping.group_of(j) &&
              truth[i] != truth[j]) {
            ++fp;
          }
        }
      }
      return fp;
    };
    fp_before += false_positive_pairs(data);
    SelectionConfig sel;
    sel.auction.budget = 10.0;
    sel.auction.coverage_decay = 0.2;
    sel.seed = 700 + t;
    fp_after += false_positive_pairs(select_participants(data, sel).campaign);
  }
  EXPECT_GT(fp_before, 0.0);       // twins do collide without selection
  EXPECT_LT(fp_after, fp_before);  // selection alleviates it (paper remark)
}

}  // namespace
}  // namespace sybiltd::incentive
