// ThreadPool: scheduling, the data-parallel primitives, the pair
// flattening, exception propagation, nesting, and the SYBILTD_THREADS
// parsing.  The concurrency-stress tests also run under ThreadSanitizer in
// CI (the tsan job builds this binary).
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace sybiltd {
namespace {

TEST(ThreadPool, RejectsZeroConcurrency) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::vector<int> visits(1000, 0);
    pool.parallel_for(visits.size(),
                      [&](std::size_t i) { visits[i] += 1; });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000)
        << "threads=" << threads;
    for (int v : visits) EXPECT_EQ(v, 1);
  }
}

TEST(ThreadPool, ParallelForAtConcurrencyOneRunsInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ParallelForZeroAndOneElement) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PairCount) {
  EXPECT_EQ(ThreadPool::pair_count(0), 0u);
  EXPECT_EQ(ThreadPool::pair_count(1), 0u);
  EXPECT_EQ(ThreadPool::pair_count(2), 1u);
  EXPECT_EQ(ThreadPool::pair_count(18), 153u);
}

TEST(ThreadPool, UnrankPairIsTheRowMajorInverse) {
  for (std::size_t n : {2u, 3u, 7u, 40u, 201u}) {
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j, ++k) {
        const auto [ri, rj] = ThreadPool::unrank_pair(n, k);
        ASSERT_EQ(ri, i) << "n=" << n << " k=" << k;
        ASSERT_EQ(rj, j) << "n=" << n << " k=" << k;
      }
    }
    EXPECT_EQ(k, ThreadPool::pair_count(n));
  }
}

TEST(ThreadPool, ParallelPairwiseVisitsEveryUnorderedPairOnce) {
  ThreadPool pool(4);
  const std::size_t n = 53;
  std::mutex mutex;
  std::set<std::pair<std::size_t, std::size_t>> seen;
  pool.parallel_pairwise(n, [&](std::size_t i, std::size_t j) {
    ASSERT_LT(i, j);
    ASSERT_LT(j, n);
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_TRUE(seen.emplace(i, j).second) << i << "," << j;
  });
  EXPECT_EQ(seen.size(), ThreadPool::pair_count(n));
}

TEST(ThreadPool, ExceptionsPropagateToTheCaller) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [](std::size_t i) {
                            if (i == 37) throw std::runtime_error("boom");
                          }),
        std::runtime_error)
        << "threads=" << threads;
    // The pool survives the failed loop and runs new work.
    std::atomic<int> ran{0};
    pool.parallel_for(10, [&](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 10);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // Runs inside a parallel region -> inline serial, no new pool work.
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    pool.parallel_for(8, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 64);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, ParallelForFromAPlainTaskCompletes) {
  // A submitted task (like a pipeline shard step) may fan a loop out
  // across the pool; the caller participates, so it completes even when
  // the other workers are busy.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  pool.submit([&] {
    pool.parallel_for(256, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    std::lock_guard<std::mutex> lock(mutex);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(total.load(), 256);
}

TEST(ThreadPool, SubmittedChainsMakeProgressOnOneWorker) {
  // Two self-resubmitting chains on a single-threaded pool: FIFO own-deque
  // popping must interleave them instead of starving one.
  ThreadPool pool(1);
  std::atomic<int> a_steps{0};
  std::atomic<int> b_steps{0};
  std::mutex mutex;
  std::condition_variable cv;
  int live = 2;
  std::function<void(std::atomic<int>*)> chain =
      [&](std::atomic<int>* steps) {
        if (steps->fetch_add(1, std::memory_order_relaxed) + 1 < 100) {
          pool.submit([&chain, steps] { chain(steps); });
          return;
        }
        std::lock_guard<std::mutex> lock(mutex);
        --live;
        cv.notify_all();
      };
  pool.submit([&chain, steps = &a_steps] { chain(steps); });
  pool.submit([&chain, steps = &b_steps] { chain(steps); });
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return live == 0; });
  EXPECT_EQ(a_steps.load(), 100);
  EXPECT_EQ(b_steps.load(), 100);
}

TEST(ThreadPool, ManyConcurrentLoops) {
  // Stress cross-thread chunk claiming and completion signalling; the CI
  // tsan job runs this under ThreadSanitizer.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(257, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 257L * 256L / 2L);
  }
}

TEST(ThreadPool, ParseConcurrency) {
  EXPECT_EQ(ThreadPool::parse_concurrency(nullptr), 0u);
  EXPECT_EQ(ThreadPool::parse_concurrency(""), 0u);
  EXPECT_EQ(ThreadPool::parse_concurrency("0"), 0u);
  EXPECT_EQ(ThreadPool::parse_concurrency("8"), 8u);
  EXPECT_EQ(ThreadPool::parse_concurrency("nope"), 0u);
  EXPECT_EQ(ThreadPool::parse_concurrency("4x"), 0u);
  EXPECT_EQ(ThreadPool::parse_concurrency("80000"), 1024u);  // capped
}

TEST(ThreadPool, GlobalPoolResizes) {
  ThreadPool::set_global_concurrency(3);
  EXPECT_EQ(ThreadPool::global().concurrency(), 3u);
  std::atomic<int> total{0};
  parallel_for(100, [&](std::size_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 100);
  ThreadPool::set_global_concurrency(ThreadPool::configured_concurrency());
}

}  // namespace
}  // namespace sybiltd
