// Tests for campaign trace serialization (mcs/trace_io).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "eval/adapters.h"
#include "eval/experiment.h"
#include "mcs/trace_io.h"

namespace sybiltd::mcs {
namespace {

TEST(TraceIo, RoundTripsAllAnalysisFields) {
  const auto original =
      generate_scenario(make_paper_scenario(0.5, 0.7, 123));
  const auto restored = read_trace_string(write_trace_string(original));

  ASSERT_EQ(restored.tasks.size(), original.tasks.size());
  for (std::size_t j = 0; j < original.tasks.size(); ++j) {
    EXPECT_EQ(restored.tasks[j].name, original.tasks[j].name);
    EXPECT_EQ(restored.tasks[j].ground_truth,
              original.tasks[j].ground_truth);
    EXPECT_EQ(restored.tasks[j].location.x, original.tasks[j].location.x);
  }
  ASSERT_EQ(restored.accounts.size(), original.accounts.size());
  for (std::size_t i = 0; i < original.accounts.size(); ++i) {
    const auto& a = original.accounts[i];
    const auto& b = restored.accounts[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.owner_user, a.owner_user);
    EXPECT_EQ(b.device, a.device);
    EXPECT_EQ(b.is_sybil, a.is_sybil);
    EXPECT_EQ(b.fingerprint, a.fingerprint);
    ASSERT_EQ(b.reports.size(), a.reports.size());
    for (std::size_t r = 0; r < a.reports.size(); ++r) {
      EXPECT_EQ(b.reports[r].task, a.reports[r].task);
      EXPECT_EQ(b.reports[r].value, a.reports[r].value);
      EXPECT_EQ(b.reports[r].timestamp_s, a.reports[r].timestamp_s);
    }
  }
  EXPECT_EQ(restored.user_count, original.user_count);
  EXPECT_EQ(restored.true_user_labels(), original.true_user_labels());
}

TEST(TraceIo, RestoredTraceGivesIdenticalResults) {
  const auto original =
      generate_scenario(make_paper_scenario(0.6, 0.8, 321));
  const auto restored = read_trace_string(write_trace_string(original));
  const auto run_a = eval::run_method(eval::Method::kTdTr, original);
  const auto run_b = eval::run_method(eval::Method::kTdTr, restored);
  EXPECT_EQ(run_a.truths, run_b.truths);
  EXPECT_EQ(run_a.mae, run_b.mae);
}

TEST(TraceIo, FileRoundTrip) {
  const auto original =
      generate_scenario(make_paper_scenario(0.4, 0.4, 11));
  const std::string path =
      (std::filesystem::temp_directory_path() / "sybiltd_trace_test.csv")
          .string();
  save_trace(original, path);
  const auto restored = load_trace(path);
  EXPECT_EQ(restored.accounts.size(), original.accounts.size());
  std::remove(path.c_str());
  EXPECT_THROW(load_trace("/nonexistent/path/trace.csv"),
               std::invalid_argument);
}

TEST(TraceIo, RejectsMalformedInput) {
  // Data before any section.
  EXPECT_THROW(read_trace_string("1,foo,2,3,4\n"), std::invalid_argument);
  // Wrong field count.
  EXPECT_THROW(read_trace_string("#tasks\n1,name,2\n"),
               std::invalid_argument);
  // Non-dense task ids.
  EXPECT_THROW(read_trace_string("#tasks\n5,name,0,0,-70\n"),
               std::invalid_argument);
  // Report referencing unknown account.
  EXPECT_THROW(read_trace_string(
                   "#tasks\n0,p,0,0,-70\n#reports\n0,0,-71,10\n"),
               std::invalid_argument);
  // Malformed number.
  EXPECT_THROW(read_trace_string("#tasks\n0,p,zero,0,-70\n"),
               std::invalid_argument);
  // Empty trace.
  EXPECT_THROW(read_trace_string(""), std::invalid_argument);
}

TEST(TraceIo, AccountWithoutFingerprintOrReports) {
  const std::string text =
      "#tasks\n0,poi,1,2,-70\n"
      "#accounts\n0,lonely,0,0,0,\n"
      "#reports\n";
  const auto data = read_trace_string(text);
  ASSERT_EQ(data.accounts.size(), 1u);
  EXPECT_TRUE(data.accounts[0].fingerprint.empty());
  EXPECT_TRUE(data.accounts[0].reports.empty());
  EXPECT_EQ(data.user_count, 1u);
}

}  // namespace
}  // namespace sybiltd::mcs
