// Tests for the per-thread workspace arena and the cached FFT/Welch plans.
//
// The headline assertions replace this binary's global operator new with a
// counting forwarder to malloc, warm each hot kernel once, and then prove
// the steady state performs *zero* heap allocations — the contract
// documented in src/common/workspace.h.  The cold-vs-cached plan tests
// prove caching never changes a single output bit, and the concurrent
// lookup test gives ThreadSanitizer a target for the plan-cache mutexes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <new>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/workspace.h"
#include "core/data_grouping.h"
#include "core/framework.h"
#include "dtw/dtw.h"
#include "signal/fft.h"
#include "signal/welch.h"
#include "truth/online_crh.h"

// --- Counting allocation probe ---------------------------------------------
// Replacement global operator new/delete forwarding to malloc/free with an
// opt-in atomic counter.  Replacing the global operators is valid for the
// whole binary and composes with ASan/TSan (their malloc interceptors still
// see every allocation).

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_tracking{false};
}  // namespace

void* operator new(std::size_t n) {
  if (g_alloc_tracking.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sybiltd {
namespace {

// Run `body` with allocation counting on; return how many allocations it
// performed.  `body` must be a plain lambda (std::function would allocate).
template <typename Fn>
std::uint64_t count_allocations(Fn&& body) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_tracking.store(true, std::memory_order_relaxed);
  body();
  g_alloc_tracking.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(-1.0, 1.0);
  return out;
}

// --- Arena mechanics --------------------------------------------------------

TEST(WorkspaceTest, BorrowIsWritableAndSized) {
  auto buf = Workspace::local().borrow<double>(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(buf.span().size(), 100u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<double>(i);
  }
  EXPECT_EQ(buf[99], 99.0);
  EXPECT_EQ(buf.end() - buf.begin(), 100);
}

TEST(WorkspaceTest, NestedBorrowsAreDistinct) {
  auto outer = Workspace::local().borrow<double>(64);
  auto inner = Workspace::local().borrow<double>(64);
  EXPECT_NE(outer.data(), inner.data());
  outer[0] = 1.0;
  inner[0] = 2.0;
  EXPECT_EQ(outer[0], 1.0);
  EXPECT_EQ(inner[0], 2.0);
}

TEST(WorkspaceTest, BufferIsReusedAfterRelease) {
  auto& workspace = Workspace::local();
  double* first = nullptr;
  {
    auto buf = workspace.borrow<double>(256);
    first = buf.data();
  }
  const auto before = workspace.stats();
  auto again = workspace.borrow<double>(256);
  const auto after = workspace.stats();
  EXPECT_EQ(again.data(), first);
  EXPECT_EQ(after.heap_allocations, before.heap_allocations);
  EXPECT_EQ(after.borrows, before.borrows + 1);
}

TEST(WorkspaceTest, SizeClassBucketing) {
  // A fresh arena so the pool contents are fully known.
  Workspace workspace;
  { auto a = workspace.borrow<double>(1); }
  // 8 doubles still fit the smallest (64-byte) class: pool hit.
  const auto before = workspace.stats();
  { auto b = workspace.borrow<double>(8); }
  EXPECT_EQ(workspace.stats().heap_allocations, before.heap_allocations);
  // 9 doubles (72 bytes) need the next class: pool miss.
  { auto c = workspace.borrow<double>(9); }
  EXPECT_EQ(workspace.stats().heap_allocations,
            before.heap_allocations + 1);
  EXPECT_EQ(workspace.stats().pooled_buffers, 2u);
  workspace.trim();
  EXPECT_EQ(workspace.stats().pooled_buffers, 0u);
  EXPECT_EQ(workspace.stats().pooled_bytes, 0u);
}

TEST(WorkspaceTest, EndTaskScopeOrphansLiveBorrows) {
  Workspace workspace;
  auto leaked = workspace.borrow<double>(32);
  EXPECT_EQ(workspace.stats().live_borrows, 1u);
  workspace.end_task_scope();  // simulates the thread-pool task boundary
  EXPECT_EQ(workspace.stats().live_borrows, 0u);
  leaked.reset();
  // The late release must not re-pool a buffer the arena disowned.
  EXPECT_EQ(workspace.stats().orphaned, 1u);
  EXPECT_EQ(workspace.stats().pooled_buffers, 0u);
}

TEST(WorkspaceTest, EndTaskScopeWithoutLeaksKeepsThePool) {
  Workspace workspace;
  { auto buf = workspace.borrow<double>(32); }
  workspace.end_task_scope();
  // A clean boundary keeps pooled buffers valid for the next task.
  const auto before = workspace.stats();
  { auto buf = workspace.borrow<double>(32); }
  EXPECT_EQ(workspace.stats().heap_allocations, before.heap_allocations);
  EXPECT_EQ(workspace.stats().orphaned, 0u);
}

TEST(WorkspaceTest, PoolTasksReuseTheWorkerArena) {
  // Two tasks on a single-threaded pool land on the same worker thread;
  // the second's borrow must be a pool hit from the first's buffer.
  ThreadPool pool(1);
  std::promise<Workspace::Stats> first_done;
  pool.submit([&] {
    { auto buf = Workspace::local().borrow<double>(512); }
    first_done.set_value(Workspace::local().stats());
  });
  const auto stats1 = first_done.get_future().get();

  std::promise<Workspace::Stats> second_done;
  pool.submit([&] {
    { auto buf = Workspace::local().borrow<double>(512); }
    second_done.set_value(Workspace::local().stats());
  });
  const auto stats2 = second_done.get_future().get();

  EXPECT_EQ(stats2.heap_allocations, stats1.heap_allocations);
  EXPECT_EQ(stats2.borrows, stats1.borrows + 1);
  EXPECT_EQ(stats2.orphaned, 0u);
}

// --- Zero allocations after warm-up ----------------------------------------

TEST(ZeroAllocation, DtwDistanceAfterWarmUp) {
  const auto a = random_series(128, 1);
  const auto b = random_series(128, 2);
  dtw::DtwOptions banded;
  banded.band = 16;

  // Warm-up: one call per shape pools the row buffers.
  dtw::dtw_distance(a, b);
  dtw::dtw_distance(a, b, banded);
  dtw::dtw_distance_znorm(a, b);

  double sink = 0.0;
  const auto allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) {
      sink += dtw::dtw_distance(a, b);
      sink += dtw::dtw_distance(a, b, banded);
      sink += dtw::dtw_distance_znorm(a, b);
    }
  });
  EXPECT_EQ(allocs, 0u) << "dtw_distance allocated in steady state";
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(ZeroAllocation, WelchPsdIntoAfterWarmUp) {
  const auto signal_data = random_series(4000, 3);
  signal::PowerSpectralDensity out;
  signal::welch_psd_into(signal_data, 50.0, {}, out);  // warm plan + storage

  const auto allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) {
      signal::welch_psd_into(signal_data, 50.0, {}, out);
    }
  });
  EXPECT_EQ(allocs, 0u) << "welch_psd_into allocated in steady state";
  EXPECT_EQ(out.segment_length, 128u);
  EXPECT_GE(out.segments_averaged, 1u);
}

TEST(ZeroAllocation, OnlineCrhRefineAfterWarmUp) {
  truth::OnlineCrhOptions options;
  options.decay = 0.97;
  truth::OnlineCrh online(6, 4, options);
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    online.observe(rng.uniform_index(6), rng.uniform_index(4),
                   rng.uniform(-5.0, 5.0));
  }
  online.refine(1);  // warm the workspace buffers

  const auto allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) online.refine(1);
  });
  EXPECT_EQ(allocs, 0u) << "OnlineCrh::refine allocated in steady state";
}

TEST(ZeroAllocation, FrameworkIterateOnceAfterWarmUp) {
  // Small grouped dataset: 3 groups over 4 tasks.
  core::FrameworkInput input;
  input.task_count = 4;
  Rng rng(5);
  for (std::size_t i = 0; i < 6; ++i) {
    core::AccountTrace trace;
    trace.name = "acct" + std::to_string(i);
    for (std::size_t j = 0; j < 4; ++j) {
      trace.reports.push_back(
          {j, rng.uniform(-10.0, 10.0), static_cast<double>(j)});
    }
    input.accounts.push_back(std::move(trace));
  }
  const core::AccountGrouping grouping({{0, 1}, {2, 3}, {4, 5}}, 6);
  const core::GroupedData grouped = core::group_data(input, grouping);
  const std::vector<double> norm =
      core::framework_task_normalizers(grouped, input.task_count);
  std::vector<double> truths =
      core::framework_initial_truths(grouped, input.task_count, true);
  std::vector<double> group_weights;
  // Warm-up: sizes group_weights and pools the workspace buffers.
  core::framework_iterate_once(grouped, norm, 1e-9, truths, group_weights);

  double sink = 0.0;
  const auto allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) {
      sink += core::framework_iterate_once(grouped, norm, 1e-9, truths,
                                           group_weights);
    }
  });
  EXPECT_EQ(allocs, 0u)
      << "framework_iterate_once allocated in steady state";
  EXPECT_TRUE(std::isfinite(sink));
}

// --- Plan caching ------------------------------------------------------------

TEST(PlanCache, FftColdMatchesCachedExactly) {
  // Power-of-two, prime (Bluestein), and composite non-power-of-two
  // lengths, forward and inverse: caching must never change a single bit.
  for (const std::size_t n : {std::size_t{64}, std::size_t{13},
                              std::size_t{601}, std::size_t{60}}) {
    for (const bool inverse : {false, true}) {
      Rng rng(100 + n);
      std::vector<signal::Complex> data(n);
      for (auto& c : data) {
        c = signal::Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
      }
      std::vector<signal::Complex> via_cache = data;
      std::vector<signal::Complex> via_cold = data;
      const auto cached = signal::FftPlan::plan_for(n, inverse);
      const auto cold = signal::FftPlan::make_cold(n, inverse);
      EXPECT_EQ(cached->length(), n);
      EXPECT_EQ(cached->inverse(), inverse);
      cached->apply(via_cache);
      cold->apply(via_cold);
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_EQ(via_cache[k].real(), via_cold[k].real())
            << "n=" << n << " inverse=" << inverse << " k=" << k;
        EXPECT_EQ(via_cache[k].imag(), via_cold[k].imag())
            << "n=" << n << " inverse=" << inverse << " k=" << k;
      }
    }
  }
}

TEST(PlanCache, PlanForReturnsTheSameInstance) {
  const auto a = signal::FftPlan::plan_for(256, false);
  const auto b = signal::FftPlan::plan_for(256, false);
  EXPECT_EQ(a.get(), b.get());
  // Forward and inverse plans are distinct cache entries.
  const auto inv = signal::FftPlan::plan_for(256, true);
  EXPECT_NE(a.get(), inv.get());
}

TEST(PlanCache, WelchColdMatchesCached) {
  const auto cached =
      signal::WelchPlan::plan_for(signal::WindowKind::kHann, 128);
  const auto cold =
      signal::WelchPlan::make_cold(signal::WindowKind::kHann, 128);
  ASSERT_EQ(cached->length(), 128u);
  ASSERT_EQ(cold->length(), 128u);
  EXPECT_EQ(cached->window_power(), cold->window_power());
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(cached->window()[i], cold->window()[i]) << "i=" << i;
  }
}

TEST(PlanCache, ConcurrentLookupsAreRaceFree) {
  // Hammer both plan caches from many threads at once; ThreadSanitizer
  // (the CI tsan job runs this binary) verifies the mutex discipline, and
  // the assertions verify every thread sees a working plan.
  constexpr std::size_t kThreads = 8;
  const std::size_t lengths[] = {64, 13, 601, 60, 128, 17};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int round = 0; round < 25; ++round) {
        for (const std::size_t n : lengths) {
          const auto plan = signal::FftPlan::plan_for(n, (round % 2) != 0);
          std::vector<signal::Complex> data(n);
          for (auto& c : data) c = signal::Complex(rng.uniform(-1, 1), 0.0);
          plan->apply(data);
          if (plan->length() != n) failures.fetch_add(1);
          const auto welch =
              signal::WelchPlan::plan_for(signal::WindowKind::kHann, n);
          if (welch->window().size() != n) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Every thread's lookups converged on one shared instance per key.
  const auto first = signal::FftPlan::plan_for(601, false);
  const auto second = signal::FftPlan::plan_for(601, false);
  EXPECT_EQ(first.get(), second.get());
}

}  // namespace
}  // namespace sybiltd
