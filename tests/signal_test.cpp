// Unit and property tests for src/signal: FFT correctness against a naive
// DFT, window functions, spectra, and the 20 Table-II features.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "signal/features.h"
#include "signal/fft.h"
#include "signal/spectrum.h"
#include "signal/window.h"

namespace sybiltd::signal {
namespace {

std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      out[k] += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return x;
}

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(17), 32u);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> x(8, Complex(0, 0));
  x[0] = Complex(1, 0);
  const auto spectrum = fft(x);
  for (const auto& bin : spectrum) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SinusoidConcentratesInOneBin) {
  const std::size_t n = 64;
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::sin(2.0 * std::numbers::pi * 5.0 * static_cast<double>(t) /
                    static_cast<double>(n));
  }
  const auto spectrum = fft_real(x);
  // Bin 5 should carry magnitude n/2; all non-conjugate bins near zero.
  EXPECT_NEAR(std::abs(spectrum[5]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spectrum[59]), static_cast<double>(n) / 2.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == 5 || k == 59) continue;
    EXPECT_LT(std::abs(spectrum[k]), 1e-9) << "bin " << k;
  }
}

TEST(Fft, MatchesNaiveDftPowerOfTwo) {
  const auto x = random_signal(32, 1);
  const auto fast = fft(x);
  const auto slow = naive_dft(x);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-9);
  }
}

class FftArbitraryLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftArbitraryLength, BluesteinMatchesNaiveDft) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 17 + n);
  const auto fast = fft(x);
  const auto slow = naive_dft(x);
  ASSERT_EQ(fast.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-8) << "bin " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftArbitraryLength,
                         ::testing::Values(1, 2, 3, 5, 7, 12, 13, 30, 100,
                                           127, 240, 600));

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 99 + n);
  const auto back = inverse_fft(fft(x));
  ASSERT_EQ(back.size(), n);
  for (std::size_t t = 0; t < n; ++t) {
    EXPECT_NEAR(std::abs(back[t] - x[t]), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTrip,
                         ::testing::Values(1, 4, 6, 11, 64, 100, 255, 256));

TEST(Fft, ParsevalHolds) {
  const auto x = random_signal(128, 5);
  const auto spec = fft(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-6);
}

TEST(Fft, LinearityProperty) {
  const auto a = random_signal(50, 7);
  const auto b = random_signal(50, 8);
  std::vector<Complex> sum(50);
  for (std::size_t i = 0; i < 50; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fsum = fft(sum);
  for (std::size_t k = 0; k < 50; ++k) {
    EXPECT_NEAR(std::abs(fsum[k] - (2.0 * fa[k] + 3.0 * fb[k])), 0.0, 1e-8);
  }
}

TEST(Window, HannEndsAtZeroPeaksAtCenter) {
  const auto w = make_window(WindowKind::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, RectangularIsAllOnes) {
  const auto w = make_window(WindowKind::kRectangular, 10);
  for (double v : w) EXPECT_EQ(v, 1.0);
}

TEST(Window, AllKindsBoundedAndSymmetric) {
  for (auto kind : {WindowKind::kHann, WindowKind::kHamming,
                    WindowKind::kBlackman}) {
    const auto w = make_window(kind, 33);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_GE(w[i], -1e-12);
      EXPECT_LE(w[i], 1.0 + 1e-12);
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
    }
  }
}

TEST(Window, ApplyWindowChecksLength) {
  const std::vector<double> signal{1, 2, 3};
  const auto w = make_window(WindowKind::kHann, 4);
  EXPECT_THROW(apply_window(signal, w), std::invalid_argument);
}

TEST(Spectrum, FrequencyMapping) {
  std::vector<double> x(100, 0.0);
  const auto spec = compute_spectrum(x, 100.0, WindowKind::kRectangular);
  EXPECT_EQ(spec.bins(), 51u);
  EXPECT_NEAR(spec.frequency(0), 0.0, 1e-12);
  EXPECT_NEAR(spec.frequency(50), 50.0, 1e-12);  // Nyquist
  EXPECT_NEAR(spec.nyquist(), 50.0, 1e-12);
}

TEST(Spectrum, PeakAtToneFrequency) {
  const double fs = 100.0;
  std::vector<double> x(200);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = std::sin(2.0 * std::numbers::pi * 10.0 *
                    static_cast<double>(t) / fs);
  }
  const auto spec = compute_spectrum(x, fs, WindowKind::kHann);
  const auto peaks = find_peaks(spec, 0.5);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks.front().frequency_hz, 10.0, 0.6);
}

TEST(Spectrum, TwoTonesGiveTwoPeaks) {
  const double fs = 100.0;
  std::vector<double> x(400);
  for (std::size_t t = 0; t < x.size(); ++t) {
    const double s = static_cast<double>(t) / fs;
    x[t] = std::sin(2.0 * std::numbers::pi * 8.0 * s) +
           0.8 * std::sin(2.0 * std::numbers::pi * 23.0 * s);
  }
  const auto spec = compute_spectrum(x, fs, WindowKind::kHann);
  const auto peaks = find_peaks(spec, 0.3);
  ASSERT_GE(peaks.size(), 2u);
}

TEST(TemporalFeatures, ExactValuesOnKnownData) {
  const std::vector<double> xs{1.0, -1.0, 1.0, -1.0};
  const auto f = extract_temporal_features(xs);
  EXPECT_NEAR(f.mean, 0.0, 1e-12);
  EXPECT_NEAR(f.stddev, 1.0, 1e-12);
  EXPECT_NEAR(f.rms, 1.0, 1e-12);
  EXPECT_NEAR(f.max, 1.0, 1e-12);
  EXPECT_NEAR(f.min, -1.0, 1e-12);
  EXPECT_NEAR(f.zero_crossing_rate, 1.0, 1e-12);
  EXPECT_NEAR(f.non_negative_count, 2.0, 1e-12);
}

TEST(TemporalFeatures, ThrowsOnEmpty) {
  EXPECT_THROW(extract_temporal_features({}), std::invalid_argument);
}

TEST(SpectralFeatures, CentroidTracksToneFrequency) {
  const double fs = 100.0;
  auto tone = [&](double f0) {
    std::vector<double> x(256);
    for (std::size_t t = 0; t < x.size(); ++t) {
      x[t] = std::sin(2.0 * std::numbers::pi * f0 *
                      static_cast<double>(t) / fs);
    }
    return extract_spectral_features(compute_spectrum(x, fs));
  };
  const auto low = tone(5.0);
  const auto high = tone(30.0);
  EXPECT_LT(low.centroid, high.centroid);
  EXPECT_NEAR(low.centroid, 5.0, 2.5);
  EXPECT_NEAR(high.centroid, 30.0, 2.5);
}

TEST(SpectralFeatures, FlatnessSeparatesNoiseFromTone) {
  const double fs = 100.0;
  Rng rng(3);
  std::vector<double> noise(512), tone(512);
  for (std::size_t t = 0; t < 512; ++t) {
    noise[t] = rng.normal();
    tone[t] = std::sin(2.0 * std::numbers::pi * 12.0 *
                       static_cast<double>(t) / fs);
  }
  const auto fn = extract_spectral_features(compute_spectrum(noise, fs));
  const auto ft = extract_spectral_features(compute_spectrum(tone, fs));
  EXPECT_GT(fn.flatness, 10.0 * ft.flatness);
  EXPECT_GT(fn.entropy, ft.entropy);
}

TEST(SpectralFeatures, RolloffBelowNyquistAndOrdered) {
  const double fs = 100.0;
  Rng rng(4);
  std::vector<double> x(512);
  for (auto& v : x) v = rng.normal();
  FeatureOptions opt;
  opt.rolloff_fraction = 0.5;
  const auto spec = compute_spectrum(x, fs);
  const auto f50 = extract_spectral_features(spec, opt);
  opt.rolloff_fraction = 0.95;
  const auto f95 = extract_spectral_features(spec, opt);
  EXPECT_LE(f50.rolloff, f95.rolloff);
  EXPECT_LE(f95.rolloff, fs / 2.0 + 1e-9);
}

TEST(SpectralFeatures, BrightnessHigherForHighFrequencyTone) {
  const double fs = 100.0;
  auto bright = [&](double f0) {
    std::vector<double> x(256);
    for (std::size_t t = 0; t < x.size(); ++t) {
      x[t] = std::sin(2.0 * std::numbers::pi * f0 *
                      static_cast<double>(t) / fs);
    }
    return extract_spectral_features(compute_spectrum(x, fs)).brightness;
  };
  EXPECT_LT(bright(2.0), bright(40.0));
}

TEST(SpectralFeatures, RoughnessPositiveForCloseTonePair) {
  const double fs = 100.0;
  std::vector<double> x(512);
  for (std::size_t t = 0; t < x.size(); ++t) {
    const double s = static_cast<double>(t) / fs;
    x[t] = std::sin(2.0 * std::numbers::pi * 20.0 * s) +
           std::sin(2.0 * std::numbers::pi * 22.0 * s);
  }
  const auto f = extract_spectral_features(compute_spectrum(x, fs));
  EXPECT_GT(f.roughness, 0.0);
}

TEST(SpectralFeatures, PlompLeveltShape) {
  // Dissonance vanishes at unison and far separation, peaks in between.
  const double unison = plomp_levelt_dissonance(400, 1, 400, 1);
  const double near = plomp_levelt_dissonance(400, 1, 425, 1);
  const double far = plomp_levelt_dissonance(400, 1, 800, 1);
  EXPECT_NEAR(unison, 0.0, 1e-12);
  EXPECT_GT(near, far);
  EXPECT_GT(near, 0.1);
}

TEST(StreamFeatures, ArrayLayoutAndNames) {
  Rng rng(5);
  std::vector<double> x(128);
  for (auto& v : x) v = rng.normal();
  const auto f = extract_stream_features(x);
  const auto arr = f.to_array();
  EXPECT_EQ(arr.size(), 20u);
  EXPECT_EQ(feature_names().size(), 20u);
  EXPECT_EQ(arr[0], f.temporal.mean);
  EXPECT_EQ(arr[9], f.spectral.centroid);
  EXPECT_EQ(arr[19], f.spectral.roughness);
}

TEST(StreamFeatures, DeterministicForSameInput) {
  Rng rng(6);
  std::vector<double> x(200);
  for (auto& v : x) v = rng.normal();
  const auto a = extract_stream_features(x).to_array();
  const auto b = extract_stream_features(x).to_array();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sybiltd::signal
