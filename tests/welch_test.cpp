// Tests for Welch PSD estimation.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "signal/features.h"
#include "signal/welch.h"

namespace sybiltd::signal {
namespace {

std::vector<double> tone(double f0, double fs, std::size_t n,
                         double amplitude = 1.0) {
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = amplitude *
           std::sin(2.0 * std::numbers::pi * f0 * static_cast<double>(t) / fs);
  }
  return x;
}

TEST(Welch, PeakAtToneFrequency) {
  const double fs = 100.0;
  const auto x = tone(10.0, fs, 1024);
  const auto psd = welch_psd(x, fs);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd.bins(); ++k) {
    if (psd.psd[k] > psd.psd[peak]) peak = k;
  }
  EXPECT_NEAR(psd.frequency(peak), 10.0, 1.0);
  EXPECT_GT(psd.segments_averaged, 1u);
}

TEST(Welch, TotalPowerMatchesSignalVariance) {
  // Parseval-style check: integrated PSD ~ signal variance for white noise.
  Rng rng(1);
  const double fs = 100.0;
  std::vector<double> x(4096);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  WelchOptions opt;
  opt.segment_length = 256;
  const auto psd = welch_psd(x, fs, opt);
  const double df = fs / static_cast<double>(opt.segment_length);
  double power = 0.0;
  for (double p : psd.psd) power += p * df;
  EXPECT_NEAR(power, 1.0, 0.15);
}

TEST(Welch, AveragingReducesVariance) {
  // The PSD of white noise is flat; averaging more segments should shrink
  // the spread of bin values relative to their mean.
  Rng rng(2);
  const double fs = 100.0;
  std::vector<double> x(8192);
  for (auto& v : x) v = rng.normal();
  auto spread = [&](std::size_t seg) {
    WelchOptions opt;
    opt.segment_length = seg;
    const auto psd = welch_psd(x, fs, opt);
    double mean = 0.0;
    for (double p : psd.psd) mean += p;
    mean /= static_cast<double>(psd.bins());
    double var = 0.0;
    for (double p : psd.psd) var += (p - mean) * (p - mean);
    var /= static_cast<double>(psd.bins());
    return std::sqrt(var) / mean;
  };
  // 64-sample segments average ~255 periodograms vs ~3 for 4096.
  EXPECT_LT(spread(64), spread(4096));
}

TEST(Welch, ShortSignalFallsBackToSinglePeriodogram) {
  const double fs = 100.0;
  const auto x = tone(5.0, fs, 60);
  WelchOptions opt;
  opt.segment_length = 128;
  const auto psd = welch_psd(x, fs, opt);
  EXPECT_EQ(psd.segment_length, 60u);
  EXPECT_EQ(psd.segments_averaged, 1u);
}

TEST(Welch, ValidatesOptions) {
  const auto x = tone(5.0, 100.0, 100);
  WelchOptions opt;
  opt.overlap = 1.0;
  EXPECT_THROW(welch_psd(x, 100.0, opt), std::invalid_argument);
  EXPECT_THROW(welch_psd({}, 100.0, {}), std::invalid_argument);
  EXPECT_THROW(welch_psd(x, 0.0, {}), std::invalid_argument);
}

TEST(Welch, IntoVariantMatchesValueVariantExactly) {
  const double fs = 100.0;
  const auto x = tone(12.5, fs, 1500);
  WelchOptions opt;
  opt.segment_length = 256;
  const auto fresh = welch_psd(x, fs, opt);

  // Reused output storage must give bit-identical results, including when
  // the storage previously held a different (larger) shape.
  PowerSpectralDensity reused;
  WelchOptions bigger;
  bigger.segment_length = 512;
  welch_psd_into(x, fs, bigger, reused);
  welch_psd_into(x, fs, opt, reused);
  EXPECT_EQ(reused.segment_length, fresh.segment_length);
  EXPECT_EQ(reused.segments_averaged, fresh.segments_averaged);
  ASSERT_EQ(reused.psd.size(), fresh.psd.size());
  for (std::size_t k = 0; k < fresh.psd.size(); ++k) {
    EXPECT_EQ(reused.psd[k], fresh.psd[k]) << "bin " << k;
  }
}

TEST(Welch, PlanCacheIsSharedAcrossCalls) {
  const auto x = tone(5.0, 100.0, 400);
  welch_psd(x, 100.0, {});
  const auto plan =
      WelchPlan::plan_for(WindowKind::kHann, WelchOptions{}.segment_length);
  const auto again =
      WelchPlan::plan_for(WindowKind::kHann, WelchOptions{}.segment_length);
  EXPECT_EQ(plan.get(), again.get());
  EXPECT_EQ(plan->length(), WelchOptions{}.segment_length);
  EXPECT_GT(plan->window_power(), 0.0);
}

TEST(Welch, ToSpectrumFeedsFeatureExtractor) {
  const double fs = 100.0;
  const auto x = tone(20.0, fs, 2048);
  const auto spectrum = to_spectrum(welch_psd(x, fs));
  const auto features = extract_spectral_features(spectrum);
  EXPECT_NEAR(features.centroid, 20.0, 3.0);
  EXPECT_EQ(spectrum.bins(), welch_psd(x, fs).bins());
}

}  // namespace
}  // namespace sybiltd::signal
