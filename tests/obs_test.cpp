// Tests for the observability subsystem (src/obs): the lock-light metrics
// registry and the trace-span recorder.
//
// The concurrency tests hammer one Counter/Histogram from eight threads and
// assert the aggregated totals are exact — the striped relaxed increments
// must not lose updates.  The allocation tests replace global operator new
// with a counting forwarder (same probe as workspace_test.cpp) and prove
// the instrumented hot paths — counter inc, histogram record, and a
// disabled TraceSpan — allocate nothing, which is what lets them live
// inside the zero-alloc kernels.  The format tests pin the Prometheus and
// JSON exposition shapes that bench/check_trace.py and the CI
// observability job validate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// --- Counting allocation probe ---------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_tracking{false};
}  // namespace

void* operator new(std::size_t n) {
  if (g_alloc_tracking.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sybiltd::obs {
namespace {

template <typename Fn>
std::uint64_t count_allocations(Fn&& body) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_tracking.store(true, std::memory_order_relaxed);
  body();
  g_alloc_tracking.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

// --- Registry semantics -----------------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  auto& a = MetricsRegistry::global().counter("obs_test.idempotent");
  auto& b = MetricsRegistry::global().counter("obs_test.idempotent");
  EXPECT_EQ(&a, &b);
  auto& g1 = MetricsRegistry::global().gauge("obs_test.idempotent_gauge");
  auto& g2 = MetricsRegistry::global().gauge("obs_test.idempotent_gauge");
  EXPECT_EQ(&g1, &g2);
  auto& h1 = MetricsRegistry::global().histogram("obs_test.idempotent_hist");
  auto& h2 = MetricsRegistry::global().histogram("obs_test.idempotent_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry::global().counter("obs_test.kind_clash");
  EXPECT_THROW(MetricsRegistry::global().gauge("obs_test.kind_clash"),
               std::exception);
  EXPECT_THROW(MetricsRegistry::global().histogram("obs_test.kind_clash"),
               std::exception);
}

TEST(MetricsRegistry, CounterIncrements) {
  auto& c = MetricsRegistry::global().counter("obs_test.basic_counter");
  const std::uint64_t before = c.value();
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(MetricsRegistry, GaugeSetAddTrackMax) {
  auto& g = MetricsRegistry::global().gauge("obs_test.basic_gauge");
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.track_max(3.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.track_max(11.0);
  EXPECT_DOUBLE_EQ(g.value(), 11.0);
}

// --- Histogram bucketing ----------------------------------------------------

TEST(Histogram, BucketPlacement) {
  // Bucket kBucketOffset covers [1, 2).
  EXPECT_EQ(Histogram::bucket_for(1.0), std::size_t{Histogram::kBucketOffset});
  EXPECT_EQ(Histogram::bucket_for(1.5), std::size_t{Histogram::kBucketOffset});
  EXPECT_EQ(Histogram::bucket_for(2.0),
            std::size_t{Histogram::kBucketOffset + 1});
  EXPECT_EQ(Histogram::bucket_for(0.5),
            std::size_t{Histogram::kBucketOffset - 1});
  // Degenerate inputs land in bucket 0 instead of trapping.
  EXPECT_EQ(Histogram::bucket_for(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_for(-3.0), 0u);
  // Huge values clamp into the last bucket.
  EXPECT_EQ(Histogram::bucket_for(1e300), Histogram::kBuckets - 1);
  // Edges are consistent: bucket_for(value) <= edge of its own bucket.
  for (double v : {0.001, 0.7, 1.0, 3.3, 100.0, 123456.0}) {
    const std::size_t b = Histogram::bucket_for(v);
    EXPECT_LE(v, Histogram::bucket_upper_edge(b)) << "value " << v;
  }
}

TEST(Histogram, CountSumAndBuckets) {
  auto& h = MetricsRegistry::global().histogram("obs_test.basic_hist");
  const std::uint64_t count_before = h.count();
  const double sum_before = h.sum();
  h.record(1.5);
  h.record(3.0);
  h.record(100.0);
  EXPECT_EQ(h.count(), count_before + 3);
  EXPECT_DOUBLE_EQ(h.sum(), sum_before + 104.5);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), Histogram::kBuckets);
  EXPECT_GE(buckets[Histogram::bucket_for(1.5)], 1u);
  EXPECT_GE(buckets[Histogram::bucket_for(100.0)], 1u);
}

// --- Concurrency: no lost updates ------------------------------------------

TEST(MetricsConcurrency, EightThreadCounterHammerIsExact) {
  auto& c = MetricsRegistry::global().counter("obs_test.hammer_counter");
  const std::uint64_t before = c.value();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), before + kThreads * kPerThread);
}

TEST(MetricsConcurrency, EightThreadHistogramHammerIsExact) {
  auto& h = MetricsRegistry::global().histogram("obs_test.hammer_hist");
  const std::uint64_t before = h.count();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), before + kThreads * kPerThread);
}

TEST(MetricsConcurrency, SnapshotWhileWritingIsMonotonic) {
  auto& c = MetricsRegistry::global().counter("obs_test.snapshot_race");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c.inc();
  });
  // Concurrent registration must not invalidate snapshotting either.
  std::thread registrar([&] {
    for (int i = 0; i < 50; ++i) {
      MetricsRegistry::global().counter("obs_test.registrar" +
                                        std::to_string(i));
    }
  });
  std::uint64_t last = 0;
  for (int round = 0; round < 20; ++round) {
    const MetricsSnapshot snap = snapshot();
    std::uint64_t seen = 0;
    bool found = false;
    for (const auto& counter : snap.counters) {
      if (counter.name == "obs_test.snapshot_race") {
        seen = counter.value;
        found = true;
      }
    }
    ASSERT_TRUE(found);
    EXPECT_GE(seen, last);  // counters never move backwards
    last = seen;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  registrar.join();
}

// --- Zero-allocation contract ----------------------------------------------

TEST(MetricsAllocation, CounterIncAllocatesNothing) {
  auto& c = MetricsRegistry::global().counter("obs_test.zero_alloc_counter");
  c.inc();  // warm the thread slot
  const std::uint64_t allocs = count_allocations([&] {
    for (int i = 0; i < 1000; ++i) c.inc();
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(MetricsAllocation, HistogramRecordAllocatesNothing) {
  auto& h = MetricsRegistry::global().histogram("obs_test.zero_alloc_hist");
  h.record(1.0);  // warm the thread slot
  const std::uint64_t allocs = count_allocations([&] {
    for (int i = 0; i < 1000; ++i) h.record(static_cast<double>(i));
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(MetricsAllocation, DisabledTraceSpanAllocatesNothing) {
  ASSERT_FALSE(trace_enabled());
  const std::uint64_t allocs = count_allocations([&] {
    for (int i = 0; i < 1000; ++i) {
      TraceSpan span("obs_test/disabled");
      span.arg("i", static_cast<double>(i));
    }
  });
  EXPECT_EQ(allocs, 0u);
}

// --- Trace recording --------------------------------------------------------

TEST(Trace, RecordsAndFlushesSpans) {
  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  enable_trace(path);
  {
    TraceSpan outer("obs_test/outer");
    outer.arg("answer", 42.0);
    TraceSpan inner("obs_test/inner");
  }
  EXPECT_EQ(trace_event_count(), 2u);
  EXPECT_TRUE(flush_trace());
  disable_trace();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("obs_test/outer"), std::string::npos);
  EXPECT_NE(text.find("obs_test/inner"), std::string::npos);
  EXPECT_NE(text.find("\"answer\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, DisabledSpansRecordNothing) {
  ASSERT_FALSE(trace_enabled());
  const std::size_t before = trace_event_count();
  {
    TraceSpan span("obs_test/never");
  }
  EXPECT_EQ(trace_event_count(), before);
}

TEST(Trace, EnableResetsBuffer) {
  const std::string path = ::testing::TempDir() + "obs_test_trace2.json";
  enable_trace(path);
  { TraceSpan span("obs_test/first"); }
  EXPECT_EQ(trace_event_count(), 1u);
  enable_trace(path);  // re-enable resets the buffer
  EXPECT_EQ(trace_event_count(), 0u);
  disable_trace();
  std::remove(path.c_str());
}

// --- Structured logging -----------------------------------------------------

TEST(Log, WritesJsonLinesAndFiltersBelowLevel) {
  const std::string path = ::testing::TempDir() + "obs_test_log.jsonl";
  std::remove(path.c_str());
  log_open(path, LogLevel::kInfo);
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  {
    LogEvent(LogLevel::kInfo, "test_event")
        .field("text", "a\"b\\c")
        .field("count", std::uint64_t{42})
        .field("delta", -3)
        .field("ratio", 0.5)
        .field("flag", true);
  }
  { LogEvent(LogLevel::kDebug, "below_level"); }  // filtered out
  log_flush();
  log_close();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  // One complete JSON object per line, with typed fields and escaping.
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"ts\": "), std::string::npos);
  EXPECT_NE(line.find("\"level\": \"info\""), std::string::npos);
  EXPECT_NE(line.find("\"event\": \"test_event\""), std::string::npos);
  EXPECT_NE(line.find("\"text\": \"a\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(line.find("\"count\": 42"), std::string::npos);
  EXPECT_NE(line.find("\"delta\": -3"), std::string::npos);
  EXPECT_NE(line.find("\"ratio\": 0.5"), std::string::npos);
  EXPECT_NE(line.find("\"flag\": true"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line)) << "debug line leaked: " << line;
  std::remove(path.c_str());
}

TEST(Log, DisabledEventsCostNoOutput) {
  // No sink configured in this test (log_close() above or never opened):
  // events evaporate and log_enabled gates callers' field formatting.
  log_close();
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  { LogEvent(LogLevel::kError, "nowhere_to_go").field("x", 1); }
  // Nothing to assert on disk; the contract is simply "does not crash or
  // accumulate" — dropped stays untouched because nothing was enqueued.
}

TEST(Log, RateLimiterAllowsBurstThenSuppresses) {
  LogRateLimiter limiter(/*per_second=*/1.0, /*burst=*/3.0);
  int allowed = 0;
  for (int i = 0; i < 10; ++i) {
    if (limiter.allow()) ++allowed;
  }
  EXPECT_GE(allowed, 3);
  EXPECT_LE(allowed, 4);  // the burst, plus at most one elapsed-time refill
}

// --- Exposition formats -----------------------------------------------------

TEST(Exposition, PrometheusShape) {
  auto& c = MetricsRegistry::global().counter("obs_test.promo_counter",
                                              "a test counter");
  c.inc(7);
  MetricsRegistry::global().gauge("obs_test.promo_gauge").set(2.5);
  MetricsRegistry::global().histogram("obs_test.promo_hist").record(1.5);
  const std::string text = to_prometheus(snapshot());
  // Dots are sanitized to underscores; counters gain the _total suffix.
  EXPECT_NE(text.find("obs_test_promo_counter_total"), std::string::npos);
  EXPECT_NE(text.find("# HELP obs_test_promo_counter_total a test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_promo_counter_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_promo_gauge 2.5"), std::string::npos);
  EXPECT_NE(text.find("obs_test_promo_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_promo_hist_count"), std::string::npos);
  EXPECT_NE(text.find("obs_test_promo_hist_sum"), std::string::npos);
}

TEST(Exposition, UptimeGaugeIsMaintainedBySnapshot) {
  const MetricsSnapshot first = snapshot();
  const GaugeValue* uptime = nullptr;
  for (const GaugeValue& gauge : first.gauges) {
    if (gauge.name == "uptime_seconds") uptime = &gauge;
  }
  ASSERT_NE(uptime, nullptr) << "uptime_seconds gauge not registered";
  EXPECT_GE(uptime->value, 0.0);
  EXPECT_FALSE(uptime->help.empty());
  // The gauge refreshes on every snapshot and is monotone in process time.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const MetricsSnapshot second = snapshot();
  for (const GaugeValue& gauge : second.gauges) {
    if (gauge.name == "uptime_seconds") {
      EXPECT_GT(gauge.value, uptime->value);
    }
  }
  // And it surfaces through both exposition formats.
  EXPECT_NE(to_prometheus(second).find("uptime_seconds"), std::string::npos);
  EXPECT_NE(to_json(second).find("\"uptime_seconds\""), std::string::npos);
}

TEST(Exposition, JsonShapeParsesAndCarriesValues) {
  auto& c = MetricsRegistry::global().counter("obs_test.json_counter");
  c.inc(3);
  const std::string text = to_json(snapshot());
  // Structural spot-checks (no JSON parser in the test deps): the three
  // top-level arrays and the counter we just bumped.
  EXPECT_EQ(text.front(), '{');
  const auto last = text.find_last_not_of(" \n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(text[last], '}');
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.json_counter\""), std::string::npos);
  // Snapshot is sorted by (name, label value), so exposition order is
  // deterministic; labeled series of one family share a name.
  const auto snap = snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    if (snap.counters[i - 1].name == snap.counters[i].name) {
      EXPECT_LT(snap.counters[i - 1].label_value,
                snap.counters[i].label_value);
    } else {
      EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
    }
  }
}

// --- Labeled families -------------------------------------------------------

TEST(MetricsFamily, RegistrationIsIdempotentAndChecked) {
  auto& a = MetricsRegistry::global().counter_family("obs_test.family_reg",
                                                     "campaign");
  auto& b = MetricsRegistry::global().counter_family("obs_test.family_reg",
                                                     "campaign");
  EXPECT_EQ(&a, &b);
  // Same name, different label key: a schema bug, not a new family.
  EXPECT_THROW(MetricsRegistry::global().counter_family("obs_test.family_reg",
                                                        "shard"),
               std::exception);
  // Same name, different kind.
  EXPECT_THROW(
      MetricsRegistry::global().gauge_family("obs_test.family_reg",
                                             "campaign"),
      std::exception);
  EXPECT_THROW(MetricsRegistry::global().counter("obs_test.family_reg"),
               std::exception);
}

TEST(MetricsFamily, SameLabelReturnsSameInstrument) {
  auto& family = MetricsRegistry::global().counter_family(
      "obs_test.family_identity", "campaign");
  auto& one = family.at("17");
  auto& two = family.at("17");
  EXPECT_EQ(&one, &two);
  EXPECT_NE(&family.at("17"), &family.at("18"));
}

TEST(MetricsFamily, CardinalityCapEvictsIntoOverflowConservingTotals) {
  auto& family = MetricsRegistry::global().counter_family(
      "obs_test.family_cap", "campaign", "cap test", /*max_series=*/4);
  family.at("a").inc(1);
  family.at("b").inc(2);
  family.at("c").inc(3);
  family.at("d").inc(4);
  // Flood far past the cap: every new label recycles the least-recently
  // touched series into the reserved overflow slot.
  for (int i = 0; i < 100; ++i) {
    family.at("flood" + std::to_string(i)).inc(1);
  }
  EXPECT_GT(family.evictions(), 0u);
  // At most max_series live labels plus the overflow series.
  EXPECT_LE(family.series_count(), 5u);
  std::vector<std::pair<std::string, const Counter*>> series;
  family.collect(series);
  std::uint64_t total = 0;
  bool overflow_seen = false;
  for (const auto& [label, counter] : series) {
    total += counter->value();
    if (label == std::string(kOverflowLabel)) overflow_seen = true;
  }
  // Eviction folds counts into `_other` instead of losing them.
  EXPECT_EQ(total, 1u + 2u + 3u + 4u + 100u);
  EXPECT_TRUE(overflow_seen);
}

TEST(MetricsFamily, HistogramEvictionConservesCountAndSum) {
  auto& family = MetricsRegistry::global().histogram_family(
      "obs_test.family_hist_cap", "campaign", "cap test", /*max_series=*/2);
  family.at("a").record(1.5);
  family.at("a").record(2.5);
  family.at("b").record(4.0);
  family.at("c").record(8.0);  // evicts the LRU series into _other
  family.at("d").record(16.0);
  std::vector<std::pair<std::string, const Histogram*>> series;
  family.collect(series);
  std::uint64_t count = 0;
  double sum = 0.0;
  for (const auto& [label, histogram] : series) {
    count += histogram->count();
    sum += histogram->sum();
  }
  EXPECT_EQ(count, 5u);
  EXPECT_DOUBLE_EQ(sum, 32.0);
  EXPECT_GT(family.evictions(), 0u);
}

TEST(MetricsFamily, EightThreadLabeledHammerIsExact) {
  auto& family = MetricsRegistry::global().counter_family(
      "obs_test.family_hammer", "worker");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&family, t] {
      const std::string label = std::to_string(t % 4);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        family.at(label).inc();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int label = 0; label < 4; ++label) {
    EXPECT_EQ(family.at(std::to_string(label)).value(), 2 * kPerThread);
  }
}

TEST(MetricsAllocation, FamilyLookupOfExistingLabelAllocatesNothing) {
  auto& family = MetricsRegistry::global().counter_family(
      "obs_test.family_zero_alloc", "campaign");
  family.at("7").inc();  // materialize the series and warm the stripe
  const std::uint64_t allocs = count_allocations([&] {
    for (int i = 0; i < 1000; ++i) family.at("7").inc();
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(Exposition, LabeledSeriesRenderPrometheusLabelSets) {
  auto& counters = MetricsRegistry::global().counter_family(
      "obs_test.labeled_counter", "campaign", "labeled counter");
  counters.at("7").inc(3);
  counters.at("esc\"ape\\me").inc(1);
  auto& hists = MetricsRegistry::global().histogram_family(
      "obs_test.labeled_hist", "campaign", "labeled histogram");
  hists.at("7").record(1.5);
  const std::string text = to_prometheus(snapshot());
  EXPECT_NE(text.find("obs_test_labeled_counter_total{campaign=\"7\"} 3"),
            std::string::npos);
  // Label values are escaped per the exposition format.
  EXPECT_NE(
      text.find(
          "obs_test_labeled_counter_total{campaign=\"esc\\\"ape\\\\me\"} 1"),
      std::string::npos);
  // Labeled histograms weave the family label into every bucket line.
  EXPECT_NE(text.find("obs_test_labeled_hist_bucket{campaign=\"7\",le=\""),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_labeled_hist_bucket{campaign=\"7\",le=\"+Inf"
                      "\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_labeled_hist_count{campaign=\"7\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_labeled_hist_sum{campaign=\"7\"} 1.5"),
            std::string::npos);
  // HELP/TYPE headers appear once per family, not once per series.
  const std::string help_line =
      "# HELP obs_test_labeled_counter_total labeled counter";
  const std::size_t first = text.find(help_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(help_line, first + 1), std::string::npos);
  // And the JSON exposition carries the label object.
  const std::string json = to_json(snapshot());
  EXPECT_NE(json.find("\"labels\": {\"campaign\": \"7\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace sybiltd::obs
