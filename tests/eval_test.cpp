// Tests for src/eval: metrics, scenario adapters, the paper-example data,
// and the experiment runner.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/adapters.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/paper_example.h"

namespace sybiltd::eval {
namespace {

TEST(Metrics, MaeAndRmseKnownValues) {
  const std::vector<double> est{1.0, 2.0, 3.0};
  const std::vector<double> truth{1.0, 4.0, 7.0};
  EXPECT_NEAR(mean_absolute_error(est, truth), 2.0, 1e-12);
  EXPECT_NEAR(root_mean_squared_error(est, truth),
              std::sqrt((0.0 + 4.0 + 16.0) / 3.0), 1e-12);
  EXPECT_NEAR(max_absolute_error(est, truth), 4.0, 1e-12);
}

TEST(Metrics, SkipsNanEstimates) {
  const std::vector<double> est{1.0, std::nan(""), 5.0};
  const std::vector<double> truth{2.0, 100.0, 5.0};
  EXPECT_NEAR(mean_absolute_error(est, truth), 0.5, 1e-12);
}

TEST(Metrics, EmptyAndMismatched) {
  EXPECT_EQ(mean_absolute_error({}, {}), 0.0);
  const std::vector<double> a{1.0};
  EXPECT_THROW(mean_absolute_error(a, {}), std::invalid_argument);
}

TEST(Metrics, SybilWeightShare) {
  const std::vector<double> weights{1.0, 1.0, 2.0};
  const std::vector<bool> flags{false, true, true};
  EXPECT_NEAR(sybil_weight_share(weights, flags), 3.0 / 4.0, 1e-12);
  // No sybil accounts.
  EXPECT_NEAR(sybil_weight_share(weights, {false, false, false}), 0.0,
              1e-12);
  // Degenerate all-zero weights.
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_EQ(sybil_weight_share(zeros, {true, false}), 0.0);
  const std::vector<double> one{1.0};
  EXPECT_THROW(sybil_weight_share(one, {true, false}),
               std::invalid_argument);
  const std::vector<double> negative{-1.0};
  EXPECT_THROW(sybil_weight_share(negative, {true}), std::invalid_argument);
}

TEST(PaperExample, StructureMatchesTables) {
  const auto obs = paper_example_observations();
  EXPECT_EQ(obs.account_count(), 6u);
  EXPECT_EQ(obs.task_count(), 4u);
  // Spot-check Table I cells.
  EXPECT_NEAR(obs.value(0, 0).value(), -84.48, 1e-9);
  EXPECT_NEAR(obs.value(2, 1).value(), -91.49, 1e-9);
  EXPECT_FALSE(obs.has(1, 0));
  EXPECT_FALSE(obs.has(3, 1));
  EXPECT_NEAR(obs.value(5, 3).value(), -50.0, 1e-9);
  const auto clean = paper_example_observations_no_attack();
  EXPECT_EQ(clean.account_count(), 3u);

  const auto input = paper_example_input();
  EXPECT_EQ(input.accounts.size(), 6u);
  // Account 1's first report is T1 at 10:00:35 -> 10.00972h.
  EXPECT_EQ(input.accounts[0].reports.front().task, 0u);
  EXPECT_NEAR(input.accounts[0].reports.front().timestamp_hours,
              10.0 + 35.0 / 3600.0, 1e-9);
  // Reports are in timestamp order.
  for (const auto& account : input.accounts) {
    for (std::size_t r = 1; r < account.reports.size(); ++r) {
      EXPECT_LT(account.reports[r - 1].timestamp_hours,
                account.reports[r].timestamp_hours);
    }
  }
  EXPECT_EQ(paper_example_user_labels(),
            (std::vector<std::size_t>{0, 1, 2, 3, 3, 3}));
}

TEST(Adapters, ObservationTableMatchesScenario) {
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.5, 21));
  const auto table = to_observation_table(data);
  EXPECT_EQ(table.account_count(), data.accounts.size());
  EXPECT_EQ(table.task_count(), data.tasks.size());
  std::size_t total_reports = 0;
  for (const auto& a : data.accounts) total_reports += a.reports.size();
  EXPECT_EQ(table.observation_count(), total_reports);
  // Spot-check one value.
  const auto& first = data.accounts.front().reports.front();
  EXPECT_NEAR(table.value(0, first.task).value(), first.value, 1e-12);
}

TEST(Adapters, FrameworkInputConvertsSecondsToHours) {
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.5, 22));
  const auto input = to_framework_input(data);
  EXPECT_EQ(input.task_count, data.tasks.size());
  ASSERT_EQ(input.accounts.size(), data.accounts.size());
  const auto& report = data.accounts[0].reports[0];
  EXPECT_NEAR(input.accounts[0].reports[0].timestamp_hours,
              report.timestamp_s / 3600.0, 1e-12);
  EXPECT_EQ(input.accounts[0].fingerprint,
            data.accounts[0].fingerprint);
}

TEST(Experiment, MethodNamesAreUnique) {
  std::set<std::string> names;
  for (Method m : {Method::kCrh, Method::kTdFp, Method::kTdTs,
                   Method::kTdTr, Method::kTdOracle, Method::kMean,
                   Method::kMedian, Method::kCatd, Method::kGtm,
                   Method::kTruthFinder}) {
    EXPECT_TRUE(names.insert(method_name(m)).second);
  }
  EXPECT_EQ(grouping_method_name(GroupingMethod::kAgTr), "AG-TR");
}

TEST(Experiment, AllMethodsRunOnScenario) {
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.5, 23));
  for (Method m : {Method::kCrh, Method::kTdFp, Method::kTdTs,
                   Method::kTdTr, Method::kTdOracle, Method::kMean,
                   Method::kMedian, Method::kCatd, Method::kGtm,
                   Method::kTruthFinder}) {
    const MethodRun run = run_method(m, data);
    EXPECT_EQ(run.truths.size(), 10u) << method_name(m);
    EXPECT_GE(run.mae, 0.0) << method_name(m);
    EXPECT_GE(run.rmse, run.mae - 1e-9) << method_name(m);
  }
}

TEST(Experiment, OracleGroupingHasPerfectAri) {
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.5, 24));
  const GroupingRun run = run_grouping(GroupingMethod::kOracle, data);
  EXPECT_NEAR(run.ari, 1.0, 1e-12);
}

TEST(Experiment, FrameworkBeatsCrhUnderStrongAttack) {
  double crh = 0.0, tr = 0.0;
  for (std::uint64_t seed : {31ull, 32ull, 33ull}) {
    const auto data =
        mcs::generate_scenario(mcs::make_paper_scenario(0.5, 1.0, seed));
    crh += run_method(Method::kCrh, data).mae;
    tr += run_method(Method::kTdTr, data).mae;
  }
  EXPECT_LT(tr, crh * 0.5);
}

TEST(Experiment, SweepsReturnOnePointPerActiveness) {
  const std::vector<double> sybil{0.2, 0.6};
  const auto ari =
      sweep_ari(GroupingMethod::kAgTr, 0.5, sybil, 1, 41);
  EXPECT_EQ(ari.size(), 2u);
  for (double a : ari) {
    EXPECT_GE(a, -1.0);
    EXPECT_LE(a, 1.0);
  }
  const auto mae = sweep_mae(Method::kCrh, 0.5, sybil, 1, 41);
  EXPECT_EQ(mae.size(), 2u);
  EXPECT_LT(mae[0], mae[1]);  // more Sybil activeness, more damage
  EXPECT_THROW(sweep_mae(Method::kCrh, 0.5, sybil, 0, 41),
               std::invalid_argument);
}

}  // namespace
}  // namespace sybiltd::eval
