// Tests for the attacker-evasion extension: evasion knobs change the
// generated campaign in the intended ways, and the detection/effectiveness
// trade-off points the right direction.
#include <gtest/gtest.h>

#include <set>

#include "eval/adapters.h"
#include "eval/experiment.h"
#include "ml/clustering_metrics.h"
#include "mcs/scenario.h"

namespace sybiltd::mcs {
namespace {

ScenarioConfig evading_config(EvasionConfig evasion, std::uint64_t seed) {
  auto config = make_paper_scenario(0.5, 0.8, seed);
  for (auto& attacker : config.attackers) attacker.evasion = evasion;
  return config;
}

TEST(Evasion, TaskDropoutDiversifiesSybilTaskSets) {
  EvasionConfig evasion;
  evasion.task_dropout = 0.4;
  const auto data = generate_scenario(evading_config(evasion, 1));
  // Attack-I accounts should no longer all share one task set.
  std::set<std::set<std::size_t>> distinct_sets;
  for (const auto& account : data.accounts) {
    if (!account.is_sybil || !account.name.starts_with("A1")) continue;
    std::set<std::size_t> tasks;
    for (const auto& r : account.reports) tasks.insert(r.task);
    EXPECT_GE(tasks.size(), 1u);  // dropout keeps at least one report
    distinct_sets.insert(std::move(tasks));
  }
  EXPECT_GT(distinct_sets.size(), 1u);
}

TEST(Evasion, TimestampJitterSpreadsSchedules) {
  EvasionConfig evasion;
  evasion.timestamp_jitter_s = 1800.0;
  const auto jittered = generate_scenario(evading_config(evasion, 2));
  const auto plain = generate_scenario(evading_config({}, 2));
  // Max spread of the Attack-I accounts' first-report times grows.
  auto spread = [](const ScenarioData& data) {
    double lo = 1e18, hi = -1e18;
    for (const auto& account : data.accounts) {
      if (!account.is_sybil || !account.name.starts_with("A1")) continue;
      if (account.reports.empty()) continue;
      lo = std::min(lo, account.reports.front().timestamp_s);
      hi = std::max(hi, account.reports.front().timestamp_s);
    }
    return hi - lo;
  };
  EXPECT_GT(spread(jittered), spread(plain));
}

TEST(Evasion, ValueJitterSpreadsSubmittedValues) {
  EvasionConfig evasion;
  evasion.value_jitter = 5.0;
  const auto data = generate_scenario(evading_config(evasion, 3));
  double lo = 1e18, hi = -1e18;
  for (const auto& account : data.accounts) {
    if (!account.is_sybil) continue;
    for (const auto& r : account.reports) {
      lo = std::min(lo, r.value);
      hi = std::max(hi, r.value);
    }
  }
  EXPECT_GT(hi - lo, 4.0);  // plain attack stays within ~target +- 2
}

TEST(Evasion, TimestampJitterDegradesAgTrDetection) {
  double ari_plain = 0.0, ari_evading = 0.0;
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const auto plain = generate_scenario(evading_config({}, seed));
    EvasionConfig evasion;
    evasion.timestamp_jitter_s = 3600.0;
    const auto evading = generate_scenario(evading_config(evasion, seed));
    ari_plain +=
        eval::run_grouping(eval::GroupingMethod::kAgTr, plain).ari;
    ari_evading +=
        eval::run_grouping(eval::GroupingMethod::kAgTr, evading).ari;
  }
  EXPECT_GT(ari_plain, ari_evading);
}

TEST(Evasion, DropoutWeakensTheAttackItself) {
  // Even if dropout helps evade AG-TS, it shrinks the attack's coverage,
  // so the damage to plain CRH is smaller.
  double mae_plain = 0.0, mae_evading = 0.0;
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    const auto plain = generate_scenario(evading_config({}, seed));
    EvasionConfig evasion;
    evasion.task_dropout = 0.6;
    const auto evading = generate_scenario(evading_config(evasion, seed));
    mae_plain += eval::run_method(eval::Method::kCrh, plain).mae;
    mae_evading += eval::run_method(eval::Method::kCrh, evading).mae;
  }
  EXPECT_LT(mae_evading, mae_plain);
}

TEST(Evasion, FingerprintGroupingUnaffectedByBehavioralEvasion) {
  // AG-FP keys on hardware, not behaviour: evasion of the behavioral
  // methods leaves its ARI essentially unchanged.
  const auto plain = generate_scenario(evading_config({}, 31));
  EvasionConfig evasion;
  evasion.timestamp_jitter_s = 3600.0;
  evasion.task_dropout = 0.5;
  const auto evading = generate_scenario(evading_config(evasion, 31));
  const double a = eval::run_grouping(eval::GroupingMethod::kAgFp, plain).ari;
  const double b =
      eval::run_grouping(eval::GroupingMethod::kAgFp, evading).ari;
  EXPECT_NEAR(a, b, 0.25);
}

TEST(Evasion, PinnedHomeAndStartAreHonored) {
  ScenarioConfig config = make_paper_scenario(0.5, 0.5, 41);
  config.legit_users[0].home = Point{100.0, 100.0};
  config.legit_users[0].start_time_s = 1234.0;
  const auto data = generate_scenario(config);
  ASSERT_FALSE(data.accounts[0].reports.empty());
  EXPECT_NEAR(data.accounts[0].reports.front().timestamp_s, 1234.0, 1e-9);
}

}  // namespace
}  // namespace sybiltd::mcs
