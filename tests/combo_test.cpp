// Tests for grouping combination (partition meet/join, AgCombo) and the
// alternative AG-FP clustering backends.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/ag_combo.h"
#include "core/ag_fp.h"
#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "eval/adapters.h"
#include "eval/paper_example.h"
#include "ml/clustering_metrics.h"
#include "mcs/scenario.h"

namespace sybiltd::core {
namespace {

AccountGrouping from(std::initializer_list<std::size_t> labels) {
  return AccountGrouping::from_labels(std::vector<std::size_t>(labels));
}

TEST(PartitionMeet, IntersectsGroups) {
  // a: {0,1,2},{3} ; b: {0,1},{2,3} -> meet: {0,1},{2},{3}
  const auto meet = partition_meet(from({0, 0, 0, 1}), from({0, 0, 1, 1}));
  EXPECT_EQ(meet.group_count(), 3u);
  EXPECT_EQ(meet.group_of(0), meet.group_of(1));
  EXPECT_NE(meet.group_of(1), meet.group_of(2));
  EXPECT_NE(meet.group_of(2), meet.group_of(3));
}

TEST(PartitionJoin, UnionsTransitively) {
  // a: {0,1},{2},{3} ; b: {0},{1,2},{3} -> join chains 0-1-2: {0,1,2},{3}
  const auto join = partition_join(from({0, 0, 1, 2}), from({0, 1, 1, 2}));
  EXPECT_EQ(join.group_count(), 2u);
  EXPECT_EQ(join.group_of(0), join.group_of(2));
  EXPECT_NE(join.group_of(0), join.group_of(3));
}

TEST(PartitionOps, IdentityLaws) {
  const auto p = from({0, 1, 1, 2, 0});
  const auto singles = AccountGrouping::singletons(5);
  // meet with itself = itself; join with singletons = itself.
  EXPECT_EQ(partition_meet(p, p).labels(), p.labels());
  EXPECT_EQ(partition_join(p, singles).labels(), p.labels());
  // meet with singletons = singletons.
  EXPECT_EQ(partition_meet(p, singles).group_count(), 5u);
}

TEST(PartitionOps, RejectSizeMismatch) {
  EXPECT_THROW(partition_meet(from({0, 1}), from({0, 1, 2})),
               std::invalid_argument);
  EXPECT_THROW(partition_join(from({0}), from({0, 0})),
               std::invalid_argument);
}

TEST(AgCombo, MeetIsConservativeJoinIsAggressive) {
  const auto input = eval::paper_example_input();
  auto ts = std::make_shared<AgTs>();
  auto tr = std::make_shared<AgTr>();
  const AgCombo meet({ts, tr}, ComboMode::kMeet);
  const AgCombo join({ts, tr}, ComboMode::kJoin);
  const auto meet_g = meet.group(input);
  const auto join_g = join.group(input);
  // Both still isolate the Sybil trio (both methods agree on it).
  EXPECT_EQ(meet_g.group_of(3), meet_g.group_of(4));
  EXPECT_EQ(join_g.group_of(3), join_g.group_of(5));
  // Meet has at least as many groups as either input; join at most.
  const auto ts_g = ts->group(input);
  const auto tr_g = tr->group(input);
  EXPECT_GE(meet_g.group_count(),
            std::max(ts_g.group_count(), tr_g.group_count()));
  EXPECT_LE(join_g.group_count(),
            std::min(ts_g.group_count(), tr_g.group_count()));
  EXPECT_NE(meet.name().find("meet"), std::string::npos);
  EXPECT_NE(join.name().find("AG-TR"), std::string::npos);
}

TEST(AgCombo, RejectsEmptyOrNull) {
  EXPECT_THROW(AgCombo({}, ComboMode::kMeet), std::invalid_argument);
  EXPECT_THROW(AgCombo({nullptr}, ComboMode::kJoin), std::invalid_argument);
}

TEST(AgCombo, MeetOfThreeMethodsOnScenario) {
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.8, 77));
  const auto input = eval::to_framework_input(data);
  const AgCombo combo({std::make_shared<AgFp>(), std::make_shared<AgTs>(),
                       std::make_shared<AgTr>()},
                      ComboMode::kMeet);
  const auto grouping = combo.group(input);
  // Valid partition of all accounts.
  EXPECT_EQ(grouping.account_count(), data.accounts.size());
  // The meet never has false positives that all three methods do not share:
  // its pairwise precision is at least AG-TR's.
  const auto tr_grouping = AgTr().group(input);
  const auto truth = data.true_user_labels();
  const auto combo_scores =
      ml::pairwise_scores(grouping.labels(), truth);
  const auto tr_scores = ml::pairwise_scores(tr_grouping.labels(), truth);
  EXPECT_GE(combo_scores.precision + 1e-9, tr_scores.precision);
}

// --- AG-FP clustering backends -------------------------------------------

class AgFpBackend : public ::testing::TestWithParam<FpClustering> {};

TEST_P(AgFpBackend, GroupsAttackOneAccountsTogether) {
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.5, 55));
  const auto input = eval::to_framework_input(data);
  AgFpOptions opt;
  opt.clustering = GetParam();
  const auto grouping = AgFp(opt).group(input);
  EXPECT_EQ(grouping.account_count(), 18u);
  // Attack-I accounts (8..12, same physical phone) should mostly share a
  // group: count the largest subset in one group.
  std::map<std::size_t, int> counts;
  for (std::size_t i = 8; i < 13; ++i) ++counts[grouping.group_of(i)];
  int largest = 0;
  for (const auto& [group, count] : counts) largest = std::max(largest, count);
  EXPECT_GE(largest, 4) << "backend " << static_cast<int>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Backends, AgFpBackend,
                         ::testing::Values(FpClustering::kKMeansElbow,
                                           FpClustering::kAgglomerative,
                                           FpClustering::kDbscan));

}  // namespace
}  // namespace sybiltd::core
