// Randomized property tests of the end-to-end framework invariants:
// bounded truths, permutation invariance, grouping-partition validity,
// monotone damage, and sweep-stat consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "core/framework.h"
#include "eval/adapters.h"
#include "eval/experiment.h"

namespace sybiltd {
namespace {

class FrameworkProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  mcs::ScenarioData make_data() const {
    Rng rng(GetParam());
    const double legit = rng.uniform(0.2, 1.0);
    const double sybil = rng.uniform(0.2, 1.0);
    return mcs::generate_scenario(
        mcs::make_paper_scenario(legit, sybil, GetParam()));
  }
};

TEST_P(FrameworkProperties, TruthsStayWithinObservedRange) {
  const auto data = make_data();
  const auto input = eval::to_framework_input(data);
  double lo = 1e18, hi = -1e18;
  for (const auto& account : input.accounts) {
    for (const auto& report : account.reports) {
      lo = std::min(lo, report.value);
      hi = std::max(hi, report.value);
    }
  }
  for (auto method : {eval::Method::kCrh, eval::Method::kTdFp,
                      eval::Method::kTdTs, eval::Method::kTdTr}) {
    const auto run = eval::run_method(method, data);
    for (double truth : run.truths) {
      if (std::isnan(truth)) continue;
      EXPECT_GE(truth, lo - 1e-6) << eval::method_name(method);
      EXPECT_LE(truth, hi + 1e-6) << eval::method_name(method);
    }
  }
}

TEST_P(FrameworkProperties, GroupingsArePartitions) {
  const auto data = make_data();
  const auto input = eval::to_framework_input(data);
  for (auto method : {eval::GroupingMethod::kAgFp,
                      eval::GroupingMethod::kAgTs,
                      eval::GroupingMethod::kAgTr}) {
    const auto grouping = eval::run_grouping(method, data).grouping;
    // AccountGrouping's constructor validates the partition; check the
    // external view too: labels cover all accounts and group_of matches.
    const auto labels = grouping.labels();
    ASSERT_EQ(labels.size(), data.accounts.size());
    std::size_t total = 0;
    for (const auto& group : grouping.groups()) total += group.size();
    EXPECT_EQ(total, data.accounts.size());
  }
}

TEST_P(FrameworkProperties, AccountPermutationInvariance) {
  // Shuffling the order in which accounts are handed to the framework must
  // not change the estimated truths (AG-TR grouping is order-independent).
  const auto data = make_data();
  auto input = eval::to_framework_input(data);
  const auto baseline =
      core::run_framework(input, core::AgTr()).truths;

  Rng rng(GetParam() ^ 0xabcdef);
  std::vector<std::size_t> perm(input.accounts.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);
  core::FrameworkInput shuffled;
  shuffled.task_count = input.task_count;
  for (std::size_t i : perm) shuffled.accounts.push_back(input.accounts[i]);
  const auto permuted =
      core::run_framework(shuffled, core::AgTr()).truths;
  for (std::size_t j = 0; j < baseline.size(); ++j) {
    if (std::isnan(baseline[j])) {
      EXPECT_TRUE(std::isnan(permuted[j]));
    } else {
      EXPECT_NEAR(baseline[j], permuted[j], 1e-9) << "task " << j;
    }
  }
}

TEST_P(FrameworkProperties, RemovingSybilAccountsOnlyHelpsCrh) {
  // CRH on the campaign with all Sybil accounts stripped is the clean
  // reference; CRH with them present must be at least as bad.
  const auto data = make_data();
  mcs::ScenarioData clean = data;
  clean.accounts.erase(
      std::remove_if(clean.accounts.begin(), clean.accounts.end(),
                     [](const mcs::AccountRecord& a) { return a.is_sybil; }),
      clean.accounts.end());
  const double attacked = eval::run_method(eval::Method::kCrh, data).mae;
  const double stripped = eval::run_method(eval::Method::kCrh, clean).mae;
  EXPECT_GE(attacked + 1e-9, stripped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameworkProperties,
                         ::testing::Values(9001, 9002, 9003, 9004, 9005,
                                           9006));

TEST(SweepStats, MeanMatchesPlainSweepAndStddevSane) {
  const std::vector<double> sybil{0.4, 0.8};
  const auto plain =
      eval::sweep_mae(eval::Method::kCrh, 0.5, sybil, 3, 77);
  const auto stats =
      eval::sweep_mae_stats(eval::Method::kCrh, 0.5, sybil, 3, 77);
  ASSERT_EQ(stats.size(), plain.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_NEAR(stats[i].mean, plain[i], 1e-9);
    EXPECT_GE(stats[i].stddev, 0.0);
  }
  // Single seed -> zero stddev.
  const auto single =
      eval::sweep_ari_stats(eval::GroupingMethod::kAgTr, 0.5, sybil, 1, 77);
  for (const auto& stat : single) EXPECT_EQ(stat.stddev, 0.0);
}

}  // namespace
}  // namespace sybiltd
