// Tests for categorical truth discovery (majority vote, categorical CRH,
// Dawid–Skene) and the Sybil-resistant categorical framework.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ag_tr.h"
#include "core/categorical_framework.h"
#include "truth/categorical.h"

namespace sybiltd::truth {
namespace {

// Synthetic labeling campaign: `accounts` annotators of given accuracies
// label `tasks` tasks with `labels` classes; truth uniform.
struct SyntheticLabels {
  CategoricalTable table;
  std::vector<std::size_t> truth;
};

SyntheticLabels make_labels(const std::vector<double>& accuracies,
                            std::size_t tasks, std::size_t labels,
                            std::uint64_t seed) {
  Rng rng(seed);
  SyntheticLabels out{
      CategoricalTable(accuracies.size(), tasks, labels), {}};
  out.truth.resize(tasks);
  for (auto& t : out.truth) t = rng.uniform_index(labels);
  for (std::size_t i = 0; i < accuracies.size(); ++i) {
    for (std::size_t j = 0; j < tasks; ++j) {
      std::size_t label = out.truth[j];
      if (!rng.bernoulli(accuracies[i])) {
        // A wrong label, uniform among the others.
        label = (label + 1 + rng.uniform_index(labels - 1)) % labels;
      }
      out.table.add(i, j, label);
    }
  }
  return out;
}

double accuracy(const std::vector<std::size_t>& estimated,
                const std::vector<std::size_t>& truth) {
  std::size_t correct = 0;
  for (std::size_t j = 0; j < truth.size(); ++j) {
    if (estimated[j] == truth[j]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

TEST(CategoricalTable, BasicsAndValidation) {
  CategoricalTable t(2, 3, 4);
  t.add(0, 0, 2);
  t.add(1, 0, 3);
  EXPECT_EQ(t.observation_count(), 2u);
  EXPECT_EQ(t.label(0, 0).value(), 2u);
  EXPECT_FALSE(t.label(0, 1).has_value());
  EXPECT_THROW(t.add(0, 0, 1), std::invalid_argument);  // duplicate
  EXPECT_THROW(t.add(0, 1, 4), std::invalid_argument);  // label range
  EXPECT_THROW(t.add(2, 1, 0), std::invalid_argument);  // account range
  EXPECT_THROW(CategoricalTable(1, 1, 1), std::invalid_argument);
}

TEST(MajorityVote, PluralityAndTies) {
  CategoricalTable t(4, 2, 3);
  t.add(0, 0, 1);
  t.add(1, 0, 1);
  t.add(2, 0, 2);
  // Task 1: tie between 0 and 2 -> smallest label wins.
  t.add(0, 1, 2);
  t.add(1, 1, 0);
  const auto result = MajorityVote().run(t);
  EXPECT_EQ(result.labels[0], 1u);
  EXPECT_EQ(result.labels[1], 0u);
}

TEST(MajorityVote, UnobservedTaskIsNoLabel) {
  CategoricalTable t(1, 2, 2);
  t.add(0, 0, 1);
  const auto result = MajorityVote().run(t);
  EXPECT_EQ(result.labels[1], kNoLabel);
}

TEST(CategoricalCrh, BeatsMajorityWithUnreliableAnnotators) {
  double crh_total = 0.0, mv_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    // Three good annotators, four coin-flippers.
    const auto data = make_labels({0.95, 0.95, 0.95, 0.3, 0.3, 0.3, 0.3},
                                  40, 3, 100 + seed);
    crh_total += accuracy(CategoricalCrh().run(data.table).labels,
                          data.truth);
    mv_total += accuracy(MajorityVote().run(data.table).labels, data.truth);
  }
  EXPECT_GT(crh_total, mv_total + 0.5);
  EXPECT_GT(crh_total / 10.0, 0.9);
}

TEST(CategoricalCrh, WeightsOrderedByAccuracy) {
  const auto data = make_labels({0.95, 0.7, 0.4}, 60, 3, 7);
  const auto result = CategoricalCrh().run(data.table);
  EXPECT_GT(result.account_weights[0], result.account_weights[1]);
  EXPECT_GT(result.account_weights[1], result.account_weights[2]);
}

TEST(DawidSkene, RecoversTruthAndAccuracies) {
  const auto data = make_labels({0.9, 0.85, 0.8, 0.75, 0.35}, 80, 4, 9);
  const DawidSkene ds;
  const auto result = ds.run(data.table);
  EXPECT_GT(accuracy(result.labels, data.truth), 0.9);
  // Estimated account accuracy ranks the good above the bad annotator.
  EXPECT_GT(result.account_weights[0], result.account_weights[4]);
}

TEST(DawidSkene, HandlesAdversarialAnnotator) {
  // A systematic liar (accuracy 0 on binary labels) is *informative* to
  // Dawid-Skene (it learns the flipped confusion matrix) but poison to
  // majority vote.
  Rng rng(11);
  CategoricalTable t(5, 60, 2);
  std::vector<std::size_t> truth(60);
  for (std::size_t j = 0; j < 60; ++j) {
    truth[j] = rng.uniform_index(2);
    for (std::size_t i = 0; i < 3; ++i) {
      t.add(i, j, rng.bernoulli(0.8) ? truth[j] : 1 - truth[j]);
    }
    t.add(3, j, 1 - truth[j]);  // inverted annotator
    t.add(4, j, 1 - truth[j]);  // inverted annotator
  }
  const auto ds = DawidSkene().run(t);
  const auto mv = MajorityVote().run(t);
  EXPECT_GT(accuracy(ds.labels, truth), accuracy(mv.labels, truth));
  EXPECT_GT(accuracy(ds.labels, truth), 0.85);
}

TEST(DawidSkene, PosteriorsNormalized) {
  const auto data = make_labels({0.9, 0.8}, 20, 3, 13);
  const auto posterior = DawidSkene().posteriors(data.table);
  for (const auto& row : posterior) {
    double total = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace sybiltd::truth

namespace sybiltd::core {
namespace {

using truth::kNoLabel;

// A categorical Sybil attack: honest accounts label mostly correctly; one
// attacker pushes a chosen wrong label from `sybil_accounts` accounts that
// share one trajectory.
struct CategoricalAttack {
  FrameworkInput input;
  std::vector<std::size_t> truth;
  std::size_t label_count = 3;
};

CategoricalAttack make_attack(std::size_t honest, std::size_t sybil_accounts,
                              std::uint64_t seed) {
  Rng rng(seed);
  CategoricalAttack out;
  const std::size_t tasks = 12;
  out.input.task_count = tasks;
  out.truth.resize(tasks);
  for (auto& t : out.truth) t = rng.uniform_index(out.label_count);

  for (std::size_t i = 0; i < honest; ++i) {
    AccountTrace trace;
    trace.name = "H" + std::to_string(i);
    double ts = rng.uniform(8.0, 12.0);
    std::vector<std::size_t> order(tasks);
    for (std::size_t j = 0; j < tasks; ++j) order[j] = j;
    rng.shuffle(order);
    for (std::size_t j : order) {
      ts += rng.uniform(0.05, 0.2);
      std::size_t label = out.truth[j];
      if (!rng.bernoulli(0.85)) {
        label = (label + 1) % out.label_count;
      }
      trace.reports.push_back({j, static_cast<double>(label), ts});
    }
    out.input.accounts.push_back(std::move(trace));
  }
  // Attacker: one walk, replayed accounts, always the wrong label "0"+1.
  std::vector<double> visit_times;
  double ts = 13.0;
  for (std::size_t j = 0; j < tasks; ++j) {
    ts += rng.uniform(0.05, 0.2);
    visit_times.push_back(ts);
  }
  for (std::size_t a = 0; a < sybil_accounts; ++a) {
    AccountTrace trace;
    trace.name = "S" + std::to_string(a);
    const double delay = static_cast<double>(a) * rng.uniform(0.01, 0.02);
    for (std::size_t j = 0; j < tasks; ++j) {
      const std::size_t wrong = (out.truth[j] + 1) % out.label_count;
      trace.reports.push_back(
          {j, static_cast<double>(wrong), visit_times[j] + delay});
    }
    out.input.accounts.push_back(std::move(trace));
  }
  return out;
}

double label_accuracy(const std::vector<std::size_t>& estimated,
                      const std::vector<std::size_t>& truth) {
  std::size_t correct = 0;
  for (std::size_t j = 0; j < truth.size(); ++j) {
    if (estimated[j] == truth[j]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

TEST(CategoricalFramework, ResistsLabelFlippingSybilAttack) {
  double framework_acc = 0.0, majority_acc = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    const auto attack = make_attack(5, 7, 900 + t);
    // Majority over accounts (vulnerable: 7 Sybil > 5 honest).
    truth::CategoricalTable table(attack.input.accounts.size(),
                                  attack.input.task_count,
                                  attack.label_count);
    for (std::size_t i = 0; i < attack.input.accounts.size(); ++i) {
      for (const auto& r : attack.input.accounts[i].reports) {
        table.add(i, r.task, static_cast<std::size_t>(r.value));
      }
    }
    majority_acc += label_accuracy(
        truth::MajorityVote().run(table).labels, attack.truth);
    const auto result = run_categorical_framework(
        attack.input, attack.label_count, AgTr());
    framework_acc += label_accuracy(result.labels, attack.truth);
  }
  framework_acc /= trials;
  majority_acc /= trials;
  EXPECT_LT(majority_acc, 0.5);   // the attack wins against plain voting
  EXPECT_GT(framework_acc, 0.8);  // the framework shrugs it off
}

TEST(CategoricalFramework, ValidatesInput) {
  FrameworkInput input;
  input.task_count = 1;
  AccountTrace trace;
  trace.reports.push_back({0, 0.5, 0.0});  // not an integral label
  input.accounts.push_back(trace);
  EXPECT_THROW(run_categorical_framework(
                   input, 2, AccountGrouping::singletons(1)),
               std::invalid_argument);
  EXPECT_THROW(run_categorical_framework(
                   input, 1, AccountGrouping::singletons(1)),
               std::invalid_argument);
}

TEST(CategoricalFramework, UncoveredTaskGetsNoLabel) {
  FrameworkInput input;
  input.task_count = 2;
  AccountTrace trace;
  trace.reports.push_back({0, 1.0, 0.0});
  input.accounts.push_back(trace);
  const auto result = run_categorical_framework(
      input, 3, AccountGrouping::singletons(1));
  EXPECT_EQ(result.labels[0], 1u);
  EXPECT_EQ(result.labels[1], kNoLabel);
}

TEST(CategoricalFramework, SybilGroupGetsLowWeight) {
  const auto attack = make_attack(5, 7, 77);
  const auto result = run_categorical_framework(
      attack.input, attack.label_count, AgTr());
  // The Sybil accounts share one group; find it and compare weights.
  const std::size_t sybil_group =
      result.grouping.group_of(attack.input.accounts.size() - 1);
  double max_other = 0.0;
  for (std::size_t k = 0; k < result.group_weights.size(); ++k) {
    if (k == sybil_group) continue;
    max_other = std::max(max_other, result.group_weights[k]);
  }
  EXPECT_LT(result.group_weights[sybil_group], max_other);
}

}  // namespace
}  // namespace sybiltd::core
