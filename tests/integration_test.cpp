// End-to-end integration tests asserting the paper's headline claims on
// full generated scenarios: CRH is vulnerable, the framework resists, and
// the expected orderings between methods hold.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/adapters.h"
#include "eval/experiment.h"
#include "ml/clustering_metrics.h"

namespace sybiltd::eval {
namespace {

// Average a method's MAE over several seeds at one activeness setting.
double avg_mae(Method m, double legit, double sybil, int seeds) {
  double total = 0.0;
  for (int s = 0; s < seeds; ++s) {
    const auto data = mcs::generate_scenario(
        mcs::make_paper_scenario(legit, sybil, 500 + 97 * s));
    total += run_method(m, data).mae;
  }
  return total / seeds;
}

double avg_ari(GroupingMethod g, double legit, double sybil, int seeds) {
  double total = 0.0;
  for (int s = 0; s < seeds; ++s) {
    const auto data = mcs::generate_scenario(
        mcs::make_paper_scenario(legit, sybil, 500 + 97 * s));
    total += run_grouping(g, data).ari;
  }
  return total / seeds;
}

TEST(Integration, CrhDegradesWithSybilActiveness) {
  const double low = avg_mae(Method::kCrh, 0.5, 0.2, 3);
  const double high = avg_mae(Method::kCrh, 0.5, 1.0, 3);
  EXPECT_GT(high, low + 5.0);
}

TEST(Integration, CrhImprovesWithLegitActiveness) {
  const double sparse = avg_mae(Method::kCrh, 0.2, 0.6, 3);
  const double dense = avg_mae(Method::kCrh, 1.0, 0.6, 3);
  EXPECT_LT(dense, sparse);
}

TEST(Integration, FrameworkBeatsCrhAcrossTheGrid) {
  // TD-FP and TD-TR beat CRH at every grid point; TD-TS everywhere except
  // the degenerate identical-task-set regime (legit activeness 1), where
  // the paper itself says to use AG-TR instead.
  for (double legit : {0.2, 0.5, 1.0}) {
    for (double sybil : {0.2, 0.6, 1.0}) {
      const double crh = avg_mae(Method::kCrh, legit, sybil, 2);
      EXPECT_LE(avg_mae(Method::kTdFp, legit, sybil, 2), crh + 0.5)
          << "TD-FP at " << legit << "," << sybil;
      EXPECT_LE(avg_mae(Method::kTdTr, legit, sybil, 2), crh + 0.5)
          << "TD-TR at " << legit << "," << sybil;
      if (legit < 0.99) {
        EXPECT_LE(avg_mae(Method::kTdTs, legit, sybil, 2), crh + 0.5)
            << "TD-TS at " << legit << "," << sybil;
      }
    }
  }
}

TEST(Integration, TdTrIsTheBestGroupedMethod) {
  double tr = 0.0, fp = 0.0;
  for (double sybil : {0.4, 0.8}) {
    tr += avg_mae(Method::kTdTr, 0.5, sybil, 3);
    fp += avg_mae(Method::kTdFp, 0.5, sybil, 3);
  }
  EXPECT_LT(tr, fp);
}

TEST(Integration, TdTrTracksOracle) {
  for (double sybil : {0.4, 1.0}) {
    const double tr = avg_mae(Method::kTdTr, 0.5, sybil, 3);
    const double oracle = avg_mae(Method::kTdOracle, 0.5, sybil, 3);
    EXPECT_LT(tr, oracle + 2.0) << "sybil " << sybil;
  }
}

TEST(Integration, AgTrAriExceedsAgTs) {
  double tr = 0.0, ts = 0.0;
  for (double sybil : {0.2, 0.6, 1.0}) {
    tr += avg_ari(GroupingMethod::kAgTr, 0.5, sybil, 2);
    ts += avg_ari(GroupingMethod::kAgTs, 0.5, sybil, 2);
  }
  EXPECT_GT(tr, ts);
}

TEST(Integration, AgTsAriRisesWithSybilActiveness) {
  // With more accomplished tasks, Sybil task sets clear the affinity
  // threshold and become groupable.
  const double low = avg_ari(GroupingMethod::kAgTs, 0.5, 0.2, 3);
  const double high = avg_ari(GroupingMethod::kAgTs, 0.5, 0.6, 3);
  EXPECT_GT(high, low);
}

TEST(Integration, AgTrAriIsHighEverywhere) {
  for (double legit : {0.2, 0.5, 1.0}) {
    for (double sybil : {0.2, 0.6, 1.0}) {
      EXPECT_GT(avg_ari(GroupingMethod::kAgTr, legit, sybil, 2), 0.55)
          << legit << "," << sybil;
    }
  }
}

TEST(Integration, HonestDuplicationAlsoMitigated) {
  // A rapacious attacker (duplicate honest data) inflates its weight under
  // CRH; the framework collapses the duplicates.  Truth estimates stay
  // accurate either way, but group weights should not reward duplication.
  auto config = mcs::make_paper_scenario(0.5, 0.8, 61);
  for (auto& atk : config.attackers) {
    atk.fabrication = mcs::Fabrication::kDuplicateHonest;
  }
  const auto data = mcs::generate_scenario(config);
  const auto crh = run_method(Method::kCrh, data);
  const auto tr = run_method(Method::kTdTr, data);
  // Honest duplicates do not corrupt values badly, so both MAEs are small.
  EXPECT_LT(crh.mae, 6.0);
  EXPECT_LT(tr.mae, 6.0);
}

TEST(Integration, FullPipelineIsDeterministic) {
  const auto run_once = [] {
    const auto data =
        mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.7, 71));
    return run_method(Method::kTdTr, data).truths;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, NoAttackersMeansAllMethodsAgree) {
  auto config = mcs::make_paper_scenario(0.8, 0.2, 81);
  config.attackers.clear();
  const auto data = mcs::generate_scenario(config);
  const auto crh = run_method(Method::kCrh, data);
  const auto tr = run_method(Method::kTdTr, data);
  EXPECT_LT(crh.mae, 3.5);
  EXPECT_LT(tr.mae, 3.5);
}

}  // namespace
}  // namespace sybiltd::eval
