// Tests for the extended ML substrate: agglomerative clustering, DBSCAN,
// and the silhouette / gap-statistic k-selection criteria.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "ml/agglomerative.h"
#include "ml/clustering_metrics.h"
#include "ml/dbscan.h"
#include "ml/kselect.h"

namespace sybiltd::ml {
namespace {

Matrix blobs3(std::size_t per_cluster, std::uint64_t seed,
              std::vector<std::size_t>* labels = nullptr,
              double sigma = 0.4) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {12, 0}, {0, 12}};
  Matrix data(3 * per_cluster, 2);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::size_t row = c * per_cluster + i;
      data(row, 0) = centers[c][0] + rng.normal(0.0, sigma);
      data(row, 1) = centers[c][1] + rng.normal(0.0, sigma);
      if (labels) labels->push_back(c);
    }
  }
  return data;
}

// --- agglomerative -----------------------------------------------------

TEST(Agglomerative, TargetClustersRecoverBlobs) {
  std::vector<std::size_t> truth;
  const Matrix data = blobs3(8, 1, &truth);
  AgglomerativeOptions opt;
  opt.target_clusters = 3;
  const auto result = agglomerative_cluster(data, opt);
  EXPECT_EQ(result.cluster_count, 3u);
  EXPECT_NEAR(adjusted_rand_index(result.labels, truth), 1.0, 1e-12);
}

TEST(Agglomerative, ThresholdStopsBeforeMergingBlobs) {
  std::vector<std::size_t> truth;
  const Matrix data = blobs3(6, 2, &truth);
  AgglomerativeOptions opt;
  opt.merge_threshold = 4.0;  // blob diameter << 4 << inter-blob distance
  const auto result = agglomerative_cluster(data, opt);
  EXPECT_EQ(result.cluster_count, 3u);
  EXPECT_NEAR(adjusted_rand_index(result.labels, truth), 1.0, 1e-12);
  // Merge heights recorded and non-decreasing for average linkage blobs.
  EXPECT_EQ(result.merge_distances.size(), data.rows() - 3);
}

TEST(Agglomerative, AllLinkagesAgreeOnSeparatedBlobs) {
  std::vector<std::size_t> truth;
  const Matrix data = blobs3(5, 3, &truth);
  for (auto linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    AgglomerativeOptions opt;
    opt.linkage = linkage;
    opt.target_clusters = 3;
    const auto result = agglomerative_cluster(data, opt);
    EXPECT_NEAR(adjusted_rand_index(result.labels, truth), 1.0, 1e-12);
  }
}

TEST(Agglomerative, SingleLinkageChains) {
  // A chain of points 1 apart with one big gap: single linkage keeps the
  // chain together, complete linkage may split it — classic difference.
  Matrix data(7, 1);
  for (std::size_t i = 0; i < 5; ++i) data(i, 0) = static_cast<double>(i);
  data(5, 0) = 50.0;
  data(6, 0) = 51.0;
  AgglomerativeOptions opt;
  opt.linkage = Linkage::kSingle;
  opt.merge_threshold = 2.0;
  const auto result = agglomerative_cluster(data, opt);
  EXPECT_EQ(result.cluster_count, 2u);
  EXPECT_EQ(result.labels[0], result.labels[4]);
  EXPECT_NE(result.labels[0], result.labels[5]);
}

TEST(Agglomerative, RequiresStoppingRule) {
  const Matrix data = blobs3(2, 4);
  EXPECT_THROW(agglomerative_cluster(data, {}), std::invalid_argument);
  EXPECT_THROW(agglomerative_cluster(Matrix{}, {}), std::invalid_argument);
}

TEST(Agglomerative, SingletonInput) {
  Matrix data(1, 2, 0.0);
  AgglomerativeOptions opt;
  opt.target_clusters = 1;
  const auto result = agglomerative_cluster(data, opt);
  EXPECT_EQ(result.cluster_count, 1u);
}

// --- DBSCAN --------------------------------------------------------------

TEST(Dbscan, RecoversBlobsWithoutK) {
  std::vector<std::size_t> truth;
  const Matrix data = blobs3(8, 5, &truth);
  DbscanOptions opt;
  opt.epsilon = 2.0;
  opt.min_points = 3;
  const auto result = dbscan(data, opt);
  EXPECT_EQ(result.cluster_count, 3u);
  EXPECT_NEAR(adjusted_rand_index(result.labels, truth), 1.0, 1e-12);
}

TEST(Dbscan, IsolatedPointIsNoise) {
  Matrix data(5, 1);
  data(0, 0) = 0.0;
  data(1, 0) = 0.1;
  data(2, 0) = 0.2;
  data(3, 0) = 100.0;  // isolated
  data(4, 0) = 0.15;
  DbscanOptions opt;
  opt.epsilon = 1.0;
  opt.min_points = 2;
  const auto result = dbscan(data, opt);
  EXPECT_EQ(result.labels[3], kDbscanNoise);
  EXPECT_EQ(result.cluster_count, 1u);
  // Partition form: the noise point becomes its own group.
  const auto partition = result.partition_labels();
  std::set<std::size_t> distinct(partition.begin(), partition.end());
  EXPECT_EQ(distinct.size(), 2u);
  EXPECT_EQ(partition[3], 1u);
}

TEST(Dbscan, ValidatesOptions) {
  const Matrix data = blobs3(2, 6);
  DbscanOptions opt;
  opt.epsilon = 0.0;
  EXPECT_THROW(dbscan(data, opt), std::invalid_argument);
  opt.epsilon = 1.0;
  opt.min_points = 0;
  EXPECT_THROW(dbscan(data, opt), std::invalid_argument);
}

TEST(Dbscan, EpsilonEstimateSeparatesBlobScale) {
  const Matrix data = blobs3(8, 7);
  const double eps = estimate_dbscan_epsilon(data, 2);
  // The 2-NN distance inside a blob is ~sigma, far below inter-blob 12.
  EXPECT_GT(eps, 0.0);
  EXPECT_LT(eps, 4.0);
  DbscanOptions opt;
  opt.epsilon = eps;
  opt.min_points = 3;
  EXPECT_EQ(dbscan(data, opt).cluster_count, 3u);
  EXPECT_THROW(estimate_dbscan_epsilon(data, 0), std::invalid_argument);
}

TEST(Dbscan, EmptyMatrix) {
  DbscanOptions opt;
  opt.epsilon = 1.0;
  const auto result = dbscan(Matrix{}, opt);
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.cluster_count, 0u);
}

// --- k selection ------------------------------------------------------------

TEST(KSelect, SilhouettePicksTrueK) {
  const Matrix data = blobs3(10, 8);
  KSelectOptions opt;
  opt.max_k = 8;
  const auto result = select_k_silhouette(data, opt);
  EXPECT_EQ(result.best_k, 3u);
  EXPECT_EQ(result.score_by_k.size(), 8u);
}

TEST(KSelect, GapStatisticPicksTrueK) {
  const Matrix data = blobs3(10, 9);
  GapOptions opt;
  opt.base.max_k = 6;
  opt.reference_sets = 8;
  const auto result = select_k_gap_statistic(data, opt);
  EXPECT_EQ(result.best_k, 3u);
}

TEST(KSelect, GapStatisticOnUniformDataPrefersOne) {
  Rng rng(10);
  Matrix data(60, 2);
  for (std::size_t r = 0; r < 60; ++r) {
    data(r, 0) = rng.uniform(0, 1);
    data(r, 1) = rng.uniform(0, 1);
  }
  GapOptions opt;
  opt.base.max_k = 6;
  const auto result = select_k_gap_statistic(data, opt);
  EXPECT_LE(result.best_k, 2u);  // no real structure
}

TEST(KSelect, ValidatesRanges) {
  const Matrix data = blobs3(2, 11);
  KSelectOptions opt;
  opt.min_k = 5;
  opt.max_k = 3;
  EXPECT_THROW(select_k_silhouette(data, opt), std::invalid_argument);
  GapOptions gopt;
  gopt.reference_sets = 1;
  EXPECT_THROW(select_k_gap_statistic(data, gopt), std::invalid_argument);
}

}  // namespace
}  // namespace sybiltd::ml
