// Unit and property tests for src/graph: undirected graph, connected
// components via DFS, union-find, and the threshold-graph builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/union_find.h"

namespace sybiltd::graph {
namespace {

TEST(Graph, EmptyGraphHasNoComponents) {
  UndirectedGraph g(0);
  EXPECT_TRUE(g.connected_components().empty());
}

TEST(Graph, IsolatedNodesAreSingletons) {
  UndirectedGraph g(4);
  const auto components = g.connected_components();
  EXPECT_EQ(components.size(), 4u);
  for (const auto& c : components) EXPECT_EQ(c.size(), 1u);
}

TEST(Graph, EdgesMergeComponents) {
  UndirectedGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto components = g.connected_components();
  EXPECT_EQ(components.size(), 2u);
  const auto labels = g.component_labels();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(Graph, DegreeAndHasEdge) {
  UndirectedGraph g(3);
  g.add_edge(0, 1, 2.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.edges().front().weight, 2.5);
}

TEST(Graph, RejectsInvalidEdges) {
  UndirectedGraph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, ComponentsCoverAllNodesExactlyOnce) {
  Rng rng(1);
  UndirectedGraph g(30);
  for (int e = 0; e < 25; ++e) {
    const auto u = rng.uniform_index(30);
    const auto v = rng.uniform_index(30);
    if (u != v) g.add_edge(u, v);
  }
  const auto components = g.connected_components();
  std::set<std::size_t> seen;
  for (const auto& c : components) {
    for (std::size_t node : c) {
      EXPECT_TRUE(seen.insert(node).second) << "node in two components";
    }
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));  // already together
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.set_count(), 4u);
  EXPECT_EQ(uf.size_of(1), 2u);
}

TEST(UnionFind, LabelsAreCanonical) {
  UnionFind uf(4);
  uf.unite(2, 3);
  const auto labels = uf.labels();
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_THROW(uf.find(4), std::invalid_argument);
}

class DfsVsUnionFind : public ::testing::TestWithParam<std::uint64_t> {};

// Property: DFS components and union-find agree on random graphs.
TEST_P(DfsVsUnionFind, SamePartition) {
  Rng rng(GetParam());
  const std::size_t n = 20 + rng.uniform_index(30);
  UndirectedGraph g(n);
  UnionFind uf(n);
  const std::size_t edges = rng.uniform_index(2 * n);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto u = rng.uniform_index(n);
    const auto v = rng.uniform_index(n);
    if (u == v) continue;
    g.add_edge(u, v);
    uf.unite(u, v);
  }
  const auto dfs_labels = g.component_labels();
  auto uf_labels = uf.labels();
  // Partitions must be identical up to relabeling: same pair relation.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(dfs_labels[i] == dfs_labels[j],
                uf_labels[i] == uf_labels[j])
          << "pair " << i << "," << j;
    }
  }
  EXPECT_EQ(g.connected_components().size(), uf.set_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsVsUnionFind,
                         ::testing::Values(10, 11, 12, 13, 14, 15, 16, 17));

TEST(ThresholdGraph, KeepsOnlyQualifyingEdges) {
  const std::vector<std::vector<double>> score{
      {0.0, 2.0, 0.5},
      {2.0, 0.0, 1.5},
      {0.5, 1.5, 0.0},
  };
  const auto g = threshold_graph(score, [](double s) { return s > 1.0; });
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.connected_components().size(), 1u);
}

TEST(ThresholdGraph, LessThanPredicateForDissimilarity) {
  const std::vector<std::vector<double>> dis{
      {0.0, 0.1, 5.0},
      {0.1, 0.0, 5.0},
      {5.0, 5.0, 0.0},
  };
  const auto g = threshold_graph(dis, [](double d) { return d < 1.0; });
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.connected_components().size(), 2u);
}

}  // namespace
}  // namespace sybiltd::graph
