// Tests for the HTTP server subsystem: the incremental request parser
// (including splits at every byte boundary and pipelined keep-alive), the
// minimal JSON codec, the endpoint handlers (unit-tested without a
// socket), and the end-to-end equivalence of HTTP-ingested reports with
// the one-shot batch framework.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "obs/metrics.h"

#include "common/rng.h"
#include "core/ag_ts.h"
#include "core/framework.h"
#include "pipeline/engine.h"
#include "pipeline/status_json.h"
#include "server/handlers.h"
#include "server/http.h"
#include "server/json.h"
#include "server/report_decode.h"
#include "server/server.h"
#include "server/snapshot_cache.h"

// --- Counting allocation probe ---------------------------------------------
// Same idiom as workspace_test.cpp: replace this binary's global operator
// new/delete with a counting forwarder to malloc, so the fast-decode
// zero-allocation contract is proven, not assumed.  Composes with
// ASan/TSan (their malloc interceptors still see every allocation).

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_tracking{false};
}  // namespace

void* operator new(std::size_t n) {
  if (g_alloc_tracking.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sybiltd::server {
namespace {

// Allocations performed by `body` (a plain lambda; std::function would
// allocate).
template <typename Fn>
std::uint64_t count_allocations(Fn&& body) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_tracking.store(true, std::memory_order_relaxed);
  body();
  g_alloc_tracking.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

// --- HttpParser ------------------------------------------------------------

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser parser;
  parser.feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next(request), HttpParser::Status::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.version_minor, 1);
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.header("host"), nullptr);
  EXPECT_EQ(*request.header("host"), "x");
  EXPECT_EQ(parser.next(request), HttpParser::Status::kNeedMore);
  EXPECT_FALSE(parser.mid_request());
}

TEST(HttpParser, ParsesBodyAndLowercasesHeaderNames) {
  HttpParser parser;
  parser.feed(
      "POST /v1/campaigns HTTP/1.1\r\nContent-Type: application/json\r\n"
      "Content-Length: 12\r\n\r\n{\"tasks\": 3}");
  HttpRequest request;
  ASSERT_EQ(parser.next(request), HttpParser::Status::kRequest);
  EXPECT_EQ(request.body, "{\"tasks\": 3}");
  ASSERT_NE(request.header("content-type"), nullptr);
  EXPECT_EQ(*request.header("content-type"), "application/json");
}

// The same request must parse identically no matter where the reads split
// it — down to one byte at a time, at every boundary.
TEST(HttpParser, EveryByteBoundarySplitParsesIdentically) {
  const std::string raw =
      "POST /v1/campaigns/0/reports HTTP/1.1\r\nHost: t\r\n"
      "Content-Length: 29\r\n\r\n"
      "{\"account\":1,\"task\":2,\"value\"";
  ASSERT_EQ(raw.size() - raw.find("{"), 29u);
  for (std::size_t split = 1; split < raw.size(); ++split) {
    HttpParser parser;
    HttpRequest request;
    parser.feed(std::string_view(raw).substr(0, split));
    const HttpParser::Status first = parser.next(request);
    if (first == HttpParser::Status::kRequest) {
      FAIL() << "complete before all bytes arrived (split " << split << ")";
    }
    ASSERT_EQ(first, HttpParser::Status::kNeedMore) << "split " << split;
    parser.feed(std::string_view(raw).substr(split));
    ASSERT_EQ(parser.next(request), HttpParser::Status::kRequest)
        << "split " << split;
    EXPECT_EQ(request.target, "/v1/campaigns/0/reports");
    EXPECT_EQ(request.body.size(), 29u);
  }
}

TEST(HttpParser, DrainsPipelinedRequestsFromOneFeed) {
  HttpParser parser;
  parser.feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next(request), HttpParser::Status::kRequest);
  EXPECT_EQ(request.target, "/a");
  ASSERT_EQ(parser.next(request), HttpParser::Status::kRequest);
  EXPECT_EQ(request.target, "/b");
  EXPECT_EQ(request.body, "hi");
  ASSERT_EQ(parser.next(request), HttpParser::Status::kRequest);
  EXPECT_EQ(request.target, "/c");
  EXPECT_FALSE(request.keep_alive);
  EXPECT_EQ(parser.next(request), HttpParser::Status::kNeedMore);
}

TEST(HttpParser, KeepAliveSemanticsPerVersion) {
  const auto parse_one = [](const std::string& raw) {
    HttpParser parser;
    parser.feed(raw);
    HttpRequest request;
    EXPECT_EQ(parser.next(request), HttpParser::Status::kRequest);
    return request.keep_alive;
  };
  EXPECT_TRUE(parse_one("GET / HTTP/1.1\r\n\r\n"));
  EXPECT_FALSE(parse_one("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
  EXPECT_FALSE(parse_one("GET / HTTP/1.0\r\n\r\n"));
  EXPECT_TRUE(parse_one("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
  // Token scan, not substring match, over a comma-separated header.
  EXPECT_FALSE(
      parse_one("GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n"));
}

TEST(HttpParser, OversizedDeclaredBodyFailsEarlyWith413) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  HttpParser parser(limits);
  // The parser must refuse from the Content-Length alone — no body bytes
  // are ever fed.
  parser.feed("POST /x HTTP/1.1\r\nContent-Length: 65\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next(request), HttpParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, HugeContentLengthDoesNotOverflow) {
  HttpParser parser;
  parser.feed(
      "POST /x HTTP/1.1\r\nContent-Length: "
      "99999999999999999999999999999999\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next(request), HttpParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, OversizedRequestLineFailsWith414BeforeTermination) {
  HttpLimits limits;
  limits.max_request_line = 32;
  HttpParser parser(limits);
  // No newline yet: the overflow must be detected incrementally.
  parser.feed("GET /" + std::string(64, 'a'));
  HttpRequest request;
  ASSERT_EQ(parser.next(request), HttpParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(HttpParser, OversizedHeaderBlockFailsWith431) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  HttpParser parser(limits);
  parser.feed("GET / HTTP/1.1\r\nX-A: " + std::string(80, 'b') + "\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next(request), HttpParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, RejectsProtocolViolations) {
  const auto error_of = [](const std::string& raw) {
    HttpParser parser;
    parser.feed(raw);
    HttpRequest request;
    EXPECT_EQ(parser.next(request), HttpParser::Status::kError);
    return parser.error_status();
  };
  EXPECT_EQ(error_of("GARBAGE\r\n\r\n"), 400);
  EXPECT_EQ(error_of("GET  / HTTP/1.1\r\n\r\n"), 400);  // empty target
  EXPECT_EQ(error_of("GET example.com HTTP/1.1\r\n\r\n"), 400);
  EXPECT_EQ(error_of("GET / HTTP/2.0\r\n\r\n"), 505);
  EXPECT_EQ(error_of("GET / HTTP/1.1\r\nBad Header\r\n\r\n"), 400);
  EXPECT_EQ(
      error_of("POST / HTTP/1.1\r\nContent-Length: 2\r\n"
               "Content-Length: 3\r\n\r\n"),
      400);
  EXPECT_EQ(error_of("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"), 400);
  EXPECT_EQ(
      error_of("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      501);
}

TEST(HttpParser, ToleratesBareLfLineEndings) {
  HttpParser parser;
  parser.feed("GET /x HTTP/1.1\nHost: y\n\n");
  HttpRequest request;
  ASSERT_EQ(parser.next(request), HttpParser::Status::kRequest);
  EXPECT_EQ(request.target, "/x");
  ASSERT_NE(request.header("host"), nullptr);
  EXPECT_EQ(*request.header("host"), "y");
}

TEST(HttpResponse, SerializesWithContentLengthFraming) {
  const std::string response =
      http_response(202, "application/json", "{\"ok\":true}", true);
  EXPECT_NE(response.find("HTTP/1.1 202 Accepted\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 11), "{\"ok\":true}");
}

// --- JSON codec ------------------------------------------------------------

TEST(Json, ParsesNestedDocument) {
  JsonValue doc;
  ASSERT_TRUE(json_parse(
      R"({"reports": [{"account": 1, "task": 2, "value": -7.25e1}], "ok": true, "note": null})",
      doc));
  const JsonValue* reports = doc.find("reports");
  ASSERT_NE(reports, nullptr);
  ASSERT_TRUE(reports->is_array());
  ASSERT_EQ(reports->array.size(), 1u);
  std::size_t account = 0;
  ASSERT_TRUE(reports->array[0].find("account")->as_index(&account));
  EXPECT_EQ(account, 1u);
  EXPECT_DOUBLE_EQ(reports->array[0].find("value")->number, -72.5);
  EXPECT_TRUE(doc.find("ok")->boolean);
  EXPECT_TRUE(doc.find("note")->is_null());
}

TEST(Json, DecodesEscapesIncludingSurrogatePairs) {
  JsonValue doc;
  ASSERT_TRUE(json_parse(R"("a\n\t\"\\\u00e9\ud83d\ude00")", doc));
  EXPECT_EQ(doc.string, "a\n\t\"\\\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(Json, RejectsMalformedDocumentsWithOffsets) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(json_parse("{\"a\": 1,}", doc, &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
  EXPECT_FALSE(json_parse("[1, 2", doc, &error));
  EXPECT_FALSE(json_parse("01", doc, &error));
  EXPECT_FALSE(json_parse("1 trailing", doc, &error));
  EXPECT_FALSE(json_parse("\"unterminated", doc, &error));
  EXPECT_FALSE(json_parse("\"\\ud800\"", doc, &error));  // lone surrogate
  EXPECT_FALSE(json_parse("nul", doc, &error));
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(json_parse(deep, doc, &error));
  EXPECT_NE(error.find("deep"), std::string::npos);
}

TEST(Json, AsIndexRejectsNonIndices) {
  const auto index_of = [](const std::string& text, std::size_t* out) {
    JsonValue doc;
    EXPECT_TRUE(json_parse(text, doc));
    return doc.as_index(out);
  };
  std::size_t out = 0;
  EXPECT_TRUE(index_of("7", &out));
  EXPECT_EQ(out, 7u);
  EXPECT_FALSE(index_of("-1", &out));
  EXPECT_FALSE(index_of("1.5", &out));
  EXPECT_FALSE(index_of("1e300", &out));
  EXPECT_FALSE(index_of("\"3\"", &out));
}

TEST(Json, WriterEscapesAndHandlesNonFinite) {
  std::string out;
  json_append_string(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
  out.clear();
  json_append_number(out, std::nan(""));
  EXPECT_EQ(out, "null");
}

// --- Handlers (no socket) ---------------------------------------------------

HttpRequest make_request(std::string method, std::string target,
                         std::string body = {}) {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.body = std::move(body);
  return request;
}

TEST(Handlers, HealthzAndUnknownRoutes) {
  pipeline::CampaignEngine engine;
  EXPECT_EQ(handle_api_request(engine, make_request("GET", "/healthz")).status,
            200);
  EXPECT_EQ(handle_api_request(engine, make_request("POST", "/healthz")).status,
            405);
  EXPECT_EQ(handle_api_request(engine, make_request("GET", "/nope")).status,
            404);
  EXPECT_EQ(
      handle_api_request(engine, make_request("GET", "/v1/campaigns/x/truths"))
          .status,
      404);
}

TEST(Handlers, ReadyzTracksHandlerContextWhileHealthzStaysUp) {
  pipeline::CampaignEngine engine;
  // Default context (unit tests, healthy server): ready.
  EXPECT_EQ(handle_api_request(engine, make_request("GET", "/readyz")).status,
            200);
  EXPECT_EQ(handle_api_request(engine, make_request("POST", "/readyz")).status,
            405);
  HandlerContext draining;
  draining.ready = false;
  EXPECT_EQ(
      handle_api_request(engine, make_request("GET", "/readyz"), draining)
          .status,
      503);
  // Liveness is independent of readiness.
  EXPECT_EQ(
      handle_api_request(engine, make_request("GET", "/healthz"), draining)
          .status,
      200);
}

TEST(Handlers, MetricsEndpointServesPrometheusText) {
  pipeline::CampaignEngine engine;
  const HandlerResponse response =
      handle_api_request(engine, make_request("GET", "/metrics"));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(response.body.find("uptime_seconds"), std::string::npos);
}

TEST(Handlers, CampaignLifecycleOverRequests) {
  pipeline::CampaignEngine engine;
  const HandlerResponse created = handle_api_request(
      engine, make_request("POST", "/v1/campaigns", "{\"tasks\": 4}"));
  ASSERT_EQ(created.status, 201);
  JsonValue doc;
  ASSERT_TRUE(json_parse(created.body, doc));
  std::size_t id = 99;
  ASSERT_TRUE(doc.find("campaign")->as_index(&id));
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(engine.campaign_task_count(0), 4u);

  EXPECT_EQ(handle_api_request(
                engine, make_request("POST", "/v1/campaigns", "{\"tasks\": 0}"))
                .status,
            400);
  EXPECT_EQ(handle_api_request(
                engine, make_request("POST", "/v1/campaigns", "not json"))
                .status,
            400);
  // Query string is ignored for routing.
  EXPECT_EQ(handle_api_request(
                engine, make_request("GET", "/v1/campaigns/0/truths?x=1"))
                .status,
            200);
}

TEST(Handlers, InvalidBatchIsRejectedBeforeAnyShardWork) {
  pipeline::CampaignEngine engine;
  engine.add_campaign(4);
  engine.start();
  // Second report has an out-of-range task: the whole batch must bounce
  // with 400 and NO report may reach a shard queue.
  const HandlerResponse response = handle_api_request(
      engine,
      make_request("POST", "/v1/campaigns/0/reports",
                   R"([{"account":0,"task":0,"value":1.0},)"
                   R"({"account":1,"task":9,"value":1.0}])"));
  EXPECT_EQ(response.status, 400);
  EXPECT_EQ(engine.counters().accepted, 0u);
  EXPECT_EQ(engine.counters().submitted, 0u);

  // Same for NaN-shaped values (JSON null) and malformed JSON.
  EXPECT_EQ(handle_api_request(
                engine, make_request("POST", "/v1/campaigns/0/reports",
                                     R"([{"account":0,"task":0}])"))
                .status,
            400);
  EXPECT_EQ(handle_api_request(engine,
                               make_request("POST", "/v1/campaigns/0/reports",
                                            "[{\"account\":"))
                .status,
            400);
  EXPECT_EQ(engine.counters().accepted, 0u);
  engine.stop();
}

TEST(Handlers, IngestAcceptsSingleObjectWrappedAndBareArrayForms) {
  pipeline::CampaignEngine engine;
  engine.add_campaign(4);
  engine.start();
  EXPECT_EQ(handle_api_request(
                engine, make_request("POST", "/v1/campaigns/0/reports",
                                     R"({"account":0,"task":0,"value":2.0})"))
                .status,
            202);
  EXPECT_EQ(
      handle_api_request(
          engine,
          make_request("POST", "/v1/campaigns/0/reports",
                       R"({"reports":[{"account":1,"task":0,"value":4.0}]})"))
          .status,
      202);
  EXPECT_EQ(handle_api_request(
                engine, make_request("POST", "/v1/campaigns/0/reports",
                                     R"([{"account":2,"task":1,"value":6.0}])"))
                .status,
            202);
  engine.drain();
  EXPECT_EQ(engine.counters().applied, 3u);
  EXPECT_EQ(handle_api_request(
                engine, make_request("POST", "/v1/campaigns/7/reports",
                                     R"([{"account":0,"task":0,"value":1.0}])"))
                .status,
            404);
  engine.stop();
}

TEST(Handlers, IngestOnStoppedEngineReturns503) {
  pipeline::CampaignEngine engine;
  engine.add_campaign(2);
  const HandlerResponse response = handle_api_request(
      engine, make_request("POST", "/v1/campaigns/0/reports",
                           R"([{"account":0,"task":0,"value":1.0}])"));
  EXPECT_EQ(response.status, 503);
}

TEST(Handlers, DrainRouteRecognitionAndBarrier) {
  pipeline::CampaignEngine engine;
  engine.add_campaign(2);
  engine.start();
  std::size_t campaign = 99;
  EXPECT_TRUE(is_drain_request(
      make_request("POST", "/v1/campaigns/0/drain"), &campaign));
  EXPECT_EQ(campaign, 0u);
  EXPECT_FALSE(is_drain_request(
      make_request("GET", "/v1/campaigns/0/drain"), &campaign));
  EXPECT_FALSE(is_drain_request(
      make_request("POST", "/v1/campaigns/0/truths"), &campaign));

  handle_api_request(engine,
                     make_request("POST", "/v1/campaigns/0/reports",
                                  R"([{"account":0,"task":0,"value":5.0},)"
                                  R"({"account":1,"task":1,"value":3.0}])"));
  const HandlerResponse drained = handle_drain(engine, 0);
  EXPECT_EQ(drained.status, 200);
  JsonValue doc;
  ASSERT_TRUE(json_parse(drained.body, doc));
  EXPECT_DOUBLE_EQ(doc.find("applied_reports")->number, 2.0);
  EXPECT_TRUE(doc.find("converged")->boolean);
  EXPECT_EQ(handle_drain(engine, 9).status, 404);
  engine.stop();
}

// --- try_submit status coverage ---------------------------------------------

TEST(TrySubmit, FoldsValidationIntoStatuses) {
  pipeline::CampaignEngine engine;
  engine.add_campaign(3);
  EXPECT_EQ(engine.try_submit({0, 0, 0, 1.0, 0.0}),
            pipeline::SubmitStatus::kNotRunning);
  engine.start();
  EXPECT_EQ(engine.try_submit({0, 0, 0, 1.0, 0.0}),
            pipeline::SubmitStatus::kAccepted);
  EXPECT_EQ(engine.try_submit({5, 0, 0, 1.0, 0.0}),
            pipeline::SubmitStatus::kUnknownCampaign);
  EXPECT_EQ(engine.try_submit({0, 0, 7, 1.0, 0.0}),
            pipeline::SubmitStatus::kInvalidTask);
  EXPECT_EQ(engine.try_submit({0, 0, 0, std::nan(""), 0.0}),
            pipeline::SubmitStatus::kInvalidValue);
  engine.drain();
  EXPECT_EQ(engine.counters().applied, 1u);
  engine.stop();
  EXPECT_EQ(engine.try_submit({0, 0, 0, 1.0, 0.0}),
            pipeline::SubmitStatus::kNotRunning);
}

// --- End-to-end over a real socket -------------------------------------------

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

struct ClientResponse {
  int status = 0;
  std::string body;
};

// One round trip on an already-connected keep-alive socket.
ClientResponse round_trip(int fd, const std::string& method,
                          const std::string& target,
                          const std::string& body = {}) {
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: t\r\n";
  if (!body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) return {};
    off += static_cast<std::size_t>(n);
  }
  std::string buffer;
  char chunk[4096];
  while (true) {
    const std::size_t header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      const std::size_t cl = buffer.find("Content-Length: ");
      std::size_t body_len = 0;
      if (cl != std::string::npos && cl < header_end) {
        body_len = std::strtoul(buffer.c_str() + cl + 16, nullptr, 10);
      }
      if (buffer.size() >= header_end + 4 + body_len) {
        ClientResponse response;
        response.status = std::atoi(buffer.c_str() + 9);
        response.body = buffer.substr(header_end + 4, body_len);
        return response;
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return {};
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

TEST(CampaignServer, EphemeralPortStartupAndHealth) {
  ServerOptions options;
  options.port = 0;
  CampaignServer server(options);
  server.engine().add_campaign(2);
  server.start();
  ASSERT_NE(server.port(), 0);
  const int fd = connect_loopback(server.port());
  EXPECT_EQ(round_trip(fd, "GET", "/healthz").status, 200);
  // Keep-alive: the same connection serves further requests.
  EXPECT_EQ(round_trip(fd, "GET", "/v1/status").status, 200);
  EXPECT_EQ(round_trip(fd, "GET", "/metrics").status, 200);
  ::close(fd);
  server.shutdown();
}

TEST(CampaignServer, ReadyzFlipsWithSetReadyWhileHealthzStaysUp) {
  ServerOptions options;
  options.port = 0;
  CampaignServer server(options);
  server.start();
  const int fd = connect_loopback(server.port());
  EXPECT_EQ(round_trip(fd, "GET", "/readyz").status, 200);
  server.set_ready(false);
  EXPECT_EQ(round_trip(fd, "GET", "/readyz").status, 503);
  // Liveness is unaffected: the process still answers.
  EXPECT_EQ(round_trip(fd, "GET", "/healthz").status, 200);
  server.set_ready(true);
  EXPECT_EQ(round_trip(fd, "GET", "/readyz").status, 200);
  ::close(fd);
  server.shutdown();
}

TEST(CampaignServer, IngestExportsPerCampaignLatencyHistograms) {
  ServerOptions options;
  options.port = 0;
  CampaignServer server(options);
  server.engine().add_campaign(3);
  server.start();
  const int fd = connect_loopback(server.port());
  EXPECT_EQ(round_trip(fd, "POST", "/v1/campaigns/0/reports",
                       "[{\"account\":0,\"task\":0,\"value\":1.0},"
                       "{\"account\":1,\"task\":1,\"value\":2.0}]")
                .status,
            202);
  // The drain barrier guarantees the reports were applied and published,
  // so both lifecycle histograms have closed out their stamps.
  EXPECT_EQ(round_trip(fd, "POST", "/v1/campaigns/0/drain").status, 200);
  const ClientResponse metrics = round_trip(fd, "GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("pipeline_ingest_to_apply_us_count{"
                              "campaign=\"0\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("pipeline_ingest_to_publish_us_count{"
                              "campaign=\"0\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("server_campaign_reports_accepted_total{"
                              "campaign=\"0\"}"),
            std::string::npos);
  ::close(fd);
  server.shutdown();
}

TEST(CampaignServer, MetricStreamDeliversEventsUntilClose) {
  ServerOptions options;
  options.port = 0;
  CampaignServer server(options);
  server.engine().add_campaign(2);
  server.start();

  // Seed one report so the first event carries a campaign delta.
  const int ingest_fd = connect_loopback(server.port());
  EXPECT_EQ(round_trip(ingest_fd, "POST", "/v1/campaigns/0/reports",
                       "{\"account\":0,\"task\":0,\"value\":1.0}")
                .status,
            202);
  ::close(ingest_fd);

  const int fd = connect_loopback(server.port());
  const std::string request =
      "GET /v1/metrics/stream?interval_ms=50 HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));

  // Read until three full events arrived (the immediate one plus ticks)
  // AND one of them carried the campaign-0 delta for the seeded report;
  // capped so a regression fails instead of hanging.
  std::string buffer;
  char chunk[4096];
  std::size_t events = 0;
  while (events < 50 &&
         (events < 3 ||
          buffer.find("\"campaign\": 0") == std::string::npos)) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    ASSERT_GT(n, 0) << "stream ended after " << events << " events";
    buffer.append(chunk, static_cast<std::size_t>(n));
    events = 0;
    for (std::size_t pos = 0;
         (pos = buffer.find("data: ", pos)) != std::string::npos; ++pos) {
      ++events;
    }
  }
  EXPECT_GE(events, 3u);
  EXPECT_NE(buffer.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(buffer.find("Content-Type: text/event-stream"),
            std::string::npos);
  EXPECT_NE(buffer.find("\"engine\": "), std::string::npos);
  EXPECT_NE(buffer.find("\"campaign\": 0"), std::string::npos);
  ::close(fd);
  server.shutdown();
}

TEST(CampaignServer, ParserErrorsSurfaceAsStatusCodesOverTheWire) {
  ServerOptions options;
  options.port = 0;
  options.http.max_body_bytes = 128;
  CampaignServer server(options);
  server.engine().add_campaign(2);
  server.start();

  int fd = connect_loopback(server.port());
  const std::string big(256, 'x');
  EXPECT_EQ(round_trip(fd, "POST", "/v1/campaigns/0/reports", big).status,
            413);
  ::close(fd);

  // Malformed reports travel the full wire path to a 400 with no shard
  // work behind them.
  fd = connect_loopback(server.port());
  EXPECT_EQ(round_trip(fd, "POST", "/v1/campaigns/0/reports", "{oops")
                .status,
            400);
  EXPECT_EQ(server.engine().counters().accepted, 0u);
  ::close(fd);
  server.shutdown();
}

// Acceptance: reports ingested over HTTP followed by a drain match the
// one-shot batch framework on identical data to 1e-9.
TEST(CampaignServer, HttpIngestThenDrainMatchesBatchFramework) {
  constexpr std::size_t kTasks = 12;
  Rng rng(23);
  std::vector<double> truth(kTasks);
  for (auto& t : truth) t = rng.uniform(-90.0, -50.0);

  core::FrameworkInput input;
  input.task_count = kTasks;
  auto add_account = [&](const std::vector<std::size_t>& tasks, double base,
                         double sigma) {
    core::AccountTrace trace;
    std::vector<std::size_t> sorted = tasks;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t t : sorted) {
      const double value =
          (base == 0.0 ? truth[t] : base) + rng.normal(0.0, sigma);
      trace.reports.push_back({t, value, 0.0});
    }
    input.accounts.push_back(std::move(trace));
  };
  for (int s = 0; s < 3; ++s) {
    add_account({0, 1, 2, 3, 4, 5, 6, 7}, -50.0, 0.2);
  }
  for (int s = 0; s < 2; ++s) {
    add_account({4, 5, 6, 7, 8, 9, 10, 11}, -55.0, 0.2);
  }
  for (std::size_t u = 0; u < 8; ++u) {
    add_account({u % kTasks, (u + 3) % kTasks, (u + 6) % kTasks}, 0.0, 2.0);
  }

  struct Flat {
    std::size_t account, task;
    double value;
  };
  std::vector<Flat> reports;
  for (std::size_t a = 0; a < input.accounts.size(); ++a) {
    for (const auto& r : input.accounts[a].reports) {
      reports.push_back({a, r.task, r.value});
    }
  }
  std::shuffle(reports.begin(), reports.end(), rng);

  ServerOptions options;
  options.port = 0;
  options.engine.shard_count = 2;
  options.engine.max_batch = 16;
  CampaignServer server(options);
  server.engine().add_campaign(kTasks);
  server.start();

  // Ingest over the wire in small batches from one keep-alive connection.
  const int fd = connect_loopback(server.port());
  constexpr std::size_t kBatch = 7;
  for (std::size_t begin = 0; begin < reports.size(); begin += kBatch) {
    std::string body = "[";
    for (std::size_t k = begin;
         k < std::min(begin + kBatch, reports.size()); ++k) {
      if (k > begin) body += ",";
      char value[64];
      std::snprintf(value, sizeof(value), "%.17g", reports[k].value);
      body += "{\"account\":" + std::to_string(reports[k].account) +
              ",\"task\":" + std::to_string(reports[k].task) +
              ",\"value\":" + value + "}";
    }
    body += "]";
    ASSERT_EQ(round_trip(fd, "POST", "/v1/campaigns/0/reports", body).status,
              202);
  }

  const ClientResponse drained =
      round_trip(fd, "POST", "/v1/campaigns/0/drain");
  ASSERT_EQ(drained.status, 200);
  const ClientResponse truths =
      round_trip(fd, "GET", "/v1/campaigns/0/truths");
  ASSERT_EQ(truths.status, 200);
  const ClientResponse groups =
      round_trip(fd, "GET", "/v1/campaigns/0/groups");
  ASSERT_EQ(groups.status, 200);
  ::close(fd);
  server.shutdown();

  const core::FrameworkResult batch = core::run_framework(
      input, core::AgTs(core::AgTsOptions{1.0}), core::FrameworkOptions{});

  JsonValue doc;
  ASSERT_TRUE(json_parse(truths.body, doc));
  const JsonValue* wire_truths = doc.find("truths");
  ASSERT_NE(wire_truths, nullptr);
  ASSERT_EQ(wire_truths->array.size(), batch.truths.size());
  for (std::size_t j = 0; j < kTasks; ++j) {
    ASSERT_FALSE(std::isnan(batch.truths[j]));
    ASSERT_TRUE(wire_truths->array[j].is_number()) << "task " << j;
    EXPECT_NEAR(wire_truths->array[j].number, batch.truths[j], 1e-9)
        << "task " << j;
  }
  EXPECT_TRUE(doc.find("converged")->boolean);
  EXPECT_DOUBLE_EQ(doc.find("applied_reports")->number,
                   static_cast<double>(reports.size()));

  JsonValue group_doc;
  ASSERT_TRUE(json_parse(groups.body, group_doc));
  const JsonValue* group_of = group_doc.find("group_of");
  ASSERT_NE(group_of, nullptr);
  ASSERT_EQ(group_of->array.size(), batch.grouping.labels().size());
  for (std::size_t a = 0; a < group_of->array.size(); ++a) {
    EXPECT_DOUBLE_EQ(group_of->array[a].number,
                     static_cast<double>(batch.grouping.labels()[a]));
  }
}

TEST(CampaignServer, LiveCampaignCreationOverTheWire) {
  ServerOptions options;
  options.port = 0;
  CampaignServer server(options);
  server.start();  // zero campaigns pre-registered

  const int fd = connect_loopback(server.port());
  const ClientResponse created =
      round_trip(fd, "POST", "/v1/campaigns", "{\"tasks\": 3}");
  ASSERT_EQ(created.status, 201);
  EXPECT_EQ(round_trip(fd, "POST", "/v1/campaigns/0/reports",
                       R"([{"account":0,"task":0,"value":4.0},)"
                       R"({"account":1,"task":0,"value":6.0}])")
                .status,
            202);
  ASSERT_EQ(round_trip(fd, "POST", "/v1/campaigns/0/drain").status, 200);
  const ClientResponse truths =
      round_trip(fd, "GET", "/v1/campaigns/0/truths");
  ASSERT_EQ(truths.status, 200);
  JsonValue doc;
  ASSERT_TRUE(json_parse(truths.body, doc));
  EXPECT_DOUBLE_EQ(doc.find("truths")->array[0].number, 5.0);
  ::close(fd);
  server.shutdown();
}

// --- Multi-loop end-to-end ---------------------------------------------------

// Scoped environment override (SYBILTD_SERVER_ACCEPT / SYBILTD_SERVER_LOOPS).
struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  const char* name_;
  std::string old_;
  bool had_ = false;
};

// Write `wire` in one syscall-sized burst, then read `count` complete
// responses off the socket — exercises pipelined keep-alive on one loop.
std::vector<ClientResponse> pipelined(int fd, const std::string& wire,
                                      std::size_t count) {
  std::vector<ClientResponse> out;
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + off, wire.size() - off);
    if (n <= 0) return out;
    off += static_cast<std::size_t>(n);
  }
  std::string buffer;
  char chunk[4096];
  while (out.size() < count) {
    const std::size_t header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      const std::size_t cl = buffer.find("Content-Length: ");
      std::size_t body_len = 0;
      if (cl != std::string::npos && cl < header_end) {
        body_len = std::strtoul(buffer.c_str() + cl + 16, nullptr, 10);
      }
      if (buffer.size() >= header_end + 4 + body_len) {
        ClientResponse response;
        response.status = std::atoi(buffer.c_str() + 9);
        response.body = buffer.substr(header_end + 4, body_len);
        out.push_back(std::move(response));
        buffer.erase(0, header_end + 4 + body_len);
        continue;
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return out;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return out;
}

std::string ingest_request(std::size_t campaign, const std::string& body) {
  return "POST /v1/campaigns/" + std::to_string(campaign) +
         "/reports HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

TEST(MultiLoopServer, FourLoopsServeManyConnections) {
  ServerOptions options;
  options.port = 0;
  options.loops = 4;
  CampaignServer server(options);
  server.engine().add_campaign(4);
  server.start();
  EXPECT_EQ(server.loop_count(), 4u);

  std::vector<int> fds;
  for (int i = 0; i < 8; ++i) fds.push_back(connect_loopback(server.port()));
  for (std::size_t i = 0; i < fds.size(); ++i) {
    const std::string body = "[{\"account\":" + std::to_string(i) +
                             ",\"task\":0,\"value\":1.0}]";
    EXPECT_EQ(
        round_trip(fds[i], "POST", "/v1/campaigns/0/reports", body).status,
        202);
    EXPECT_EQ(round_trip(fds[i], "GET", "/v1/status").status, 200);
  }
  for (int fd : fds) ::close(fd);
  server.shutdown();
  const auto counters = server.engine().counters();
  EXPECT_EQ(counters.accepted, 8u);
  EXPECT_EQ(counters.applied, 8u);
}

TEST(MultiLoopServer, SharedAcceptorRoundRobinsAcrossLoops) {
  EnvGuard accept_mode("SYBILTD_SERVER_ACCEPT", "shared");
  auto& loop_requests = obs::MetricsRegistry::global().counter_family(
      "server.loop.requests", "loop");
  const std::uint64_t loop1_before = loop_requests.at("1").value();
  const std::uint64_t loop2_before = loop_requests.at("2").value();

  ServerOptions options;
  options.port = 0;
  options.loops = 3;
  CampaignServer server(options);
  server.engine().add_campaign(2);
  server.start();
  EXPECT_EQ(server.loop_count(), 3u);

  // Round-robin hand-off: connection i lands on loop i % 3, so every loop
  // owns two of these six connections and serves their requests.
  std::vector<int> fds;
  for (int i = 0; i < 6; ++i) fds.push_back(connect_loopback(server.port()));
  for (int fd : fds) {
    EXPECT_EQ(round_trip(fd, "GET", "/healthz").status, 200);
  }
  for (int fd : fds) ::close(fd);
  server.shutdown();

  EXPECT_GT(loop_requests.at("1").value(), loop1_before);
  EXPECT_GT(loop_requests.at("2").value(), loop2_before);
}

TEST(MultiLoopServer, LiveCampaignVisibleOnEveryLoop) {
  // Shared-acceptor mode makes connection→loop placement deterministic, so
  // this really does ingest on all four loops.
  EnvGuard accept_mode("SYBILTD_SERVER_ACCEPT", "shared");
  ServerOptions options;
  options.port = 0;
  options.loops = 4;
  CampaignServer server(options);
  server.start();  // zero campaigns pre-registered

  std::vector<int> fds;
  for (int i = 0; i < 4; ++i) fds.push_back(connect_loopback(server.port()));
  // Create the campaign through loop 0's connection; the registration must
  // be visible to try_submit_batch on every other loop thread immediately.
  ASSERT_EQ(round_trip(fds[0], "POST", "/v1/campaigns", "{\"tasks\": 2}")
                .status,
            201);
  for (std::size_t i = 0; i < fds.size(); ++i) {
    const std::string body = "[{\"account\":" + std::to_string(i) +
                             ",\"task\":0,\"value\":4.0}]";
    EXPECT_EQ(
        round_trip(fds[i], "POST", "/v1/campaigns/0/reports", body).status,
        202)
        << "loop " << i;
  }
  ASSERT_EQ(round_trip(fds[1], "POST", "/v1/campaigns/0/drain").status, 200);
  const ClientResponse truths =
      round_trip(fds[2], "GET", "/v1/campaigns/0/truths");
  ASSERT_EQ(truths.status, 200);
  JsonValue doc;
  ASSERT_TRUE(json_parse(truths.body, doc));
  EXPECT_DOUBLE_EQ(doc.find("applied_reports")->number, 4.0);
  for (int fd : fds) ::close(fd);
  server.shutdown();
}

TEST(MultiLoopServer, KeepAlivePipeliningPerLoop) {
  EnvGuard accept_mode("SYBILTD_SERVER_ACCEPT", "shared");
  ServerOptions options;
  options.port = 0;
  options.loops = 2;
  CampaignServer server(options);
  server.engine().add_campaign(2);
  server.start();

  const int fd_a = connect_loopback(server.port());  // loop 0
  const int fd_b = connect_loopback(server.port());  // loop 1
  for (int fd : {fd_a, fd_b}) {
    std::string wire;
    for (int k = 0; k < 3; ++k) {
      wire += ingest_request(
          0, "[{\"account\":" + std::to_string(k) +
                 ",\"task\":1,\"value\":2.0}]");
    }
    const std::vector<ClientResponse> responses = pipelined(fd, wire, 3);
    ASSERT_EQ(responses.size(), 3u);
    for (const ClientResponse& response : responses) {
      EXPECT_EQ(response.status, 202);
    }
  }
  ::close(fd_a);
  ::close(fd_b);
  server.shutdown();
  EXPECT_EQ(server.engine().counters().applied, 6u);
}

TEST(MultiLoopServer, ShutdownBarrierFlushesInFlightWritesOnEveryLoop) {
  EnvGuard accept_mode("SYBILTD_SERVER_ACCEPT", "shared");
  ServerOptions options;
  options.port = 0;
  options.loops = 4;
  CampaignServer server(options);
  server.engine().add_campaign(4);
  server.start();

  // Two connections per loop, each with an ingest response in flight: the
  // request is written and at least one response byte exists server-side
  // (MSG_PEEK), but nothing has been read.  The SIGTERM-path shutdown must
  // flush every one of these before the loops exit.
  std::vector<int> fds;
  for (int i = 0; i < 8; ++i) fds.push_back(connect_loopback(server.port()));
  for (std::size_t i = 0; i < fds.size(); ++i) {
    const std::string wire = ingest_request(
        0, "[{\"account\":" + std::to_string(i) +
               ",\"task\":" + std::to_string(i % 4) + ",\"value\":1.5}]");
    ASSERT_EQ(::write(fds[i], wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
  }
  for (int fd : fds) {
    char peek = 0;
    ASSERT_EQ(::recv(fd, &peek, 1, MSG_PEEK), 1);  // response started
  }

  server.request_shutdown();  // what the SIGTERM handler calls
  server.wait();              // barrier across all four loops

  // Every in-flight response is intact in the socket even though the
  // server is gone.
  std::string buffer;
  char chunk[4096];
  for (int fd : fds) {
    buffer.clear();
    ssize_t n = 0;
    while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    EXPECT_EQ(buffer.compare(0, 12, "HTTP/1.1 202"), 0) << buffer;
    ::close(fd);
  }
  const auto counters = server.engine().counters();
  EXPECT_EQ(counters.accepted, 8u);
  EXPECT_EQ(counters.applied, 8u);
  EXPECT_TRUE(server.engine().snapshot(0)->converged);
}

TEST(MultiLoopServer, LoopCountResolvesFromEnvAndOptions) {
  EnvGuard loops_env("SYBILTD_SERVER_LOOPS", "3");
  {
    ServerOptions options;
    options.port = 0;  // options.loops = 0 defers to the environment
    CampaignServer server(options);
    server.engine().add_campaign(1);
    server.start();
    EXPECT_EQ(server.loop_count(), 3u);
    server.shutdown();
  }
  {
    ServerOptions options;
    options.port = 0;
    options.loops = 2;  // explicit option wins over the environment
    CampaignServer server(options);
    server.engine().add_campaign(1);
    server.start();
    EXPECT_EQ(server.loop_count(), 2u);
    server.shutdown();
  }
}

// Acceptance: the batch-framework equivalence holds with four loops and the
// ingest split across four connections — report order across connections is
// free, and last-write-wins per (account, task) makes the result invariant.
TEST(MultiLoopServer, HttpIngestThenDrainMatchesBatchFrameworkAcrossLoops) {
  constexpr std::size_t kTasks = 12;
  Rng rng(29);
  std::vector<double> truth(kTasks);
  for (auto& t : truth) t = rng.uniform(-90.0, -50.0);

  core::FrameworkInput input;
  input.task_count = kTasks;
  auto add_account = [&](const std::vector<std::size_t>& tasks, double base,
                         double sigma) {
    core::AccountTrace trace;
    std::vector<std::size_t> sorted = tasks;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t t : sorted) {
      const double value =
          (base == 0.0 ? truth[t] : base) + rng.normal(0.0, sigma);
      trace.reports.push_back({t, value, 0.0});
    }
    input.accounts.push_back(std::move(trace));
  };
  for (int s = 0; s < 3; ++s) {
    add_account({0, 1, 2, 3, 4, 5, 6, 7}, -50.0, 0.2);
  }
  for (int s = 0; s < 2; ++s) {
    add_account({4, 5, 6, 7, 8, 9, 10, 11}, -55.0, 0.2);
  }
  for (std::size_t u = 0; u < 8; ++u) {
    add_account({u % kTasks, (u + 3) % kTasks, (u + 6) % kTasks}, 0.0, 2.0);
  }

  struct Flat {
    std::size_t account, task;
    double value;
  };
  std::vector<Flat> reports;
  for (std::size_t a = 0; a < input.accounts.size(); ++a) {
    for (const auto& r : input.accounts[a].reports) {
      reports.push_back({a, r.task, r.value});
    }
  }
  std::shuffle(reports.begin(), reports.end(), rng);

  ServerOptions options;
  options.port = 0;
  options.loops = 4;
  options.engine.shard_count = 2;
  options.engine.max_batch = 16;
  CampaignServer server(options);
  server.engine().add_campaign(kTasks);
  server.start();

  // Four keep-alive connections (spread over the loops by SO_REUSEPORT or
  // the shared acceptor — either way the result must match), batches dealt
  // round-robin.
  std::vector<int> fds;
  for (int i = 0; i < 4; ++i) fds.push_back(connect_loopback(server.port()));
  constexpr std::size_t kBatch = 5;
  std::size_t turn = 0;
  for (std::size_t begin = 0; begin < reports.size(); begin += kBatch) {
    std::string body = "[";
    for (std::size_t k = begin;
         k < std::min(begin + kBatch, reports.size()); ++k) {
      if (k > begin) body += ",";
      char value[64];
      std::snprintf(value, sizeof(value), "%.17g", reports[k].value);
      body += "{\"account\":" + std::to_string(reports[k].account) +
              ",\"task\":" + std::to_string(reports[k].task) +
              ",\"value\":" + value + "}";
    }
    body += "]";
    const int fd = fds[turn++ % fds.size()];
    ASSERT_EQ(round_trip(fd, "POST", "/v1/campaigns/0/reports", body).status,
              202);
  }

  ASSERT_EQ(round_trip(fds[0], "POST", "/v1/campaigns/0/drain").status, 200);
  const ClientResponse truths =
      round_trip(fds[1], "GET", "/v1/campaigns/0/truths");
  ASSERT_EQ(truths.status, 200);
  for (int fd : fds) ::close(fd);
  server.shutdown();

  const core::FrameworkResult batch = core::run_framework(
      input, core::AgTs(core::AgTsOptions{1.0}), core::FrameworkOptions{});

  JsonValue doc;
  ASSERT_TRUE(json_parse(truths.body, doc));
  const JsonValue* wire_truths = doc.find("truths");
  ASSERT_NE(wire_truths, nullptr);
  ASSERT_EQ(wire_truths->array.size(), batch.truths.size());
  for (std::size_t j = 0; j < kTasks; ++j) {
    ASSERT_FALSE(std::isnan(batch.truths[j]));
    ASSERT_TRUE(wire_truths->array[j].is_number()) << "task " << j;
    EXPECT_NEAR(wire_truths->array[j].number, batch.truths[j], 1e-9)
        << "task " << j;
  }
  EXPECT_TRUE(doc.find("converged")->boolean);
  EXPECT_DOUBLE_EQ(doc.find("applied_reports")->number,
                   static_cast<double>(reports.size()));
}

TEST(CampaignServer, GracefulShutdownDrainsAcceptedReports) {
  ServerOptions options;
  options.port = 0;
  CampaignServer server(options);
  server.engine().add_campaign(2);
  server.start();

  const int fd = connect_loopback(server.port());
  ASSERT_EQ(round_trip(fd, "POST", "/v1/campaigns/0/reports",
                       R"([{"account":0,"task":0,"value":1.0},)"
                       R"({"account":1,"task":1,"value":2.0}])")
                .status,
            202);
  ::close(fd);

  server.request_shutdown();  // what the SIGTERM handler calls
  server.wait();
  // The graceful path drained before stopping: accepted == applied and the
  // final snapshot reflects every report.
  const auto counters = server.engine().counters();
  EXPECT_EQ(counters.accepted, 2u);
  EXPECT_EQ(counters.applied, 2u);
  EXPECT_TRUE(server.engine().snapshot(0)->converged);
}

// --- Fast decode: zero-allocation proof -------------------------------------

TEST(ReportDecodeFast, SteadyStateDecodesWithZeroHeapAllocations) {
  std::string body = "[";
  for (int i = 0; i < 100; ++i) {
    if (i > 0) body += ',';
    body += "{\"account\":" + std::to_string(i) +
            ",\"task\":" + std::to_string(i % 16) +
            ",\"value\":" + std::to_string(i) + ".5}";
  }
  body += "]";

  // Warm the thread's workspace pool and the SIMD dispatch table.
  {
    const DecodedReports warm = decode_reports(body, 0, 16);
    ASSERT_TRUE(warm.ok);
    ASSERT_TRUE(warm.fast_path);
    ASSERT_EQ(warm.reports.size(), 100u);
  }

  bool ok = false, fast = false;
  std::size_t count = 0;
  double checksum = 0.0;
  const std::uint64_t allocs = count_allocations([&] {
    const DecodedReports decoded = decode_reports(body, 0, 16);
    ok = decoded.ok;
    fast = decoded.fast_path;
    count = decoded.reports.size();
    for (const pipeline::Report& r : decoded.reports) checksum += r.value;
  });
  EXPECT_TRUE(ok);
  EXPECT_TRUE(fast);
  EXPECT_EQ(count, 100u);
  EXPECT_DOUBLE_EQ(checksum, 100 * 0.5 + 99.0 * 100.0 / 2.0);
  EXPECT_EQ(allocs, 0u)
      << "fast-path decode must not touch the heap once the workspace "
         "pool is warm";
}

// --- Snapshot response cache ------------------------------------------------

pipeline::CampaignSnapshot make_snapshot(std::size_t campaign,
                                         std::uint64_t version) {
  pipeline::CampaignSnapshot snapshot;
  snapshot.campaign = campaign;
  snapshot.version = version;
  snapshot.truths = {1.5, std::nan(""), 3.0};
  snapshot.group_weights = {0.25, 0.75};
  snapshot.group_of = {0, 1, 1};
  snapshot.group_count = 2;
  snapshot.applied_reports = 7;
  return snapshot;
}

TEST(SnapshotCache, ServesOneRenderingPerSnapshotIdentity) {
  SnapshotResponseCache cache;
  const auto snap = std::make_shared<const pipeline::CampaignSnapshot>(
      make_snapshot(5, 9));

  const auto first =
      cache.get(5, snap, SnapshotResponseCache::View::kTruths);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(*first, pipeline::to_json(*snap));

  // Same snapshot pointer -> the very same buffer, not an equal copy.
  const auto second =
      cache.get(5, snap, SnapshotResponseCache::View::kTruths);
  EXPECT_EQ(first.get(), second.get());

  // The groups view caches independently under the same entry.
  const auto groups =
      cache.get(5, snap, SnapshotResponseCache::View::kGroups);
  std::string expected_groups;
  pipeline::groups_json_into(*snap, expected_groups);
  EXPECT_EQ(*groups, expected_groups);
  EXPECT_EQ(groups.get(),
            cache.get(5, snap, SnapshotResponseCache::View::kGroups).get());

  // A new snapshot version invalidates; the old buffer stays valid for
  // readers still holding it.
  const auto next = std::make_shared<const pipeline::CampaignSnapshot>(
      make_snapshot(5, 10));
  const auto third =
      cache.get(5, next, SnapshotResponseCache::View::kTruths);
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(*third, pipeline::to_json(*next));
  EXPECT_EQ(*first, pipeline::to_json(*snap));
}

TEST(SnapshotCache, DistinguishesSameVersionFromDifferentEngines) {
  // Two engines in one process can both serve campaign 0 at version 1
  // (ubiquitous in tests).  Identity keying must not leak one engine's
  // rendering to the other.
  SnapshotResponseCache cache;
  auto a = std::make_shared<const pipeline::CampaignSnapshot>(
      make_snapshot(0, 1));
  auto b_value = make_snapshot(0, 1);
  b_value.truths = {42.0};
  const auto b =
      std::make_shared<const pipeline::CampaignSnapshot>(std::move(b_value));

  EXPECT_EQ(*cache.get(0, a, SnapshotResponseCache::View::kTruths),
            pipeline::to_json(*a));
  EXPECT_EQ(*cache.get(0, b, SnapshotResponseCache::View::kTruths),
            pipeline::to_json(*b));

  // And a recycled allocation at the same address cannot alias: the entry
  // pins its snapshot, so `a`'s storage can't be reused while cached.
  const auto held = cache.get(0, a, SnapshotResponseCache::View::kTruths);
  EXPECT_EQ(*held, pipeline::to_json(*a));
}

TEST(SnapshotCache, HandlerServesSharedBodyAndCountsHits) {
  pipeline::CampaignEngine engine;
  engine.add_campaign(3);
  engine.start();
  ASSERT_EQ(handle_api_request(
                engine, make_request("POST", "/v1/campaigns/0/reports",
                                     R"([{"account":0,"task":0,"value":5.0}])"))
                .status,
            202);
  engine.drain();

  const HandlerResponse truths =
      handle_api_request(engine, make_request("GET", "/v1/campaigns/0/truths"));
  ASSERT_EQ(truths.status, 200);
  ASSERT_NE(truths.shared_body, nullptr);
  EXPECT_EQ(truths.text(), pipeline::to_json(*engine.snapshot(0)));

  // A second GET of the same snapshot returns the same shared buffer.
  const HandlerResponse again =
      handle_api_request(engine, make_request("GET", "/v1/campaigns/0/truths"));
  ASSERT_EQ(again.status, 200);
  EXPECT_EQ(truths.shared_body.get(), again.shared_body.get());

  const HandlerResponse groups =
      handle_api_request(engine, make_request("GET", "/v1/campaigns/0/groups"));
  ASSERT_EQ(groups.status, 200);
  ASSERT_NE(groups.shared_body, nullptr);
  std::string expected;
  pipeline::groups_json_into(*engine.snapshot(0), expected);
  EXPECT_EQ(groups.text(), expected);

  // After more reports are applied the version ticks and a GET re-renders.
  ASSERT_EQ(handle_api_request(
                engine, make_request("POST", "/v1/campaigns/0/reports",
                                     R"([{"account":1,"task":1,"value":2.0}])"))
                .status,
            202);
  engine.drain();
  const HandlerResponse fresh =
      handle_api_request(engine, make_request("GET", "/v1/campaigns/0/truths"));
  ASSERT_EQ(fresh.status, 200);
  EXPECT_NE(truths.shared_body.get(), fresh.shared_body.get());
  EXPECT_EQ(fresh.text(), pipeline::to_json(*engine.snapshot(0)));
  engine.stop();
}

}  // namespace
}  // namespace sybiltd::server
