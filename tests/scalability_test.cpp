// Tests for the AG-TR scalability options (lower-bound pruning, FastDTW)
// and the large-scenario generator.
#include <gtest/gtest.h>

#include "core/ag_tr.h"
#include "eval/adapters.h"
#include "ml/clustering_metrics.h"
#include "mcs/scenario.h"

namespace sybiltd::core {
namespace {

TEST(AgTrScalable, PrunedGroupingIdenticalToExact) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto data = mcs::generate_scenario(
        mcs::make_large_scenario(40, 4, 5, 20, seed));
    const auto input = eval::to_framework_input(data);
    AgTrOptions pruned_opt;
    pruned_opt.prune_with_lower_bound = true;
    const auto exact = AgTr().group(input);
    const auto pruned = AgTr(pruned_opt).group(input);
    EXPECT_EQ(exact.labels(), pruned.labels()) << "seed " << seed;
  }
}

TEST(AgTrScalable, FastDtwGroupingAgreesOnPaperScenario) {
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.8, 5));
  const auto input = eval::to_framework_input(data);
  AgTrOptions fast_opt;
  fast_opt.approximate = true;
  const auto exact = AgTr().group(input);
  const auto fast = AgTr(fast_opt).group(input);
  EXPECT_NEAR(ml::adjusted_rand_index(exact.labels(), fast.labels()), 1.0,
              1e-9);
}

TEST(AgTrScalable, PruningRequiresTotalCostMode) {
  AgTrOptions opt;
  opt.prune_with_lower_bound = true;
  opt.mode = DtwMode::kPathNormalized;
  const auto data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.5, 6));
  const auto input = eval::to_framework_input(data);
  EXPECT_THROW(AgTr(opt).group(input), std::invalid_argument);
}

TEST(LargeScenario, StructureMatchesParameters) {
  const auto config = mcs::make_large_scenario(50, 5, 4, 25, 9);
  const auto data = mcs::generate_scenario(config);
  EXPECT_EQ(data.tasks.size(), 25u);
  EXPECT_EQ(data.accounts.size(), 50u + 5u * 4u);
  EXPECT_EQ(data.user_count, 55u);
  // Fingerprints skipped by default for large scenarios.
  for (const auto& account : data.accounts) {
    EXPECT_TRUE(account.fingerprint.empty());
  }
  std::size_t sybil = 0;
  for (const auto& account : data.accounts) sybil += account.is_sybil;
  EXPECT_EQ(sybil, 20u);
}

TEST(LargeScenario, FingerprintFlagRestoresCaptures) {
  auto config = mcs::make_large_scenario(4, 1, 2, 10, 10);
  config.capture_fingerprints = true;
  const auto data = mcs::generate_scenario(config);
  for (const auto& account : data.accounts) {
    EXPECT_EQ(account.fingerprint.size(), 80u);
  }
}

TEST(LargeScenario, AgTrStillSeparatesAttackers) {
  const auto data = mcs::generate_scenario(
      mcs::make_large_scenario(30, 3, 5, 20, 12));
  const auto input = eval::to_framework_input(data);
  AgTrOptions opt;
  opt.prune_with_lower_bound = true;
  const auto grouping = AgTr(opt).group(input);
  const double ari = ml::adjusted_rand_index(grouping.labels(),
                                             data.true_user_labels());
  EXPECT_GT(ari, 0.8);
}

}  // namespace
}  // namespace sybiltd::core
