// Tests for src/mcs: task/POI generation, trajectory planning, and the
// scenario generator's invariants (attack structure, activeness, ordering).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "mcs/scenario.h"
#include "mcs/task.h"
#include "mcs/trajectory.h"

namespace sybiltd::mcs {
namespace {

TEST(Task, DistanceIsEuclidean) {
  EXPECT_NEAR(distance({0, 0}, {3, 4}), 5.0, 1e-12);
  EXPECT_NEAR(distance({1, 1}, {1, 1}), 0.0, 1e-12);
}

TEST(Task, PathLossDecreasesWithDistance) {
  PathLossModel model;
  EXPECT_GT(model.rssi(2.0), model.rssi(20.0));
  EXPECT_NEAR(model.rssi(1.0), model.rssi_1m_dbm, 1e-12);
  // Below min distance clamps.
  EXPECT_EQ(model.rssi(0.1), model.rssi(1.0));
}

TEST(Task, WifiTasksHaveRealisticTruthsAndLocations) {
  Rng rng(1);
  CampusConfig campus;
  const auto tasks = make_wifi_poi_tasks(10, campus, rng);
  EXPECT_EQ(tasks.size(), 10u);
  for (const auto& t : tasks) {
    EXPECT_GE(t.location.x, 0.0);
    EXPECT_LE(t.location.x, campus.width_m);
    EXPECT_GE(t.location.y, 0.0);
    EXPECT_LE(t.location.y, campus.height_m);
    EXPECT_LT(t.ground_truth, -40.0);
    EXPECT_GT(t.ground_truth, -95.0);
  }
  EXPECT_THROW(make_wifi_poi_tasks(0, campus, rng), std::invalid_argument);
}

TEST(Task, NoiseTasksLouderNearCenter) {
  Rng rng(2);
  CampusConfig campus;
  const auto tasks = make_noise_poi_tasks(200, campus, rng);
  const Point center{campus.width_m / 2, campus.height_m / 2};
  double near_sum = 0, far_sum = 0;
  int near_n = 0, far_n = 0;
  for (const auto& t : tasks) {
    if (distance(t.location, center) < 120) {
      near_sum += t.ground_truth;
      ++near_n;
    } else if (distance(t.location, center) > 250) {
      far_sum += t.ground_truth;
      ++far_n;
    }
  }
  ASSERT_GT(near_n, 0);
  ASSERT_GT(far_n, 0);
  EXPECT_GT(near_sum / near_n, far_sum / far_n);
}

TEST(Trajectory, ChoosesRequestedDistinctTasks) {
  Rng rng(3);
  CampusConfig campus;
  const auto tasks = make_wifi_poi_tasks(10, campus, rng);
  const auto chosen = choose_preferred_tasks(tasks, {0, 0}, 6, rng);
  EXPECT_EQ(chosen.size(), 6u);
  std::set<std::size_t> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 6u);
  EXPECT_THROW(choose_preferred_tasks(tasks, {0, 0}, 11, rng),
               std::invalid_argument);
}

TEST(Trajectory, PrefersNearbyTasks) {
  Rng rng(4);
  // 5 tasks near origin, 5 far away: a home at the origin should mostly
  // pick the near ones.
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 5; ++i) {
    tasks.push_back({i, "near", {10.0 * (i + 1), 0}, -60});
  }
  for (std::size_t i = 5; i < 10; ++i) {
    tasks.push_back({i, "far", {450, 450}, -60});
  }
  int near_picks = 0, total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto chosen = choose_preferred_tasks(tasks, {0, 0}, 3, rng, 100.0);
    for (std::size_t id : chosen) {
      ++total;
      if (id < 5) ++near_picks;
    }
  }
  EXPECT_GT(static_cast<double>(near_picks) / total, 0.8);
}

TEST(Trajectory, WalkTimestampsStrictlyIncrease) {
  Rng rng(5);
  CampusConfig campus;
  const auto tasks = make_wifi_poi_tasks(8, campus, rng);
  const std::vector<std::size_t> ids{0, 1, 2, 3, 4, 5, 6, 7};
  const auto visits = plan_walk(tasks, ids, {250, 250}, {}, rng);
  ASSERT_EQ(visits.size(), 8u);
  for (std::size_t k = 1; k < visits.size(); ++k) {
    EXPECT_GT(visits[k].timestamp_s, visits[k - 1].timestamp_s);
  }
  // Each task visited exactly once.
  std::set<std::size_t> seen;
  for (const auto& v : visits) EXPECT_TRUE(seen.insert(v.task).second);
}

TEST(Trajectory, WalkingTimeConsistentWithSpeed) {
  Rng rng(6);
  std::vector<Task> tasks{{0, "a", {0, 0}, -60}, {1, "b", {140, 0}, -60}};
  TrajectoryOptions opt;
  opt.walking_speed_mps = 1.4;
  opt.dwell_min_s = opt.dwell_max_s = 0.0;
  opt.start_window_s = 1e-9;
  const auto visits = plan_walk(tasks, {0, 1}, {0, 0}, opt, rng);
  // 140 m at 1.4 m/s = 100 s between the two visits.
  EXPECT_NEAR(visits[1].timestamp_s - visits[0].timestamp_s, 100.0, 1e-6);
}

TEST(Scenario, PaperSetupCounts) {
  const auto config = make_paper_scenario(0.5, 0.5, 1);
  const auto data = generate_scenario(config);
  EXPECT_EQ(data.tasks.size(), 10u);
  // 8 legit accounts + 2 attackers x 5 accounts.
  EXPECT_EQ(data.accounts.size(), 18u);
  // 8 legit phones + 1 (Attack-I) + 2 (Attack-II).
  EXPECT_EQ(data.devices.size(), 11u);
  EXPECT_EQ(data.user_count, 10u);
  int sybil = 0;
  for (const auto& a : data.accounts) sybil += a.is_sybil ? 1 : 0;
  EXPECT_EQ(sybil, 10);
}

TEST(Scenario, DeterministicInSeed) {
  const auto a = generate_scenario(make_paper_scenario(0.5, 0.8, 9));
  const auto b = generate_scenario(make_paper_scenario(0.5, 0.8, 9));
  ASSERT_EQ(a.accounts.size(), b.accounts.size());
  for (std::size_t i = 0; i < a.accounts.size(); ++i) {
    ASSERT_EQ(a.accounts[i].reports.size(), b.accounts[i].reports.size());
    for (std::size_t r = 0; r < a.accounts[i].reports.size(); ++r) {
      EXPECT_EQ(a.accounts[i].reports[r].value,
                b.accounts[i].reports[r].value);
      EXPECT_EQ(a.accounts[i].reports[r].timestamp_s,
                b.accounts[i].reports[r].timestamp_s);
    }
    EXPECT_EQ(a.accounts[i].fingerprint, b.accounts[i].fingerprint);
  }
}

TEST(Scenario, AttackOneUsesASingleDevice) {
  const auto data = generate_scenario(make_paper_scenario(0.5, 0.5, 2));
  std::set<std::size_t> attack1_devices;
  for (const auto& a : data.accounts) {
    if (a.is_sybil && a.name.starts_with("A1")) {
      attack1_devices.insert(a.device);
    }
  }
  EXPECT_EQ(attack1_devices.size(), 1u);
}

TEST(Scenario, AttackTwoRotatesAcrossTwoDevices) {
  const auto data = generate_scenario(make_paper_scenario(0.5, 0.5, 3));
  std::set<std::size_t> attack2_devices;
  for (const auto& a : data.accounts) {
    if (a.is_sybil && a.name.starts_with("A2")) {
      attack2_devices.insert(a.device);
    }
  }
  EXPECT_EQ(attack2_devices.size(), 2u);
}

TEST(Scenario, SybilAccountsShareTaskSets) {
  const auto data = generate_scenario(make_paper_scenario(0.5, 0.6, 4));
  std::set<std::size_t> first_set;
  bool first = true;
  for (const auto& a : data.accounts) {
    if (!a.is_sybil || !a.name.starts_with("A1")) continue;
    std::set<std::size_t> tasks;
    for (const auto& r : a.reports) tasks.insert(r.task);
    if (first) {
      first_set = tasks;
      first = false;
    } else {
      EXPECT_EQ(tasks, first_set);
    }
  }
  EXPECT_FALSE(first);
}

TEST(Scenario, SybilValuesAreFabricatedTarget) {
  const auto data = generate_scenario(make_paper_scenario(0.5, 0.5, 5));
  for (const auto& a : data.accounts) {
    if (!a.is_sybil) continue;
    for (const auto& r : a.reports) {
      EXPECT_NEAR(r.value, -50.0, 3.0);  // target plus small jitter
    }
  }
}

TEST(Scenario, ActivenessControlsTaskCounts) {
  for (double act : {0.2, 0.5, 1.0}) {
    const auto data = generate_scenario(make_paper_scenario(act, act, 6));
    const auto expected = static_cast<std::size_t>(std::lround(act * 10));
    for (const auto& a : data.accounts) {
      EXPECT_EQ(a.reports.size(), std::max<std::size_t>(expected, 2))
          << a.name;
    }
  }
}

TEST(Scenario, ReportsSortedByTimestamp) {
  const auto data = generate_scenario(make_paper_scenario(1.0, 1.0, 7));
  for (const auto& a : data.accounts) {
    for (std::size_t r = 1; r < a.reports.size(); ++r) {
      EXPECT_LE(a.reports[r - 1].timestamp_s, a.reports[r].timestamp_s);
    }
  }
}

TEST(Scenario, LegitimateValuesNearGroundTruth) {
  const auto data = generate_scenario(make_paper_scenario(1.0, 0.2, 8));
  for (const auto& a : data.accounts) {
    if (a.is_sybil) continue;
    for (const auto& r : a.reports) {
      EXPECT_NEAR(r.value, data.tasks[r.task].ground_truth, 15.0);
    }
  }
}

TEST(Scenario, LabelsMatchStructure) {
  const auto data = generate_scenario(make_paper_scenario(0.5, 0.5, 10));
  const auto users = data.true_user_labels();
  const auto devices = data.true_device_labels();
  ASSERT_EQ(users.size(), 18u);
  // First 8 accounts: unique users.
  std::set<std::size_t> legit_users(users.begin(), users.begin() + 8);
  EXPECT_EQ(legit_users.size(), 8u);
  // Accounts 8-12 share user 8; 13-17 share user 9.
  for (std::size_t i = 8; i < 13; ++i) EXPECT_EQ(users[i], 8u);
  for (std::size_t i = 13; i < 18; ++i) EXPECT_EQ(users[i], 9u);
  // Attack-I accounts share one device.
  std::set<std::size_t> a1_dev(devices.begin() + 8, devices.begin() + 13);
  EXPECT_EQ(a1_dev.size(), 1u);
  EXPECT_EQ(data.ground_truths().size(), 10u);
}

TEST(Scenario, FingerprintsPresentAndDistinctAcrossCaptures) {
  const auto data = generate_scenario(make_paper_scenario(0.2, 0.2, 11));
  for (const auto& a : data.accounts) {
    EXPECT_EQ(a.fingerprint.size(), 80u) << a.name;
  }
  // Two accounts of the same attacker on the same device still get
  // *different* captures (they re-do the sign-in hold).
  EXPECT_NE(data.accounts[8].fingerprint, data.accounts[9].fingerprint);
}

TEST(Scenario, ValidatesAttackerConfig) {
  ScenarioConfig config = make_paper_scenario(0.5, 0.5, 12);
  config.attackers[0].device_models = {};
  EXPECT_THROW(generate_scenario(config), std::invalid_argument);
  config = make_paper_scenario(0.5, 0.5, 12);
  config.attackers[0].type = AttackType::kSingleDevice;
  config.attackers[0].device_models = {"iPhone 6", "iPhone 7"};
  EXPECT_THROW(generate_scenario(config), std::invalid_argument);
}

TEST(Scenario, OffsetFabricationShiftsValues) {
  ScenarioConfig config = make_paper_scenario(0.5, 0.5, 13);
  config.attackers[0].fabrication = Fabrication::kOffsetFromTruth;
  config.attackers[0].offset = 25.0;
  const auto data = generate_scenario(config);
  for (const auto& a : data.accounts) {
    if (!a.is_sybil || !a.name.starts_with("A1")) continue;
    for (const auto& r : a.reports) {
      EXPECT_NEAR(r.value, data.tasks[r.task].ground_truth + 25.0, 3.0);
    }
  }
}

TEST(Scenario, DuplicateHonestAttackTracksTruth) {
  ScenarioConfig config = make_paper_scenario(0.5, 0.5, 14);
  config.attackers[0].fabrication = Fabrication::kDuplicateHonest;
  const auto data = generate_scenario(config);
  for (const auto& a : data.accounts) {
    if (!a.is_sybil || !a.name.starts_with("A1")) continue;
    for (const auto& r : a.reports) {
      EXPECT_NEAR(r.value, data.tasks[r.task].ground_truth, 12.0);
    }
  }
}

}  // namespace
}  // namespace sybiltd::mcs
