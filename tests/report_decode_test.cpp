// Differential suite for the schema-specialized ingest decoder.
//
// The fast path's correctness argument is "anything it accepts, the
// generic codec decodes to the same bits; anything else falls back" — so
// the tests here drive both paths over a corpus of edge-case bodies (and
// randomized ones) and assert the full DecodedReports verdict matches:
// ok flag, error kind/index/text, batch size, and every Report field
// bit-for-bit.  The corpus runs at every compiled-in SIMD level, since the
// whitespace/string scans route through the dispatch table.

#include "server/report_decode.h"

#include <bit>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/json.h"
#include "simd/simd.h"

namespace sybiltd::server {
namespace {

constexpr std::size_t kCampaign = 3;
constexpr std::size_t kTaskCount = 8;

// Restore the ambient dispatch level after a sweep.
struct LevelGuard {
  simd::Level saved = simd::active_level();
  ~LevelGuard() { simd::set_active_level(saved); }
};

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

::testing::AssertionResult same_decode(const DecodedReports& fast,
                                       const DecodedReports& generic,
                                       const std::string& body) {
  const auto fail = [&](const std::string& what) {
    return ::testing::AssertionFailure()
           << what << " for body: " << body.substr(0, 160);
  };
  if (fast.ok != generic.ok) return fail("ok mismatch");
  if (!fast.ok) {
    if (fast.error_kind != generic.error_kind) {
      return fail("error_kind mismatch");
    }
    if (fast.error != generic.error) {
      return fail("error text mismatch: \"" + fast.error + "\" vs \"" +
                  generic.error + "\"");
    }
    if (fast.error_kind == DecodeErrorKind::kReport &&
        (fast.error_index != generic.error_index ||
         fast.batch_size != generic.batch_size)) {
      return fail("error index/batch mismatch");
    }
    return ::testing::AssertionSuccess();
  }
  if (fast.reports.size() != generic.reports.size()) {
    return fail("report count mismatch");
  }
  for (std::size_t i = 0; i < fast.reports.size(); ++i) {
    const pipeline::Report& a = fast.reports[i];
    const pipeline::Report& b = generic.reports[i];
    if (a.campaign != b.campaign || a.account != b.account ||
        a.task != b.task || bits(a.value) != bits(b.value) ||
        bits(a.timestamp_hours) != bits(b.timestamp_hours) ||
        a.ingest_ticks != b.ingest_ticks) {
      return fail("report " + std::to_string(i) + " mismatch");
    }
  }
  return ::testing::AssertionSuccess();
}

// Run the production decode (fast path allowed) against the pure generic
// decode at the current SIMD level.
void expect_differential(const std::string& body) {
  DecodedReports fast = decode_reports(body, kCampaign, kTaskCount);
  DecodedReports generic =
      decode_reports(body, kCampaign, kTaskCount, /*allow_fast=*/false);
  EXPECT_FALSE(generic.fast_path);
  EXPECT_TRUE(same_decode(fast, generic, body));
}

void sweep_levels(const std::string& body) {
  LevelGuard guard;
  for (const simd::Level level : simd::available_levels()) {
    simd::set_active_level(level);
    SCOPED_TRACE(std::string("level=") + std::string(simd::level_name(level)));
    expect_differential(body);
  }
}

// --- Corpus -----------------------------------------------------------------

const std::vector<std::string>& corpus() {
  static const std::vector<std::string> bodies = [] {
    std::vector<std::string> c = {
        // Canonical valid shapes.
        R"([{"account":1,"task":2,"value":3.5}])",
        R"({"account":1,"task":0,"value":-2.25,"timestamp_hours":17.5})",
        R"({"reports":[{"account":0,"task":0,"value":1e3},)"
        R"({"account":1,"task":1,"value":2.5e-3}]})",
        "[]",
        R"({"reports":[]})",
        R"({"reports" : [ ] })",
        // Whitespace stress, including runs longer than one vector.
        "  [ { \"account\" : 1 , \"task\" : 0 , \"value\" : 4 } ]  \n",
        std::string(80, ' ') + R"([{"account":1,"task":0,"value":4}])" +
            std::string(40, '\t'),
        "[\n\t{\"account\":\t1,\n\"task\":0,\r\n\"value\":2}\n]",
        // Key order permutations.
        R"({"value":2,"task":0,"account":1})",
        R"({"timestamp_hours":-4.5,"value":2,"task":7,"account":0})",
        // Numeric edge cases: 15/16/17 digit integers, the 2^53 index
        // boundary, denormals, overflow (strtod saturates to inf and the
        // generic path ACCEPTS it), underflow (strtod flushes to zero).
        R"([{"account":999999999999999,"task":0,"value":1}])",
        R"([{"account":1234567890123456,"task":0,"value":1}])",
        R"([{"account":12345678901234567,"task":0,"value":1}])",
        R"([{"account":9007199254740992,"task":0,"value":1}])",
        R"([{"account":9007199254740993,"task":0,"value":1}])",
        R"([{"account":19007199254740993,"task":0,"value":1}])",
        R"([{"account":0,"task":0,"value":0.1}])",
        R"([{"account":0,"task":0,"value":-0}])",
        R"([{"account":0,"task":0,"value":-0.0}])",
        R"([{"account":0,"task":0,"value":1e308}])",
        R"([{"account":0,"task":0,"value":1e999}])",
        R"([{"account":0,"task":0,"value":-1e999}])",
        R"([{"account":0,"task":0,"value":1e-308}])",
        R"([{"account":0,"task":0,"value":4.9e-324}])",
        R"([{"account":0,"task":0,"value":1e-400}])",
        R"([{"account":0,"task":0,"value":1E+3}])",
        R"([{"account":0,"task":0,"value":5e-0}])",
        R"([{"account":0,"task":0,"value":2.2250738585072011e-308}])",
        R"([{"account":0,"task":0,"value":0.49999999999999994}])",
        R"([{"account":1e3,"task":0,"value":1}])",
        R"([{"account":1.5,"task":0,"value":1}])",
        R"([{"account":-1,"task":0,"value":1}])",
        // Malformed numbers (the generic parser owns the 400 text).
        R"([{"account":01,"task":0,"value":1}])",
        R"([{"account":0,"task":0,"value":1.}])",
        R"([{"account":0,"task":0,"value":.5}])",
        R"([{"account":0,"task":0,"value":+1}])",
        R"([{"account":0,"task":0,"value":1e}])",
        R"([{"account":0,"task":0,"value":1e+}])",
        R"([{"account":0,"task":0,"value":0x10}])",
        R"([{"account":0,"task":0,"value":Infinity}])",
        R"([{"account":0,"task":0,"value":nan}])",
        // Validation failures.
        R"([{"account":0,"task":9,"value":1}])",
        R"([{"account":0,"task":0}])",
        R"([{"task":0,"value":1}])",
        R"([{"accountX":1,"task":0,"value":2}])",
        R"([{"account":0,"task":0,"value":null}])",
        R"([{"account":0,"task":0,"value":"5"}])",
        R"([{"account":0,"task":0,"value":1,"timestamp_hours":null}])",
        R"([{"account":0,"task":0,"value":1,"timestamp_hours":"x"}])",
        "{}",
        "[{}]",
        R"([{"account":0,"task":0,"value":1},{}])",
        // Duplicate keys: JsonValue::find keeps the first occurrence.
        R"({"account":1,"account":2,"task":0,"value":3})",
        R"([{"account":1,"task":0,"task":5,"value":3}])",
        R"([{"account":1,"task":0,"value":3,"value":"x"}])",
        // Unknown keys are ignored by the generic codec.
        R"({"account":1,"task":0,"value":3,"extra":null})",
        R"([{"account":1,"task":0,"value":3,"nested":{"a":[1,2]}}])",
        // The wrapper-vs-single ambiguity: any object containing a
        // "reports" key is the wrapper shape, wherever the key sits.
        R"({"account":1,"reports":[]})",
        R"({"reports":[],"x":1})",
        R"({"reports":[{"account":1,"task":0,"value":2}],"more":1})",
        R"({"reports":{}})",
        R"({"reports":5})",
        R"({"reports":[5]})",
        R"({"reports":[{"account":1,"task":0,"value":2}]})",
        // Escapes and unicode in keys and values.  An escaped key still
        // decodes to "account", so the generic path accepts the report;
        // a surrogate-pair escape decodes to a 4-byte UTF-8 value.
        std::string("{\"") + "\\" + "u0061ccount\":1,\"task\":0,\"value\":2}",
        std::string("[{\"a\":\"") + "\\" + "ud83d" + "\\" + "ude00\"}]",
        R"([{"account":0,"task":0,"value":"😀"}])",
        R"([{"acc\tount":0,"task":0,"value":1}])",
        R"([{"acc\\ount":0,"task":0,"value":1}])",
        R"([{"a":"\ud800"}])",
        R"([{"a":"\udc00x"}])",
        R"([{"a":"\uZZZZ"}])",
        std::string("[{\"a\x01b\":1}]"),
        // Non-object elements and bare scalars.
        "[1]",
        "[null]",
        R"(["x"])",
        "[[]]",
        R"([{"account":0,"task":0,"value":1},null])",
        "5",
        R"("x")",
        "true",
        "false",
        "null",
        // Structural breakage.
        "",
        "   ",
        "[",
        "[{",
        R"([{"account")",
        R"([{"account":)",
        R"([{"account":1,)",
        R"([{"account":1,"task":0,"value":1})",
        R"([{"account":1,"task":0,"value":1},])",
        R"([{"account":1,"task":0,"value":1}] x)",
        R"([{"account":1,"task":0,"value":1}]])",
        R"({"reports":[])",
        R"({"reports":[]}})",
        R"({"account":1 "task":0})",
        R"([{"account":1;"task":0,"value":1}])",
    };
    // Nesting beyond the generic parser's depth cap.
    c.push_back(std::string(70, '[') + std::string(70, ']'));
    // A batch large enough to cross several vector iterations and arena
    // size classes.
    std::string big = "[";
    for (int i = 0; i < 200; ++i) {
      if (i > 0) big += ',';
      big += "{\"account\":" + std::to_string(i * 7) +
             ",\"task\":" + std::to_string(i % kTaskCount) +
             ",\"value\":" + std::to_string(i) + ".25,\"timestamp_hours\":" +
             std::to_string(i % 48) + "}";
    }
    big += "]";
    c.push_back(big);
    return c;
  }();
  return bodies;
}

TEST(ReportDecodeDifferential, CorpusMatchesGenericAtEveryLevel) {
  for (const std::string& body : corpus()) {
    sweep_levels(body);
  }
}

TEST(ReportDecodeDifferential, TruncationAtEveryByteBoundary) {
  const std::vector<std::string> bodies = {
      R"([{"account":1,"task":0,"value":3.5,"timestamp_hours":2}])",
      R"({"reports":[{"account":0,"task":1,"value":-2e-2}]})",
      R"({"account":12,"task":7,"value":9007199254740993})",
  };
  LevelGuard guard;
  for (const simd::Level level : simd::available_levels()) {
    simd::set_active_level(level);
    for (const std::string& body : bodies) {
      for (std::size_t cut = 0; cut < body.size(); ++cut) {
        expect_differential(body.substr(0, cut));
      }
    }
  }
}

TEST(ReportDecodeDifferential, SingleByteMutations) {
  // Flip every byte of a canonical body through a set of hostile
  // replacements; the fast path must agree with the generic verdict on
  // each mutant.
  const std::string body =
      R"([{"account":1,"task":0,"value":3.5},{"account":2,"task":1,"value":-4e2}])";
  const char replacements[] = {'{', '}', '[', ']', ':', ',', '"', '\\',
                               '0', '9', '-', '+', '.', 'e', ' ', '\x01'};
  for (std::size_t i = 0; i < body.size(); ++i) {
    for (const char r : replacements) {
      if (body[i] == r) continue;
      std::string mutant = body;
      mutant[i] = r;
      expect_differential(mutant);
    }
  }
}

// xorshift64*: deterministic cross-platform stream for the generator.
struct Rng {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1Dull;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

TEST(ReportDecodeDifferential, RandomizedBatchesMatchGeneric) {
  Rng rng;
  const char* ws_choices[] = {"", " ", "  ", "\n\t", " \r\n "};
  const auto ws = [&] { return ws_choices[rng.below(5)]; };
  const auto number = [&](std::string& out) {
    char buffer[64];
    switch (rng.below(5)) {
      case 0:
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64, rng.below(1000));
        break;
      case 1:  // up to 19 digits, crossing the exact-int fast path
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64, rng.next());
        break;
      case 2:
        std::snprintf(buffer, sizeof(buffer), "%.17g",
                      (rng.uniform() - 0.5) * 1e6);
        break;
      case 3:
        std::snprintf(buffer, sizeof(buffer), "%.17g",
                      rng.uniform() * 1e-300);
        break;
      default:
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64 "e%+d",
                      rng.below(1000),
                      static_cast<int>(rng.below(700)) - 350);
        break;
    }
    out += buffer;
  };
  const auto report = [&](std::string& out) {
    const bool with_ts = rng.below(2) == 0;
    const char* keys[4] = {"account", "task", "value",
                           with_ts ? "timestamp_hours" : nullptr};
    // Fisher-Yates over the present keys.
    int order[4] = {0, 1, 2, 3};
    const int n = with_ts ? 4 : 3;
    for (int i = n - 1; i > 0; --i) {
      const int j = static_cast<int>(rng.below(i + 1));
      std::swap(order[i], order[j]);
    }
    out += '{';
    for (int i = 0; i < n; ++i) {
      if (i > 0) out += ',';
      out += ws();
      out += '"';
      out += keys[order[i]];
      out += "\":";
      out += ws();
      if (order[i] == 0) {
        out += std::to_string(rng.below(1 << 20));
      } else if (order[i] == 1) {
        out += std::to_string(rng.below(kTaskCount + 2));  // some invalid
      } else {
        number(out);
      }
      out += ws();
    }
    out += '}';
  };

  LevelGuard guard;
  for (int iter = 0; iter < 400; ++iter) {
    std::string body;
    const std::uint64_t shape = rng.below(3);
    const std::size_t count = rng.below(6);
    std::string array;
    array += '[';
    for (std::size_t i = 0; i < count; ++i) {
      if (i > 0) array += ',';
      array += ws();
      report(array);
    }
    array += ws();
    array += ']';
    if (shape == 0) {
      body = array;
    } else if (shape == 1) {
      body = std::string("{") + ws() + "\"reports\":" + ws() + array + ws() +
             "}";
    } else {
      report(body);
    }
    // 1 in 8: corrupt one byte to exercise mismatched-verdict agreement.
    if (rng.below(8) == 0 && !body.empty()) {
      body[rng.below(body.size())] =
          static_cast<char>(' ' + rng.below(95));
    }
    simd::set_active_level(
        simd::available_levels()[rng.below(simd::available_levels().size())]);
    expect_differential(body);
  }
}

// --- Fast-path engagement ---------------------------------------------------

TEST(ReportDecodeFastPath, EngagesOnCanonicalShapesAtEveryLevel) {
  const std::vector<std::string> fast_bodies = {
      R"([{"account":1,"task":2,"value":3.5}])",
      R"({"account":1,"task":0,"value":-2.25,"timestamp_hours":17.5})",
      R"({"reports":[{"account":0,"task":0,"value":1e3}]})",
      "[]",
      R"({"reports":[]})",
      "  [ { \"account\" : 1 , \"task\" : 0 , \"value\" : 4.125 } ]  ",
  };
  LevelGuard guard;
  for (const simd::Level level : simd::available_levels()) {
    simd::set_active_level(level);
    for (const std::string& body : fast_bodies) {
      const DecodedReports decoded =
          decode_reports(body, kCampaign, kTaskCount);
      EXPECT_TRUE(decoded.ok) << body;
      EXPECT_TRUE(decoded.fast_path)
          << "expected fast path at level " << simd::level_name(level)
          << " for: " << body;
    }
  }
}

TEST(ReportDecodeFastPath, FallsBackOnForeignShapes) {
  // Bodies the fast path must hand to the generic codec even though they
  // decode successfully.
  const std::vector<std::string> fallback_bodies = {
      R"({"account":1,"account":2,"task":0,"value":3})",  // duplicate key
      R"({"account":1,"task":0,"value":3,"extra":null})",  // unknown key
      std::string("{\"") + "\\" +
          "u0061ccount\":1,\"task\":0,\"value\":2}",       // escaped key
      R"({"reports":[],"x":1})",                           // wrapper + extras
      R"([{"account":0,"task":0,"value":1e999}])",         // strtod saturates
      R"([{"account":0,"task":0,"value":1e-400}])",        // strtod flushes
  };
  for (const std::string& body : fallback_bodies) {
    const DecodedReports decoded = decode_reports(body, kCampaign, kTaskCount);
    EXPECT_TRUE(decoded.ok) << body;
    EXPECT_FALSE(decoded.fast_path) << body;
  }
}

TEST(ReportDecodeFastPath, DecodedFieldsAreExact) {
  const DecodedReports decoded = decode_reports(
      R"([{"account":41,"task":6,"value":0.1,"timestamp_hours":-3.75}])",
      kCampaign, kTaskCount);
  ASSERT_TRUE(decoded.ok);
  ASSERT_TRUE(decoded.fast_path);
  ASSERT_EQ(decoded.reports.size(), 1u);
  const pipeline::Report& r = decoded.reports[0];
  EXPECT_EQ(r.campaign, kCampaign);
  EXPECT_EQ(r.account, 41u);
  EXPECT_EQ(r.task, 6u);
  EXPECT_EQ(bits(r.value), bits(0.1));
  EXPECT_EQ(bits(r.timestamp_hours), bits(-3.75));
  EXPECT_EQ(r.ingest_ticks, 0u);
}

// The exact-integer shortcut must agree with strtod right at its 15-digit
// hand-off and across the 2^53 as_index cutoff.
TEST(ReportDecodeFastPath, IntegerBoundariesMatchStrtod) {
  for (const char* text :
       {"999999999999999", "1000000000000000", "9007199254740992",
        "9007199254740993", "9007199254740994", "18446744073709551615",
        "99999999999999999999"}) {
    const std::string body = std::string(R"([{"account":)") + text +
                             R"(,"task":0,"value":)" + text + "}]";
    sweep_levels(body);
  }
}

}  // namespace
}  // namespace sybiltd::server
