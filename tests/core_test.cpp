// Tests for src/core: grouping containers, the three AG methods (including
// the paper's Fig. 3 / Fig. 4 worked examples), data grouping (Eqs. 3–4),
// and the full framework (Algorithm 2).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/ag_fp.h"
#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "core/data_grouping.h"
#include "core/framework.h"
#include "eval/paper_example.h"

namespace sybiltd::core {
namespace {

// Minimal input builder for grouping tests without fingerprints.
FrameworkInput make_input(
    std::size_t task_count,
    const std::vector<std::vector<AccountObservation>>& reports) {
  FrameworkInput input;
  input.task_count = task_count;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    AccountTrace trace;
    trace.name = "acct" + std::to_string(i);
    trace.reports = reports[i];
    input.accounts.push_back(std::move(trace));
  }
  return input;
}

TEST(AccountGrouping, ValidatesPartition) {
  EXPECT_NO_THROW(AccountGrouping({{0, 1}, {2}}, 3));
  // Account in two groups.
  EXPECT_THROW(AccountGrouping({{0, 1}, {1, 2}}, 3), std::invalid_argument);
  // Missing account.
  EXPECT_THROW(AccountGrouping({{0}, {2}}, 3), std::invalid_argument);
  // Out of range.
  EXPECT_THROW(AccountGrouping({{0, 3}}, 3), std::invalid_argument);
  // Empty group.
  EXPECT_THROW(AccountGrouping({{0, 1, 2}, {}}, 3), std::invalid_argument);
}

TEST(AccountGrouping, SingletonsAndLabels) {
  const auto g = AccountGrouping::singletons(3);
  EXPECT_EQ(g.group_count(), 3u);
  EXPECT_EQ(g.group_of(2), 2u);
  const auto labels = g.labels();
  EXPECT_EQ(labels, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(AccountGrouping, FromLabelsRoundTrip) {
  const std::vector<std::size_t> labels{2, 0, 2, 1};
  const auto g = AccountGrouping::from_labels(labels);
  EXPECT_EQ(g.group_count(), 3u);
  EXPECT_EQ(g.group_of(0), g.group_of(2));
  EXPECT_NE(g.group_of(0), g.group_of(1));
}

TEST(AccountGrouping, FromLabelsSkipsGaps) {
  // Labels 0 and 5 with nothing in between must not create empty groups.
  const std::vector<std::size_t> labels{5, 0, 5};
  const auto g = AccountGrouping::from_labels(labels);
  EXPECT_EQ(g.group_count(), 2u);
}

// --- AG-TS ----------------------------------------------------------------

TEST(AgTs, AffinityFormulaEq6) {
  // A = (T - 2L)(T + L)/m
  EXPECT_NEAR(AgTs::affinity(3, 0, 4), 2.25, 1e-12);
  EXPECT_NEAR(AgTs::affinity(3, 1, 4), 1.0, 1e-12);
  EXPECT_NEAR(AgTs::affinity(1, 3, 4), -5.0, 1e-12);
  EXPECT_THROW(AgTs::affinity(1, 1, 0), std::invalid_argument);
}

TEST(AgTs, PaperExampleAffinityMatrix) {
  // Task sets from Table I/III: 1={1,2,3,4}, 2={2,3}, 3={1,2,4},
  // 4'=4''=4'''={1,3,4}.
  const auto input = eval::paper_example_input();
  const auto a = AgTs::affinity_matrix(input);
  // Sybil pairs share all 3 tasks, none alone: (3)(3)/4 = 2.25.
  EXPECT_NEAR(a[3][4], 2.25, 1e-12);
  EXPECT_NEAR(a[3][5], 2.25, 1e-12);
  EXPECT_NEAR(a[4][5], 2.25, 1e-12);
  // Account 1 vs a Sybil account: T=3, L=1 -> 1.0.  (Same value as 1 vs 3 —
  // see the header note on the paper's example inconsistency.)
  EXPECT_NEAR(a[0][3], 1.0, 1e-12);
  EXPECT_NEAR(a[0][2], 1.0, 1e-12);
  // Account 2 vs Sybil: T=1 ({T3}), L=3 ({T2; T1, T4}) -> (1-6)(4)/4 = -5.
  EXPECT_NEAR(a[1][3], -5.0, 1e-12);
  // Symmetry and zero diagonal.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i][i], 0.0);
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[i][j], a[j][i]);
    }
  }
}

TEST(AgTs, PaperExampleGroupsSybilAccounts) {
  const auto input = eval::paper_example_input();
  const auto grouping = AgTs().group(input);
  // With Eq. (6) verbatim and the strict A > 1 rule, the Sybil accounts
  // form one group and every legitimate account is a singleton.
  EXPECT_EQ(grouping.group_of(3), grouping.group_of(4));
  EXPECT_EQ(grouping.group_of(4), grouping.group_of(5));
  EXPECT_NE(grouping.group_of(0), grouping.group_of(3));
  EXPECT_NE(grouping.group_of(1), grouping.group_of(3));
  EXPECT_NE(grouping.group_of(2), grouping.group_of(3));
  EXPECT_EQ(grouping.group_count(), 4u);
}

TEST(AgTs, LowerThresholdMergesAccountOne) {
  // Dropping rho below 1 admits the A = 1.0 edges, reproducing the paper's
  // narrative (account 1 joins the Sybil component) — at the cost of
  // pulling account 3 in too, which is exactly the documented
  // inconsistency in the paper's worked example.
  AgTsOptions opt;
  opt.rho = 0.99;
  const auto grouping = AgTs(opt).group(eval::paper_example_input());
  EXPECT_EQ(grouping.group_of(0), grouping.group_of(3));
  EXPECT_EQ(grouping.group_of(0), grouping.group_of(2));
}

TEST(AgTs, DisjointTaskSetsStaySeparate) {
  const auto input = make_input(
      4, {{{0, 1.0, 0.0}, {1, 1.0, 0.1}}, {{2, 1.0, 0.0}, {3, 1.0, 0.1}}});
  const auto grouping = AgTs().group(input);
  EXPECT_EQ(grouping.group_count(), 2u);
}

TEST(AgTs, EmptyInput) {
  FrameworkInput input;
  input.task_count = 0;
  EXPECT_EQ(AgTs().group(input).group_count(), 0u);
}

// --- AG-TR ----------------------------------------------------------------

TEST(AgTr, SeriesExtraction) {
  AccountTrace trace;
  trace.reports = {{2, -50.0, 10.1}, {0, -60.0, 10.3}, {3, -70.0, 10.5}};
  EXPECT_EQ(AgTr::task_series(trace), (std::vector<double>{3, 1, 4}));
  EXPECT_EQ(AgTr::timestamp_series(trace),
            (std::vector<double>{10.1, 10.3, 10.5}));
}

TEST(AgTr, PaperExampleDissimilarityMatrices) {
  const auto input = eval::paper_example_input();
  const AgTr agtr;
  const auto m = agtr.dissimilarity_matrices(input);
  // Fig. 4(a): task-series total DTW costs.
  EXPECT_NEAR(m.task_dtw[0][1], 2.0, 1e-12);  // X1 vs X2
  EXPECT_NEAR(m.task_dtw[0][2], 1.0, 1e-12);  // X1 vs X3
  EXPECT_NEAR(m.task_dtw[0][3], 1.0, 1e-12);  // X1 vs X4'
  EXPECT_NEAR(m.task_dtw[3][4], 0.0, 1e-12);  // identical Sybil series
  EXPECT_NEAR(m.task_dtw[1][3], 2.0, 1e-12);
  // Fig. 4(b): timestamp DTW costs are tiny for Sybil pairs (minutes apart
  // in hour units) and of order 0.01–0.06 overall.
  EXPECT_LT(m.time_dtw[3][4], 0.01);
  EXPECT_LT(m.time_dtw[3][5], 0.01);
  EXPECT_GT(m.time_dtw[0][1], 0.0);
  // Fig. 4(c): D = task + time; D(1,4') ~ 1.01.
  EXPECT_NEAR(m.dissimilarity[0][3], 1.01, 0.02);
  // Symmetry.
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(m.dissimilarity[i][j], m.dissimilarity[j][i]);
    }
  }
}

TEST(AgTr, PaperExampleGroupsOnlySybilAccounts) {
  // Fig. 4(d): with phi = 1, the only component is {4', 4'', 4'''}.
  const auto grouping = AgTr().group(eval::paper_example_input());
  EXPECT_EQ(grouping.group_count(), 4u);
  EXPECT_EQ(grouping.group_of(3), grouping.group_of(4));
  EXPECT_EQ(grouping.group_of(4), grouping.group_of(5));
  std::set<std::size_t> legit{grouping.group_of(0), grouping.group_of(1),
                              grouping.group_of(2)};
  EXPECT_EQ(legit.size(), 3u);
  EXPECT_FALSE(legit.count(grouping.group_of(3)));
}

TEST(AgTr, PathNormalizedModeStillIsolatesSybilGroup) {
  // Eq. (7) rescales distances (sqrt(cost / K) — smaller for costs > 1,
  // larger for tiny costs), but identical Sybil trajectories still have
  // near-zero dissimilarity, so the grouping outcome is unchanged.
  AgTrOptions normalized;
  normalized.mode = DtwMode::kPathNormalized;
  // Eq. (7) compresses the task-series separation (sqrt(1/K) < 1), so the
  // threshold must shrink with it; phi is mode-dependent.
  normalized.phi = 0.3;
  const auto input = eval::paper_example_input();
  const auto mn = AgTr(normalized).dissimilarity_matrices(input);
  const auto mt = AgTr().dissimilarity_matrices(input);
  // Zero-cost pairs stay zero in both modes; nonzero pairs differ.
  EXPECT_LT(mn.task_dtw[3][4], 1e-9);
  EXPECT_NE(mn.dissimilarity[0][1], mt.dissimilarity[0][1]);
  const auto grouping = AgTr(normalized).group(input);
  EXPECT_EQ(grouping.group_of(3), grouping.group_of(4));
  EXPECT_EQ(grouping.group_of(4), grouping.group_of(5));
  EXPECT_NE(grouping.group_of(0), grouping.group_of(3));
}

TEST(AgTr, AccountWithoutReportsBecomesSingleton) {
  auto input = make_input(2, {{{0, 1.0, 0.0}, {1, 1.0, 0.1}},
                              {{0, 1.0, 0.0}, {1, 1.0, 0.1}},
                              {}});
  const auto grouping = AgTr().group(input);
  // Accounts 0 and 1 are identical; account 2 has no trajectory.
  EXPECT_EQ(grouping.group_of(0), grouping.group_of(1));
  EXPECT_NE(grouping.group_of(2), grouping.group_of(0));
}

// --- AG-FP ----------------------------------------------------------------

TEST(AgFp, GroupsIdenticalFingerprints) {
  FrameworkInput input;
  input.task_count = 1;
  for (int i = 0; i < 6; ++i) {
    AccountTrace trace;
    trace.name = "a" + std::to_string(i);
    // Two tight fingerprint clusters.
    const double base = i < 3 ? 0.0 : 100.0;
    trace.fingerprint = {base + 0.001 * i, base - 0.001 * i, base};
    input.accounts.push_back(std::move(trace));
  }
  const auto grouping = AgFp().group(input);
  EXPECT_EQ(grouping.group_of(0), grouping.group_of(1));
  EXPECT_EQ(grouping.group_of(1), grouping.group_of(2));
  EXPECT_EQ(grouping.group_of(3), grouping.group_of(4));
  EXPECT_NE(grouping.group_of(0), grouping.group_of(3));
}

TEST(AgFp, FixedKOverridesElbow) {
  FrameworkInput input;
  input.task_count = 1;
  for (int i = 0; i < 4; ++i) {
    AccountTrace trace;
    trace.fingerprint = {static_cast<double>(i * 10)};
    input.accounts.push_back(std::move(trace));
  }
  AgFpOptions opt;
  opt.fixed_k = 4;
  const auto grouping = AgFp(opt).group(input);
  EXPECT_EQ(grouping.group_count(), 4u);
}

TEST(AgFp, MissingFingerprintsBecomeSingletons) {
  FrameworkInput input;
  input.task_count = 1;
  for (int i = 0; i < 3; ++i) {
    AccountTrace trace;
    if (i < 2) trace.fingerprint = {1.0, 2.0};
    input.accounts.push_back(std::move(trace));
  }
  const auto grouping = AgFp().group(input);
  EXPECT_EQ(grouping.account_count(), 3u);
  // Account 2 must be alone.
  EXPECT_EQ(grouping.group(grouping.group_of(2)).size(), 1u);
}

TEST(AgFp, RejectsMixedDimensions) {
  FrameworkInput input;
  input.task_count = 1;
  AccountTrace a, b;
  a.fingerprint = {1.0, 2.0};
  b.fingerprint = {1.0};
  input.accounts = {a, b};
  EXPECT_THROW(AgFp().group(input), std::invalid_argument);
}

// --- Data grouping (Eqs. 3 and 4) ------------------------------------------

TEST(DataGrouping, AggregateModes) {
  DataGroupingOptions opt;
  const std::vector<double> duplicates{-50, -50, -50};
  opt.aggregate = GroupAggregate::kInverseDeviation;
  EXPECT_NEAR(aggregate_group_values(duplicates, opt), -50.0, 1e-9);
  opt.aggregate = GroupAggregate::kMean;
  EXPECT_NEAR(aggregate_group_values({1, 2, 9}, opt), 4.0, 1e-12);
  opt.aggregate = GroupAggregate::kMedian;
  EXPECT_NEAR(aggregate_group_values({1, 2, 9}, opt), 2.0, 1e-12);
  EXPECT_THROW(aggregate_group_values({}, opt), std::invalid_argument);
}

TEST(DataGrouping, InverseDeviationLeansTowardDenseMass) {
  DataGroupingOptions opt;
  // Four agreeing values and one outlier: the robust aggregate should sit
  // near the dense mass, closer than the plain mean.
  const std::vector<double> values{-70, -70.5, -69.5, -70.2, -50};
  const double robust = aggregate_group_values(values, opt);
  opt.aggregate = GroupAggregate::kMean;
  const double plain = aggregate_group_values(values, opt);
  EXPECT_LT(std::abs(robust - (-70.0)), std::abs(plain - (-70.0)));
}

TEST(DataGrouping, Eq4WeightsFavorSmallGroups) {
  // 3 accounts: two Sybil (group 0) + one legit (group 1), one task.
  auto input = make_input(1, {{{0, -50.0, 0.0}},
                              {{0, -50.0, 0.1}},
                              {{0, -70.0, 0.2}}});
  const AccountGrouping grouping({{0, 1}, {2}}, 3);
  const GroupedData grouped = group_data(input, grouping);
  ASSERT_EQ(grouped.per_task[0].size(), 2u);
  const auto& sybil = grouped.per_task[0][0];
  const auto& legit = grouped.per_task[0][1];
  EXPECT_EQ(sybil.group, 0u);
  EXPECT_NEAR(sybil.value, -50.0, 1e-9);
  EXPECT_NEAR(sybil.initial_weight, 1.0 - 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(legit.initial_weight, 1.0 - 1.0 / 3.0, 1e-12);
  EXPECT_GT(legit.initial_weight, sybil.initial_weight);
}

TEST(DataGrouping, TasksOfGroupTracksCoverage) {
  auto input = make_input(3, {{{0, 1.0, 0.0}, {2, 1.0, 0.1}},
                              {{1, 2.0, 0.0}}});
  const AccountGrouping grouping({{0}, {1}}, 2);
  const GroupedData grouped = group_data(input, grouping);
  EXPECT_EQ(grouped.tasks_of_group[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(grouped.tasks_of_group[1], (std::vector<std::size_t>{1}));
}

TEST(DataGrouping, LiteralGroupSizeModeClampsAtFloor) {
  // Group of 3 accounts but only 1 reports the task; literal mode uses 3
  // over |U_j| = 2 -> negative weight, clamped to the floor.
  auto input = make_input(1, {{{0, 1.0, 0.0}}, {}, {}, {{0, 5.0, 0.1}}});
  const AccountGrouping grouping({{0, 1, 2}, {3}}, 4);
  DataGroupingOptions opt;
  opt.size_from_task_participants = false;
  const GroupedData grouped = group_data(input, grouping, opt);
  EXPECT_NEAR(grouped.per_task[0][0].initial_weight, opt.weight_floor,
              1e-12);
}

// --- Framework (Algorithm 2) ------------------------------------------------

TEST(Framework, OracleGroupingNeutralizesPaperAttack) {
  const auto input = eval::paper_example_input();
  const AccountGrouping oracle =
      AccountGrouping::from_labels(eval::paper_example_user_labels());
  const FrameworkResult r = run_framework(input, oracle);
  EXPECT_TRUE(r.converged);
  // The three -50 submissions collapse into one group datum; estimates for
  // T1/T3/T4 stay close to the legitimate data.
  EXPECT_LT(r.truths[0], -65.0);
  EXPECT_LT(r.truths[2], -65.0);
  EXPECT_LT(r.truths[3], -62.0);
}

TEST(Framework, AgTrGroupingMatchesOracleOnPaperExample) {
  const auto input = eval::paper_example_input();
  const FrameworkResult by_agtr = run_framework(input, AgTr());
  const AccountGrouping oracle =
      AccountGrouping::from_labels(eval::paper_example_user_labels());
  const FrameworkResult by_oracle = run_framework(input, oracle);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(by_agtr.truths[j], by_oracle.truths[j], 1e-6) << j;
  }
}

TEST(Framework, SingletonGroupingDegeneratesTowardCrh) {
  // With every account its own group, the framework is account-level
  // CRH-style TD; on the attacked example it should also be corrupted.
  const auto input = eval::paper_example_input();
  const auto singles = AccountGrouping::singletons(input.accounts.size());
  const FrameworkResult r = run_framework(input, singles);
  EXPECT_GT(r.truths[0], -65.0);  // corrupted toward -50
}

TEST(Framework, GroupWeightsPenalizeSybilGroup) {
  const auto input = eval::paper_example_input();
  const AccountGrouping oracle =
      AccountGrouping::from_labels(eval::paper_example_user_labels());
  const FrameworkResult r = run_framework(input, oracle);
  // Group 3 is the Sybil group (-50s); its final weight should be the
  // smallest among groups that reported multiple tasks.
  ASSERT_EQ(r.group_weights.size(), 4u);
  EXPECT_LT(r.group_weights[3], r.group_weights[0]);
}

TEST(Framework, TruthsWithinDataRange) {
  const auto input = eval::paper_example_input();
  const FrameworkResult r = run_framework(input, AgTs());
  for (double t : r.truths) {
    EXPECT_GE(t, -95.0);
    EXPECT_LE(t, -45.0);
  }
}

TEST(Framework, HandlesUncoveredTask) {
  auto input = make_input(2, {{{0, -60.0, 0.0}}});
  const FrameworkResult r =
      run_framework(input, AccountGrouping::singletons(1));
  EXPECT_NEAR(r.truths[0], -60.0, 1e-9);
  EXPECT_TRUE(std::isnan(r.truths[1]));
}

TEST(Framework, MismatchedGroupingIsRejected) {
  const auto input = eval::paper_example_input();
  const auto wrong = AccountGrouping::singletons(3);
  EXPECT_THROW(run_framework(input, wrong), std::invalid_argument);
}

TEST(Framework, Eq5InitAblationChangesInitOnly) {
  const auto input = eval::paper_example_input();
  FrameworkOptions with_eq5, without;
  without.init_with_eq5 = false;
  const AccountGrouping oracle =
      AccountGrouping::from_labels(eval::paper_example_user_labels());
  const auto a = run_framework(input, oracle, with_eq5);
  const auto b = run_framework(input, oracle, without);
  // Both converge; estimates agree closely on this easy instance.
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(a.truths[j], b.truths[j], 2.0);
  }
}

}  // namespace
}  // namespace sybiltd::core
