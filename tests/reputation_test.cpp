// Tests for the cross-campaign reputation ledger, reputation-weighted CRH,
// and the AG-AUTO dispatching grouper.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/ag_auto.h"
#include "eval/adapters.h"
#include "eval/metrics.h"
#include "reputation/ledger.h"

namespace sybiltd::reputation {
namespace {

TEST(Ledger, NewcomersStartAtInitial) {
  ReputationLedger ledger;
  EXPECT_FALSE(ledger.known("alice"));
  EXPECT_NEAR(ledger.get("alice"), 0.2, 1e-12);
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(Ledger, EwmaConvergesTowardScores) {
  LedgerOptions opt;
  opt.ewma_alpha = 0.5;
  ReputationLedger ledger(opt);
  for (int i = 0; i < 20; ++i) ledger.update("good", 1.0);
  for (int i = 0; i < 20; ++i) ledger.update("bad", 0.0);
  EXPECT_GT(ledger.get("good"), 0.99);
  EXPECT_LE(ledger.get("bad"), opt.floor + 1e-12);
  EXPECT_GE(ledger.get("bad"), opt.floor);  // never hits zero
}

TEST(Ledger, ValidatesInput) {
  ReputationLedger ledger;
  EXPECT_THROW(ledger.update("x", 1.5), std::invalid_argument);
  EXPECT_THROW(ledger.update("x", -0.1), std::invalid_argument);
  EXPECT_THROW(ledger.update_campaign({"a"}, {0.1, 0.2}),
               std::invalid_argument);
  LedgerOptions bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(ReputationLedger{bad}, std::invalid_argument);
}

TEST(Ledger, NormalizeScores) {
  const auto scores = normalize_scores({2.0, 4.0, 0.0});
  EXPECT_NEAR(scores[0], 0.5, 1e-12);
  EXPECT_NEAR(scores[1], 1.0, 1e-12);
  EXPECT_NEAR(scores[2], 0.0, 1e-12);
  const auto zero = normalize_scores({0.0, 0.0});
  EXPECT_EQ(zero[0], 0.0);
  EXPECT_THROW(normalize_scores({-1.0}), std::invalid_argument);
}

// A repeating campaign: persistent honest accounts, fresh Sybil accounts
// each round (the attacker abandons flagged accounts).
TEST(ReputationCrh, SybilInfluenceDecaysAcrossCampaigns) {
  Rng rng(3);
  const std::size_t honest = 6, sybil = 8, tasks = 8;
  ReputationLedger ledger;

  double first_mae = 0.0, last_mae = 0.0;
  const int campaigns = 6;
  for (int campaign = 0; campaign < campaigns; ++campaign) {
    std::vector<double> truths(tasks);
    for (auto& t : truths) t = rng.uniform(-90.0, -50.0);
    truth::ObservationTable table(honest + sybil, tasks);
    std::vector<std::string> identities;
    for (std::size_t i = 0; i < honest; ++i) {
      identities.push_back("user-" + std::to_string(i));  // persistent
      for (std::size_t j = 0; j < tasks; ++j) {
        table.add(i, j, truths[j] + rng.normal(0.0, 1.5));
      }
    }
    for (std::size_t s = 0; s < sybil; ++s) {
      // Fresh account name every campaign.
      identities.push_back("sybil-c" + std::to_string(campaign) + "-" +
                           std::to_string(s));
      for (std::size_t j = 0; j < tasks; ++j) {
        table.add(honest + s, j, -50.0 + rng.normal(0.0, 0.3));
      }
    }
    const ReputationWeightedCrh algo(ledger, identities);
    const auto result = algo.run(table);
    const double mae = eval::mean_absolute_error(result.truths, truths);
    if (campaign == 0) first_mae = mae;
    if (campaign == campaigns - 1) last_mae = mae;
    ledger.update_campaign(identities,
                           normalize_scores(result.account_weights));
  }
  // Honest accounts build standing; fresh Sybil accounts keep starting at
  // the newcomer reputation, so accuracy improves over campaigns.
  EXPECT_LT(last_mae, first_mae * 0.6);
  // Residual influence remains (the reputation floor keeps newcomers from
  // being silenced entirely), but the attack is strongly damped.
  EXPECT_LT(last_mae, 6.0);
}

TEST(ReputationCrh, MatchesPlainCrhWithUniformReputation) {
  // With every identity at the same reputation, damping cancels in the
  // weighted mean, so estimates track plain CRH closely.
  Rng rng(4);
  const std::size_t accounts = 5, tasks = 6;
  truth::ObservationTable table(accounts, tasks);
  std::vector<std::string> identities;
  std::vector<double> truths(tasks);
  for (auto& t : truths) t = rng.uniform(-90, -50);
  for (std::size_t i = 0; i < accounts; ++i) {
    identities.push_back("u" + std::to_string(i));
    for (std::size_t j = 0; j < tasks; ++j) {
      table.add(i, j, truths[j] + rng.normal(0.0, 2.0));
    }
  }
  ReputationLedger ledger;  // everyone unknown -> same initial value
  const auto rep = ReputationWeightedCrh(ledger, identities).run(table);
  const auto plain = truth::Crh().run(table);
  for (std::size_t j = 0; j < tasks; ++j) {
    EXPECT_NEAR(rep.truths[j], plain.truths[j], 0.5);
  }
}

TEST(ReputationCrh, ValidatesIdentityCount) {
  truth::ObservationTable table(2, 1);
  table.add(0, 0, 1.0);
  ReputationLedger ledger;
  const ReputationWeightedCrh algo(ledger, {"only-one"});
  EXPECT_THROW(algo.run(table), std::invalid_argument);
}

}  // namespace
}  // namespace sybiltd::reputation

namespace sybiltd::core {
namespace {

TEST(AgAuto, SimilarityMetric) {
  FrameworkInput input;
  input.task_count = 4;
  for (int i = 0; i < 2; ++i) {
    AccountTrace trace;
    for (std::size_t j = 0; j < 4; ++j) {
      trace.reports.push_back({j, 0.0, 0.1 * static_cast<double>(j)});
    }
    input.accounts.push_back(std::move(trace));
  }
  EXPECT_NEAR(AgAuto::mean_task_set_similarity(input), 1.0, 1e-12);
  // Disjoint sets.
  input.accounts[1].reports.clear();
  input.accounts[1].reports.push_back({3, 0.0, 0.0});
  input.accounts[0].reports.resize(2);  // tasks 0, 1
  EXPECT_NEAR(AgAuto::mean_task_set_similarity(input), 0.0, 1e-12);
}

TEST(AgAuto, DispatchesPerPaperGuidance) {
  // Diverse task sets (low legit activeness) -> AG-TS behaviour;
  // identical task sets (activeness 1) -> AG-TR behaviour.
  const auto diverse =
      mcs::generate_scenario(mcs::make_paper_scenario(0.3, 0.5, 21));
  const auto similar =
      mcs::generate_scenario(mcs::make_paper_scenario(1.0, 1.0, 21));
  const auto diverse_input = eval::to_framework_input(diverse);
  const auto similar_input = eval::to_framework_input(similar);

  EXPECT_LT(AgAuto::mean_task_set_similarity(diverse_input), 0.6);
  EXPECT_GT(AgAuto::mean_task_set_similarity(similar_input), 0.6);

  const AgAuto agauto;
  EXPECT_EQ(agauto.group(diverse_input).labels(),
            AgTs().group(diverse_input).labels());
  EXPECT_EQ(agauto.group(similar_input).labels(),
            AgTr().group(similar_input).labels());
}

}  // namespace
}  // namespace sybiltd::core
