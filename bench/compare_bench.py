#!/usr/bin/env python3
"""Merge and compare google-benchmark JSON outputs.

Used by the CI perf-smoke job to diff a fresh benchmark run against the
committed BENCH_baseline.json:

    # Capture the current numbers (micro + scaling) into one file:
    ./build/bench/micro_benchmarks --json \
        --benchmark_filter='...' > micro.json
    ./build/bench/parallel_scaling --json 60 > scaling.json
    python3 bench/compare_bench.py merge -o current.json micro.json \
        scaling.json

    # Fail if anything regressed by more than 25% relative to baseline:
    python3 bench/compare_bench.py compare BENCH_baseline.json \
        current.json --tolerance 0.25 --normalize-by 'BM_DtwFull/64'

Only stdlib is used.  `--normalize-by` divides every time by the named
benchmark's time *within the same file*, so the comparison is a ratio of
relative speeds — robust to the baseline and the current run executing on
different hardware.  Without it the comparison is absolute wall time.
"""

import argparse
import json
import sys

# Conversion factors to nanoseconds, per google-benchmark's time_unit.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path, metric):
    """Return {name: time_ns} for every per-iteration entry in the file."""
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if entry.get("run_type", "iteration") != "iteration":
            continue
        name = entry["name"]
        value = entry.get(metric)
        if value is None:
            continue
        unit = entry.get("time_unit", "ns")
        out[name] = float(value) * _UNIT_NS.get(unit, 1.0)
    return out


def cmd_merge(args):
    merged = {"benchmarks": []}
    seen = set()
    for path in args.inputs:
        with open(path) as fh:
            doc = json.load(fh)
        if "context" in doc and "context" not in merged:
            merged["context"] = doc["context"]
        for entry in doc.get("benchmarks", []):
            key = entry.get("name")
            if key in seen:
                print(f"warning: duplicate benchmark {key!r} from {path}, "
                      "keeping the first occurrence", file=sys.stderr)
                continue
            seen.add(key)
            merged["benchmarks"].append(entry)
    with open(args.output, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")
    print(f"merged {len(merged['benchmarks'])} benchmarks into "
          f"{args.output}")
    return 0


def cmd_compare(args):
    baseline = load_benchmarks(args.baseline, args.metric)
    current = load_benchmarks(args.current, args.metric)

    if args.normalize_by:
        for label, table in (("baseline", baseline), ("current", current)):
            anchor = table.get(args.normalize_by)
            if not anchor:
                print(f"error: --normalize-by benchmark "
                      f"{args.normalize_by!r} missing from {label} file",
                      file=sys.stderr)
                return 2
            for name in table:
                table[name] /= anchor

    shared = sorted(set(baseline) & set(current))
    removed = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    if not shared:
        print("error: no benchmarks in common between baseline and current",
              file=sys.stderr)
        return 2

    regressions = []
    width = max(len(name) for name in shared + removed + new)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}")
    for name in shared:
        base, cur = baseline[name], current[name]
        ratio = cur / base if base > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.tolerance:
            flag = "  REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1.0 - args.tolerance:
            flag = "  improved"
        print(f"{name:<{width}}  {base:>12.1f}  {cur:>12.1f}  "
              f"{ratio:>6.2f}x{flag}")
    # Benchmarks on one side only are informational, never a failure: a
    # candidate adding benches must be able to land before the committed
    # baseline is refreshed to track them, and a baseline refresh must not
    # be blocked by benches the candidate dropped.
    for name in new:
        print(f"{name:<{width}}  {'-':>12}  {current[name]:>12.1f}  "
              f"{'new':>7}")
    for name in removed:
        print(f"{name:<{width}}  {baseline[name]:>12.1f}  {'-':>12}  "
              f"{'removed':>7}")
    if new:
        print(f"\n{len(new)} new benchmark(s) not in the baseline "
              "(refresh BENCH_baseline.json to gate them)")
    if removed:
        print(f"{len(removed)} benchmark(s) removed since the baseline")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} shared benchmarks within "
          f"{args.tolerance:.0%} of baseline")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    merge = sub.add_parser("merge",
                           help="merge several benchmark JSON files")
    merge.add_argument("inputs", nargs="+", help="input JSON files")
    merge.add_argument("-o", "--output", required=True,
                       help="merged output path")
    merge.set_defaults(func=cmd_merge)

    compare = sub.add_parser("compare",
                             help="diff a current run against a baseline")
    compare.add_argument("baseline", help="baseline JSON (committed)")
    compare.add_argument("current", help="freshly captured JSON")
    compare.add_argument("--tolerance", type=float, default=0.25,
                         help="allowed fractional slowdown (default 0.25)")
    compare.add_argument("--metric", default="real_time",
                         choices=["real_time", "cpu_time"],
                         help="which per-iteration time to compare")
    compare.add_argument("--normalize-by", default=None, metavar="NAME",
                         help="divide every time by this benchmark's time "
                              "within the same file (hardware-relative "
                              "comparison)")
    compare.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
