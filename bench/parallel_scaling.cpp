// Parallel scaling of the pairwise kernels on the shared thread pool.
//
// Runs the three groupers and the end-to-end framework on one 200-account
// Attack-I scenario at 1/2/4/8 threads, reporting wall time, speedup over
// the single-threaded run, and the AG-TR lower-bound prune rate.  The
// single-threaded run takes the pool's serial fallback, so it doubles as
// the "no pool" baseline.
//
// Determinism gate: at every thread count the groupings must be *identical*
// to the serial labels and the framework truths must match to 1e-12 (they
// are bit-identical by construction — the parallel kernels write disjoint
// slots and every reduction folds serially in a fixed order).  Any mismatch
// makes the binary exit nonzero, so CI can run it as a check.
//
// Usage: parallel_scaling [legit_count] [--markdown | --json]
//   legit_count  scenario size knob (default 150 -> 200 accounts)
//   --markdown   emit the results as a GitHub table (docs/PERFORMANCE.md
//                is generated with `./build/bench/parallel_scaling
//                --markdown`)
//   --json       emit a google-benchmark-compatible JSON document (one
//                entry per kernel/thread-count pair, times in ms) that
//                bench/compare_bench.py can merge with the micro_benchmarks
//                output and diff against BENCH_baseline.json.  The
//                determinism gate still applies: a mismatch exits nonzero.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "common/thread_pool.h"
#include "core/ag_fp.h"
#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "core/framework.h"
#include "eval/adapters.h"
#include "mcs/scenario.h"

using namespace sybiltd;

namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr int kReps = 3;  // best-of, to damp scheduler noise

double best_ms(const std::function<void()>& body) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

struct KernelRow {
  std::string name;
  double ms[std::size(kThreadCounts)] = {};
};

std::string format_speedup(double serial_ms, double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f ms (%.2fx)", ms,
                ms > 0.0 ? serial_ms / ms : 0.0);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t legit = 150;
  bool markdown = false;
  bool json = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--markdown") == 0) {
      markdown = true;
    } else if (std::strcmp(argv[a], "--json") == 0) {
      json = true;
    } else {
      legit = std::stoul(argv[a]);
    }
  }

  auto config = mcs::make_large_scenario(legit, legit / 15, 5, 40, 99);
  config.capture_fingerprints = true;  // so AG-FP has features to cluster
  const auto data = mcs::generate_scenario(config);
  const auto input = eval::to_framework_input(data);
  const std::size_t accounts = input.accounts.size();

  core::AgTrOptions tr_exact;
  core::AgTrOptions tr_pruned;
  tr_pruned.prune_with_lower_bound = true;

  std::vector<KernelRow> rows = {{"AG-TR (exact DTW)"},
                                 {"AG-TR (LB-pruned)"},
                                 {"AG-TS"},
                                 {"AG-FP"},
                                 {"framework (TD-TR)"}};
  core::AgTrStats pruned_stats;

  // Serial reference outputs, captured at concurrency 1.
  std::vector<std::size_t> ref_exact, ref_pruned, ref_ts, ref_fp;
  std::vector<double> ref_truths;

  bool identical = true;
  for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
    ThreadPool::set_global_concurrency(kThreadCounts[t]);

    core::AccountGrouping exact = core::AccountGrouping::singletons(0);
    core::AccountGrouping pruned = core::AccountGrouping::singletons(0);
    core::AccountGrouping ts = core::AccountGrouping::singletons(0);
    core::AccountGrouping fp = core::AccountGrouping::singletons(0);
    std::vector<double> truths;

    rows[0].ms[t] = best_ms(
        [&] { exact = core::AgTr(tr_exact).group(input); });
    rows[1].ms[t] = best_ms([&] {
      pruned =
          core::AgTr(tr_pruned).group_with_stats(input, &pruned_stats);
    });
    rows[2].ms[t] = best_ms([&] { ts = core::AgTs().group(input); });
    rows[3].ms[t] = best_ms([&] { fp = core::AgFp().group(input); });
    rows[4].ms[t] = best_ms(
        [&] { truths = core::run_framework(input, pruned).truths; });

    if (t == 0) {
      ref_exact = exact.labels();
      ref_pruned = pruned.labels();
      ref_ts = ts.labels();
      ref_fp = fp.labels();
      ref_truths = truths;
    } else {
      identical = identical && exact.labels() == ref_exact &&
                  pruned.labels() == ref_pruned && ts.labels() == ref_ts &&
                  fp.labels() == ref_fp &&
                  truths.size() == ref_truths.size();
      for (std::size_t j = 0; identical && j < truths.size(); ++j) {
        const double diff = truths[j] - ref_truths[j];
        identical = diff <= 1e-12 && diff >= -1e-12;
      }
    }
  }
  // Leave the pool the way SYBILTD_THREADS configured it.
  ThreadPool::set_global_concurrency(ThreadPool::configured_concurrency());

  const double prune_rate =
      pruned_stats.pairs > 0
          ? static_cast<double>(pruned_stats.lb_pruned +
                                pruned_stats.task_abandoned) /
                static_cast<double>(pruned_stats.pairs)
          : 0.0;

  if (json) {
    // google-benchmark JSON shape: one "iteration" entry per
    // kernel/thread-count pair, so compare_bench.py can treat this file
    // and the micro_benchmarks output uniformly.
    std::printf("{\n");
    std::printf("  \"context\": {\n");
    std::printf("    \"executable\": \"parallel_scaling\",\n");
    std::printf("    \"accounts\": %zu,\n", accounts);
    std::printf("    \"tasks\": %zu,\n", input.task_count);
    std::printf("    \"prune_rate\": %.6f,\n", prune_rate);
    std::printf("    \"deterministic\": %s\n", identical ? "true" : "false");
    std::printf("  },\n");
    std::printf("  \"benchmarks\": [\n");
    bool first = true;
    for (const auto& row : rows) {
      for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
        std::printf("%s    {\n", first ? "" : ",\n");
        first = false;
        std::printf("      \"name\": \"%s/threads:%zu\",\n", row.name.c_str(),
                    kThreadCounts[t]);
        std::printf("      \"run_type\": \"iteration\",\n");
        std::printf("      \"iterations\": %d,\n", kReps);
        std::printf("      \"real_time\": %.6f,\n", row.ms[t]);
        std::printf("      \"cpu_time\": %.6f,\n", row.ms[t]);
        std::printf("      \"time_unit\": \"ms\"\n");
        std::printf("    }");
      }
    }
    std::printf("\n  ]\n}\n");
    if (!identical) return 1;
    return 0;
  }

  if (markdown) {
    std::printf("| kernel | 1 thread | 2 threads | 4 threads | 8 threads "
                "|\n");
    std::printf("|---|---|---|---|---|\n");
    for (const auto& row : rows) {
      std::printf("| %s ", row.name.c_str());
      for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
        std::printf("| %s ", format_speedup(row.ms[0], row.ms[t]).c_str());
      }
      std::printf("|\n");
    }
  } else {
    std::printf("=== Parallel scaling: %zu accounts, %zu tasks, hardware "
                "concurrency %u ===\n\n",
                accounts, input.task_count,
                std::thread::hardware_concurrency());
    TextTable table(
        {"kernel", "1 thread", "2 threads", "4 threads", "8 threads"});
    for (const auto& row : rows) {
      table.add_row({row.name, format_speedup(row.ms[0], row.ms[0]),
                     format_speedup(row.ms[0], row.ms[1]),
                     format_speedup(row.ms[0], row.ms[2]),
                     format_speedup(row.ms[0], row.ms[3])});
    }
    std::printf("%s", table.render().c_str());
  }
  std::printf("\nAG-TR lower-bound prefilter: %zu of %zu pairs excluded "
              "by the bound,\n%zu more after the task-series DTW alone "
              "(prune rate %.1f%%; %zu exact pairs).\n",
              pruned_stats.lb_pruned, pruned_stats.pairs,
              pruned_stats.task_abandoned, 100.0 * prune_rate,
              pruned_stats.exact_pairs);
  std::printf("Determinism: groupings and truths at 2/4/8 threads %s the "
              "serial run.\n",
              identical ? "match" : "DO NOT match");
  if (!identical) return 1;
  return 0;
}
