// Extension bench: the *rapacious* attacker (Section I of the paper) —
// duplicates honest data from many accounts to multiply its reward, not to
// corrupt the truths.  Under weight-proportional payment, account-level
// truth discovery pays each duplicate account nearly full weight, so the
// attacker's reward share grows linearly with its account count.  The
// framework treats each group as one participant (one group weight), so
// duplication buys nothing.
//
// Sweeps the accounts-per-attacker count and reports the Sybil share of
// total weight under CRH vs under the framework (each account's framework
// weight = its group's weight split evenly across the group).
#include <cstdio>

#include "common/table.h"
#include "core/ag_tr.h"
#include "core/framework.h"
#include "eval/adapters.h"
#include "eval/metrics.h"
#include "mcs/scenario.h"
#include "truth/crh.h"

using namespace sybiltd;

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Extension: the rapacious attacker's reward share "
              "(honest-duplicate attack, 8 legit users + 2 attackers, %zu "
              "seeds) ===\n\n",
              seeds);

  TextTable table({"accounts per attacker", "fair share", "CRH share",
                   "framework share"});
  for (std::size_t accounts : {1ul, 2ul, 4ul, 6ul, 8ul}) {
    double crh_share = 0.0, framework_share = 0.0, fair = 0.0;
    for (std::size_t s = 0; s < seeds; ++s) {
      auto config = mcs::make_paper_scenario(0.6, 0.6, 3300 + 59 * s);
      for (auto& attacker : config.attackers) {
        attacker.fabrication = mcs::Fabrication::kDuplicateHonest;
        attacker.account_count = accounts;
      }
      const auto data = mcs::generate_scenario(config);
      std::vector<bool> is_sybil;
      for (const auto& account : data.accounts) {
        is_sybil.push_back(account.is_sybil);
      }

      // CRH: per-account weights as paid.
      const auto crh = truth::Crh().run(eval::to_observation_table(data));
      std::vector<double> crh_weights = crh.account_weights;
      for (double& w : crh_weights) w = std::max(w, 0.0);
      crh_share += eval::sybil_weight_share(crh_weights, is_sybil);

      // Framework: a group is one participant; its weight splits evenly
      // across member accounts.
      const auto input = eval::to_framework_input(data);
      const auto result = core::run_framework(input, core::AgTr());
      std::vector<double> framework_weights(data.accounts.size(), 0.0);
      for (std::size_t i = 0; i < data.accounts.size(); ++i) {
        const std::size_t g = result.grouping.group_of(i);
        framework_weights[i] =
            std::max(result.group_weights[g], 0.0) /
            static_cast<double>(result.grouping.group(g).size());
      }
      framework_share +=
          eval::sybil_weight_share(framework_weights, is_sybil);

      // Fair share: 2 attackers acting as honest single-account users
      // among 10 users.
      fair += 2.0 / 10.0;
    }
    const double inv = 1.0 / static_cast<double>(seeds);
    table.add_row(std::to_string(accounts),
                  {fair * inv, crh_share * inv, framework_share * inv}, 3);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: under CRH the duplicate accounts submit perfectly\n"
      "plausible data, so the attacker's weight share scales with its\n"
      "account count — duplication pays.  Under the framework the share\n"
      "stays pinned near the fair two-users-in-ten share no matter how\n"
      "many accounts the attacker mints, eliminating the rapacious\n"
      "incentive the paper describes alongside Sybil-proof payments.\n");
  return 0;
}
