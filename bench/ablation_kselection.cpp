// Extension bench: how should AG-FP decide the number of devices?
// Compares the paper's elbow method against silhouette maximization, the
// gap statistic, and the k-free clustering backends (agglomerative
// threshold cut, DBSCAN) on fingerprint matrices from the paper scenario,
// reporting the estimated device count and the grouping ARI vs true
// devices and true users.
#include <cstdio>

#include "common/table.h"
#include "core/ag_fp.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "ml/clustering_metrics.h"
#include "ml/elbow.h"
#include "ml/kselect.h"
#include "ml/preprocess.h"

using namespace sybiltd;

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Extension: device-count estimation for AG-FP (%zu "
              "seeds; true devices = 11, distinguishable groups ~ "
              "models) ===\n\n",
              seeds);

  // --- k estimators on the raw fingerprint matrix --------------------------
  {
    TextTable table({"estimator", "mean k-hat", "ARI(device)", "ARI(user)"});
    struct Row {
      std::string name;
      double k_sum = 0.0, ari_dev = 0.0, ari_user = 0.0;
    };
    std::vector<Row> rows = {{"elbow curvature", 0, 0, 0},
                             {"elbow explained-variance", 0, 0, 0},
                             {"silhouette max", 0, 0, 0},
                             {"gap statistic", 0, 0, 0}};
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto data = mcs::generate_scenario(
          mcs::make_paper_scenario(0.5, 0.5, 9300 + 311 * s));
      std::vector<std::vector<double>> fps;
      for (const auto& account : data.accounts) {
        fps.push_back(account.fingerprint);
      }
      const Matrix z = ml::standardize(Matrix::from_rows(fps));
      std::vector<std::size_t> khat(4);
      {
        ml::ElbowOptions opt;
        opt.method = ml::ElbowMethod::kCurvature;
        khat[0] = ml::elbow_select_k(z, opt).best_k;
        opt.method = ml::ElbowMethod::kExplainedVariance;
        khat[1] = ml::elbow_select_k(z, opt).best_k;
      }
      khat[2] = ml::select_k_silhouette(z, {}).best_k;
      {
        ml::GapOptions opt;
        opt.reference_sets = 6;
        khat[3] = ml::select_k_gap_statistic(z, opt).best_k;
      }
      for (std::size_t m = 0; m < rows.size(); ++m) {
        const auto run = ml::kmeans(z, khat[m], {});
        rows[m].k_sum += static_cast<double>(khat[m]);
        rows[m].ari_dev += ml::adjusted_rand_index(
            run.labels, data.true_device_labels());
        rows[m].ari_user += ml::adjusted_rand_index(
            run.labels, data.true_user_labels());
      }
    }
    const double inv = 1.0 / static_cast<double>(seeds);
    for (const auto& row : rows) {
      table.add_row(row.name, {row.k_sum * inv, row.ari_dev * inv,
                               row.ari_user * inv},
                    3);
    }
    std::printf("1. k estimators + k-means\n%s\n", table.render().c_str());
  }

  // --- full AG-FP backends (end-to-end grouping ARI) ------------------------
  {
    TextTable table({"AG-FP backend", "ARI(device)", "ARI(user)", "groups"});
    struct Backend {
      std::string name;
      core::AgFpOptions options;
    };
    std::vector<Backend> backends;
    backends.push_back({"k-means + elbow (paper)", {}});
    {
      core::AgFpOptions opt;
      opt.clustering = core::FpClustering::kAgglomerative;
      backends.push_back({"agglomerative cut", opt});
    }
    {
      core::AgFpOptions opt;
      opt.clustering = core::FpClustering::kDbscan;
      backends.push_back({"DBSCAN (auto eps)", opt});
    }
    for (const auto& backend : backends) {
      double ari_dev = 0.0, ari_user = 0.0, groups = 0.0;
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto data = mcs::generate_scenario(
            mcs::make_paper_scenario(0.5, 0.5, 9300 + 311 * s));
        const auto input = eval::to_framework_input(data);
        const auto grouping = core::AgFp(backend.options).group(input);
        ari_dev += ml::adjusted_rand_index(grouping.labels(),
                                           data.true_device_labels());
        ari_user += ml::adjusted_rand_index(grouping.labels(),
                                            data.true_user_labels());
        groups += static_cast<double>(grouping.group_count());
      }
      const double inv = 1.0 / static_cast<double>(seeds);
      table.add_row(backend.name,
                    {ari_dev * inv, ari_user * inv, groups * inv}, 3);
    }
    std::printf("2. AG-FP clustering backends\n%s\n",
                table.render().c_str());
  }
  return 0;
}
