// Google-benchmark microbenchmarks of the computational substrates: FFT,
// feature extraction, DTW, k-means, elbow, truth discovery, the grouping
// methods and the full framework.
//
// `--json` is shorthand for google-benchmark's `--benchmark_format=json`;
// the CI perf-smoke job captures that output and diffs it against the
// committed BENCH_baseline.json with bench/compare_bench.py.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/ag_fp.h"
#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "core/data_grouping.h"
#include "core/framework.h"
#include "dtw/dtw.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "ml/elbow.h"
#include "ml/kmeans.h"
#include "ml/pca.h"
#include "obs/metrics.h"
#include "pipeline/engine.h"
#include "pipeline/status_json.h"
#include "sensing/fingerprint.h"
#include "server/report_decode.h"
#include "server/snapshot_cache.h"
#include "signal/features.h"
#include "signal/fft.h"
#include "signal/welch.h"
#include "simd/simd.h"
#include "truth/crh.h"

// Replacement global operator new/delete forwarding to malloc/free with an
// opt-in counter (same idiom as tests/workspace_test.cpp): the decode
// benchmarks report heap allocations per iteration as `allocs_per_op`, and
// the CI perf-smoke job asserts it is exactly 0 for BM_ReportDecodeFast —
// the zero-copy claim is measured, not asserted in prose.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_tracking{false};
}  // namespace

void* operator new(std::size_t n) {
  if (g_alloc_tracking.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace sybiltd;

namespace {

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(-1, 1);
  return out;
}

// Delta of a registry counter across the timed loop, attached to the
// benchmark as a per-iteration rate: proves zero-alloc / cache-hit claims
// directly in the `--json` report instead of a separate test binary.
// compare_bench.py only reads the timing metric, so the extra counters
// never affect the perf gate.
class CounterDelta {
 public:
  explicit CounterDelta(const char* name)
      : counter_(obs::MetricsRegistry::global().counter(name)),
        start_(counter_.value()) {}
  double delta() const {
    return static_cast<double>(counter_.value() - start_);
  }

 private:
  obs::Counter& counter_;
  std::uint64_t start_;
};

// The active SIMD dispatch level (0=scalar 1=sse2 2=neon 3=avx2) as a
// user counter, so the `--json` report records which kernel backend the
// numbers were measured with.  The CI perf-smoke job asserts this is > 0
// on its x86-64 runner (i.e. the vector path was actually selected).
void attach_simd_level(benchmark::State& state) {
  state.counters["simd_level"] =
      static_cast<double>(static_cast<int>(simd::active_level()));
}

void BM_FftPowerOfTwo(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fft_real(x));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_FftPowerOfTwo)->RangeMultiplier(4)->Range(64, 16384)
    ->Complexity(benchmark::oNLogN);

void BM_FftBluestein(benchmark::State& state) {
  // Prime-ish lengths force the chirp-z path.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fft_real(x));
  }
}
BENCHMARK(BM_FftBluestein)->Arg(601)->Arg(1201)->Arg(4801);

void BM_WelchPsd(benchmark::State& state) {
  // welch_psd_into with reused output storage: zero heap allocations per
  // call once the WelchPlan and workspace buffers are warm.  The registry
  // deltas back that up in the JSON report: ws_heap_allocs/iter ~ 0 and
  // plan_misses/iter ~ 0 once warm, while plan_hits tracks iterations.
  const auto x = random_series(static_cast<std::size_t>(state.range(0)), 13);
  signal::PowerSpectralDensity out;
  signal::welch_psd_into(x, 100.0, {}, out);  // warm plan + workspace
  CounterDelta heap_allocs("workspace.heap_allocations");
  CounterDelta plan_hits("welch.plan_hits");
  CounterDelta plan_misses("welch.plan_misses");
  for (auto _ : state) {
    signal::welch_psd_into(x, 100.0, {}, out);
    benchmark::DoNotOptimize(out.psd.data());
  }
  state.counters["ws_heap_allocs"] =
      benchmark::Counter(heap_allocs.delta(), benchmark::Counter::kAvgIterations);
  state.counters["plan_hits"] =
      benchmark::Counter(plan_hits.delta(), benchmark::Counter::kAvgIterations);
  state.counters["plan_misses"] =
      benchmark::Counter(plan_misses.delta(), benchmark::Counter::kAvgIterations);
  attach_simd_level(state);
}
BENCHMARK(BM_WelchPsd)->Arg(600)->Arg(6000);

void BM_StreamFeatures(benchmark::State& state) {
  const auto x = random_series(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::extract_stream_features(x));
  }
}
BENCHMARK(BM_StreamFeatures)->Arg(600)->Arg(6000);

void BM_FingerprintCapture(benchmark::State& state) {
  sensing::Device device(sensing::find_model("iPhone 6S"), 9);
  Rng rng(4);
  for (auto _ : state) {
    Rng r = rng.split();
    benchmark::DoNotOptimize(sensing::capture_fingerprint(device, {}, r));
  }
}
BENCHMARK(BM_FingerprintCapture);

void BM_DtwFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_series(n, 5);
  const auto b = random_series(n, 6);
  benchmark::DoNotOptimize(dtw::dtw_distance(a, b));  // warm workspace
  CounterDelta heap_allocs("workspace.heap_allocations");
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::dtw_distance(a, b));
  }
  state.counters["ws_heap_allocs"] =
      benchmark::Counter(heap_allocs.delta(), benchmark::Counter::kAvgIterations);
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_DtwFull)->RangeMultiplier(2)->Range(16, 512)
    ->Complexity(benchmark::oNSquared);

void BM_DtwBanded(benchmark::State& state) {
  const auto a = random_series(512, 7);
  const auto b = random_series(512, 8);
  dtw::DtwOptions opt;
  opt.band = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::dtw_distance(a, b, opt));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(8)->Arg(32)->Arg(128)->Arg(0);

void BM_DtwZnorm(benchmark::State& state) {
  const auto a = random_series(512, 21);
  const auto b = random_series(512, 22);
  dtw::DtwOptions opt;
  opt.band = 32;
  benchmark::DoNotOptimize(dtw::dtw_distance_znorm(a, b, opt));
  CounterDelta heap_allocs("workspace.heap_allocations");
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::dtw_distance_znorm(a, b, opt));
  }
  state.counters["ws_heap_allocs"] =
      benchmark::Counter(heap_allocs.delta(), benchmark::Counter::kAvgIterations);
  attach_simd_level(state);
}
BENCHMARK(BM_DtwZnorm);

void BM_DtwWavefront(benchmark::State& state) {
  // The cost-only DP: at vector levels this runs the diagonal-wavefront
  // recurrence through the dtw_wave_cost kernel, at scalar the serial
  // rolling rows — the same number the AG-TR kTotalCost mode consumes.
  const auto a = random_series(512, 23);
  const auto b = random_series(512, 24);
  benchmark::DoNotOptimize(dtw::dtw_total_cost(a, b));  // warm workspace
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::dtw_total_cost(a, b));
  }
  attach_simd_level(state);
}
BENCHMARK(BM_DtwWavefront);

void BM_KMeans(benchmark::State& state) {
  Rng rng(9);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix data(n, 20);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < 20; ++c) data(r, c) = rng.normal();
  }
  ml::KMeansOptions opt;
  opt.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::kmeans(data, 8, opt));
  }
  attach_simd_level(state);
}
BENCHMARK(BM_KMeans)->Arg(50)->Arg(200)->Arg(800);

void BM_KmeansAssign(benchmark::State& state) {
  // The assignment scan in isolation: 800 points x 8 centroids in 20
  // dimensions, each distance one squared_distance kernel call — the inner
  // loop Lloyd iterations and k-means++ seeding spend their time in.
  Rng rng(14);
  Matrix data(800, 20);
  for (std::size_t r = 0; r < 800; ++r) {
    for (std::size_t c = 0; c < 20; ++c) data(r, c) = rng.normal();
  }
  Matrix centroids(8, 20);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 20; ++c) centroids(r, c) = rng.normal();
  }
  std::vector<std::size_t> labels(800, 0);
  for (auto _ : state) {
    for (std::size_t i = 0; i < 800; ++i) {
      double best = ml::squared_distance(data.row(i), centroids.row(0));
      std::size_t arg = 0;
      for (std::size_t j = 1; j < 8; ++j) {
        const double d = ml::squared_distance(data.row(i), centroids.row(j));
        if (d < best) {
          best = d;
          arg = j;
        }
      }
      labels[i] = arg;
    }
    benchmark::DoNotOptimize(labels.data());
  }
  attach_simd_level(state);
}
BENCHMARK(BM_KmeansAssign);

void BM_ElbowScan(benchmark::State& state) {
  Rng rng(10);
  Matrix data(40, 20);
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < 20; ++c) data(r, c) = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::elbow_select_k(data, {}));
  }
}
BENCHMARK(BM_ElbowScan);

void BM_Pca(benchmark::State& state) {
  Rng rng(11);
  Matrix data(60, 80);
  for (std::size_t r = 0; r < 60; ++r) {
    for (std::size_t c = 0; c < 80; ++c) data(r, c) = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::fit_pca(data, 2));
  }
}
BENCHMARK(BM_Pca);

const mcs::ScenarioData& shared_scenario() {
  static const mcs::ScenarioData data =
      mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.5, 1234));
  return data;
}

void BM_ScenarioGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mcs::generate_scenario(mcs::make_paper_scenario(0.5, 0.5, seed++)));
  }
}
BENCHMARK(BM_ScenarioGeneration);

void BM_Crh(benchmark::State& state) {
  const auto table = eval::to_observation_table(shared_scenario());
  for (auto _ : state) {
    benchmark::DoNotOptimize(truth::Crh().run(table));
  }
  attach_simd_level(state);
}
BENCHMARK(BM_Crh);

void BM_CrhIterate(benchmark::State& state) {
  // One framework CRH sweep (weight + truth estimation) over a dense
  // synthetic workload: 512 tasks x 64 groups, every group reporting every
  // task.  Exercises residual_sq, weighted_sum_gather, safe_divide and
  // max_abs_diff with no grouping or convergence logic in the timer.
  constexpr std::size_t kTasks = 512;
  constexpr std::size_t kAccounts = 64;
  Rng rng(15);
  core::FrameworkInput input;
  input.task_count = kTasks;
  input.accounts.resize(kAccounts);
  for (std::size_t i = 0; i < kAccounts; ++i) {
    input.accounts[i].reports.reserve(kTasks);
    for (std::size_t j = 0; j < kTasks; ++j) {
      input.accounts[i].reports.push_back(
          {j, rng.uniform(-1, 1), static_cast<double>(j)});
    }
  }
  const auto grouping = core::AccountGrouping::singletons(kAccounts);
  const core::GroupedData grouped = core::group_data(input, grouping, {});
  const auto norm = core::framework_task_normalizers(grouped, kTasks);
  const auto initial = core::framework_initial_truths(grouped, kTasks, true);
  std::vector<double> truths;
  std::vector<double> group_weights(kAccounts, 1.0);
  for (auto _ : state) {
    // Reset the truths each iteration so every sweep does the same work.
    truths = initial;
    benchmark::DoNotOptimize(core::framework_iterate_once(
        grouped, norm, 1e-9, truths, group_weights));
  }
  attach_simd_level(state);
}
BENCHMARK(BM_CrhIterate);

void BM_AgFp(benchmark::State& state) {
  const auto input = eval::to_framework_input(shared_scenario());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AgFp().group(input));
  }
}
BENCHMARK(BM_AgFp);

void BM_AgTs(benchmark::State& state) {
  const auto input = eval::to_framework_input(shared_scenario());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AgTs().group(input));
  }
}
BENCHMARK(BM_AgTs);

void BM_AgTr(benchmark::State& state) {
  const auto input = eval::to_framework_input(shared_scenario());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AgTr().group(input));
  }
}
BENCHMARK(BM_AgTr);

void BM_FrameworkEndToEnd(benchmark::State& state) {
  const auto input = eval::to_framework_input(shared_scenario());
  const core::AgTr grouper;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_framework(input, grouper));
  }
}
BENCHMARK(BM_FrameworkEndToEnd);

// --- Thread-pool scaling of the pairwise kernels ---------------------------
// Arg(0) is the pool size; 1 takes the serial fallback.  A larger
// behavioral-only scenario so the quadratic stage dominates the timer.
// bench/parallel_scaling reports the same sweep as a speedup table plus a
// determinism check.

const mcs::ScenarioData& large_scenario() {
  static const mcs::ScenarioData data = mcs::generate_scenario(
      mcs::make_large_scenario(150, 10, 5, 40, 1234));
  return data;
}

// Restores the SYBILTD_THREADS-configured pool when the sweep item ends,
// so the non-parallel benchmarks above are unaffected by ordering.
struct PoolSizeGuard {
  explicit PoolSizeGuard(std::size_t threads) {
    ThreadPool::set_global_concurrency(threads);
  }
  ~PoolSizeGuard() {
    ThreadPool::set_global_concurrency(
        ThreadPool::configured_concurrency());
  }
};

void BM_AgTrThreads(benchmark::State& state) {
  const auto input = eval::to_framework_input(large_scenario());
  PoolSizeGuard guard(static_cast<std::size_t>(state.range(0)));
  core::AgTrOptions opt;
  opt.prune_with_lower_bound = true;
  const core::AgTr grouper(opt);
  core::AgTrStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grouper.group_with_stats(input, &stats));
  }
  state.counters["prune_rate"] =
      stats.pairs > 0 ? static_cast<double>(stats.lb_pruned +
                                            stats.task_abandoned) /
                            static_cast<double>(stats.pairs)
                      : 0.0;
}
BENCHMARK(BM_AgTrThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_AgTsThreads(benchmark::State& state) {
  const auto input = eval::to_framework_input(large_scenario());
  PoolSizeGuard guard(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AgTs().group(input));
  }
}
BENCHMARK(BM_AgTsThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_KMeansThreads(benchmark::State& state) {
  Rng rng(12);
  Matrix data(800, 20);
  for (std::size_t r = 0; r < 800; ++r) {
    for (std::size_t c = 0; c < 20; ++c) data(r, c) = rng.normal();
  }
  PoolSizeGuard guard(static_cast<std::size_t>(state.range(0)));
  ml::KMeansOptions opt;
  opt.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::kmeans(data, 8, opt));
  }
}
BENCHMARK(BM_KMeansThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Contended ingestion hot path: N benchmark threads hammering one started
// engine, the way N event loops do in the multi-loop server.  BM_TrySubmit
// measures the per-report path (wait-free routing + one queue lock per
// report); BM_TrySubmitBatch measures the batched path (one validation
// snapshot + one queue lock per shard per 64-report batch).  Rejected
// pushes (a full shard queue under the 1-consumer-per-shard drain rate)
// still traverse the full path, so items/s stays an honest submit rate.
constexpr std::size_t kSubmitTasks = 64;

pipeline::CampaignEngine* g_submit_engine = nullptr;

void submit_bench_setup(benchmark::State& state) {
  if (state.thread_index() == 0) {
    pipeline::EngineOptions options;
    options.shard_count = 4;
    options.queue_capacity = 1 << 15;
    g_submit_engine = new pipeline::CampaignEngine(options);
    g_submit_engine->add_campaign(kSubmitTasks);
    g_submit_engine->start();
  }
}

void submit_bench_teardown(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_submit_engine->drain();
    g_submit_engine->stop();
    delete g_submit_engine;
    g_submit_engine = nullptr;
  }
}

void BM_TrySubmit(benchmark::State& state) {
  submit_bench_setup(state);
  pipeline::Report report;
  report.account = static_cast<std::size_t>(state.thread_index());
  std::size_t task = 0;
  for (auto _ : state) {
    report.task = task;
    report.value = static_cast<double>(task);
    task = (task + 1) % kSubmitTasks;
    benchmark::DoNotOptimize(g_submit_engine->try_submit(report));
  }
  state.SetItemsProcessed(state.iterations());
  submit_bench_teardown(state);
}
BENCHMARK(BM_TrySubmit)->ThreadRange(1, 8)->UseRealTime();

void BM_TrySubmitBatch(benchmark::State& state) {
  submit_bench_setup(state);
  constexpr std::size_t kBatch = 64;
  std::vector<pipeline::Report> batch(kBatch);
  for (std::size_t k = 0; k < kBatch; ++k) {
    batch[k].account = static_cast<std::size_t>(state.thread_index());
    batch[k].task = k % kSubmitTasks;
    batch[k].value = static_cast<double>(k);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_submit_engine->try_submit_batch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
  submit_bench_teardown(state);
}
BENCHMARK(BM_TrySubmitBatch)->ThreadRange(1, 8)->UseRealTime();

// --- Ingest decode & snapshot rendering ------------------------------------
// The two halves of the zero-copy fast path (docs/PERFORMANCE.md "Ingest
// decode").  Registered arg-less so the CI perf-smoke filter matches the
// plain names.

// A canonical 100-report bare-array batch, the wire shape bench/server_load
// sends.  Varied digits so number parsing isn't unrealistically uniform.
std::string decode_bench_body() {
  std::string body = "[";
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    if (i > 0) body += ',';
    body += "{\"account\":" + std::to_string(i) +
            ",\"task\":" + std::to_string(i % kSubmitTasks) +
            ",\"value\":" + std::to_string(rng.uniform(-100, 100)) +
            ",\"timestamp_hours\":" + std::to_string(i / 24) + "}";
  }
  body += "]";
  return body;
}

void attach_alloc_count(benchmark::State& state, std::uint64_t allocs) {
  state.counters["allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs),
                         benchmark::Counter::kAvgIterations);
}

void BM_ReportDecodeFast(benchmark::State& state) {
  const std::string body = decode_bench_body();
  {
    // Warm the thread's workspace pool; the timed loop must not heap-allocate.
    const server::DecodedReports warm = server::decode_reports(body, 0, kSubmitTasks);
    if (!warm.ok || !warm.fast_path) {
      state.SkipWithError("fast path did not engage on the canonical body");
      return;
    }
  }
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_tracking.store(true, std::memory_order_relaxed);
  for (auto _ : state) {
    const server::DecodedReports decoded =
        server::decode_reports(body, 0, kSubmitTasks);
    benchmark::DoNotOptimize(decoded.reports.data());
  }
  g_alloc_tracking.store(false, std::memory_order_relaxed);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(body.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
  attach_alloc_count(state, g_alloc_count.load(std::memory_order_relaxed));
  attach_simd_level(state);
}
BENCHMARK(BM_ReportDecodeFast);

void BM_ReportDecodeGeneric(benchmark::State& state) {
  // The same body through the JsonValue-tree codec the fallback uses: the
  // gap between this and BM_ReportDecodeFast is what the fast path buys.
  const std::string body = decode_bench_body();
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_tracking.store(true, std::memory_order_relaxed);
  for (auto _ : state) {
    const server::DecodedReports decoded =
        server::decode_reports(body, 0, kSubmitTasks, /*allow_fast=*/false);
    benchmark::DoNotOptimize(decoded.reports.data());
  }
  g_alloc_tracking.store(false, std::memory_order_relaxed);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(body.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
  attach_alloc_count(state, g_alloc_count.load(std::memory_order_relaxed));
  attach_simd_level(state);
}
BENCHMARK(BM_ReportDecodeGeneric);

void BM_SnapshotRenderCached(benchmark::State& state) {
  // Repeat GETs of one snapshot version: after the first miss every get()
  // is a hash lookup + shared_ptr copy.  cache_hits/iter ~ 1 in the JSON
  // report proves the render really happened once.
  auto snapshot = std::make_shared<pipeline::CampaignSnapshot>();
  snapshot->campaign = 0;
  snapshot->version = 1;
  snapshot->truths.resize(256);
  snapshot->group_of.resize(512);
  snapshot->group_weights.resize(32, 1.0);
  snapshot->group_count = 32;
  Rng rng(32);
  for (auto& t : snapshot->truths) t = rng.uniform(-100, 100);
  for (auto& g : snapshot->group_of) g = static_cast<std::size_t>(rng.uniform(0, 32));
  const std::shared_ptr<const pipeline::CampaignSnapshot> frozen = snapshot;
  server::SnapshotResponseCache cache;
  // The cache counters are a per-campaign labeled family, so the delta reads
  // campaign 0's series rather than a plain registry counter.
  obs::Counter& hit_series =
      obs::MetricsRegistry::global()
          .counter_family("server.snapshot_cache.hits", "campaign")
          .at("0");
  const std::uint64_t hits_before = hit_series.value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.get(0, frozen, server::SnapshotResponseCache::View::kTruths));
  }
  state.counters["cache_hits"] = benchmark::Counter(
      static_cast<double>(hit_series.value() - hits_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SnapshotRenderCached);

void BM_SnapshotRenderUncached(benchmark::State& state) {
  // The render a cache miss pays, with reused output storage.
  pipeline::CampaignSnapshot snapshot;
  snapshot.campaign = 0;
  snapshot.version = 1;
  snapshot.truths.resize(256);
  snapshot.group_of.resize(512);
  snapshot.group_weights.resize(32, 1.0);
  snapshot.group_count = 32;
  Rng rng(33);
  for (auto& t : snapshot.truths) t = rng.uniform(-100, 100);
  for (auto& g : snapshot.group_of) g = static_cast<std::size_t>(rng.uniform(0, 32));
  std::string out;
  for (auto _ : state) {
    out.clear();
    pipeline::to_json_into(snapshot, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_SnapshotRenderUncached);

}  // namespace

// BENCHMARK_MAIN plus a `--json` alias for --benchmark_format=json, so CI
// scripts don't need to remember the long flag.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char json_flag[] = "--benchmark_format=json";
  for (char*& arg : args) {
    if (std::strcmp(arg, "--json") == 0) arg = json_flag;
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
