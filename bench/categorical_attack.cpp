// Extension bench: the Sybil attack on categorical crowdsensing (e.g.
// "is the parking lot full?" with L discrete states) and the categorical
// variant of the framework.  Sweeps the number of Sybil accounts and
// reports label accuracy for majority vote, categorical CRH, Dawid-Skene
// (all account-level, vulnerable) vs the framework with AG-TR grouping.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/ag_tr.h"
#include "core/categorical_framework.h"
#include "truth/categorical.h"

using namespace sybiltd;

namespace {

struct Campaign {
  core::FrameworkInput input;
  truth::CategoricalTable table;
  std::vector<std::size_t> truth;
};

constexpr std::size_t kTasks = 20;
constexpr std::size_t kLabels = 3;
constexpr std::size_t kHonest = 8;

Campaign make_campaign(std::size_t sybil_accounts, std::uint64_t seed) {
  Rng rng(seed);
  Campaign campaign{
      {}, truth::CategoricalTable(kHonest + sybil_accounts, kTasks, kLabels),
      {}};
  campaign.input.task_count = kTasks;
  campaign.truth.resize(kTasks);
  for (auto& t : campaign.truth) t = rng.uniform_index(kLabels);

  for (std::size_t i = 0; i < kHonest; ++i) {
    core::AccountTrace trace;
    trace.name = "H" + std::to_string(i);
    std::vector<std::size_t> order(kTasks);
    for (std::size_t j = 0; j < kTasks; ++j) order[j] = j;
    rng.shuffle(order);
    double ts = rng.uniform(8.0, 14.0);
    for (std::size_t j : order) {
      ts += rng.uniform(0.05, 0.2);
      std::size_t label = campaign.truth[j];
      if (!rng.bernoulli(0.85)) label = (label + 1) % kLabels;
      trace.reports.push_back({j, static_cast<double>(label), ts});
      campaign.table.add(i, j, label);
    }
    campaign.input.accounts.push_back(std::move(trace));
  }

  // The attacker walks once and replays from its accounts, always pushing
  // the label after the truth (a consistent lie).
  std::vector<double> visits;
  double ts = 15.0;
  for (std::size_t j = 0; j < kTasks; ++j) {
    ts += rng.uniform(0.05, 0.2);
    visits.push_back(ts);
  }
  for (std::size_t a = 0; a < sybil_accounts; ++a) {
    core::AccountTrace trace;
    trace.name = "S" + std::to_string(a);
    const double delay = static_cast<double>(a) * rng.uniform(0.01, 0.02);
    for (std::size_t j = 0; j < kTasks; ++j) {
      const std::size_t wrong = (campaign.truth[j] + 1) % kLabels;
      trace.reports.push_back(
          {j, static_cast<double>(wrong), visits[j] + delay});
      campaign.table.add(kHonest + a, j, wrong);
    }
    campaign.input.accounts.push_back(std::move(trace));
  }
  return campaign;
}

double label_accuracy(const std::vector<std::size_t>& estimated,
                      const std::vector<std::size_t>& truth) {
  std::size_t correct = 0;
  for (std::size_t j = 0; j < truth.size(); ++j) {
    if (estimated[j] == truth[j]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Extension: Sybil attack on categorical tasks (%zu "
              "honest accounts, %zu tasks, %zu labels, %zu seeds) ===\n\n",
              kHonest, kTasks, kLabels, seeds);

  TextTable table({"sybil accounts", "MajorityVote", "CategoricalCRH",
                   "DawidSkene", "Framework(AG-TR)"});
  for (std::size_t sybil : {0ul, 3ul, 6ul, 9ul, 12ul}) {
    double mv = 0.0, crh = 0.0, ds = 0.0, fw = 0.0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto campaign = make_campaign(sybil, 4400 + 97 * s);
      mv += label_accuracy(
          truth::MajorityVote().run(campaign.table).labels, campaign.truth);
      crh += label_accuracy(
          truth::CategoricalCrh().run(campaign.table).labels,
          campaign.truth);
      ds += label_accuracy(
          truth::DawidSkene().run(campaign.table).labels, campaign.truth);
      fw += label_accuracy(
          core::run_categorical_framework(campaign.input, kLabels,
                                          core::AgTr())
              .labels,
          campaign.truth);
    }
    const double inv = 1.0 / static_cast<double>(seeds);
    table.add_row(std::to_string(sybil),
                  {mv * inv, crh * inv, ds * inv, fw * inv}, 3);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: once the Sybil accounts outnumber the honest ones (>= 9\n"
      "vs 8), every account-level aggregator flips to the attacker's label\n"
      "on most tasks — the iterative ones (CRH, Dawid-Skene) flip *harder*\n"
      "than plain voting because the mutually-consistent Sybil accounts\n"
      "earn top weight.  The framework collapses them into one group and\n"
      "stays near the honest accuracy regardless of the account count.\n");
  return 0;
}
