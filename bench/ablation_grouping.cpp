// Ablation study of the grouping methods' knobs:
//   1. AG-TS threshold rho sweep.
//   2. AG-TR threshold phi sweep and DTW mode (total cost vs Eq. 7).
//   3. AG-TR Sakoe–Chiba band width.
//   4. AG-FP elbow method (curvature vs explained-variance) and fixed-k.
// Reported as mean ARI over seeds against the true account->user labels.
#include <cstdio>

#include <memory>

#include "common/table.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "ml/clustering_metrics.h"

using namespace sybiltd;

namespace {

template <typename MakeGrouper>
double mean_ari(double legit, double sybil, std::size_t seeds,
                MakeGrouper make_grouper) {
  double total = 0.0;
  for (std::size_t s = 0; s < seeds; ++s) {
    const auto data = mcs::generate_scenario(
        mcs::make_paper_scenario(legit, sybil, 8100 + 211 * s));
    const auto input = eval::to_framework_input(data);
    const auto grouping = make_grouper()->group(input);
    total += ml::adjusted_rand_index(grouping.labels(),
                                     data.true_user_labels());
  }
  return total / static_cast<double>(seeds);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Ablation: grouping method knobs (mean ARI, %zu seeds) "
              "===\n\n",
              seeds);
  const double grid[][2] = {{0.5, 0.4}, {0.5, 0.8}, {1.0, 0.8}};
  const std::vector<std::string> header{"setting", "L0.5/S0.4", "L0.5/S0.8",
                                        "L1.0/S0.8"};

  // --- 1. AG-TS rho --------------------------------------------------------
  {
    TextTable table(header);
    for (double rho : {0.5, 1.0, 2.0, 4.0}) {
      std::vector<double> row;
      for (const auto& g : grid) {
        row.push_back(mean_ari(g[0], g[1], seeds, [&] {
          core::AgTsOptions opt;
          opt.rho = rho;
          return std::make_unique<core::AgTs>(opt);
        }));
      }
      table.add_row("AG-TS rho=" + format_cell(rho, 1), row, 3);
    }
    std::printf("1. AG-TS affinity threshold\n%s\n", table.render().c_str());
  }

  // --- 2. AG-TR phi and DTW mode -------------------------------------------
  {
    TextTable table(header);
    for (double phi : {0.25, 0.5, 1.0, 2.0}) {
      std::vector<double> row;
      for (const auto& g : grid) {
        row.push_back(mean_ari(g[0], g[1], seeds, [&] {
          core::AgTrOptions opt;
          opt.phi = phi;
          return std::make_unique<core::AgTr>(opt);
        }));
      }
      table.add_row("AG-TR phi=" + format_cell(phi, 2), row, 3);
    }
    for (double phi : {0.1, 0.3}) {
      std::vector<double> row;
      for (const auto& g : grid) {
        row.push_back(mean_ari(g[0], g[1], seeds, [&] {
          core::AgTrOptions opt;
          opt.mode = core::DtwMode::kPathNormalized;
          opt.phi = phi;
          return std::make_unique<core::AgTr>(opt);
        }));
      }
      table.add_row("AG-TR Eq.(7) phi=" + format_cell(phi, 1), row, 3);
    }
    std::printf("2. AG-TR threshold and DTW normalization\n%s\n",
                table.render().c_str());
  }

  // --- 3. AG-TR band --------------------------------------------------------
  {
    TextTable table(header);
    for (std::size_t band : {0ul, 1ul, 2ul, 5ul}) {
      std::vector<double> row;
      for (const auto& g : grid) {
        row.push_back(mean_ari(g[0], g[1], seeds, [&] {
          core::AgTrOptions opt;
          opt.dtw.band = band;
          return std::make_unique<core::AgTr>(opt);
        }));
      }
      table.add_row(band == 0 ? "AG-TR band=off"
                              : "AG-TR band=" + std::to_string(band),
                    row, 3);
    }
    std::printf("3. AG-TR Sakoe-Chiba band\n%s\n", table.render().c_str());
  }

  // --- 4. AG-FP k selection --------------------------------------------------
  {
    TextTable table(header);
    for (auto [name, method] :
         {std::pair{"AG-FP elbow=expl.var (ours)",
                    ml::ElbowMethod::kExplainedVariance},
          std::pair{"AG-FP elbow=curvature", ml::ElbowMethod::kCurvature}}) {
      std::vector<double> row;
      for (const auto& g : grid) {
        row.push_back(mean_ari(g[0], g[1], seeds, [&] {
          core::AgFpOptions opt;
          opt.elbow.method = method;
          return std::make_unique<core::AgFp>(opt);
        }));
      }
      table.add_row(name, row, 3);
    }
    for (std::size_t k : {8ul, 11ul}) {
      std::vector<double> row;
      for (const auto& g : grid) {
        row.push_back(mean_ari(g[0], g[1], seeds, [&] {
          core::AgFpOptions opt;
          opt.fixed_k = k;
          return std::make_unique<core::AgFp>(opt);
        }));
      }
      table.add_row("AG-FP fixed k=" + std::to_string(k), row, 3);
    }
    std::printf("4. AG-FP cluster-count selection\n%s\n",
                table.render().c_str());
  }
  return 0;
}
