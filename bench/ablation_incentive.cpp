// Extension bench: incentive-based user selection vs grouping false
// positives — quantifying the paper's Section IV-C remark that similar
// legitimate users are unlikely to BOTH be selected by a marginal-
// contribution incentive mechanism, which alleviates AG-TS/AG-TR false
// positives.
//
// Campaign: 4 pairs of "twin" legitimate users (shared home, start time,
// full activeness — the worst case for AG-TR) plus one Attack-I attacker.
// We compare grouping quality and framework MAE with and without the
// budgeted reverse-auction selection stage.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/ag_tr.h"
#include "core/framework.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "incentive/selection.h"
#include "ml/clustering_metrics.h"

using namespace sybiltd;

namespace {

mcs::ScenarioData build_twin_campaign(std::uint64_t seed) {
  mcs::ScenarioConfig config;
  config.task_count = 10;
  config.seed = seed;
  Rng rng(seed);
  const char* models[] = {"iPhone 6", "iPhone 7", "Nexus 5", "LG G5",
                          "iPhone X", "Nexus 6P", "iPhone SE", "iPhone 6S"};
  for (int pair = 0; pair < 4; ++pair) {
    const mcs::Point home{rng.uniform(50.0, 450.0),
                          rng.uniform(50.0, 450.0)};
    const double start = rng.uniform(0.0, 3600.0);
    for (int twin = 0; twin < 2; ++twin) {
      mcs::LegitimateUserConfig user;
      user.activeness = 1.0;
      user.noise_stddev = rng.uniform(1.5, 3.0);
      user.device_model = models[2 * pair + twin];
      user.home = home;
      user.start_time_s = start;
      config.legit_users.push_back(std::move(user));
    }
  }
  mcs::AttackerConfig attacker;
  attacker.type = mcs::AttackType::kSingleDevice;
  attacker.account_count = 5;
  attacker.device_models = {"iPhone 6S"};
  attacker.activeness = 0.8;
  config.attackers.push_back(std::move(attacker));
  return mcs::generate_scenario(config);
}

struct Row {
  double ari = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double fp_pairs = 0.0;
  double mae = 0.0;
  double accounts = 0.0;
  double sybil_accounts = 0.0;
};

Row evaluate(const mcs::ScenarioData& campaign) {
  Row row;
  for (const auto& account : campaign.accounts) {
    if (account.is_sybil) row.sybil_accounts += 1.0;
  }
  const auto input = eval::to_framework_input(campaign);
  const auto grouping = core::AgTr().group(input);
  const auto truth = campaign.true_user_labels();
  row.ari = ml::adjusted_rand_index(grouping.labels(), truth);
  const auto scores = ml::pairwise_scores(grouping.labels(), truth);
  row.precision = scores.precision;
  row.recall = scores.recall;
  for (std::size_t i = 0; i < campaign.accounts.size(); ++i) {
    for (std::size_t j = i + 1; j < campaign.accounts.size(); ++j) {
      if (grouping.group_of(i) == grouping.group_of(j) &&
          truth[i] != truth[j]) {
        row.fp_pairs += 1.0;
      }
    }
  }
  const auto result = core::run_framework(input, grouping);
  row.mae = eval::mean_absolute_error(result.truths,
                                      campaign.ground_truths());
  row.accounts = static_cast<double>(campaign.accounts.size());
  return row;
}

void accumulate(Row& into, const Row& from) {
  into.ari += from.ari;
  into.precision += from.precision;
  into.recall += from.recall;
  into.fp_pairs += from.fp_pairs;
  into.mae += from.mae;
  into.accounts += from.accounts;
  into.sybil_accounts += from.sybil_accounts;
}

void emit(TextTable& table, const char* label, Row row, std::size_t seeds) {
  const double inv = 1.0 / static_cast<double>(seeds);
  table.add_row(label,
                {row.accounts * inv, row.sybil_accounts * inv, row.ari * inv,
                 row.precision * inv, row.recall * inv, row.fp_pairs * inv,
                 row.mae * inv},
                3);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Extension: incentive selection vs grouping false "
              "positives (twin campaign, AG-TR, %zu seeds) ===\n\n",
              seeds);

  Row without{}, with_selection{};
  double payment_total = 0.0;
  for (std::size_t s = 0; s < seeds; ++s) {
    const auto campaign = build_twin_campaign(2500 + 41 * s);
    accumulate(without, evaluate(campaign));

    incentive::SelectionConfig selection;
    selection.auction.budget = 14.0;
    selection.auction.coverage_decay = 0.2;
    selection.seed = 3000 + s;
    const auto outcome = incentive::select_participants(campaign, selection);
    accumulate(with_selection, evaluate(outcome.campaign));
    payment_total += outcome.auction.total_payment;
  }

  TextTable table({"pipeline", "accounts", "sybil", "ARI", "precision",
                   "recall", "FP pairs", "MAE"});
  emit(table, "all volunteers", without, seeds);
  emit(table, "auction-selected", with_selection, seeds);
  std::printf("%s", table.render().c_str());
  std::printf("\nmean total payment under critical-value pricing: %.2f "
              "(budget 14.0; critical payments may exceed the cost budget "
              "— standard for greedy budgeted auctions)\n",
              payment_total / static_cast<double>(seeds));
  std::printf(
      "\nReading: without selection, each twin pair is a false-positive\n"
      "component for AG-TR (twins share routes and schedules), 4+ FP pairs\n"
      "per run.  The marginal-contribution auction rarely selects both\n"
      "twins, so FP pairs collapse.  A second effect the paper's related\n"
      "work predicts (Lin et al., INFOCOM'17): the attacker's duplicate\n"
      "accounts are mutually redundant too, so most Sybil accounts are not\n"
      "selected either — the incentive stage deters Sybil duplication\n"
      "before truth discovery even runs.  ARI on the small selected subset\n"
      "is noisy; the FP-pair and Sybil-account columns carry the signal.\n");
  return 0;
}
