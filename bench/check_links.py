#!/usr/bin/env python3
"""Validate relative markdown links.

Usage: check_links.py FILE [FILE...]

For every `[text](target)` and reference-style `[text]: target` link in
the given markdown files, checks that a *relative* target resolves to an
existing file or directory (anchors and query strings are stripped;
http/https/mailto and bare-anchor links are skipped).  Exits nonzero
listing every dangling link, so renamed or deleted docs fail CI instead
of rotting silently.  Only stdlib is used.
"""

import os
import re
import sys

_INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def links_of(text):
    for pattern in (_INLINE, _REFERENCE):
        for match in pattern.finditer(text):
            yield match.group(1)


def check_file(path):
    """Return a list of (link, resolved_path) that do not exist."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # Fenced code blocks routinely contain `[...](...)`-shaped text that
    # is not a link; drop them before scanning.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    base = os.path.dirname(os.path.abspath(path))
    bad = []
    for link in links_of(text):
        if link.startswith(_SKIP_PREFIXES):
            continue
        target = link.split("#")[0].split("?")[0]
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            bad.append((link, resolved))
    return bad


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for path in argv[1:]:
        checked += 1
        for link, resolved in check_file(path):
            print(f"{path}: dangling link {link!r} -> {resolved}",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"\n{failures} dangling link(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
