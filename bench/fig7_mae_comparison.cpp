// Reproduces Fig. 7: MAE of CRH vs the Sybil-resistant framework with each
// grouping method (TD-FP, TD-TS, TD-TR), in three settings of legitimate
// activeness, sweeping the Sybil attackers' activeness — plus the oracle
// grouping as the framework's upper bound.
//
// Shapes from the paper to verify:
//   * every method's MAE decreases with legitimate activeness
//   * MAE increases with Sybil activeness
//   * CRH is the worst everywhere; TD-TR is the best (tracks the oracle)
//   * TD-TS wins in the diverse-task-set regimes; at legitimate
//     activeness 1 its grouping degenerates (identical task sets — the
//     regime the paper itself assigns to AG-TR; see EXPERIMENTS.md)
#include <cstdio>

#include "common/table.h"
#include "eval/experiment.h"

using namespace sybiltd;

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Fig. 7: MAE of aggregation methods (%zu seeds per point, "
              "dBm) ===\n",
              seeds);

  const std::vector<double> sybil_activeness{0.2, 0.4, 0.6, 0.8, 1.0};
  const eval::Method methods[] = {eval::Method::kCrh, eval::Method::kTdFp,
                                  eval::Method::kTdTs, eval::Method::kTdTr,
                                  eval::Method::kTdOracle};
  const char* subplot[] = {"(a)", "(b)", "(c)"};
  const double legit_settings[] = {0.2, 0.5, 1.0};

  for (int s = 0; s < 3; ++s) {
    std::printf("\n%s legitimate accounts' activeness = %.1f\n", subplot[s],
                legit_settings[s]);
    std::vector<std::string> header{"method"};
    for (double a : sybil_activeness) {
      header.push_back("sybil " + format_cell(a, 1));
    }
    TextTable table(header);
    for (const auto method : methods) {
      const auto mae = eval::sweep_mae(method, legit_settings[s],
                                       sybil_activeness, seeds, 4000 + s);
      table.add_row(eval::method_name(method), mae, 2);
    }
    std::printf("%s", table.render().c_str());
  }

  std::printf("\nCSV (for plotting):\nlegit,sybil,method,mae,mae_std\n");
  for (double legit : legit_settings) {
    for (const auto method : methods) {
      const auto stats = eval::sweep_mae_stats(method, legit,
                                               sybil_activeness, seeds, 4000);
      for (std::size_t i = 0; i < sybil_activeness.size(); ++i) {
        std::printf("%.1f,%.1f,%s,%.4f,%.4f\n", legit, sybil_activeness[i],
                    eval::method_name(method).c_str(), stats[i].mean,
                    stats[i].stddev);
      }
    }
  }
  return 0;
}
