// Reproduces Fig. 8 (and prints Table IV): the fingerprint centers of all
// 11 smartphones of the experiment in the first two principal components'
// space.  The paper's observation to verify: centers of same-model phones
// nearly coincide (hard to tell apart), distinct models separate clearly.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "ml/kmeans.h"
#include "ml/pca.h"
#include "ml/preprocess.h"
#include "sensing/fingerprint.h"

using namespace sybiltd;

int main() {
  std::printf("=== Table IV: smartphone inventory ===\n\n");
  TextTable inventory({"OS", "Model", "Quantity", "Role"});
  inventory.add_row({"iOS", "iPhone SE", "1", "Attack-II"});
  inventory.add_row({"iOS", "iPhone 6", "1", "legitimate"});
  inventory.add_row({"iOS", "iPhone 6S", "2", "1 legitimate, 1 Attack-I"});
  inventory.add_row({"iOS", "iPhone 7", "1", "legitimate"});
  inventory.add_row({"iOS", "iPhone X", "1", "legitimate"});
  inventory.add_row({"Android", "Nexus 6P", "3",
                     "2 legitimate, 1 Attack-II"});
  inventory.add_row({"Android", "LG G5", "1", "legitimate"});
  inventory.add_row({"Android", "Nexus 5", "1", "legitimate"});
  std::printf("%s\n", inventory.render().c_str());

  // The 11 physical units of Table IV.
  struct Unit {
    const char* model;
    std::uint64_t seed;
  };
  const std::vector<Unit> units = {
      {"iPhone SE", 301}, {"iPhone 6", 302},  {"iPhone 6S", 303},
      {"iPhone 6S", 304}, {"iPhone 7", 305},  {"iPhone X", 306},
      {"Nexus 6P", 307},  {"Nexus 6P", 308},  {"Nexus 6P", 309},
      {"LG G5", 310},     {"Nexus 5", 311},
  };

  std::printf("=== Fig. 8: fingerprint centers in PC1/PC2 space ===\n\n");
  constexpr int kCapturesPerUnit = 8;
  Rng rng(88);
  std::vector<std::vector<double>> fingerprints;
  for (const auto& unit : units) {
    sensing::Device device(sensing::find_model(unit.model), unit.seed);
    for (int c = 0; c < kCapturesPerUnit; ++c) {
      Rng r = rng.split();
      fingerprints.push_back(sensing::capture_fingerprint(device, {}, r));
    }
  }

  const Matrix z = ml::standardize(Matrix::from_rows(fingerprints));
  const ml::PcaModel pca = ml::fit_pca(z, 2);
  const Matrix pc = pca.transform(z);

  // Per-unit centers.
  std::printf("unit centers (mean over %d captures):\n", kCapturesPerUnit);
  std::vector<std::array<double, 2>> centers(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    double c1 = 0.0, c2 = 0.0;
    for (int c = 0; c < kCapturesPerUnit; ++c) {
      c1 += pc(u * kCapturesPerUnit + c, 0);
      c2 += pc(u * kCapturesPerUnit + c, 1);
    }
    centers[u] = {c1 / kCapturesPerUnit, c2 / kCapturesPerUnit};
    std::printf("  unit %2zu  %-10s  PC1 %+8.3f  PC2 %+8.3f\n", u + 1,
                units[u].model, centers[u][0], centers[u][1]);
  }

  // Quantify the paper's observation: same-model center distance vs
  // cross-model center distance.
  double same_total = 0.0, cross_total = 0.0;
  int same_pairs = 0, cross_pairs = 0;
  for (std::size_t a = 0; a < units.size(); ++a) {
    for (std::size_t b = a + 1; b < units.size(); ++b) {
      const double dx = centers[a][0] - centers[b][0];
      const double dy = centers[a][1] - centers[b][1];
      const double d = std::sqrt(dx * dx + dy * dy);
      if (std::string(units[a].model) == units[b].model) {
        same_total += d;
        ++same_pairs;
      } else {
        cross_total += d;
        ++cross_pairs;
      }
    }
  }
  std::printf("\nmean center distance, same model:  %.3f (%d pairs)\n",
              same_total / same_pairs, same_pairs);
  std::printf("mean center distance, cross model: %.3f (%d pairs)\n",
              cross_total / cross_pairs, cross_pairs);
  std::printf("ratio cross/same: %.1fx  (paper: same-model centers are "
              "very close; models separate)\n",
              (cross_total / cross_pairs) / (same_total / same_pairs));
  return 0;
}
