// Reproduces Fig. 3: the AG-TS worked example on the Table III data —
// the T (both-done) and L (done-alone) matrices, the Eq. (6) affinity
// matrix, and the rho = 1 threshold graph with its connected components.
//
// NOTE: the paper claims the resulting groups are {1, 4', 4'', 4'''}, {2},
// {3}.  By Eq. (6) as printed, A(1,4') = A(1,3) = 1.0 — the pairs are
// indistinguishable — so that outcome cannot follow from the formula: with
// the strict A > 1 rule of Fig. 3(d) account 1 stays single, and with
// A >= 1 both accounts 1 AND 3 would join.  This bench prints our computed
// matrices so the discrepancy is visible.
#include <cstdio>

#include "common/table.h"
#include "core/ag_ts.h"
#include "eval/paper_example.h"

using namespace sybiltd;

namespace {

void print_matrix(const char* title,
                  const std::vector<std::vector<double>>& m,
                  const std::vector<std::string>& names, int precision) {
  std::printf("%s\n", title);
  std::vector<std::string> header{""};
  header.insert(header.end(), names.begin(), names.end());
  TextTable table(header);
  for (std::size_t i = 0; i < m.size(); ++i) {
    table.add_row(names[i], m[i], precision);
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  std::printf("=== Fig. 3: AG-TS worked example (Table III data) ===\n\n");
  const auto input = eval::paper_example_input();
  const auto& names = eval::paper_example_account_names();
  const std::size_t n = input.accounts.size();

  // Recompute T and L per pair for the (a) and (b) panels.
  std::vector<std::vector<bool>> done(n, std::vector<bool>(4, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& r : input.accounts[i].reports) done[i][r.task] = true;
  }
  std::vector<std::vector<double>> both(n, std::vector<double>(n, 0));
  std::vector<std::vector<double>> alone(n, std::vector<double>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      for (std::size_t t = 0; t < 4; ++t) {
        if (done[i][t] && done[j][t]) both[i][j] += 1;
        if (done[i][t] != done[j][t]) alone[i][j] += 1;
      }
    }
  }
  print_matrix("(a) T_ij — tasks both i and j have done:", both, names, 0);
  print_matrix("(b) L_ij — tasks either i or j has done alone:", alone,
               names, 0);

  const auto affinity = core::AgTs::affinity_matrix(input);
  print_matrix("(c) A_ij — Eq. (6) affinity:", affinity, names, 2);

  std::printf("(d) edges with A > 1:\n");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (affinity[i][j] > 1.0) {
        std::printf("  %s -- %s  (A = %.2f)\n", names[i].c_str(),
                    names[j].c_str(), affinity[i][j]);
      }
    }
  }

  const auto grouping = core::AgTs().group(input);
  std::printf("\nconnected components (our groups):\n");
  for (const auto& group : grouping.groups()) {
    std::printf("  {");
    for (std::size_t k = 0; k < group.size(); ++k) {
      std::printf("%s%s", k ? ", " : "", names[group[k]].c_str());
    }
    std::printf("}\n");
  }

  std::printf(
      "\npaper's claimed groups: {1, 4', 4'', 4'''}, {2}, {3}\n"
      "discrepancy: Eq. (6) gives A(1,4') = A(1,3) = 1.00 exactly, so no\n"
      "threshold can include account 1 in the Sybil component without also\n"
      "including account 3; with the strict A > 1 rule shown in Fig. 3(d),\n"
      "account 1 stays separate (see DESIGN.md / EXPERIMENTS.md).\n");
  return 0;
}
