// Reproduces Fig. 4: the AG-TR worked example on the Table III data — the
// DTW distances over task series and timestamp series, the Eq. (8)
// dissimilarity matrix, and the phi = 1 threshold graph, whose only
// component is the Sybil group {4', 4'', 4'''} (matching the paper).
#include <cstdio>

#include "common/table.h"
#include "core/ag_tr.h"
#include "eval/paper_example.h"

using namespace sybiltd;

namespace {

void print_matrix(const char* title,
                  const std::vector<std::vector<double>>& m,
                  const std::vector<std::string>& names, int precision) {
  std::printf("%s\n", title);
  std::vector<std::string> header{""};
  header.insert(header.end(), names.begin(), names.end());
  TextTable table(header);
  for (std::size_t i = 0; i < m.size(); ++i) {
    table.add_row(names[i], m[i], precision);
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  std::printf("=== Fig. 4: AG-TR worked example (Table III data) ===\n\n");
  const auto input = eval::paper_example_input();
  const auto& names = eval::paper_example_account_names();

  const core::AgTr agtr;
  const auto m = agtr.dissimilarity_matrices(input);

  std::printf("task series (task ids in timestamp order):\n");
  for (std::size_t i = 0; i < input.accounts.size(); ++i) {
    std::printf("  X_%-4s = (", names[i].c_str());
    const auto series = core::AgTr::task_series(input.accounts[i]);
    for (std::size_t k = 0; k < series.size(); ++k) {
      std::printf("%s%.0f", k ? ", " : "", series[k]);
    }
    std::printf(")\n");
  }
  std::printf("\n");

  print_matrix("(a) DTW(X_i, X_j) — task series (total squared cost, as in "
               "the paper's matrix):",
               m.task_dtw, names, 0);
  print_matrix("(b) DTW(Y_i, Y_j) — timestamp series (hours):", m.time_dtw,
               names, 3);
  print_matrix("(c) D_ij = DTW(X) + DTW(Y) — Eq. (8):", m.dissimilarity,
               names, 3);

  std::printf("(d) edges with D < 1:\n");
  for (std::size_t i = 0; i < input.accounts.size(); ++i) {
    for (std::size_t j = i + 1; j < input.accounts.size(); ++j) {
      if (m.dissimilarity[i][j] < 1.0) {
        std::printf("  %s -- %s  (D = %.3f)\n", names[i].c_str(),
                    names[j].c_str(), m.dissimilarity[i][j]);
      }
    }
  }

  const auto grouping = agtr.group(input);
  std::printf("\nconnected components (our groups):\n");
  for (const auto& group : grouping.groups()) {
    std::printf("  {");
    for (std::size_t k = 0; k < group.size(); ++k) {
      std::printf("%s%s", k ? ", " : "", names[group[k]].c_str());
    }
    std::printf("}\n");
  }
  std::printf("\npaper's groups: {4', 4'', 4'''}, {1}, {2}, {3} — AG-TR "
              "correctly isolates the Sybil\naccounts with no false "
              "positives, unlike AG-TS on the same data.\n");
  return 0;
}
