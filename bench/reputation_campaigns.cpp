// Extension bench: the long game across repeated campaigns.
//
// Legitimate users persist from campaign to campaign; the Sybil attacker's
// accounts get flagged (or are abandoned to avoid linkage) and re-enter as
// newcomers.  A reputation ledger that folds each campaign's truth
// discovery weights into durable identities therefore asymmetrically
// punishes the attacker: honest identities accumulate standing, fresh
// Sybil identities restart at the newcomer prior every time.
//
// Compares per-campaign MAE of plain CRH (memoryless), reputation-weighted
// CRH, and the single-campaign framework (TD-TR) for reference.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "reputation/ledger.h"

using namespace sybiltd;

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  const int campaigns = 8;
  std::printf("=== Extension: reputation across %d campaigns (paper "
              "scenario, legit 0.6 / sybil 0.8, %zu seeds) ===\n\n",
              campaigns, seeds);

  TextTable table({"campaign", "CRH", "Rep-CRH", "TD-TR (per-campaign)"});
  std::vector<double> crh_mae(campaigns, 0.0), rep_mae(campaigns, 0.0),
      tdtr_mae(campaigns, 0.0);

  for (std::size_t s = 0; s < seeds; ++s) {
    reputation::ReputationLedger ledger;
    for (int c = 0; c < campaigns; ++c) {
      const auto data = mcs::generate_scenario(mcs::make_paper_scenario(
          0.6, 0.8, 10000 + 131 * s + 7 * static_cast<std::size_t>(c)));
      const auto ground = data.ground_truths();
      const auto observations = eval::to_observation_table(data);

      // Durable identities: legitimate accounts keep their name across
      // campaigns; Sybil accounts are fresh every campaign.
      std::vector<std::string> identities;
      for (const auto& account : data.accounts) {
        identities.push_back(account.is_sybil
                                 ? account.name + "#c" + std::to_string(c) +
                                       "s" + std::to_string(s)
                                 : account.name);
      }

      const auto crh = truth::Crh().run(observations);
      crh_mae[c] += eval::mean_absolute_error(crh.truths, ground);

      const reputation::ReputationWeightedCrh rep_algo(ledger, identities);
      const auto rep = rep_algo.run(observations);
      rep_mae[c] += eval::mean_absolute_error(rep.truths, ground);
      ledger.update_campaign(
          identities, reputation::normalize_scores(rep.account_weights));

      tdtr_mae[c] += eval::run_method(eval::Method::kTdTr, data).mae;
    }
  }

  const double inv = 1.0 / static_cast<double>(seeds);
  for (int c = 0; c < campaigns; ++c) {
    table.add_row(std::to_string(c + 1),
                  {crh_mae[c] * inv, rep_mae[c] * inv, tdtr_mae[c] * inv});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: CRH is memoryless, so every campaign is equally bad.\n"
      "Rep-CRH starts near CRH (everyone is a newcomer) and improves as\n"
      "honest identities accumulate standing while fresh Sybil accounts\n"
      "keep re-entering at the newcomer prior.  TD-TR needs no memory at\n"
      "all — behavioral grouping beats reputation within one campaign —\n"
      "but reputation composes with it and covers attacks (like patient\n"
      "timestamp evasion, see bench/evasion_sweep) that defeat grouping.\n");
  return 0;
}
