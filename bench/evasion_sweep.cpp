// Extension bench: adversarial robustness of the grouping methods.
//
// A defense-aware Sybil attacker can diversify its accounts' timestamps
// (vs AG-TR), task sets (vs AG-TS), and values (vs weighting).  This sweep
// quantifies the trade-off the attacker faces: evasion lowers detection
// (grouping ARI) but also blunts the attack itself (the CRH damage it
// could do shrinks) and the framework's residual error stays bounded.
#include <cstdio>

#include "common/table.h"
#include "eval/experiment.h"

using namespace sybiltd;

namespace {

struct Cell {
  double agts_ari = 0.0;
  double agtr_ari = 0.0;
  double crh_mae = 0.0;      // damage to the undefended platform
  double tdts_mae = 0.0;     // framework with AG-TS
  double tdtr_mae = 0.0;     // framework with AG-TR
  double tdfp_mae = 0.0;     // framework with AG-FP (hardware backstop)
};

Cell run_cell(const mcs::EvasionConfig& evasion, std::size_t seeds) {
  Cell cell;
  for (std::size_t s = 0; s < seeds; ++s) {
    auto config = mcs::make_paper_scenario(0.5, 0.8, 5100 + 67 * s);
    for (auto& attacker : config.attackers) attacker.evasion = evasion;
    const auto data = mcs::generate_scenario(config);
    cell.agts_ari +=
        eval::run_grouping(eval::GroupingMethod::kAgTs, data).ari;
    cell.agtr_ari +=
        eval::run_grouping(eval::GroupingMethod::kAgTr, data).ari;
    cell.crh_mae += eval::run_method(eval::Method::kCrh, data).mae;
    cell.tdts_mae += eval::run_method(eval::Method::kTdTs, data).mae;
    cell.tdtr_mae += eval::run_method(eval::Method::kTdTr, data).mae;
    cell.tdfp_mae += eval::run_method(eval::Method::kTdFp, data).mae;
  }
  const double inv = 1.0 / static_cast<double>(seeds);
  cell.agts_ari *= inv;
  cell.agtr_ari *= inv;
  cell.crh_mae *= inv;
  cell.tdts_mae *= inv;
  cell.tdtr_mae *= inv;
  cell.tdfp_mae *= inv;
  return cell;
}

void sweep(const char* title, const std::vector<double>& knob_values,
           mcs::EvasionConfig (*make)(double), std::size_t seeds) {
  std::printf("%s\n", title);
  TextTable table({"knob", "AG-TS ARI", "AG-TR ARI", "CRH MAE",
                   "TD-TS MAE", "TD-TR MAE", "TD-FP MAE"});
  for (double knob : knob_values) {
    const Cell cell = run_cell(make(knob), seeds);
    table.add_row(format_cell(knob, 2),
                  {cell.agts_ari, cell.agtr_ari, cell.crh_mae,
                   cell.tdts_mae, cell.tdtr_mae, cell.tdfp_mae},
                  3);
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Extension: attacker evasion sweep (legit 0.5 / sybil "
              "0.8, %zu seeds) ===\n\n",
              seeds);

  sweep("1. timestamp jitter (seconds) — targets AG-TR",
        {0.0, 300.0, 900.0, 1800.0, 3600.0},
        [](double v) {
          mcs::EvasionConfig e;
          e.timestamp_jitter_s = v;
          return e;
        },
        seeds);

  sweep("2. task dropout (fraction) — targets AG-TS",
        {0.0, 0.2, 0.4, 0.6},
        [](double v) {
          mcs::EvasionConfig e;
          e.task_dropout = v;
          return e;
        },
        seeds);

  sweep("3. value jitter (dBm stddev) — targets weighting",
        {0.0, 2.0, 5.0, 10.0},
        [](double v) {
          mcs::EvasionConfig e;
          e.value_jitter = v;
          return e;
        },
        seeds);

  std::printf(
      "Reading (a robustness finding of this reproduction): the behavioral\n"
      "methods are evadable within the paper's threat model.  Timestamps\n"
      "cannot be *fabricated*, but a patient attacker can *delay* account\n"
      "switches; a few minutes of jitter reorders the submission sequences\n"
      "and AG-TR's ARI collapses while the attack stays fully effective\n"
      "(TD-TR MAE -> CRH MAE).  Task dropout likewise defeats AG-TS/AG-TR,\n"
      "at the real cost of attack coverage (CRH MAE shrinks with the knob).\n"
      "The hardware-based AG-FP is untouched by behavioral evasion: TD-FP\n"
      "MAE is flat across all three sweeps, making it the backstop and\n"
      "motivating the combined grouping of bench/ablation_combined.\n");
  return 0;
}
