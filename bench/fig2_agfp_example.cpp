// Reproduces Fig. 2: the AG-FP illustration.  Three smartphones of
// different models collect 5 fingerprints each; the fingerprints are
// plotted (printed) in the first two principal components' space, and
// k-means with k = 3 groups them — with the occasional false positive the
// paper highlights for the "unstable" smartphone 1.
#include <cstdio>

#include "ml/clustering_metrics.h"
#include "ml/kmeans.h"
#include "ml/pca.h"
#include "ml/preprocess.h"
#include "sensing/fingerprint.h"

using namespace sybiltd;

int main() {
  std::printf("=== Fig. 2: AG-FP example — 3 smartphones x 5 fingerprints "
              "===\n\n");

  // Smartphone 1 is deliberately unstable (sloppier hand during capture),
  // mirroring the paper's observation that its fingerprints scatter and
  // three of them were grouped with Smartphone 3.
  const sensing::Device phones[3] = {
      {sensing::find_model("iPhone 6"), 201},
      {sensing::find_model("iPhone 7"), 202},
      {sensing::find_model("iPhone 6S"), 203},
  };
  const double instability[3] = {6.0, 0.3, 0.3};

  Rng rng(2026);
  std::vector<std::vector<double>> fingerprints;
  std::vector<std::size_t> true_labels;
  for (std::size_t p = 0; p < 3; ++p) {
    sensing::CaptureOptions capture;
    capture.instability = instability[p];
    for (int c = 0; c < 5; ++c) {
      Rng r = rng.split();
      fingerprints.push_back(
          sensing::capture_fingerprint(phones[p], capture, r));
      true_labels.push_back(p);
    }
  }

  const Matrix z = ml::standardize(Matrix::from_rows(fingerprints));
  const ml::PcaModel pca = ml::fit_pca(z, 2);
  const Matrix pc = pca.transform(z);

  std::printf("(a) fingerprints in PC1/PC2 (explained variance: %.0f%%, "
              "%.0f%%)\n",
              100.0 * pca.explained_variance_ratio[0],
              100.0 * pca.explained_variance_ratio[1]);
  for (std::size_t i = 0; i < pc.rows(); ++i) {
    std::printf("  smartphone %zu  capture %zu  PC1 %+8.3f  PC2 %+8.3f\n",
                true_labels[i] + 1, i % 5 + 1, pc(i, 0), pc(i, 1));
  }

  ml::KMeansOptions km;
  km.seed = 7;
  const auto clusters = ml::kmeans(z, 3, km);
  std::printf("\n(b) k-means grouping with k = 3\n");
  for (std::size_t i = 0; i < clusters.labels.size(); ++i) {
    const bool mismatch =
        ml::pairwise_scores(clusters.labels, true_labels).precision < 1.0;
    (void)mismatch;
    std::printf("  smartphone %zu capture %zu -> cluster %zu\n",
                true_labels[i] + 1, i % 5 + 1, clusters.labels[i]);
  }
  const double ari = ml::adjusted_rand_index(clusters.labels, true_labels);
  const auto scores = ml::pairwise_scores(clusters.labels, true_labels);
  std::printf("\nARI = %.3f, pairwise precision = %.3f, recall = %.3f\n",
              ari, scores.precision, scores.recall);
  std::printf("(paper: smartphone 2 is cleanly separated; several captures "
              "of the unstable\n smartphone 1 are false-positively grouped "
              "with smartphone 3)\n");
  return 0;
}
