// Reproduces Fig. 6: ARI of the three account grouping methods against the
// true account->user mapping, in three settings of legitimate-user
// activeness (0.2, 0.5, 1.0), sweeping the Sybil attackers' activeness
// from 0.2 to 1.0.  Each point averages several scenario seeds.
//
// Shapes from the paper to verify:
//   * AG-TS and AG-TR rise with Sybil activeness (more tasks = more signal)
//   * AG-TR >= AG-TS (it also uses the timestamp pattern)
//   * AG-FP is the weakest and roughly flat in activeness (it only sees
//     fingerprints; the paper attributes its decline to same-model phones)
#include <cstdio>

#include "common/table.h"
#include "eval/experiment.h"

using namespace sybiltd;

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Fig. 6: ARI of account grouping methods (%zu seeds per "
              "point) ===\n",
              seeds);

  const std::vector<double> sybil_activeness{0.2, 0.4, 0.6, 0.8, 1.0};
  const eval::GroupingMethod methods[] = {eval::GroupingMethod::kAgFp,
                                          eval::GroupingMethod::kAgTs,
                                          eval::GroupingMethod::kAgTr};
  const char* subplot[] = {"(a)", "(b)", "(c)"};
  const double legit_settings[] = {0.2, 0.5, 1.0};

  for (int s = 0; s < 3; ++s) {
    std::printf("\n%s legitimate accounts' activeness = %.1f\n", subplot[s],
                legit_settings[s]);
    std::vector<std::string> header{"method"};
    for (double a : sybil_activeness) {
      header.push_back("sybil " + format_cell(a, 1));
    }
    TextTable table(header);
    for (const auto method : methods) {
      const auto ari = eval::sweep_ari(method, legit_settings[s],
                                       sybil_activeness, seeds, 9000 + s);
      table.add_row(eval::grouping_method_name(method), ari, 3);
    }
    std::printf("%s", table.render().c_str());
  }

  std::printf("\nCSV (for plotting):\nlegit,sybil,method,ari,ari_std\n");
  for (double legit : legit_settings) {
    for (const auto method : methods) {
      const auto stats = eval::sweep_ari_stats(method, legit,
                                               sybil_activeness, seeds, 9000);
      for (std::size_t i = 0; i < sybil_activeness.size(); ++i) {
        std::printf("%.1f,%.1f,%s,%.4f,%.4f\n", legit, sybil_activeness[i],
                    eval::grouping_method_name(method).c_str(),
                    stats[i].mean, stats[i].stddev);
      }
    }
  }
  return 0;
}
