// Extension bench: temperature drift vs fingerprint stability.
//
// MEMS biases drift with temperature; if a Sybil attacker's sign-in
// captures happen at different ambient temperatures (morning vs noon,
// indoors vs outdoors), the same device's fingerprints drift apart and
// AG-FP's clustering degrades.  This sweep captures each device at
// temperatures drawn uniformly from 25 ± spread/2 °C and reports AG-FP
// grouping quality — quantifying how much of the fingerprint signal
// survives realistic thermal variation, and whether the temperature-
// insensitive features keep the method usable.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "ml/clustering_metrics.h"
#include "ml/elbow.h"
#include "ml/kmeans.h"
#include "ml/preprocess.h"
#include "sensing/fingerprint.h"

using namespace sybiltd;

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Extension: fingerprint stability vs ambient temperature "
              "(8 devices x 5 captures, %zu seeds) ===\n\n",
              seeds);

  TextTable table({"temp spread (K)", "ARI @ true k", "ARI @ elbow k",
                   "mean elbow k"});
  for (double spread : {0.0, 2.0, 5.0, 10.0, 20.0}) {
    double ari_true = 0.0, ari_elbow = 0.0, mean_k = 0.0;
    for (std::size_t s = 0; s < seeds; ++s) {
      Rng rng(6100 + 71 * s);
      const auto& catalog = sensing::device_catalog();
      std::vector<std::vector<double>> fingerprints;
      std::vector<std::size_t> device_labels;
      const std::size_t n_devices = catalog.size();
      for (std::size_t d = 0; d < n_devices; ++d) {
        sensing::Device device(catalog[d], 900 + d);
        for (int c = 0; c < 5; ++c) {
          sensing::CaptureOptions capture;
          capture.ambient_temperature_c =
              25.0 + rng.uniform(-spread / 2.0, spread / 2.0);
          Rng r = rng.split();
          fingerprints.push_back(
              sensing::capture_fingerprint(device, capture, r));
          device_labels.push_back(d);
        }
      }
      const Matrix z = ml::standardize(Matrix::from_rows(fingerprints));
      const auto at_true = ml::kmeans(z, n_devices, {});
      ari_true += ml::adjusted_rand_index(at_true.labels, device_labels);
      const auto elbow = ml::elbow_select_k(z, {});
      mean_k += static_cast<double>(elbow.best_k);
      const auto at_elbow = ml::kmeans(z, elbow.best_k, {});
      ari_elbow += ml::adjusted_rand_index(at_elbow.labels, device_labels);
    }
    const double inv = 1.0 / static_cast<double>(seeds);
    table.add_row(format_cell(spread, 0),
                  {ari_true * inv, ari_elbow * inv, mean_k * inv}, 3);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: bias-derived features (means, RMS) drift with temperature"
      "\nwhile the spectral shape (noise floor, resonance location) does"
      "\nnot, so AG-FP degrades gracefully rather than collapsing.  A"
      "\nproduction deployment should either record ambient temperature"
      "\nwith each capture or restrict the fingerprint to the drift-"
      "\ninsensitive spectral features.\n");
  return 0;
}
