// Extension bench: streaming pipeline ingestion throughput.
//
// Measures sustained reports/sec through the concurrent campaign engine
// (bounded MPMC queues -> sharded workers -> incremental AG-TS grouping ->
// group-level CRH refinement -> snapshot publication) for 1, 2, 4 and 8
// producer threads, ending each run with the drain() barrier so every
// accepted report is fully aggregated before the clock stops.  Also
// reports micro-batch and regroup counts so the amortization behaviour is
// visible.
//
//   pipeline_throughput [reports_per_run] [shards] [--metrics <path>]
//
// After the sweep it prints the per-shard queue/work breakdown of the last
// run, and `--metrics <path>` dumps {"engine": <last run's counters>,
// "metrics": <process metrics registry>} — the engine side rendered by the
// same pipeline/status_json code the HTTP server's /v1/status uses, so the
// bench artifact and the wire format cannot drift apart.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "pipeline/engine.h"
#include "pipeline/status_json.h"

using namespace sybiltd;

namespace {

constexpr std::size_t kCampaigns = 4;
constexpr std::size_t kAccounts = 128;
constexpr std::size_t kTasks = 64;

std::vector<pipeline::Report> make_reports(std::size_t total) {
  Rng rng(42);
  std::vector<pipeline::Report> reports;
  reports.reserve(total);
  for (std::size_t k = 0; k < total; ++k) {
    const std::size_t campaign = rng.uniform_index(kCampaigns);
    const std::size_t account = rng.uniform_index(kAccounts);
    // Accounts favor a task block (clone structure for the grouping to
    // find) with occasional out-of-block reports.
    const std::size_t block = (account % 4) * (kTasks / 4);
    const std::size_t task = rng.bernoulli(0.9)
                                 ? block + rng.uniform_index(kTasks / 4)
                                 : rng.uniform_index(kTasks);
    reports.push_back(
        {campaign, account, task, rng.uniform(-90.0, -50.0), 0.0});
  }
  return reports;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  const std::size_t total =
      !positional.empty() ? std::stoul(positional[0]) : std::size_t{200000};
  const std::size_t shards = positional.size() > 1 ? std::stoul(positional[1]) : 2;

  std::printf("=== Extension: streaming pipeline throughput ===\n");
  std::printf("%zu campaigns x %zu accounts x %zu tasks, %zu reports/run, "
              "%zu shard worker(s), %u hardware thread(s)\n\n",
              kCampaigns, kAccounts, kTasks, total, shards,
              std::thread::hardware_concurrency());

  const std::vector<pipeline::Report> reports = make_reports(total);

  TextTable table({"producers", "reports", "seconds", "reports/sec",
                   "micro-batches", "regroups", "snapshots"});
  std::vector<pipeline::ShardStatus> last_shards;
  pipeline::EngineCounters last_counters;
  for (std::size_t producers : {1u, 2u, 4u, 8u}) {
    pipeline::EngineOptions options;
    options.shard_count = shards;
    options.queue_capacity = 8192;
    options.max_batch = 512;
    pipeline::CampaignEngine engine(options);
    for (std::size_t c = 0; c < kCampaigns; ++c) engine.add_campaign(kTasks);
    engine.start();

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (std::size_t k = p; k < reports.size(); k += producers) {
          engine.submit(reports[k]);
        }
      });
    }
    for (auto& t : threads) t.join();
    engine.drain();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    engine.stop();

    const pipeline::EngineCounters counters = engine.counters();
    last_shards = counters.shards;
    last_counters = counters;
    table.add_row({std::to_string(producers), std::to_string(total),
                   format_cell(seconds, 3),
                   std::to_string(static_cast<std::size_t>(total / seconds)),
                   std::to_string(counters.batches),
                   std::to_string(counters.regroups),
                   std::to_string(counters.publications)});
  }
  std::printf("%s", table.render().c_str());

  TextTable shard_table({"shard", "accepted", "dropped", "rejected",
                         "applied", "batches", "regroups", "queue hwm"});
  for (const pipeline::ShardStatus& s : last_shards) {
    shard_table.add_row(
        {std::to_string(s.shard), std::to_string(s.accepted),
         std::to_string(s.dropped), std::to_string(s.rejected),
         std::to_string(s.applied), std::to_string(s.batches),
         std::to_string(s.regroups),
         std::to_string(s.queue_high_watermark) + "/" +
             std::to_string(s.queue_capacity)});
  }
  std::printf("\nper-shard breakdown (last run):\n%s",
              shard_table.render().c_str());

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
    out << "{\"engine\": " << pipeline::to_json(last_counters)
        << ", \"metrics\": " << obs::to_json(obs::snapshot()) << "}";
    std::printf("\nmetrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
