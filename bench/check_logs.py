#!/usr/bin/env python3
"""Validate a structured JSON-lines log written via SYBILTD_LOG.

Usage: check_logs.py <log.jsonl> [--require EVENT[:MIN]]... [--min-lines N]

Every non-empty line must be a standalone JSON object carrying the schema
the obs logger promises: a numeric `ts` (fractional seconds since the unix
epoch), a `level` drawn from debug/info/warn/error, and a non-empty string
`event`.  Any further keys are free-form fields and only need to be valid
JSON scalars.  `--require EVENT` asserts at least one entry (or `:MIN`
entries) with that event name — CI uses it to prove the server actually
emitted `server_started` / `slow_request` entries rather than an empty
file.  Exits non-zero with a `check_logs: FAIL:` diagnostic on the first
violation so a malformed emitter breaks the build, not the log pipeline
downstream.
"""
import json
import sys

LEVELS = {"debug", "info", "warn", "error"}


def fail(message):
    print(f"check_logs: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_entry(path, lineno, line):
    try:
        entry = json.loads(line)
    except json.JSONDecodeError as error:
        fail(f"{path}:{lineno}: not valid JSON ({error}): {line[:120]!r}")
    if not isinstance(entry, dict):
        fail(f"{path}:{lineno}: line is not a JSON object")
    ts = entry.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts <= 0:
        fail(f"{path}:{lineno}: bad or missing ts: {ts!r}")
    level = entry.get("level")
    if level not in LEVELS:
        fail(f"{path}:{lineno}: bad or missing level: {level!r}")
    event = entry.get("event")
    if not isinstance(event, str) or not event:
        fail(f"{path}:{lineno}: bad or missing event: {event!r}")
    for key, value in entry.items():
        if not isinstance(value, (str, int, float, bool)):
            fail(f"{path}:{lineno}: field {key!r} is not a JSON scalar: "
                 f"{value!r}")
    return entry


def main(argv):
    if len(argv) < 2 or argv[1].startswith("-"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    required = {}
    min_lines = 1
    i = 2
    while i < len(argv):
        if argv[i] == "--require" and i + 1 < len(argv):
            spec = argv[i + 1]
            event, _, minimum = spec.partition(":")
            required[event] = int(minimum) if minimum else 1
            i += 2
        elif argv[i] == "--min-lines" and i + 1 < len(argv):
            min_lines = int(argv[i + 1])
            i += 2
        else:
            print(__doc__.strip(), file=sys.stderr)
            return 2

    events = {}
    last_ts = None
    total = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            entry = check_entry(path, lineno, line)
            total += 1
            events[entry["event"]] = events.get(entry["event"], 0) + 1
            # The writer thread drains the ring in order, so timestamps
            # must be non-decreasing; going backwards means interleaved
            # writers are corrupting the file.
            if last_ts is not None and entry["ts"] < last_ts:
                fail(f"{path}:{lineno}: ts went backwards "
                     f"({entry['ts']} < {last_ts})")
            last_ts = entry["ts"]

    if total < min_lines:
        fail(f"{path}: only {total} entries; expected at least {min_lines}")
    for event, minimum in sorted(required.items()):
        if events.get(event, 0) < minimum:
            fail(f"{path}: event {event!r} seen {events.get(event, 0)} "
                 f"times; expected at least {minimum}")
    print(f"check_logs: {path}: {total} entries, "
          f"{len(events)} distinct events, schema OK")
    print("check_logs: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
