#!/usr/bin/env python3
"""Validate the observability artifacts a campaign run leaves behind.

Usage: check_trace.py <trace.json> <metrics.json>
       check_trace.py --prometheus <metrics.txt> [extra_required_series...]

The trace file is the Chrome trace-event JSON written when SYBILTD_TRACE is
set; the metrics file is the obs::to_json() dump written by
`streaming_campaign --metrics`.  CI runs the example with both enabled and
then this script, so a refactor that silently stops emitting spans or
renames a core metric fails the build instead of being discovered the next
time someone opens Perfetto.

`--prometheus` instead validates a Prometheus text exposition, as served by
the campaign server's GET /metrics: every sample line must parse (including
label blocks, whose values must be correctly escaped), histogram families
must be internally coherent (`le` on every `_bucket`, a `+Inf` bucket whose
count matches `_count`, cumulative bucket counts, a `_sum` sample), and the
server.* request/ingestion series plus the process uptime gauge must be
present (the CI server-smoke job curls the endpoint into a file and runs
this mode against it).  Any further positional arguments name additional
series that must be present — the observability job uses this to gate the
per-campaign ingest latency histograms.
"""
import json
import re
import sys

# Spans the streaming example must emit: the per-shard drain, the campaign
# regroup/refine/publish stages, and the truth-discovery iteration loop.
# (The server adds http/parse, ingest/route, and shard/queue_wait on top,
# but those need live HTTP traffic so the example run cannot gate them.)
REQUIRED_SPANS = {
    "shard/step",
    "shard/apply",
    "campaign/regroup",
    "campaign/refine",
    "campaign/publish",
    "framework/run",
    "framework/iterate",
}

# Metrics whose disappearance would mean an instrumentation regression.
REQUIRED_COUNTERS = {
    "pipeline.accepted",
    "pipeline.applied",
    "pipeline.batches",
    "pipeline.regroups",
    "framework.runs",
    "threadpool.submitted",
    "threadpool.executed",
    "workspace.borrows",
}
REQUIRED_HISTOGRAMS = {
    "pipeline.batch_us",
    "framework.iterations",
    "framework.final_residual",
    "threadpool.task_run_us",
}


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as handle:
        trace = json.load(handle)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")
    names = set()
    for event in events:
        if event.get("ph") != "X":
            fail(f"{path}: unexpected event phase {event.get('ph')!r}")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event missing {key!r}: {event}")
        names.add(event["name"])
    missing = REQUIRED_SPANS - names
    if missing:
        fail(f"{path}: missing spans {sorted(missing)}; saw {sorted(names)}")
    print(f"check_trace: {path}: {len(events)} spans, "
          f"{len(names)} distinct names, all required spans present")


def check_metrics(path):
    with open(path) as handle:
        metrics = json.load(handle)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), list):
            fail(f"{path}: missing {section!r} array")
    for entry in metrics["counters"]:
        if not isinstance(entry.get("name"), str):
            fail(f"{path}: counter without name: {entry}")
        if not isinstance(entry.get("value"), int) or entry["value"] < 0:
            fail(f"{path}: counter {entry.get('name')}: bad value")
    for entry in metrics["gauges"]:
        if not isinstance(entry.get("name"), str):
            fail(f"{path}: gauge without name: {entry}")
        if not isinstance(entry.get("value"), (int, float)):
            fail(f"{path}: gauge {entry.get('name')}: bad value")
    for entry in metrics["histograms"]:
        if not isinstance(entry.get("name"), str):
            fail(f"{path}: histogram without name: {entry}")
        if not isinstance(entry.get("count"), int):
            fail(f"{path}: histogram {entry.get('name')}: bad count")
        buckets = entry.get("buckets")
        if not isinstance(buckets, list):
            fail(f"{path}: histogram {entry.get('name')}: missing buckets")
        total = sum(b.get("count", 0) for b in buckets)
        if total != entry["count"]:
            fail(f"{path}: histogram {entry.get('name')}: bucket counts "
                 f"sum to {total}, expected {entry['count']}")

    counters = {c["name"] for c in metrics["counters"]}
    histograms = {h["name"] for h in metrics["histograms"]}
    missing = REQUIRED_COUNTERS - counters
    if missing:
        fail(f"{path}: missing counters {sorted(missing)}")
    missing = REQUIRED_HISTOGRAMS - histograms
    if missing:
        fail(f"{path}: missing histograms {sorted(missing)}")
    applied = next(c["value"] for c in metrics["counters"]
                   if c["name"] == "pipeline.applied")
    if applied <= 0:
        fail(f"{path}: pipeline.applied is {applied}; the run did no work")
    print(f"check_trace: {path}: {len(counters)} counters, "
          f"{len(metrics['gauges'])} gauges, {len(histograms)} histograms, "
          f"schema OK")


# Series the server's /metrics endpoint must expose (post-sanitization
# names; counters carry the _total suffix).
REQUIRED_PROMETHEUS = {
    "server_requests_total",
    "server_connections_accepted_total",
    "server_reports_accepted_total",
    "server_responses_2xx_total",
    "uptime_seconds",
    "pipeline_applied_total",
}

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$")
# One label pair: a bare identifier key and a double-quoted value in which
# only \" \\ and \n escapes are legal (the exposition format's rules).
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"')


def parse_labels(block, path, line):
    """Parse a `{k="v",...}` block into a dict, failing on malformed input."""
    inner = block[1:-1]
    labels = {}
    pos = 0
    while pos < len(inner):
        match = _LABEL_RE.match(inner, pos)
        if not match:
            fail(f"{path}: malformed label block in {line!r}")
        if match.group(1) in labels:
            fail(f"{path}: duplicate label {match.group(1)!r} in {line!r}")
        labels[match.group(1)] = match.group(2)
        pos = match.end()
        if pos < len(inner):
            if inner[pos] != ",":
                fail(f"{path}: expected ',' between labels in {line!r}")
            pos += 1
            if pos == len(inner):
                fail(f"{path}: trailing ',' in label block of {line!r}")
    return labels


def parse_value(text, path, line):
    try:
        return float(text.replace("+Inf", "inf").replace("-Inf", "-inf"))
    except ValueError:
        fail(f"{path}: bad sample value in {line!r}")


def check_histogram_coherence(path, buckets, counts, sums):
    """Every histogram series must be cumulative and agree with _count."""
    for key, series in sorted(buckets.items()):
        family, labels = key
        where = f"{family}{{{labels}}}" if labels else family
        if "+Inf" not in series:
            fail(f"{path}: {where}: no le=\"+Inf\" bucket")
        ordered = sorted(series.items(), key=lambda kv: float(
            kv[0].replace("+Inf", "inf")))
        previous = 0.0
        for edge, count in ordered:
            if count < previous:
                fail(f"{path}: {where}: bucket le={edge} count {count} "
                     f"below previous {previous}; not cumulative")
            previous = count
        if key not in counts:
            fail(f"{path}: {where}: _bucket series without _count")
        if counts[key] != series["+Inf"]:
            fail(f"{path}: {where}: _count {counts[key]} != "
                 f"+Inf bucket {series['+Inf']}")
        if key not in sums:
            fail(f"{path}: {where}: _bucket series without _sum")
    for key in counts:
        if key not in buckets:
            family, labels = key
            fail(f"{path}: {family}{{{labels}}}: _count without _bucket")


def check_prometheus(path, extra_required=()):
    with open(path) as handle:
        lines = handle.read().splitlines()
    if not lines:
        fail(f"{path}: empty exposition")
    names = set()
    helped = set()
    typed = set()
    # Histogram bookkeeping, keyed by (family, sorted-labels-minus-le).
    buckets = {}
    counts = {}
    sums = {}
    for line in lines:
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if parts[3] not in ("counter", "gauge", "histogram"):
                fail(f"{path}: bad TYPE {parts[3]!r} for {parts[2]}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            fail(f"{path}: unparseable sample line {line!r}")
        name = match.group(1)
        labels = parse_labels(match.group(2), path, line) \
            if match.group(2) else {}
        value = parse_value(match.group(3), path, line)
        # Histogram series fold back to their family name for the checks.
        family = re.sub(r"_(bucket|count|sum)$", "", name)
        names.add(name)
        names.add(family)
        if not re.fullmatch(r"[a-zA-Z0-9_:]+", name):
            fail(f"{path}: unsanitized metric name {name!r}")
        rest = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items())
                        if k != "le")
        if name.endswith("_bucket"):
            if "le" not in labels:
                fail(f"{path}: _bucket sample without le label: {line!r}")
            series = buckets.setdefault((family, rest), {})
            if labels["le"] in series:
                fail(f"{path}: duplicate bucket le={labels['le']} "
                     f"for {family}{{{rest}}}")
            series[labels["le"]] = value
        elif name.endswith("_count") and family in typed:
            counts[(family, rest)] = value
        elif name.endswith("_sum") and family in typed:
            sums[(family, rest)] = value
    check_histogram_coherence(path, buckets, counts, sums)
    required = REQUIRED_PROMETHEUS | set(extra_required)
    missing = required - names
    if missing:
        fail(f"{path}: missing series {sorted(missing)}")
    untyped = {n for n in names if n in helped} - typed
    if untyped:
        fail(f"{path}: HELP without TYPE for {sorted(untyped)}")
    print(f"check_trace: {path}: {len(names)} series, "
          f"{len(buckets)} histogram label-sets coherent, "
          f"all required server series present")


def main(argv):
    if len(argv) >= 3 and argv[1] == "--prometheus":
        check_prometheus(argv[2], argv[3:])
        print("check_trace: PASS")
        return 0
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    check_trace(argv[1])
    check_metrics(argv[2])
    print("check_trace: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
