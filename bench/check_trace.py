#!/usr/bin/env python3
"""Validate the observability artifacts a campaign run leaves behind.

Usage: check_trace.py <trace.json> <metrics.json>
       check_trace.py --prometheus <metrics.txt>

The trace file is the Chrome trace-event JSON written when SYBILTD_TRACE is
set; the metrics file is the obs::to_json() dump written by
`streaming_campaign --metrics`.  CI runs the example with both enabled and
then this script, so a refactor that silently stops emitting spans or
renames a core metric fails the build instead of being discovered the next
time someone opens Perfetto.

`--prometheus` instead validates a Prometheus text exposition, as served by
the campaign server's GET /metrics: every sample line must parse, and the
server.* request/ingestion series plus the process uptime gauge must be
present (the CI server-smoke job curls the endpoint into a file and runs
this mode against it).
"""
import json
import re
import sys

# Spans the streaming example must emit: the per-shard drain, the campaign
# regroup/refine pair, and the truth-discovery iteration loop.
REQUIRED_SPANS = {
    "shard/step",
    "shard/apply",
    "campaign/regroup",
    "campaign/refine",
    "framework/run",
    "framework/iterate",
}

# Metrics whose disappearance would mean an instrumentation regression.
REQUIRED_COUNTERS = {
    "pipeline.accepted",
    "pipeline.applied",
    "pipeline.batches",
    "pipeline.regroups",
    "framework.runs",
    "threadpool.submitted",
    "threadpool.executed",
    "workspace.borrows",
}
REQUIRED_HISTOGRAMS = {
    "pipeline.batch_us",
    "framework.iterations",
    "framework.final_residual",
    "threadpool.task_run_us",
}


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as handle:
        trace = json.load(handle)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")
    names = set()
    for event in events:
        if event.get("ph") != "X":
            fail(f"{path}: unexpected event phase {event.get('ph')!r}")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event missing {key!r}: {event}")
        names.add(event["name"])
    missing = REQUIRED_SPANS - names
    if missing:
        fail(f"{path}: missing spans {sorted(missing)}; saw {sorted(names)}")
    print(f"check_trace: {path}: {len(events)} spans, "
          f"{len(names)} distinct names, all required spans present")


def check_metrics(path):
    with open(path) as handle:
        metrics = json.load(handle)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), list):
            fail(f"{path}: missing {section!r} array")
    for entry in metrics["counters"]:
        if not isinstance(entry.get("name"), str):
            fail(f"{path}: counter without name: {entry}")
        if not isinstance(entry.get("value"), int) or entry["value"] < 0:
            fail(f"{path}: counter {entry.get('name')}: bad value")
    for entry in metrics["gauges"]:
        if not isinstance(entry.get("name"), str):
            fail(f"{path}: gauge without name: {entry}")
        if not isinstance(entry.get("value"), (int, float)):
            fail(f"{path}: gauge {entry.get('name')}: bad value")
    for entry in metrics["histograms"]:
        if not isinstance(entry.get("name"), str):
            fail(f"{path}: histogram without name: {entry}")
        if not isinstance(entry.get("count"), int):
            fail(f"{path}: histogram {entry.get('name')}: bad count")
        buckets = entry.get("buckets")
        if not isinstance(buckets, list):
            fail(f"{path}: histogram {entry.get('name')}: missing buckets")
        total = sum(b.get("count", 0) for b in buckets)
        if total != entry["count"]:
            fail(f"{path}: histogram {entry.get('name')}: bucket counts "
                 f"sum to {total}, expected {entry['count']}")

    counters = {c["name"] for c in metrics["counters"]}
    histograms = {h["name"] for h in metrics["histograms"]}
    missing = REQUIRED_COUNTERS - counters
    if missing:
        fail(f"{path}: missing counters {sorted(missing)}")
    missing = REQUIRED_HISTOGRAMS - histograms
    if missing:
        fail(f"{path}: missing histograms {sorted(missing)}")
    applied = next(c["value"] for c in metrics["counters"]
                   if c["name"] == "pipeline.applied")
    if applied <= 0:
        fail(f"{path}: pipeline.applied is {applied}; the run did no work")
    print(f"check_trace: {path}: {len(counters)} counters, "
          f"{len(metrics['gauges'])} gauges, {len(histograms)} histograms, "
          f"schema OK")


# Series the server's /metrics endpoint must expose (post-sanitization
# names; counters carry the _total suffix).
REQUIRED_PROMETHEUS = {
    "server_requests_total",
    "server_connections_accepted_total",
    "server_reports_accepted_total",
    "server_responses_2xx_total",
    "uptime_seconds",
    "pipeline_applied_total",
}

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$")


def check_prometheus(path):
    with open(path) as handle:
        lines = handle.read().splitlines()
    if not lines:
        fail(f"{path}: empty exposition")
    names = set()
    helped = set()
    typed = set()
    for line in lines:
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if parts[3] not in ("counter", "gauge", "histogram"):
                fail(f"{path}: bad TYPE {parts[3]!r} for {parts[2]}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            fail(f"{path}: unparseable sample line {line!r}")
        name = match.group(1)
        # Histogram series fold back to their family name for the checks.
        family = re.sub(r"_(bucket|count|sum)$", "", name)
        names.add(name)
        names.add(family)
        if not re.fullmatch(r"[a-zA-Z0-9_:]+", name):
            fail(f"{path}: unsanitized metric name {name!r}")
    missing = REQUIRED_PROMETHEUS - names
    if missing:
        fail(f"{path}: missing series {sorted(missing)}")
    untyped = {n for n in names if n in helped} - typed
    if untyped:
        fail(f"{path}: HELP without TYPE for {sorted(untyped)}")
    print(f"check_trace: {path}: {len(names)} series, "
          f"all required server series present")


def main(argv):
    if len(argv) == 3 and argv[1] == "--prometheus":
        check_prometheus(argv[2])
        print("check_trace: PASS")
        return 0
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    check_trace(argv[1])
    check_metrics(argv[2])
    print("check_trace: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
