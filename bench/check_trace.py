#!/usr/bin/env python3
"""Validate the observability artifacts a campaign run leaves behind.

Usage: check_trace.py <trace.json> <metrics.json>

The trace file is the Chrome trace-event JSON written when SYBILTD_TRACE is
set; the metrics file is the obs::to_json() dump written by
`streaming_campaign --metrics`.  CI runs the example with both enabled and
then this script, so a refactor that silently stops emitting spans or
renames a core metric fails the build instead of being discovered the next
time someone opens Perfetto.
"""
import json
import sys

# Spans the streaming example must emit: the per-shard drain, the campaign
# regroup/refine pair, and the truth-discovery iteration loop.
REQUIRED_SPANS = {
    "shard/step",
    "shard/apply",
    "campaign/regroup",
    "campaign/refine",
    "framework/run",
    "framework/iterate",
}

# Metrics whose disappearance would mean an instrumentation regression.
REQUIRED_COUNTERS = {
    "pipeline.accepted",
    "pipeline.applied",
    "pipeline.batches",
    "pipeline.regroups",
    "framework.runs",
    "threadpool.submitted",
    "threadpool.executed",
    "workspace.borrows",
}
REQUIRED_HISTOGRAMS = {
    "pipeline.batch_us",
    "framework.iterations",
    "framework.final_residual",
    "threadpool.task_run_us",
}


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as handle:
        trace = json.load(handle)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")
    names = set()
    for event in events:
        if event.get("ph") != "X":
            fail(f"{path}: unexpected event phase {event.get('ph')!r}")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event missing {key!r}: {event}")
        names.add(event["name"])
    missing = REQUIRED_SPANS - names
    if missing:
        fail(f"{path}: missing spans {sorted(missing)}; saw {sorted(names)}")
    print(f"check_trace: {path}: {len(events)} spans, "
          f"{len(names)} distinct names, all required spans present")


def check_metrics(path):
    with open(path) as handle:
        metrics = json.load(handle)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), list):
            fail(f"{path}: missing {section!r} array")
    for entry in metrics["counters"]:
        if not isinstance(entry.get("name"), str):
            fail(f"{path}: counter without name: {entry}")
        if not isinstance(entry.get("value"), int) or entry["value"] < 0:
            fail(f"{path}: counter {entry.get('name')}: bad value")
    for entry in metrics["gauges"]:
        if not isinstance(entry.get("name"), str):
            fail(f"{path}: gauge without name: {entry}")
        if not isinstance(entry.get("value"), (int, float)):
            fail(f"{path}: gauge {entry.get('name')}: bad value")
    for entry in metrics["histograms"]:
        if not isinstance(entry.get("name"), str):
            fail(f"{path}: histogram without name: {entry}")
        if not isinstance(entry.get("count"), int):
            fail(f"{path}: histogram {entry.get('name')}: bad count")
        buckets = entry.get("buckets")
        if not isinstance(buckets, list):
            fail(f"{path}: histogram {entry.get('name')}: missing buckets")
        total = sum(b.get("count", 0) for b in buckets)
        if total != entry["count"]:
            fail(f"{path}: histogram {entry.get('name')}: bucket counts "
                 f"sum to {total}, expected {entry['count']}")

    counters = {c["name"] for c in metrics["counters"]}
    histograms = {h["name"] for h in metrics["histograms"]}
    missing = REQUIRED_COUNTERS - counters
    if missing:
        fail(f"{path}: missing counters {sorted(missing)}")
    missing = REQUIRED_HISTOGRAMS - histograms
    if missing:
        fail(f"{path}: missing histograms {sorted(missing)}")
    applied = next(c["value"] for c in metrics["counters"]
                   if c["name"] == "pipeline.applied")
    if applied <= 0:
        fail(f"{path}: pipeline.applied is {applied}; the run did no work")
    print(f"check_trace: {path}: {len(counters)} counters, "
          f"{len(metrics['gauges'])} gauges, {len(histograms)} histograms, "
          f"schema OK")


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    check_trace(argv[1])
    check_metrics(argv[2])
    print("check_trace: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
