// Extension bench: HTTP ingestion throughput over loopback.
//
// Starts a CampaignServer on an ephemeral loopback port inside the bench
// process, then hammers it from N concurrent client connections.  Each
// client keeps one keep-alive connection and POSTs batches of reports to
// /v1/campaigns/{id}/reports, measuring per-request latency from the first
// byte written to the last response byte read.  After the timed window the
// bench drains the server (so every accepted report is aggregated) and
// reports sustained accepted reports/sec plus latency p50/p99.
//
//   server_load [reports_total] [connections] [batch] [--loops N]
//               [--sweep L1,L2,...] [--json]
//
//   --loops N   event-loop threads for the server under test (default 1)
//   --sweep     run the whole load once per listed loop count (same
//               reports/connections/batch) and emit one benchmark entry
//               per configuration — the loops x connections scaling sweep
//               behind docs/PERFORMANCE.md and BENCH_server.json
//   --json      google-benchmark-compatible JSON, one entry per run named
//               http_ingest/loops:L/connections:C/batch:B with
//               reports_per_sec / bytes_per_sec user counters,
//               request_p50_us / request_p99_us (client round-trip; p50_us /
//               p99_us remain as aliases), publish_p50_us / publish_p99_us
//               (end-to-end ingest->publish latency from the per-campaign
//               registry histograms) and decode_fast / decode_fallback
//               (which ingest codec served the run) — the shape
//               compare_bench.py understands; committed as
//               BENCH_server.json.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/server.h"

using namespace sybiltd;

namespace {

constexpr std::size_t kCampaigns = 4;
constexpr std::size_t kAccounts = 64;
constexpr std::size_t kTasks = 32;

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Read until a full response (headers + Content-Length body) is buffered.
bool read_response(int fd, std::string& buffer) {
  char chunk[8192];
  while (true) {
    const std::size_t header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      const std::size_t cl = buffer.find("Content-Length: ");
      std::size_t body_len = 0;
      if (cl != std::string::npos && cl < header_end) {
        body_len = std::strtoul(buffer.c_str() + cl + 16, nullptr, 10);
      }
      const std::size_t total = header_end + 4 + body_len;
      if (buffer.size() >= total) {
        buffer.erase(0, total);
        return true;
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

struct ClientResult {
  std::size_t accepted = 0;
  std::size_t requests = 0;
  std::size_t bytes = 0;  // request bytes written (headers + body)
  std::vector<double> latencies_us;
  bool ok = true;
};

std::string make_batch_body(std::size_t client, std::size_t batch_index,
                            std::size_t batch) {
  std::string body = "[";
  for (std::size_t k = 0; k < batch; ++k) {
    const std::size_t seq = batch_index * batch + k;
    const std::size_t account = (client * 13 + seq) % kAccounts;
    const std::size_t task = (account % 4) * (kTasks / 4) + seq % (kTasks / 4);
    if (k > 0) body += ",";
    body += "{\"account\":" + std::to_string(account) +
            ",\"task\":" + std::to_string(task) +
            ",\"value\":" + std::to_string(-70.0 + (seq % 17) * 0.5) + "}";
  }
  body += "]";
  return body;
}

// Every request a client will send, rendered before the timed window opens:
// body generation and header formatting must not pollute the wall-clock
// ingestion measurement (they used to shave a few percent off the
// sustained rate at loops=1).
std::vector<std::string> render_client_requests(std::size_t client,
                                                std::size_t requests,
                                                std::size_t batch) {
  const std::size_t campaign = client % kCampaigns;
  const std::string path =
      "/v1/campaigns/" + std::to_string(campaign) + "/reports";
  std::vector<std::string> out;
  out.reserve(requests);
  for (std::size_t r = 0; r < requests; ++r) {
    const std::string body = make_batch_body(client, r, batch);
    out.push_back("POST " + path +
                  " HTTP/1.1\r\nHost: bench\r\nContent-Type: "
                  "application/json\r\nContent-Length: " +
                  std::to_string(body.size()) + "\r\n\r\n" + body);
  }
  return out;
}

void run_client(std::uint16_t port, const std::vector<std::string>* requests,
                std::size_t batch, ClientResult* result) {
  const int fd = connect_loopback(port);
  if (fd < 0) {
    result->ok = false;
    return;
  }
  std::string response_buffer;
  result->latencies_us.reserve(requests->size());
  for (const std::string& request : *requests) {
    const auto start = std::chrono::steady_clock::now();
    if (!write_all(fd, request) || !read_response(fd, response_buffer)) {
      result->ok = false;
      break;
    }
    result->latencies_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
    result->accepted += batch;
    result->bytes += request.size();
    ++result->requests;
  }
  ::close(fd);
}

// Bucket counts of every pipeline.ingest_to_publish_us series, merged
// across campaign labels.  The registry accumulates across sweep
// configurations, so callers take a before/after delta per run.
std::map<double, std::uint64_t> publish_latency_buckets() {
  std::map<double, std::uint64_t> merged;
  for (const obs::HistogramValue& h : obs::snapshot().histograms) {
    if (h.name != "pipeline.ingest_to_publish_us") continue;
    for (const obs::HistogramBucket& bucket : h.buckets) {
      merged[bucket.upper_edge] += bucket.count;
    }
  }
  return merged;
}

// Percentile from log2 bucket counts: the upper edge of the bucket the
// quantile lands in (a <=2x over-estimate, same resolution as /metrics).
double bucket_percentile(const std::map<double, std::uint64_t>& buckets,
                         double q) {
  std::uint64_t total = 0;
  for (const auto& [edge, count] : buckets) total += count;
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (const auto& [edge, count] : buckets) {
    cumulative += count;
    if (cumulative >= target) return edge;
  }
  return buckets.rbegin()->first;
}

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + static_cast<long>(k),
                   values.end());
  return values[k];
}

struct LoadConfig {
  std::size_t loops = 1;
  std::size_t connections = 4;
  std::size_t total = 200000;
  std::size_t batch = 100;
};

struct LoadResult {
  std::size_t accepted = 0;
  std::size_t requests = 0;
  double ingest_seconds = 0.0;
  double drain_seconds = 0.0;
  double reports_per_sec = 0.0;
  // Request wire bytes (headers + body) per second of the ingest window.
  double bytes_per_sec = 0.0;
  // Client-observed request round-trip latency (first byte written to last
  // response byte read).  Emitted as request_p50_us/request_p99_us so the
  // JSON never conflates them with the publish percentiles below; p50_us /
  // p99_us stay as aliases for older tooling.
  double request_p50_us = 0.0;
  double request_p99_us = 0.0;
  // End-to-end ingest->publish latency from the labeled registry
  // histograms (0 when SYBILTD_LATENCY=off disables stamping).
  double publish_p50_us = 0.0;
  double publish_p99_us = 0.0;
  // server.decode.fast / server.decode.fallback deltas across the run:
  // the canonical load must take the fast path for ~every request.
  std::uint64_t decode_fast = 0;
  std::uint64_t decode_fallback = 0;
  std::uint64_t engine_accepted = 0;
  std::uint64_t engine_applied = 0;
  std::uint64_t engine_batches = 0;
  bool ok = true;
};

// One full measurement: fresh server with the given loop count, timed
// ingestion from `connections` keep-alive clients, then drain.  The
// accepted => applied cross-check runs per configuration, so a sweep is as
// strict as a single run.
LoadResult run_load(const LoadConfig& config) {
  const std::size_t per_client =
      (config.total / config.connections) / config.batch;

  server::ServerOptions options;
  options.port = 0;
  options.loops = config.loops;
  options.engine.shard_count = 2;
  options.engine.queue_capacity = 65536;
  options.engine.max_batch = 1024;
  server::CampaignServer server(options);
  for (std::size_t c = 0; c < kCampaigns; ++c) {
    server.engine().add_campaign(kTasks);
  }
  server.start();
  const std::map<double, std::uint64_t> publish_before =
      publish_latency_buckets();
  obs::Counter& decode_fast_counter =
      obs::MetricsRegistry::global().counter("server.decode.fast");
  obs::Counter& decode_fallback_counter =
      obs::MetricsRegistry::global().counter("server.decode.fallback");
  const std::uint64_t decode_fast_before = decode_fast_counter.value();
  const std::uint64_t decode_fallback_before = decode_fallback_counter.value();

  std::vector<std::vector<std::string>> requests(config.connections);
  for (std::size_t c = 0; c < config.connections; ++c) {
    requests[c] = render_client_requests(c, per_client, config.batch);
  }

  std::vector<ClientResult> results(config.connections);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < config.connections; ++c) {
    clients.emplace_back(run_client, server.port(), &requests[c],
                         config.batch, &results[c]);
  }
  for (auto& t : clients) t.join();
  const double ingest_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.engine().drain();
  const double total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  LoadResult out;
  out.ingest_seconds = ingest_seconds;
  out.drain_seconds = total_seconds - ingest_seconds;
  std::size_t bytes = 0;
  std::vector<double> latencies;
  for (const ClientResult& r : results) {
    out.accepted += r.accepted;
    out.requests += r.requests;
    bytes += r.bytes;
    out.ok = out.ok && r.ok;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }
  const auto counters = server.engine().counters();
  std::map<double, std::uint64_t> publish_delta = publish_latency_buckets();
  for (const auto& [edge, count] : publish_before) {
    publish_delta[edge] -= count;
  }
  out.decode_fast = decode_fast_counter.value() - decode_fast_before;
  out.decode_fallback =
      decode_fallback_counter.value() - decode_fallback_before;
  server.shutdown();

  out.reports_per_sec =
      ingest_seconds > 0.0 ? static_cast<double>(out.accepted) / ingest_seconds
                           : 0.0;
  out.bytes_per_sec =
      ingest_seconds > 0.0 ? static_cast<double>(bytes) / ingest_seconds : 0.0;
  out.request_p50_us = percentile(latencies, 0.50);
  out.request_p99_us = percentile(latencies, 0.99);
  out.publish_p50_us = bucket_percentile(publish_delta, 0.50);
  out.publish_p99_us = bucket_percentile(publish_delta, 0.99);
  out.engine_accepted = counters.accepted;
  out.engine_applied = counters.applied;
  out.engine_batches = counters.batches;
  // Loss anywhere (socket failure, engine mismatch) is a bench failure:
  // every report this bench accepted over the wire must be applied.
  out.ok = out.ok && counters.applied == out.accepted;
  return out;
}

void print_json_entry(const LoadConfig& config, const LoadResult& result,
                      bool last) {
  std::printf("    {\n");
  std::printf(
      "      \"name\": \"http_ingest/loops:%zu/connections:%zu/batch:%zu\",\n",
      config.loops, config.connections, config.batch);
  std::printf("      \"run_type\": \"iteration\",\n");
  std::printf("      \"iterations\": %zu,\n", result.requests);
  std::printf("      \"real_time\": %.6f,\n", result.ingest_seconds * 1e3);
  std::printf("      \"cpu_time\": %.6f,\n", result.ingest_seconds * 1e3);
  std::printf("      \"time_unit\": \"ms\",\n");
  std::printf("      \"reports_per_sec\": %.1f,\n", result.reports_per_sec);
  std::printf("      \"bytes_per_sec\": %.1f,\n", result.bytes_per_sec);
  std::printf("      \"request_p50_us\": %.1f,\n", result.request_p50_us);
  std::printf("      \"request_p99_us\": %.1f,\n", result.request_p99_us);
  // Aliases kept for older compare_bench baselines; same values as the
  // request_* keys above.
  std::printf("      \"p50_us\": %.1f,\n", result.request_p50_us);
  std::printf("      \"p99_us\": %.1f,\n", result.request_p99_us);
  std::printf("      \"publish_p50_us\": %.1f,\n", result.publish_p50_us);
  std::printf("      \"publish_p99_us\": %.1f,\n", result.publish_p99_us);
  std::printf("      \"decode_fast\": %llu,\n",
              static_cast<unsigned long long>(result.decode_fast));
  std::printf("      \"decode_fallback\": %llu\n",
              static_cast<unsigned long long>(result.decode_fallback));
  std::printf("    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig config;
  bool json = false;
  std::vector<std::size_t> sweep_loops;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--loops" && i + 1 < argc) {
      config.loops = std::stoul(argv[++i]);
    } else if (arg == "--sweep" && i + 1 < argc) {
      std::string list = argv[++i];
      for (std::size_t begin = 0; begin <= list.size();) {
        const std::size_t comma = std::min(list.find(',', begin), list.size());
        if (comma > begin) {
          sweep_loops.push_back(std::stoul(list.substr(begin, comma - begin)));
        }
        begin = comma + 1;
      }
    } else {
      positional.emplace_back(arg);
    }
  }
  if (!positional.empty()) config.total = std::stoul(positional[0]);
  if (positional.size() > 1) config.connections = std::stoul(positional[1]);
  if (positional.size() > 2) config.batch = std::stoul(positional[2]);
  if (sweep_loops.empty()) sweep_loops.push_back(config.loops);

  std::vector<LoadResult> results;
  bool ok = true;
  for (std::size_t index = 0; index < sweep_loops.size(); ++index) {
    config.loops = sweep_loops[index];
    if (!json) {
      if (index == 0) {
        std::printf(
            "=== Extension: HTTP ingestion load over loopback ===\n\n");
      }
      std::printf("--- loops=%zu: %zu connections x %zu reports/batch "
                  "(%zu reports total) ---\n",
                  config.loops, config.connections, config.batch,
                  config.total);
    }
    const LoadResult result = run_load(config);
    ok = ok && result.ok;
    if (!json) {
      std::printf("accepted %zu reports in %zu requests over %.3f s "
                  "(+%.3f s drain)\n",
                  result.accepted, result.requests, result.ingest_seconds,
                  result.drain_seconds);
      std::printf("sustained     %.0f reports/sec (%.1f MB/s on the wire)\n",
                  result.reports_per_sec, result.bytes_per_sec / 1e6);
      std::printf("request       p50 %.0f us, p99 %.0f us (round-trip)\n",
                  result.request_p50_us, result.request_p99_us);
      std::printf("publish       p50 %.0f us, p99 %.0f us (ingest->publish)\n",
                  result.publish_p50_us, result.publish_p99_us);
      std::printf("decode        fast=%llu fallback=%llu\n",
                  static_cast<unsigned long long>(result.decode_fast),
                  static_cast<unsigned long long>(result.decode_fallback));
      std::printf("engine        accepted=%llu applied=%llu batches=%llu\n\n",
                  static_cast<unsigned long long>(result.engine_accepted),
                  static_cast<unsigned long long>(result.engine_applied),
                  static_cast<unsigned long long>(result.engine_batches));
    }
    results.push_back(result);
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"context\": {\n");
    std::printf("    \"executable\": \"server_load\",\n");
    std::printf("    \"connections\": %zu,\n", config.connections);
    std::printf("    \"batch\": %zu,\n", config.batch);
    std::printf("    \"reports\": %zu\n", config.total);
    std::printf("  },\n");
    std::printf("  \"benchmarks\": [\n");
    for (std::size_t index = 0; index < results.size(); ++index) {
      config.loops = sweep_loops[index];
      print_json_entry(config, results[index],
                       index + 1 == results.size());
    }
    std::printf("  ]\n}\n");
  } else if (results.size() > 1) {
    std::printf("--- scaling (vs loops=%zu) ---\n", sweep_loops[0]);
    for (std::size_t index = 0; index < results.size(); ++index) {
      std::printf("loops=%zu  %.0f reports/sec  (%.2fx)\n", sweep_loops[index],
                  results[index].reports_per_sec,
                  results[0].reports_per_sec > 0.0
                      ? results[index].reports_per_sec /
                            results[0].reports_per_sec
                      : 0.0);
    }
  }

  if (!ok) {
    std::fprintf(stderr, "FAILED: a configuration lost reports or a client "
                         "errored (see above)\n");
    return 1;
  }
  return 0;
}
