// Extension bench: HTTP ingestion throughput over loopback.
//
// Starts a CampaignServer on an ephemeral loopback port inside the bench
// process, then hammers it from N concurrent client connections.  Each
// client keeps one keep-alive connection and POSTs batches of reports to
// /v1/campaigns/{id}/reports, measuring per-request latency from the first
// byte written to the last response byte read.  After the timed window the
// bench drains the server (so every accepted report is aggregated) and
// reports sustained accepted reports/sec plus latency p50/p99.
//
//   server_load [reports_total] [connections] [batch] [--json]
//
//   --json  google-benchmark-compatible JSON (one "iteration" entry, with
//           reports_per_sec / p50_us / p99_us user counters) — the shape
//           compare_bench.py understands; committed as BENCH_server.json.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"

using namespace sybiltd;

namespace {

constexpr std::size_t kCampaigns = 4;
constexpr std::size_t kAccounts = 64;
constexpr std::size_t kTasks = 32;

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Read until a full response (headers + Content-Length body) is buffered.
bool read_response(int fd, std::string& buffer) {
  char chunk[8192];
  while (true) {
    const std::size_t header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      const std::size_t cl = buffer.find("Content-Length: ");
      std::size_t body_len = 0;
      if (cl != std::string::npos && cl < header_end) {
        body_len = std::strtoul(buffer.c_str() + cl + 16, nullptr, 10);
      }
      const std::size_t total = header_end + 4 + body_len;
      if (buffer.size() >= total) {
        buffer.erase(0, total);
        return true;
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

struct ClientResult {
  std::size_t accepted = 0;
  std::size_t requests = 0;
  std::vector<double> latencies_us;
  bool ok = true;
};

// Pre-rendered request bodies: generation cost must not pollute the
// ingestion measurement.
std::string make_batch_body(std::size_t client, std::size_t batch_index,
                            std::size_t batch) {
  std::string body = "[";
  for (std::size_t k = 0; k < batch; ++k) {
    const std::size_t seq = batch_index * batch + k;
    const std::size_t account = (client * 13 + seq) % kAccounts;
    const std::size_t task = (account % 4) * (kTasks / 4) + seq % (kTasks / 4);
    if (k > 0) body += ",";
    body += "{\"account\":" + std::to_string(account) +
            ",\"task\":" + std::to_string(task) +
            ",\"value\":" + std::to_string(-70.0 + (seq % 17) * 0.5) + "}";
  }
  body += "]";
  return body;
}

void run_client(std::uint16_t port, std::size_t client, std::size_t requests,
                std::size_t batch, ClientResult* result) {
  const int fd = connect_loopback(port);
  if (fd < 0) {
    result->ok = false;
    return;
  }
  const std::size_t campaign = client % kCampaigns;
  const std::string path = "/v1/campaigns/" + std::to_string(campaign) +
                           "/reports";
  std::string response_buffer;
  result->latencies_us.reserve(requests);
  for (std::size_t r = 0; r < requests; ++r) {
    const std::string body = make_batch_body(client, r, batch);
    const std::string request =
        "POST " + path + " HTTP/1.1\r\nHost: bench\r\nContent-Type: "
        "application/json\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    const auto start = std::chrono::steady_clock::now();
    if (!write_all(fd, request) || !read_response(fd, response_buffer)) {
      result->ok = false;
      break;
    }
    result->latencies_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
    result->accepted += batch;
    ++result->requests;
  }
  ::close(fd);
}

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + static_cast<long>(k),
                   values.end());
  return values[k];
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total = 200000;
  std::size_t connections = 4;
  std::size_t batch = 100;
  bool json = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (!positional.empty()) total = std::stoul(positional[0]);
  if (positional.size() > 1) connections = std::stoul(positional[1]);
  if (positional.size() > 2) batch = std::stoul(positional[2]);
  const std::size_t per_client =
      (total / connections) / batch;  // requests per connection

  server::ServerOptions options;
  options.port = 0;
  options.engine.shard_count = 2;
  options.engine.queue_capacity = 65536;
  options.engine.max_batch = 1024;
  server::CampaignServer server(options);
  for (std::size_t c = 0; c < kCampaigns; ++c) {
    server.engine().add_campaign(kTasks);
  }
  server.start();

  if (!json) {
    std::printf("=== Extension: HTTP ingestion load over loopback ===\n");
    std::printf("%zu connections x %zu requests x %zu reports/batch "
                "against 127.0.0.1:%u\n\n",
                connections, per_client, batch,
                static_cast<unsigned>(server.port()));
  }

  std::vector<ClientResult> results(connections);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back(run_client, server.port(), c, per_client, batch,
                         &results[c]);
  }
  for (auto& t : clients) t.join();
  const double ingest_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.engine().drain();
  const double total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::size_t accepted = 0;
  std::size_t requests = 0;
  bool ok = true;
  std::vector<double> latencies;
  for (const ClientResult& r : results) {
    accepted += r.accepted;
    requests += r.requests;
    ok = ok && r.ok;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }
  const auto counters = server.engine().counters();
  server.shutdown();

  const double reports_per_sec =
      ingest_seconds > 0.0 ? static_cast<double>(accepted) / ingest_seconds
                           : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);

  if (json) {
    std::printf("{\n");
    std::printf("  \"context\": {\n");
    std::printf("    \"executable\": \"server_load\",\n");
    std::printf("    \"connections\": %zu,\n", connections);
    std::printf("    \"batch\": %zu,\n", batch);
    std::printf("    \"reports\": %zu\n", accepted);
    std::printf("  },\n");
    std::printf("  \"benchmarks\": [\n");
    std::printf("    {\n");
    std::printf("      \"name\": \"http_ingest/connections:%zu/batch:%zu\",\n",
                connections, batch);
    std::printf("      \"run_type\": \"iteration\",\n");
    std::printf("      \"iterations\": %zu,\n", requests);
    std::printf("      \"real_time\": %.6f,\n", ingest_seconds * 1e3);
    std::printf("      \"cpu_time\": %.6f,\n", ingest_seconds * 1e3);
    std::printf("      \"time_unit\": \"ms\",\n");
    std::printf("      \"reports_per_sec\": %.1f,\n", reports_per_sec);
    std::printf("      \"p50_us\": %.1f,\n", p50);
    std::printf("      \"p99_us\": %.1f\n", p99);
    std::printf("    }\n");
    std::printf("  ]\n}\n");
  } else {
    std::printf("accepted %zu reports in %zu requests over %.3f s "
                "(+%.3f s drain)\n",
                accepted, requests, ingest_seconds,
                total_seconds - ingest_seconds);
    std::printf("sustained     %.0f reports/sec\n", reports_per_sec);
    std::printf("latency       p50 %.0f us, p99 %.0f us\n", p50, p99);
    std::printf("engine        accepted=%llu applied=%llu batches=%llu\n",
                static_cast<unsigned long long>(counters.accepted),
                static_cast<unsigned long long>(counters.applied),
                static_cast<unsigned long long>(counters.batches));
  }

  // Loss anywhere (socket failure, engine mismatch) is a bench failure:
  // every report this bench accepted over the wire must be applied.
  if (!ok || counters.applied != accepted) {
    std::fprintf(stderr, "FAILED: ok=%d applied=%llu accepted=%zu\n", ok,
                 static_cast<unsigned long long>(counters.applied), accepted);
    return 1;
  }
  return 0;
}
