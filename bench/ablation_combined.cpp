// Extension bench: combining the grouping methods — the paper's stated
// future work.  Compares each single method against AG-COMBO in meet
// (conservative intersection) and join (aggressive transitive union) modes,
// on both grouping quality (ARI, pairwise precision/recall) and end-to-end
// accuracy (framework MAE).
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "core/ag_combo.h"
#include "core/framework.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "ml/clustering_metrics.h"

using namespace sybiltd;

namespace {

struct Candidate {
  std::string name;
  std::shared_ptr<core::AccountGrouper> grouper;
};

std::vector<Candidate> make_candidates() {
  auto fp = std::make_shared<core::AgFp>();
  auto ts = std::make_shared<core::AgTs>();
  auto tr = std::make_shared<core::AgTr>();
  std::vector<Candidate> out;
  out.push_back({"AG-FP", fp});
  out.push_back({"AG-TS", ts});
  out.push_back({"AG-TR", tr});
  out.push_back({"meet(FP,TR)", std::make_shared<core::AgCombo>(
                     std::vector<std::shared_ptr<core::AccountGrouper>>{fp, tr},
                     core::ComboMode::kMeet)});
  out.push_back({"join(FP,TR)", std::make_shared<core::AgCombo>(
                     std::vector<std::shared_ptr<core::AccountGrouper>>{fp, tr},
                     core::ComboMode::kJoin)});
  out.push_back({"meet(FP,TS,TR)",
                 std::make_shared<core::AgCombo>(
                     std::vector<std::shared_ptr<core::AccountGrouper>>{fp, ts,
                                                                        tr},
                     core::ComboMode::kMeet)});
  out.push_back({"join(FP,TS,TR)",
                 std::make_shared<core::AgCombo>(
                     std::vector<std::shared_ptr<core::AccountGrouper>>{fp, ts,
                                                                        tr},
                     core::ComboMode::kJoin)});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Extension: combined account grouping (paper future "
              "work; %zu seeds) ===\n\n",
              seeds);

  const double grid[][2] = {{0.5, 0.4}, {0.5, 0.8}, {1.0, 0.8}};
  const auto candidates = make_candidates();

  for (const auto& [legit, sybil] : grid) {
    std::printf("legit activeness %.1f, Sybil activeness %.1f\n", legit,
                sybil);
    TextTable table({"grouping", "ARI", "precision", "recall", "MAE"});
    for (const auto& candidate : candidates) {
      double ari = 0.0, precision = 0.0, recall = 0.0, mae = 0.0;
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto data = mcs::generate_scenario(
            mcs::make_paper_scenario(legit, sybil, 6200 + 173 * s));
        const auto input = eval::to_framework_input(data);
        const auto grouping = candidate.grouper->group(input);
        const auto truth_labels = data.true_user_labels();
        ari += ml::adjusted_rand_index(grouping.labels(), truth_labels);
        const auto scores =
            ml::pairwise_scores(grouping.labels(), truth_labels);
        precision += scores.precision;
        recall += scores.recall;
        const auto result = core::run_framework(input, grouping);
        mae += eval::mean_absolute_error(result.truths,
                                         data.ground_truths());
      }
      const double inv = 1.0 / static_cast<double>(seeds);
      table.add_row(candidate.name,
                    {ari * inv, precision * inv, recall * inv, mae * inv},
                    3);
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("Reading: meet() trades recall for precision (false-positive "
              "suppression);\njoin() the reverse.  Both should keep MAE at "
              "or below the best single method\nwhen the combined methods' "
              "errors are uncorrelated.\n");
  return 0;
}
