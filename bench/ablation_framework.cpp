// Ablation study of the framework's design choices (DESIGN.md §5):
//   1. Eq. (5) initialization vs plain-mean initialization.
//   2. Eq. (3) intra-group aggregate: inverse-deviation vs mean vs median.
//   3. Eq. (4) group-size source: task participants vs literal group size.
//   4. Account-level CRH vs the grouped framework vs the oracle grouping.
// Reported as MAE (dBm) averaged over seeds on the paper scenario.
#include <cstdio>

#include "common/table.h"
#include "core/framework.h"
#include "eval/adapters.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

using namespace sybiltd;

namespace {

// Sections 1–3 use AG-FP's grouping: it is imperfect (same-model phones
// merge, so groups mix legitimate and Sybil accounts), which is exactly
// the regime where the Eq. (3)/(4)/(5) choices matter.  Under AG-TR's
// near-perfect grouping every variant collapses to the same answer.
double framework_mae(const mcs::ScenarioData& data,
                     const core::FrameworkOptions& options) {
  const auto input = eval::to_framework_input(data);
  const auto grouping = core::AgFp().group(input);
  const auto result = core::run_framework(input, grouping, options);
  return eval::mean_absolute_error(result.truths, data.ground_truths());
}

double averaged(double legit, double sybil, std::size_t seeds,
                const core::FrameworkOptions& options) {
  double total = 0.0;
  for (std::size_t s = 0; s < seeds; ++s) {
    const auto data = mcs::generate_scenario(
        mcs::make_paper_scenario(legit, sybil, 7000 + 131 * s));
    total += framework_mae(data, options);
  }
  return total / static_cast<double>(seeds);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::printf("=== Ablation: framework design choices (MAE in dBm, "
              "AG-FP grouping for 1-3, %zu seeds) ===\n\n",
              seeds);

  const double grid[][2] = {{0.2, 0.6}, {0.5, 0.6}, {0.5, 1.0}, {1.0, 1.0}};

  // --- 1. Initialization -------------------------------------------------
  {
    TextTable table({"init", "L0.2/S0.6", "L0.5/S0.6", "L0.5/S1.0",
                     "L1.0/S1.0"});
    core::FrameworkOptions eq5, plain;
    plain.init_with_eq5 = false;
    std::vector<double> row_eq5, row_plain;
    for (const auto& g : grid) {
      row_eq5.push_back(averaged(g[0], g[1], seeds, eq5));
      row_plain.push_back(averaged(g[0], g[1], seeds, plain));
    }
    table.add_row("Eq. (5) size-weighted", row_eq5);
    table.add_row("plain mean of aggregates", row_plain);
    std::printf("1. initialization\n%s\n", table.render().c_str());
  }

  // --- 2. Intra-group aggregate (Eq. 3 reading) ---------------------------
  {
    TextTable table({"aggregate", "L0.2/S0.6", "L0.5/S0.6", "L0.5/S1.0",
                     "L1.0/S1.0"});
    for (auto [name, mode] :
         {std::pair{"inverse-deviation (ours)",
                    core::GroupAggregate::kInverseDeviation},
          std::pair{"mean", core::GroupAggregate::kMean},
          std::pair{"median", core::GroupAggregate::kMedian},
          std::pair{"trimmed mean (20%)",
                    core::GroupAggregate::kTrimmedMean},
          std::pair{"Huber M-estimator", core::GroupAggregate::kHuber}}) {
      core::FrameworkOptions opt;
      opt.data_grouping.aggregate = mode;
      std::vector<double> row;
      for (const auto& g : grid) row.push_back(averaged(g[0], g[1], seeds, opt));
      table.add_row(name, row);
    }
    std::printf("2. Eq. (3) intra-group aggregate\n%s\n",
                table.render().c_str());
  }

  // --- 3. Eq. (4) group size source ---------------------------------------
  {
    TextTable table({"group size", "L0.2/S0.6", "L0.5/S0.6", "L0.5/S1.0",
                     "L1.0/S1.0"});
    for (auto [name, participants] :
         {std::pair{"task participants (ours)", true},
          std::pair{"literal |g_k|", false}}) {
      core::FrameworkOptions opt;
      opt.data_grouping.size_from_task_participants = participants;
      std::vector<double> row;
      for (const auto& g : grid) row.push_back(averaged(g[0], g[1], seeds, opt));
      table.add_row(name, row);
    }
    std::printf("3. Eq. (4) group-size source\n%s\n", table.render().c_str());
  }

  // --- 4. Method comparison (CRH / framework / oracle / robust baselines) --
  {
    TextTable table({"method", "L0.2/S0.6", "L0.5/S0.6", "L0.5/S1.0",
                     "L1.0/S1.0"});
    for (eval::Method m : {eval::Method::kCrh, eval::Method::kMedian,
                           eval::Method::kCatd, eval::Method::kGtm,
                           eval::Method::kTruthFinder, eval::Method::kTdTr,
                           eval::Method::kTdOracle}) {
      std::vector<double> row;
      for (const auto& g : grid) {
        double total = 0.0;
        for (std::size_t s = 0; s < seeds; ++s) {
          const auto data = mcs::generate_scenario(
              mcs::make_paper_scenario(g[0], g[1], 7000 + 131 * s));
          total += eval::run_method(m, data).mae;
        }
        row.push_back(total / static_cast<double>(seeds));
      }
      table.add_row(eval::method_name(m), row);
    }
    std::printf("4. aggregation methods under attack\n%s\n",
                table.render().c_str());
  }
  return 0;
}
