// Extension bench: AG-TR at campaign scale.
//
// The paper's experiment has 18 accounts; a production campaign can have
// hundreds.  AG-TR is O(pairs x DTW), so we measure wall time and grouping
// agreement for three evaluation strategies as the account count grows:
//   exact       — full DTW on every pair (the default)
//   lb-pruned   — endpoint + LB_Keogh-style envelope bounds skip
//                 clearly-dissimilar pairs (exact result by construction;
//                 see docs/PERFORMANCE.md)
//   fastdtw     — approximate DTW per pair
// Also reports the grouped framework's end-to-end latency.
#include <chrono>
#include <cstdio>

#include "common/table.h"
#include "core/ag_tr.h"
#include "core/framework.h"
#include "eval/adapters.h"
#include "ml/clustering_metrics.h"
#include "mcs/scenario.h"

using namespace sybiltd;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_legit = argc > 1 ? std::stoul(argv[1]) : 320;
  std::printf("=== Extension: AG-TR scalability (Attack-I attackers = 10%% "
              "of users, 40 tasks) ===\n\n");

  TextTable table({"accounts", "exact ms", "lb-pruned ms", "fastdtw ms",
                   "pruned == exact", "fastdtw ARI vs exact",
                   "framework ms"});

  for (std::size_t legit = 40; legit <= max_legit; legit *= 2) {
    const std::size_t attackers = legit / 10;
    const auto config =
        mcs::make_large_scenario(legit, attackers, 5, 40, 11 + legit);
    const auto data = mcs::generate_scenario(config);
    const auto input = eval::to_framework_input(data);
    const std::size_t accounts = input.accounts.size();

    core::AgTrOptions exact_opt;
    core::AgTrOptions pruned_opt;
    pruned_opt.prune_with_lower_bound = true;
    core::AgTrOptions fast_opt;
    fast_opt.approximate = true;
    fast_opt.fast_dtw.radius = 2;

    auto t0 = std::chrono::steady_clock::now();
    const auto exact = core::AgTr(exact_opt).group(input);
    const double exact_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto pruned = core::AgTr(pruned_opt).group(input);
    const double pruned_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto fast = core::AgTr(fast_opt).group(input);
    const double fast_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    (void)core::run_framework(input, pruned);
    const double framework_ms = ms_since(t0);

    const bool identical = pruned.labels() == exact.labels();
    const double fast_agreement =
        ml::adjusted_rand_index(fast.labels(), exact.labels());

    table.add_row({std::to_string(accounts), format_cell(exact_ms, 1),
                   format_cell(pruned_ms, 1), format_cell(fast_ms, 1),
                   identical ? "yes" : "NO",
                   format_cell(fast_agreement, 3),
                   format_cell(framework_ms, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nThe lower-bound prefilter is exact (identical grouping) "
              "because pruning only\nskips pairs whose bound already "
              "proves D >= phi; FastDTW is approximate but\nits grouping "
              "should agree almost always (near-duplicate trajectories "
              "have\nnear-zero cost at any radius).\n");
  return 0;
}
