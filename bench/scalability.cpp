// Extension bench: grouping at campaign scale (10^4 .. 10^6 accounts).
//
// The paper's experiment has 18 accounts; this bench measures the
// sub-quadratic candidate-generation paths (src/candidate/) against the
// all-pairs baselines they replace:
//
//   AG-TR   endpoint-grid blocking + lower-bound cascade  vs  all-pairs
//           with the single-shot LB prefilter (the pre-candidate best),
//   AG-TS   signature collapse + MinHash set join          vs  an exact
//           bitset-popcount sweep over every pair.
//
// Both candidate paths are generate-then-verify, so recall against the
// exact grouping is the headline number next to the speedup; the funnel
// fractions show where pairs die.  Baselines only run up to
// --all-pairs-cap accounts (default 10^5) — beyond that the quadratic
// sweep is the point being made.
//
// Modes:
//   scalability [sizes...]          human tables (default 10000 100000)
//   scalability --json [sizes...]   google-benchmark JSON for
//                                   bench/compare_bench.py (BENCH_grouping)
//   scalability --smoke [n]         CI gate: candidates prune > 90% of
//                                   pairs and recall == 1.0 at n (5000)
//   scalability --strategies [max]  the original small-scale AG-TR
//                                   strategy comparison (exact / lb-pruned
//                                   / fastdtw)
//   scalability --all-pairs-cap N   largest n that runs exact baselines
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/table.h"
#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "core/framework.h"
#include "eval/adapters.h"
#include "graph/union_find.h"
#include "mcs/scenario.h"
#include "ml/clustering_metrics.h"

using namespace sybiltd;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// Synthetic campaign generator.  mcs::generate_scenario models the paper's
// full sensing physics and becomes the bottleneck near 10^6 accounts, so
// the bench uses a lean generator with the same grouping-relevant shape:
// 90% legitimate accounts with individual task schedules, 10% Sybil
// accounts in groups of 5 that replay one schedule (identical task sets,
// near-identical trajectories — the signature AG-TS / AG-TR detect).
// Tasks scale with n (m = max(64, n / 250)) and the enrollment window
// widens with n so account density per unit time stays realistic.

struct GroupingScenario {
  core::FrameworkInput input;
  std::size_t attacker_groups = 0;
};

GroupingScenario make_grouping_input(std::size_t n, std::uint64_t seed) {
  GroupingScenario out;
  const std::size_t m = std::max<std::size_t>(64, n / 250);
  const double window_hours = std::max(2.0, static_cast<double>(n) / 5000.0);
  const std::size_t groups = n / 50;  // x5 accounts each = 10% of n
  const std::size_t legit = n - groups * 5;
  out.attacker_groups = groups;
  out.input.task_count = m;
  out.input.accounts.reserve(n);

  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> task_of(0, m - 1);
  std::uniform_int_distribution<std::size_t> schedule_len(4, 12);
  std::uniform_real_distribution<double> start_of(0.0, window_hours);
  std::uniform_real_distribution<double> gap(0.05, 0.3);
  std::normal_distribution<double> truth(-60.0, 5.0);
  std::normal_distribution<double> noise(0.0, 2.0);
  std::uniform_real_distribution<double> clone_offset(0.0, 0.02);

  std::vector<double> task_truth(m);
  for (auto& t : task_truth) t = truth(rng);

  // One schedule: distinct tasks in visit order with increasing timestamps.
  const auto make_schedule = [&](std::vector<core::AccountObservation>* s) {
    const std::size_t len = schedule_len(rng);
    std::vector<std::uint32_t> tasks;
    while (tasks.size() < len) {
      const auto t = static_cast<std::uint32_t>(task_of(rng));
      if (std::find(tasks.begin(), tasks.end(), t) == tasks.end()) {
        tasks.push_back(t);
      }
    }
    double ts = start_of(rng);
    s->clear();
    for (const std::uint32_t t : tasks) {
      s->push_back({t, task_truth[t] + noise(rng), ts});
      ts += gap(rng);
    }
  };

  std::vector<core::AccountObservation> schedule;
  for (std::size_t i = 0; i < legit; ++i) {
    core::AccountTrace trace;
    trace.name = "u" + std::to_string(i);
    make_schedule(&schedule);
    trace.reports = schedule;
    out.input.accounts.push_back(std::move(trace));
  }
  for (std::size_t g = 0; g < groups; ++g) {
    make_schedule(&schedule);
    for (std::size_t c = 0; c < 5; ++c) {
      core::AccountTrace trace;
      trace.name = "a" + std::to_string(g) + "_" + std::to_string(c);
      trace.reports = schedule;
      // Replayed schedule, shifted by a per-clone constant: the task sets
      // stay identical and the timestamp DTW cost stays far below phi.
      const double shift = clone_offset(rng);
      for (auto& report : trace.reports) {
        report.timestamp_hours += shift;
        report.value = -50.0 + 0.5 * noise(rng);
      }
      out.input.accounts.push_back(std::move(trace));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pairwise recall of partition `got` against partition `want`: of the
// account pairs `want` groups together, the fraction `got` also groups
// together.  O(n) via the contingency table; 1.0 when `want` has no
// positive pairs.

double pair_recall(const std::vector<std::size_t>& want,
                   const std::vector<std::size_t>& got) {
  std::unordered_map<std::size_t, std::size_t> want_sizes;
  std::unordered_map<std::uint64_t, std::size_t> cell_sizes;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ++want_sizes[want[i]];
    ++cell_sizes[(static_cast<std::uint64_t>(want[i]) << 32) |
                 static_cast<std::uint32_t>(got[i])];
  }
  double positives = 0.0;
  for (const auto& [label, size] : want_sizes) {
    positives += 0.5 * static_cast<double>(size) *
                 static_cast<double>(size - 1);
  }
  if (positives == 0.0) return 1.0;
  double hits = 0.0;
  for (const auto& [cell, size] : cell_sizes) {
    hits += 0.5 * static_cast<double>(size) * static_cast<double>(size - 1);
  }
  return hits / positives;
}

// ---------------------------------------------------------------------------
// Exact AG-TS reference that never materializes the n x n matrix: per
// account a task bitset, then a popcount sweep over every pair straight
// into a union-find.  Same partition as core::AgTs's dense path, at a
// memory cost of n * m / 8 bytes instead of 8 n^2.

std::vector<std::size_t> agts_exact_labels(const core::FrameworkInput& input,
                                           double rho) {
  const std::size_t n = input.accounts.size();
  const std::size_t words = (input.task_count + 63) / 64;
  std::vector<std::uint64_t> bits(n * words, 0);
  std::vector<std::uint32_t> sizes(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& report : input.accounts[i].reports) {
      std::uint64_t& word = bits[i * words + report.task / 64];
      const std::uint64_t mask = 1uLL << (report.task % 64);
      if ((word & mask) == 0) {
        word |= mask;
        ++sizes[i];
      }
    }
  }
  graph::UnionFind uf(n);
  const auto m = static_cast<double>(input.task_count);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* a = &bits[i * words];
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::uint64_t* b = &bits[j * words];
      std::size_t both = 0;
      for (std::size_t w = 0; w < words; ++w) {
        both += static_cast<std::size_t>(__builtin_popcountll(a[w] & b[w]));
      }
      const std::size_t alone = sizes[i] + sizes[j] - 2 * both;
      const double t = static_cast<double>(both);
      const double l = static_cast<double>(alone);
      if ((t - 2.0 * l) * (t + l) / m > rho) uf.unite(i, j);
    }
  }
  return uf.labels();
}

// ---------------------------------------------------------------------------
// Per-size measurements.

struct AgTrRun {
  double candidate_s = 0.0;
  double all_pairs_s = -1.0;  // < 0: baseline skipped
  double recall = -1.0;       // < 0: unmeasured (no baseline)
  core::AgTrStats stats;
};

struct AgTsRun {
  double sparse_s = 0.0;
  double exact_s = -1.0;
  double recall = -1.0;
  core::AgTsStats stats;
};

AgTrRun run_agtr(const core::FrameworkInput& input, bool with_baseline) {
  AgTrRun run;
  core::AgTrOptions cand_opt;
  cand_opt.candidates.mode = candidate::Mode::kOn;
  auto t0 = std::chrono::steady_clock::now();
  const auto cand = core::AgTr(cand_opt).group_with_stats(input, &run.stats);
  run.candidate_s = seconds_since(t0);
  if (!with_baseline) return run;

  // The strongest pre-candidate exact configuration: all pairs, pruned by
  // the single-shot lower bound.
  core::AgTrOptions base_opt;
  base_opt.prune_with_lower_bound = true;
  base_opt.candidates.mode = candidate::Mode::kOff;
  t0 = std::chrono::steady_clock::now();
  const auto exact = core::AgTr(base_opt).group(input);
  run.all_pairs_s = seconds_since(t0);
  run.recall = pair_recall(exact.labels(), cand.labels());
  return run;
}

AgTsRun run_agts(const core::FrameworkInput& input, double rho,
                 bool with_baseline) {
  AgTsRun run;
  core::AgTsOptions sparse_opt;
  sparse_opt.rho = rho;
  sparse_opt.candidates.mode = candidate::Mode::kOn;
  auto t0 = std::chrono::steady_clock::now();
  const auto sparse =
      core::AgTs(sparse_opt).group_with_stats(input, &run.stats);
  run.sparse_s = seconds_since(t0);
  if (!with_baseline) return run;

  t0 = std::chrono::steady_clock::now();
  const auto exact = agts_exact_labels(input, rho);
  run.exact_s = seconds_since(t0);
  run.recall = pair_recall(exact, sparse.labels());
  return run;
}

std::string cell_or_dash(double v, int precision) {
  return v < 0 ? "-" : format_cell(v, precision);
}

// ---------------------------------------------------------------------------
// Modes.

// AG-TS edge threshold used throughout: rho = 0 keeps the paper's Eq. (6)
// rule "positive affinity" (intersection dominates symmetric difference),
// which is scale-free in m — a fixed positive rho would stop firing as the
// task count grows with n.
constexpr double kRho = 0.0;

int run_grouping(const std::vector<std::size_t>& sizes, bool json,
                 std::size_t all_pairs_cap) {
  if (!json) {
    std::printf("=== Extension: sub-quadratic grouping (10%% Sybil accounts "
                "in groups of 5, m = n/250 tasks) ===\n\n");
  }
  TextTable agtr_table({"accounts", "candidates s", "all-pairs s", "speedup",
                        "recall", "blocked %", "cascade-pruned %",
                        "exact DTW pairs"});
  TextTable agts_table({"accounts", "sparse s", "exact s", "speedup",
                        "recall", "collapsed", "verified pairs", "edges"});
  std::string benchmarks;  // JSON entries
  char buf[512];

  for (const std::size_t n : sizes) {
    const auto scenario = make_grouping_input(n, 20'000 + n);
    const auto& input = scenario.input;
    const bool baseline = n <= all_pairs_cap;
    const double pairs = 0.5 * static_cast<double>(n) *
                         static_cast<double>(n - 1);

    const AgTrRun tr = run_agtr(input, baseline);
    const double blocked_frac =
        static_cast<double>(tr.stats.blocked) / pairs;
    const double cascade_frac =
        static_cast<double>(tr.stats.lb_pruned + tr.stats.task_abandoned) /
        pairs;
    agtr_table.add_row(
        {std::to_string(n), format_cell(tr.candidate_s, 2),
         cell_or_dash(tr.all_pairs_s, 2),
         tr.all_pairs_s < 0
             ? "-"
             : format_cell(tr.all_pairs_s / tr.candidate_s, 1) + "x",
         cell_or_dash(tr.recall, 4), format_cell(100.0 * blocked_frac, 3),
         format_cell(100.0 * cascade_frac, 4),
         std::to_string(tr.stats.exact_pairs)});

    const AgTsRun ts = run_agts(input, kRho, baseline);
    agts_table.add_row(
        {std::to_string(n), format_cell(ts.sparse_s, 2),
         cell_or_dash(ts.exact_s, 2),
         ts.exact_s < 0 ? "-"
                        : format_cell(ts.exact_s / ts.sparse_s, 1) + "x",
         cell_or_dash(ts.recall, 4), std::to_string(ts.stats.join.collapsed),
         std::to_string(ts.stats.join.candidates),
         std::to_string(ts.stats.join.edges)});

    if (json) {
      std::snprintf(
          buf, sizeof buf,
          "    {\"name\": \"BM_AgTrCandidates/%zu\", \"run_type\": "
          "\"iteration\", \"real_time\": %.3f, \"cpu_time\": %.3f, "
          "\"time_unit\": \"ms\", \"recall\": %.6f, \"blocked_frac\": "
          "%.6f, \"cascade_pruned_frac\": %.6f, \"exact_dtw_pairs\": %zu},\n",
          n, 1e3 * tr.candidate_s, 1e3 * tr.candidate_s, tr.recall,
          blocked_frac, cascade_frac, tr.stats.exact_pairs);
      benchmarks += buf;
      if (tr.all_pairs_s >= 0) {
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"BM_AgTrAllPairs/%zu\", \"run_type\": "
                      "\"iteration\", \"real_time\": %.3f, \"cpu_time\": "
                      "%.3f, \"time_unit\": \"ms\"},\n",
                      n, 1e3 * tr.all_pairs_s, 1e3 * tr.all_pairs_s);
        benchmarks += buf;
      }
      std::snprintf(
          buf, sizeof buf,
          "    {\"name\": \"BM_AgTsSparse/%zu\", \"run_type\": "
          "\"iteration\", \"real_time\": %.3f, \"cpu_time\": %.3f, "
          "\"time_unit\": \"ms\", \"recall\": %.6f, \"collapsed\": %zu, "
          "\"verified_pairs\": %zu, \"edges\": %zu, \"exhaustive\": %s},\n",
          n, 1e3 * ts.sparse_s, 1e3 * ts.sparse_s, ts.recall,
          ts.stats.join.collapsed, ts.stats.join.candidates,
          ts.stats.join.edges, ts.stats.join.exhaustive ? "true" : "false");
      benchmarks += buf;
      if (ts.exact_s >= 0) {
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"BM_AgTsExact/%zu\", \"run_type\": "
                      "\"iteration\", \"real_time\": %.3f, \"cpu_time\": "
                      "%.3f, \"time_unit\": \"ms\"},\n",
                      n, 1e3 * ts.exact_s, 1e3 * ts.exact_s);
        benchmarks += buf;
      }
    }
  }

  if (json) {
    if (!benchmarks.empty()) benchmarks.resize(benchmarks.size() - 2);
    std::printf("{\n  \"context\": {\"bench\": \"scalability --json\", "
                "\"rho\": %.1f},\n  \"benchmarks\": [\n%s\n  ]\n}\n",
                kRho, benchmarks.c_str());
    return 0;
  }
  std::printf("AG-TR: endpoint-grid blocking + lower-bound cascade vs "
              "all-pairs with the\nsingle-shot LB prefilter.  Recall is "
              "pairwise against the exact grouping\n(1.0 expected: the "
              "candidate path is provably exact).\n\n%s\n",
              agtr_table.render().c_str());
  std::printf("AG-TS: signature collapse + MinHash set join vs an exact "
              "bitset-popcount\nsweep (rho = %.1f).\n\n%s",
              kRho, agts_table.render().c_str());
  return 0;
}

int run_smoke(std::size_t n) {
  std::printf("smoke: n = %zu\n", n);
  const auto scenario = make_grouping_input(n, 20'000 + n);
  const double pairs = 0.5 * static_cast<double>(n) *
                       static_cast<double>(n - 1);
  const AgTrRun tr = run_agtr(scenario.input, /*with_baseline=*/true);
  const double pruned_frac =
      static_cast<double>(tr.stats.blocked + tr.stats.lb_pruned +
                          tr.stats.task_abandoned) /
      pairs;
  std::printf("  agtr: %.2fs candidates vs %.2fs all-pairs, recall %.4f, "
              "%.2f%% of pairs pruned before exact DTW\n",
              tr.candidate_s, tr.all_pairs_s, tr.recall,
              100.0 * pruned_frac);
  const AgTsRun ts = run_agts(scenario.input, kRho, /*with_baseline=*/true);
  std::printf("  agts: %.2fs sparse vs %.2fs exact, recall %.4f, "
              "%zu pairs verified of %.0f\n",
              ts.sparse_s, ts.exact_s, ts.recall, ts.stats.join.candidates,
              pairs);
  bool ok = true;
  if (pruned_frac <= 0.9) {
    std::printf("FAIL: cascade pruned %.2f%% of AG-TR pairs (need > 90%%)\n",
                100.0 * pruned_frac);
    ok = false;
  }
  if (tr.recall < 1.0) {
    std::printf("FAIL: AG-TR candidate recall %.6f (the path is supposed "
                "to be exact)\n", tr.recall);
    ok = false;
  }
  if (ts.recall < 1.0) {
    std::printf("FAIL: AG-TS sparse recall %.6f (exhaustive tier expected "
                "at this scale)\n", ts.recall);
    ok = false;
  }
  std::printf("%s\n", ok ? "smoke OK" : "smoke FAILED");
  return ok ? 0 : 1;
}

int run_strategies(std::size_t max_legit) {
  std::printf("=== Extension: AG-TR scalability (Attack-I attackers = 10%% "
              "of users, 40 tasks) ===\n\n");

  TextTable table({"accounts", "exact ms", "lb-pruned ms", "fastdtw ms",
                   "pruned == exact", "fastdtw ARI vs exact",
                   "framework ms"});

  for (std::size_t legit = 40; legit <= max_legit; legit *= 2) {
    const std::size_t attackers = legit / 10;
    const auto config =
        mcs::make_large_scenario(legit, attackers, 5, 40, 11 + legit);
    const auto data = mcs::generate_scenario(config);
    const auto input = eval::to_framework_input(data);
    const std::size_t accounts = input.accounts.size();

    core::AgTrOptions exact_opt;
    core::AgTrOptions pruned_opt;
    pruned_opt.prune_with_lower_bound = true;
    core::AgTrOptions fast_opt;
    fast_opt.approximate = true;
    fast_opt.fast_dtw.radius = 2;

    auto t0 = std::chrono::steady_clock::now();
    const auto exact = core::AgTr(exact_opt).group(input);
    const double exact_ms = 1e3 * seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto pruned = core::AgTr(pruned_opt).group(input);
    const double pruned_ms = 1e3 * seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto fast = core::AgTr(fast_opt).group(input);
    const double fast_ms = 1e3 * seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    (void)core::run_framework(input, pruned);
    const double framework_ms = 1e3 * seconds_since(t0);

    const bool identical = pruned.labels() == exact.labels();
    const double fast_agreement =
        ml::adjusted_rand_index(fast.labels(), exact.labels());

    table.add_row({std::to_string(accounts), format_cell(exact_ms, 1),
                   format_cell(pruned_ms, 1), format_cell(fast_ms, 1),
                   identical ? "yes" : "NO",
                   format_cell(fast_agreement, 3),
                   format_cell(framework_ms, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nThe lower-bound prefilter is exact (identical grouping) "
              "because pruning only\nskips pairs whose bound already "
              "proves D >= phi; FastDTW is approximate but\nits grouping "
              "should agree almost always (near-duplicate trajectories "
              "have\nnear-zero cost at any radius).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  bool strategies = false;
  std::size_t all_pairs_cap = 100'000;
  std::vector<std::size_t> sizes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--strategies") == 0) {
      strategies = true;
    } else if (std::strcmp(argv[i], "--all-pairs-cap") == 0 &&
               i + 1 < argc) {
      all_pairs_cap = std::stoul(argv[++i]);
    } else {
      sizes.push_back(std::stoul(argv[i]));
    }
  }
  if (strategies) {
    return run_strategies(sizes.empty() ? 320 : sizes[0]);
  }
  if (smoke) {
    return run_smoke(sizes.empty() ? 5000 : sizes[0]);
  }
  if (sizes.empty()) sizes = {10'000, 100'000};
  return run_grouping(sizes, json, all_pairs_cap);
}
