#include "signal/fft.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace sybiltd::signal {

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  SYBILTD_CHECK(is_power_of_two(n), "fft_radix2 needs a power-of-two size");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

namespace {

// Bluestein's chirp-z transform: expresses an arbitrary-length DFT as a
// convolution, evaluated with a power-of-two FFT.
std::vector<Complex> bluestein(std::span<const Complex> input, bool inverse) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  const double sign = inverse ? 1.0 : -1.0;
  // chirp[k] = exp(sign * i * pi * k^2 / n)
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small and exact.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle =
        sign * std::numbers::pi * static_cast<double>(k2) /
        static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }
  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }
  fft_radix2(a, /*inverse=*/false);
  fft_radix2(b, /*inverse=*/false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2(a, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(m);
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * scale * chirp[k];
  return out;
}

}  // namespace

std::vector<Complex> fft(std::span<const Complex> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  if (is_power_of_two(n)) {
    std::vector<Complex> data(input.begin(), input.end());
    fft_radix2(data, /*inverse=*/false);
    return data;
  }
  return bluestein(input, /*inverse=*/false);
}

std::vector<Complex> inverse_fft(std::span<const Complex> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  std::vector<Complex> data;
  if (is_power_of_two(n)) {
    data.assign(input.begin(), input.end());
    fft_radix2(data, /*inverse=*/true);
  } else {
    data = bluestein(input, /*inverse=*/true);
  }
  const double scale = 1.0 / static_cast<double>(n);
  for (auto& x : data) x *= scale;
  return data;
}

std::vector<Complex> fft_real(std::span<const double> input) {
  std::vector<Complex> cx(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    cx[i] = Complex(input[i], 0.0);
  }
  return fft(cx);
}

}  // namespace sybiltd::signal
