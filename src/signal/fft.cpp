#include "signal/fft.h"

#include <cmath>
#include <mutex>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/workspace.h"
#include "obs/metrics.h"

namespace sybiltd::signal {

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

std::mutex g_plan_mutex;
std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>>& plan_cache() {
  static std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> cache;
  return cache;
}
std::size_t plan_key(std::size_t n, bool inverse) {
  return (n << 1) | static_cast<std::size_t>(inverse);
}

}  // namespace

FftPlan::FftPlan(std::size_t n, bool inverse) : n_(n), inverse_(inverse) {
  SYBILTD_CHECK(n >= 1, "FFT plan needs a nonzero length");
  const std::size_t radix2_n = is_power_of_two(n) ? n : next_power_of_two(2 * n - 1);
  if (is_power_of_two(n)) {
    // Twiddle table for the iterative butterflies, generated with the same
    // w *= wlen recurrence the per-call loop used — the k-th entry of each
    // stage is the incremental product, not a directly evaluated
    // exponential, so cached results match the uncached ones bitwise.
    twiddles_.reserve(radix2_n > 1 ? radix2_n - 1 : 0);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                           static_cast<double>(len);
      const Complex wlen(std::cos(angle), std::sin(angle));
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        twiddles_.push_back(w);
        w *= wlen;
      }
    }
    return;
  }

  // Bluestein invariants: chirp[k] = exp(sign * i * pi * k^2 / n), the
  // zero-padded conjugate-chirp kernel b, and b's forward FFT.
  const double sign = inverse ? 1.0 : -1.0;
  chirp_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small and exact.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * std::numbers::pi * static_cast<double>(k2) /
                         static_cast<double>(n);
    chirp_[k] = Complex(std::cos(angle), std::sin(angle));
  }
  m_ = next_power_of_two(2 * n - 1);
  forward_m_ = plan_for(m_, /*inverse=*/false);
  inverse_m_ = plan_for(m_, /*inverse=*/true);
  kernel_fft_.assign(m_, Complex(0.0, 0.0));
  kernel_fft_[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n; ++k) {
    kernel_fft_[k] = kernel_fft_[m_ - k] = std::conj(chirp_[k]);
  }
  forward_m_->apply(kernel_fft_);
}

std::shared_ptr<const FftPlan> FftPlan::plan_for(std::size_t n,
                                                 bool inverse) {
  // Registry counters so cache behaviour is visible outside unit tests
  // (`fft.plan_hits` / `fft.plan_misses` in obs::snapshot()).
  static obs::Counter& hits = obs::MetricsRegistry::global().counter(
      "fft.plan_hits", "FFT plan cache lookups served from the cache");
  static obs::Counter& misses = obs::MetricsRegistry::global().counter(
      "fft.plan_misses", "FFT plan cache lookups that built a plan");
  const std::size_t key = plan_key(n, inverse);
  {
    std::lock_guard<std::mutex> lock(g_plan_mutex);
    auto it = plan_cache().find(key);
    if (it != plan_cache().end()) {
      hits.inc();
      return it->second;
    }
  }
  misses.inc();
  // Build outside the lock: plan construction can itself look up sub-plans
  // (Bluestein needs the length-m radix-2 plans), and concurrent builders
  // of the same plan at worst duplicate work — emplace keeps the first.
  auto plan = make_cold(n, inverse);
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  auto [it, inserted] = plan_cache().emplace(key, std::move(plan));
  return it->second;
}

std::shared_ptr<const FftPlan> FftPlan::make_cold(std::size_t n,
                                                  bool inverse) {
  return std::shared_ptr<const FftPlan>(new FftPlan(n, inverse));
}

std::size_t FftPlan::cache_size() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  return plan_cache().size();
}

void FftPlan::clear_cache() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  plan_cache().clear();
}

void FftPlan::apply(std::span<Complex> data) const {
  SYBILTD_CHECK(data.size() == n_, "FFT plan length mismatch");
  if (uses_bluestein()) {
    apply_bluestein(data);
  } else {
    apply_radix2(data);
  }
}

void FftPlan::apply_radix2(std::span<Complex> data) const {
  const std::size_t n = n_;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies over the cached twiddles.
  const Complex* tw = twiddles_.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * tw[k];
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
      }
    }
    tw += len / 2;
  }
}

void FftPlan::apply_bluestein(std::span<Complex> data) const {
  const std::size_t n = n_;
  // a = (input .* chirp), zero-padded to m; convolve with the cached
  // kernel spectrum via the length-m radix-2 plans.
  auto a_storage = Workspace::local().borrow<Complex>(m_);
  Complex* a = a_storage.data();
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * chirp_[k];
  for (std::size_t k = n; k < m_; ++k) a[k] = Complex(0.0, 0.0);
  forward_m_->apply({a, m_});
  for (std::size_t k = 0; k < m_; ++k) a[k] *= kernel_fft_[k];
  inverse_m_->apply({a, m_});
  const double scale = 1.0 / static_cast<double>(m_);
  for (std::size_t k = 0; k < n; ++k) data[k] = a[k] * scale * chirp_[k];
}

void fft_radix2(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  SYBILTD_CHECK(is_power_of_two(n), "fft_radix2 needs a power-of-two size");
  FftPlan::plan_for(n, inverse)->apply(data);
}

std::vector<Complex> fft(std::span<const Complex> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  std::vector<Complex> data(input.begin(), input.end());
  FftPlan::plan_for(n, /*inverse=*/false)->apply(data);
  return data;
}

std::vector<Complex> inverse_fft(std::span<const Complex> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  std::vector<Complex> data(input.begin(), input.end());
  FftPlan::plan_for(n, /*inverse=*/true)->apply(data);
  const double scale = 1.0 / static_cast<double>(n);
  for (auto& x : data) x *= scale;
  return data;
}

std::vector<Complex> fft_real(std::span<const double> input) {
  std::vector<Complex> cx(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    cx[i] = Complex(input[i], 0.0);
  }
  if (!cx.empty()) FftPlan::plan_for(cx.size(), /*inverse=*/false)->apply(cx);
  return cx;
}

}  // namespace sybiltd::signal
