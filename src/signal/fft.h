// Fast Fourier transforms, implemented from scratch.
//
// The device-fingerprint feature extractor (signal/features.h) needs the
// power spectrum of short IMU streams of arbitrary length.  We provide an
// iterative radix-2 Cooley–Tukey FFT for power-of-two sizes and Bluestein's
// chirp-z algorithm for everything else, so callers never have to pad.
//
// Transforms execute through cached FftPlans: all per-length invariants —
// the radix-2 twiddle tables (stored stage by stage, generated with the
// same incremental w *= wlen recurrence the direct loop used, so results
// are bit-identical), and for Bluestein the chirp table plus the
// pre-transformed convolution kernel — are computed once per (length,
// direction) and shared process-wide.  Per-call scratch comes from the
// per-thread Workspace, so a warm transform performs no heap allocation
// beyond its output.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace sybiltd::signal {

using Complex = std::complex<double>;

// True iff n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);
// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

// Cached per-length transform plan.  Immutable after construction; safe to
// share between threads (apply() mutates only its argument and per-thread
// workspace scratch).
class FftPlan {
 public:
  // The process-wide cached plan for this (length, direction).  Lookups
  // are mutex-guarded; plan construction happens outside the lock, so a
  // rare duplicate build may be discarded, never a torn one.
  static std::shared_ptr<const FftPlan> plan_for(std::size_t n, bool inverse);

  // A fresh, uncached plan.  For tests proving cached == cold output.
  static std::shared_ptr<const FftPlan> make_cold(std::size_t n,
                                                  bool inverse);

  std::size_t length() const { return n_; }
  bool inverse() const { return inverse_; }
  bool uses_bluestein() const { return !chirp_.empty(); }

  // Transform `data` (length() elements) in place.  No normalization is
  // applied; inverse callers divide by n, exactly as with fft_radix2.
  void apply(std::span<Complex> data) const;

  // Cache introspection for tests.
  static std::size_t cache_size();
  static void clear_cache();

 private:
  FftPlan(std::size_t n, bool inverse);

  void apply_radix2(std::span<Complex> data) const;
  void apply_bluestein(std::span<Complex> data) const;

  std::size_t n_ = 0;
  bool inverse_ = false;

  // Radix-2 butterflies (used directly for power-of-two lengths): one
  // twiddle per (stage, k), concatenated in stage order.
  std::vector<Complex> twiddles_;

  // Bluestein state (non-power-of-two lengths only).
  std::size_t m_ = 0;                      // convolution length (power of 2)
  std::vector<Complex> chirp_;             // exp(sign*i*pi*k^2/n)
  std::vector<Complex> kernel_fft_;        // forward FFT of the b sequence
  std::shared_ptr<const FftPlan> forward_m_;  // radix-2 plans for length m
  std::shared_ptr<const FftPlan> inverse_m_;
};

// In-place radix-2 FFT.  data.size() must be a power of two.
// inverse=true computes the unscaled inverse transform; callers divide by n.
void fft_radix2(std::vector<Complex>& data, bool inverse = false);

// FFT of arbitrary length via Bluestein's algorithm (radix-2 internally).
std::vector<Complex> fft(std::span<const Complex> input);
std::vector<Complex> inverse_fft(std::span<const Complex> input);

// FFT of a real signal; returns the full complex spectrum of input.size().
std::vector<Complex> fft_real(std::span<const double> input);

}  // namespace sybiltd::signal
