// Fast Fourier transforms, implemented from scratch.
//
// The device-fingerprint feature extractor (signal/features.h) needs the
// power spectrum of short IMU streams of arbitrary length.  We provide an
// iterative radix-2 Cooley–Tukey FFT for power-of-two sizes and Bluestein's
// chirp-z algorithm for everything else, so callers never have to pad.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace sybiltd::signal {

using Complex = std::complex<double>;

// True iff n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);
// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

// In-place radix-2 FFT.  data.size() must be a power of two.
// inverse=true computes the unscaled inverse transform; callers divide by n.
void fft_radix2(std::vector<Complex>& data, bool inverse = false);

// FFT of arbitrary length via Bluestein's algorithm (radix-2 internally).
std::vector<Complex> fft(std::span<const Complex> input);
std::vector<Complex> inverse_fft(std::span<const Complex> input);

// FFT of a real signal; returns the full complex spectrum of input.size().
std::vector<Complex> fft_real(std::span<const double> input);

}  // namespace sybiltd::signal
