#include "signal/features.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace sybiltd::signal {

std::array<double, TemporalFeatures::kCount> TemporalFeatures::to_array()
    const {
  return {mean, stddev,          skewness, kurtosis,
          rms,  max,             min,      zero_crossing_rate,
          non_negative_count};
}

std::array<double, SpectralFeatures::kCount> SpectralFeatures::to_array()
    const {
  return {centroid,   spread,  skewness, kurtosis, flatness, irregularity,
          entropy,    rolloff, brightness, rms,    roughness};
}

std::array<double, StreamFeatures::kCount> StreamFeatures::to_array() const {
  std::array<double, kCount> out{};
  const auto t = temporal.to_array();
  const auto s = spectral.to_array();
  std::copy(t.begin(), t.end(), out.begin());
  std::copy(s.begin(), s.end(), out.begin() + t.size());
  return out;
}

TemporalFeatures extract_temporal_features(std::span<const double> stream) {
  SYBILTD_CHECK(!stream.empty(), "temporal features of an empty stream");
  RunningMoments m;
  for (double x : stream) m.add(x);
  TemporalFeatures f;
  f.mean = m.mean();
  f.stddev = m.stddev();
  f.skewness = m.skewness();
  f.kurtosis = m.excess_kurtosis();
  f.rms = root_mean_square(stream);
  f.max = m.max();
  f.min = m.min();
  f.zero_crossing_rate = zero_crossing_rate(stream);
  f.non_negative_count =
      static_cast<double>(non_negative_count(stream));
  return f;
}

double plomp_levelt_dissonance(double f1, double a1, double f2, double a2) {
  // Plomp & Levelt (1965) as parameterized by Sethares: dissonance of two
  // partials peaks at ~a quarter of the critical bandwidth apart.
  if (f2 < f1) {
    std::swap(f1, f2);
    std::swap(a1, a2);
  }
  constexpr double kB1 = 3.5;
  constexpr double kB2 = 5.75;
  constexpr double kDStar = 0.24;  // point of maximum dissonance
  constexpr double kS1 = 0.0207;
  constexpr double kS2 = 18.96;
  const double s = kDStar / (kS1 * f1 + kS2);
  const double diff = f2 - f1;
  const double amp = a1 * a2;
  return amp * (std::exp(-kB1 * s * diff) - std::exp(-kB2 * s * diff));
}

SpectralFeatures extract_spectral_features(const Spectrum& spectrum,
                                           const FeatureOptions& options) {
  SpectralFeatures f;
  const auto& mag = spectrum.magnitude;
  if (mag.size() < 2) return f;

  // Work on the one-sided spectrum excluding DC, which only reflects the
  // stream's offset and is already captured by the temporal mean.
  double total_mag = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) total_mag += mag[k];
  if (total_mag <= 0.0) return f;

  // --- centroid / spread / skewness / kurtosis (magnitude-weighted moments
  // over frequency) -----------------------------------------------------
  double centroid = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    centroid += spectrum.frequency(k) * mag[k];
  }
  centroid /= total_mag;

  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    const double d = spectrum.frequency(k) - centroid;
    const double w = mag[k] / total_mag;
    m2 += d * d * w;
    m3 += d * d * d * w;
    m4 += d * d * d * d * w;
  }
  const double spread = std::sqrt(m2);
  f.centroid = centroid;
  f.spread = spread;
  f.skewness = spread > 0.0 ? m3 / (spread * spread * spread) : 0.0;
  f.kurtosis = m2 > 0.0 ? m4 / (m2 * m2) : 0.0;

  // --- flatness: geometric over arithmetic mean of the power spectrum ---
  double log_sum = 0.0;
  double arith_sum = 0.0;
  std::size_t bins = 0;
  constexpr double kEps = 1e-30;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    const double p = mag[k] * mag[k];
    log_sum += std::log(p + kEps);
    arith_sum += p;
    ++bins;
  }
  const double geo_mean = std::exp(log_sum / static_cast<double>(bins));
  const double arith_mean = arith_sum / static_cast<double>(bins);
  f.flatness = arith_mean > 0.0 ? geo_mean / arith_mean : 0.0;

  // --- irregularity (Jensen): variation between successive bins ---------
  double irr_num = 0.0, irr_den = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    const double next = (k + 1 < mag.size()) ? mag[k + 1] : 0.0;
    const double d = mag[k] - next;
    irr_num += d * d;
    irr_den += mag[k] * mag[k];
  }
  f.irregularity = irr_den > 0.0 ? irr_num / irr_den : 0.0;

  // --- normalized Shannon entropy ---------------------------------------
  double entropy = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    const double p = mag[k] / total_mag;
    if (p > 0.0) entropy -= p * std::log(p);
  }
  f.entropy = bins > 1 ? entropy / std::log(static_cast<double>(bins)) : 0.0;

  // --- rolloff: frequency below which `rolloff_fraction` of the magnitude
  // is concentrated -------------------------------------------------------
  const double target = options.rolloff_fraction * total_mag;
  double running = 0.0;
  f.rolloff = spectrum.frequency(mag.size() - 1);
  for (std::size_t k = 1; k < mag.size(); ++k) {
    running += mag[k];
    if (running >= target) {
      f.rolloff = spectrum.frequency(k);
      break;
    }
  }

  // --- brightness: magnitude fraction above the cut-off ------------------
  const double cutoff = options.brightness_cutoff_fraction *
                        spectrum.nyquist();
  double above = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    if (spectrum.frequency(k) >= cutoff) above += mag[k];
  }
  f.brightness = above / total_mag;

  // --- spectral RMS -------------------------------------------------------
  {
    double sum_sq = 0.0;
    for (std::size_t k = 1; k < mag.size(); ++k) sum_sq += mag[k] * mag[k];
    f.rms = std::sqrt(sum_sq / static_cast<double>(bins));
  }

  // --- roughness: average Plomp–Levelt dissonance over all peak pairs ----
  const auto peaks = find_peaks(spectrum, options.peak_relative_threshold);
  if (peaks.size() >= 2) {
    double total = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < peaks.size(); ++i) {
      for (std::size_t j = i + 1; j < peaks.size(); ++j) {
        total += plomp_levelt_dissonance(peaks[i].frequency_hz,
                                         peaks[i].magnitude,
                                         peaks[j].frequency_hz,
                                         peaks[j].magnitude);
        ++pairs;
      }
    }
    f.roughness = total / static_cast<double>(pairs);
  }
  return f;
}

StreamFeatures extract_stream_features(std::span<const double> stream,
                                       const FeatureOptions& options) {
  StreamFeatures out;
  out.temporal = extract_temporal_features(stream);
  const Spectrum spec =
      compute_spectrum(stream, options.sample_rate_hz, options.window);
  out.spectral = extract_spectral_features(spec, options);
  return out;
}

std::vector<std::string> feature_names() {
  return {"t_mean",       "t_stddev",     "t_skewness",  "t_kurtosis",
          "t_rms",        "t_max",        "t_min",       "t_zcr",
          "t_nonneg",     "s_centroid",   "s_spread",    "s_skewness",
          "s_kurtosis",   "s_flatness",   "s_irregular", "s_entropy",
          "s_rolloff",    "s_brightness", "s_rms",       "s_roughness"};
}

}  // namespace sybiltd::signal
