#include "signal/spectrum.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/workspace.h"
#include "signal/fft.h"
#include "signal/welch.h"
#include "simd/simd.h"

namespace sybiltd::signal {

double Spectrum::frequency(std::size_t bin) const {
  SYBILTD_CHECK(bin < magnitude.size(), "spectrum bin out of range");
  if (signal_length == 0) return 0.0;
  return sample_rate_hz * static_cast<double>(bin) /
         static_cast<double>(signal_length);
}

Spectrum compute_spectrum(std::span<const double> signal,
                          double sample_rate_hz, WindowKind window) {
  SYBILTD_CHECK(sample_rate_hz > 0.0, "sample rate must be positive");
  Spectrum out;
  out.sample_rate_hz = sample_rate_hz;
  out.signal_length = signal.size();
  if (signal.empty()) return out;

  // Window coefficients and the FFT plan are cached per (kind, length);
  // the windowed complex buffer is per-thread workspace scratch.
  const std::size_t n = signal.size();
  const auto plan = WelchPlan::plan_for(window, n);
  const std::span<const double> w = plan->window();
  auto full_storage = Workspace::local().borrow<Complex>(n);
  Complex* full = full_storage.data();
  simd::kernels().window_multiply_complex(signal.data(), w.data(), n,
                                          reinterpret_cast<double*>(full));
  plan->fft().apply({full, n});

  const std::size_t half = n / 2 + 1;
  out.magnitude.resize(half);
  for (std::size_t k = 0; k < half; ++k) {
    out.magnitude[k] = std::abs(full[k]);
  }
  return out;
}

std::vector<SpectralPeak> find_peaks(const Spectrum& spectrum,
                                     double relative_threshold) {
  std::vector<SpectralPeak> peaks;
  const auto& mag = spectrum.magnitude;
  if (mag.size() < 3) return peaks;
  const double max_mag = *std::max_element(mag.begin() + 1, mag.end());
  const double threshold = relative_threshold * max_mag;
  for (std::size_t k = 1; k + 1 < mag.size(); ++k) {
    if (mag[k] > mag[k - 1] && mag[k] >= mag[k + 1] && mag[k] >= threshold) {
      peaks.push_back({spectrum.frequency(k), mag[k]});
    }
  }
  return peaks;
}

}  // namespace sybiltd::signal
