// The 20 temporal + spectral stream features of Table II (Lin et al.,
// ICDCS'19), following the definitions of Das et al. (NDSS'16) and
// Peeters (CUIDADO 2004).  These featurize one sensor data stream; AG-FP
// concatenates the features of four streams (|a|, wx, wy, wz) into an
// 80-dimensional device fingerprint vector.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "signal/spectrum.h"

namespace sybiltd::signal {

// Table II rows 1–9.
struct TemporalFeatures {
  double mean = 0.0;
  double stddev = 0.0;
  double skewness = 0.0;
  double kurtosis = 0.0;  // excess kurtosis
  double rms = 0.0;
  double max = 0.0;
  double min = 0.0;
  double zero_crossing_rate = 0.0;
  double non_negative_count = 0.0;

  static constexpr std::size_t kCount = 9;
  std::array<double, kCount> to_array() const;
};

// Table II rows 10–20.
struct SpectralFeatures {
  double centroid = 0.0;      // Hz
  double spread = 0.0;        // Hz
  double skewness = 0.0;
  double kurtosis = 0.0;
  double flatness = 0.0;      // geometric / arithmetic mean of power
  double irregularity = 0.0;  // Jensen irregularity of successive bins
  double entropy = 0.0;       // normalized Shannon entropy of the spectrum
  double rolloff = 0.0;       // Hz below which 85% of magnitude concentrates
  double brightness = 0.0;    // energy fraction above the cut-off frequency
  double rms = 0.0;           // RMS of the magnitude spectrum
  double roughness = 0.0;     // mean Plomp–Levelt dissonance over peak pairs

  static constexpr std::size_t kCount = 11;
  std::array<double, kCount> to_array() const;
};

struct FeatureOptions {
  double sample_rate_hz = 100.0;
  WindowKind window = WindowKind::kHann;
  double rolloff_fraction = 0.85;  // Table II: 85%
  // Brightness cut-off as a fraction of Nyquist (the audio literature uses
  // 1500 Hz; IMU streams are far narrower so we scale by bandwidth).
  double brightness_cutoff_fraction = 0.1;
  double peak_relative_threshold = 0.05;
};

TemporalFeatures extract_temporal_features(std::span<const double> stream);
SpectralFeatures extract_spectral_features(const Spectrum& spectrum,
                                           const FeatureOptions& options = {});

// All 20 features of one stream, temporal first, spectral second —
// the per-stream fingerprint block.
struct StreamFeatures {
  TemporalFeatures temporal;
  SpectralFeatures spectral;

  static constexpr std::size_t kCount =
      TemporalFeatures::kCount + SpectralFeatures::kCount;
  std::array<double, kCount> to_array() const;
};

StreamFeatures extract_stream_features(std::span<const double> stream,
                                       const FeatureOptions& options = {});

// Human-readable names matching Table II order, "t_mean" … "s_roughness".
std::vector<std::string> feature_names();

// Plomp–Levelt pairwise dissonance of two partials (used by roughness).
double plomp_levelt_dissonance(double f1, double a1, double f2, double a2);

}  // namespace sybiltd::signal
