// Welch's method for power spectral density estimation: average the
// periodograms of overlapping windowed segments.  Gives lower-variance
// spectra than a single periodogram, which stabilizes the spectral
// fingerprint features across captures (exposed via FeatureOptions in the
// AG-FP ablations).
#pragma once

#include <span>
#include <vector>

#include "signal/spectrum.h"
#include "signal/window.h"

namespace sybiltd::signal {

struct WelchOptions {
  std::size_t segment_length = 128;
  // Overlap between consecutive segments as a fraction of segment_length,
  // in [0, 1).  0.5 is the classic choice.
  double overlap = 0.5;
  WindowKind window = WindowKind::kHann;
};

// One-sided PSD estimate.  psd[k] is in units^2/Hz; frequency(k) maps bins
// to Hz like Spectrum.  Signals shorter than one segment fall back to a
// single full-length periodogram.
struct PowerSpectralDensity {
  std::vector<double> psd;
  double sample_rate_hz = 0.0;
  std::size_t segment_length = 0;
  std::size_t segments_averaged = 0;

  std::size_t bins() const { return psd.size(); }
  double frequency(std::size_t bin) const;
};

PowerSpectralDensity welch_psd(std::span<const double> signal,
                               double sample_rate_hz,
                               const WelchOptions& options = {});

// Convert a PSD estimate into the magnitude-spectrum form the feature
// extractor consumes (sqrt of the PSD, same bin/frequency layout).
Spectrum to_spectrum(const PowerSpectralDensity& psd);

}  // namespace sybiltd::signal
