// Welch's method for power spectral density estimation: average the
// periodograms of overlapping windowed segments.  Gives lower-variance
// spectra than a single periodogram, which stabilizes the spectral
// fingerprint features across captures (exposed via FeatureOptions in the
// AG-FP ablations).
//
// Per-shape invariants — the window coefficients, their power, and the
// segment FFT plan — are cached in a WelchPlan keyed by (window kind,
// segment length); per-segment scratch comes from the per-thread
// Workspace.  welch_psd_into() reuses the caller's output storage, so a
// warm call performs zero heap allocations.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "signal/fft.h"
#include "signal/spectrum.h"
#include "signal/window.h"

namespace sybiltd::signal {

struct WelchOptions {
  std::size_t segment_length = 128;
  // Overlap between consecutive segments as a fraction of segment_length,
  // in [0, 1).  0.5 is the classic choice.
  double overlap = 0.5;
  WindowKind window = WindowKind::kHann;
};

// One-sided PSD estimate.  psd[k] is in units^2/Hz; frequency(k) maps bins
// to Hz like Spectrum.  Signals shorter than one segment fall back to a
// single full-length periodogram.
struct PowerSpectralDensity {
  std::vector<double> psd;
  double sample_rate_hz = 0.0;
  std::size_t segment_length = 0;
  std::size_t segments_averaged = 0;

  std::size_t bins() const { return psd.size(); }
  double frequency(std::size_t bin) const;
};

// Cached invariants of one (window kind, segment length) spectral shape:
// the window coefficients, their summed squared power, and the segment's
// FFT plan.  Immutable and shareable across threads.
class WelchPlan {
 public:
  // Process-wide cached plan (mutex-guarded lookups).
  static std::shared_ptr<const WelchPlan> plan_for(WindowKind kind,
                                                   std::size_t length);
  // A fresh, uncached plan, for tests proving cached == cold output.
  static std::shared_ptr<const WelchPlan> make_cold(WindowKind kind,
                                                    std::size_t length);

  std::span<const double> window() const { return window_; }
  double window_power() const { return window_power_; }
  std::size_t length() const { return window_.size(); }
  const FftPlan& fft() const { return *fft_; }

  static std::size_t cache_size();
  static void clear_cache();

 private:
  WelchPlan(WindowKind kind, std::size_t length);

  std::vector<double> window_;
  double window_power_ = 0.0;
  std::shared_ptr<const FftPlan> fft_;
};

PowerSpectralDensity welch_psd(std::span<const double> signal,
                               double sample_rate_hz,
                               const WelchOptions& options = {});

// Same estimate written into caller-owned storage.  `out.psd`'s capacity
// is reused, so repeated calls with the same shape allocate nothing.
void welch_psd_into(std::span<const double> signal, double sample_rate_hz,
                    const WelchOptions& options, PowerSpectralDensity& out);

// Convert a PSD estimate into the magnitude-spectrum form the feature
// extractor consumes (sqrt of the PSD, same bin/frequency layout).
Spectrum to_spectrum(const PowerSpectralDensity& psd);

}  // namespace sybiltd::signal
