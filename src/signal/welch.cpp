#include "signal/welch.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/workspace.h"
#include "obs/metrics.h"
#include "simd/simd.h"

namespace sybiltd::signal {

namespace {

std::mutex g_welch_mutex;
std::unordered_map<std::size_t, std::shared_ptr<const WelchPlan>>&
welch_cache() {
  static std::unordered_map<std::size_t, std::shared_ptr<const WelchPlan>>
      cache;
  return cache;
}
std::size_t welch_key(WindowKind kind, std::size_t length) {
  return (length << 3) | static_cast<std::size_t>(kind);
}

}  // namespace

WelchPlan::WelchPlan(WindowKind kind, std::size_t length)
    : window_(make_window(kind, length)),
      fft_(FftPlan::plan_for(length, /*inverse=*/false)) {
  for (double w : window_) window_power_ += w * w;
}

std::shared_ptr<const WelchPlan> WelchPlan::plan_for(WindowKind kind,
                                                     std::size_t length) {
  static obs::Counter& hits = obs::MetricsRegistry::global().counter(
      "welch.plan_hits", "Welch plan cache lookups served from the cache");
  static obs::Counter& misses = obs::MetricsRegistry::global().counter(
      "welch.plan_misses", "Welch plan cache lookups that built a plan");
  const std::size_t key = welch_key(kind, length);
  {
    std::lock_guard<std::mutex> lock(g_welch_mutex);
    auto it = welch_cache().find(key);
    if (it != welch_cache().end()) {
      hits.inc();
      return it->second;
    }
  }
  misses.inc();
  auto plan = make_cold(kind, length);
  std::lock_guard<std::mutex> lock(g_welch_mutex);
  auto [it, inserted] = welch_cache().emplace(key, std::move(plan));
  return it->second;
}

std::shared_ptr<const WelchPlan> WelchPlan::make_cold(WindowKind kind,
                                                      std::size_t length) {
  return std::shared_ptr<const WelchPlan>(new WelchPlan(kind, length));
}

std::size_t WelchPlan::cache_size() {
  std::lock_guard<std::mutex> lock(g_welch_mutex);
  return welch_cache().size();
}

void WelchPlan::clear_cache() {
  std::lock_guard<std::mutex> lock(g_welch_mutex);
  welch_cache().clear();
}

double PowerSpectralDensity::frequency(std::size_t bin) const {
  SYBILTD_CHECK(bin < psd.size(), "PSD bin out of range");
  if (segment_length == 0) return 0.0;
  return sample_rate_hz * static_cast<double>(bin) /
         static_cast<double>(segment_length);
}

void welch_psd_into(std::span<const double> signal, double sample_rate_hz,
                    const WelchOptions& options, PowerSpectralDensity& out) {
  SYBILTD_CHECK(!signal.empty(), "Welch PSD of an empty signal");
  SYBILTD_CHECK(sample_rate_hz > 0.0, "sample rate must be positive");
  SYBILTD_CHECK(options.overlap >= 0.0 && options.overlap < 1.0,
                "overlap must be in [0, 1)");
  SYBILTD_CHECK(options.segment_length >= 2, "segment too short");

  const std::size_t seg =
      std::min(options.segment_length, signal.size());
  const std::size_t hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(seg) * (1.0 - options.overlap))));

  const auto plan = WelchPlan::plan_for(options.window, seg);
  const std::span<const double> window = plan->window();
  const double window_power = plan->window_power();

  out.sample_rate_hz = sample_rate_hz;
  out.segment_length = seg;
  out.segments_averaged = 0;
  out.psd.assign(seg / 2 + 1, 0.0);

  // One complex segment buffer from the per-thread workspace, windowed and
  // transformed in place per segment.  std::complex<double> is
  // array-compatible with double[2], so the SIMD kernels see the segment
  // as interleaved (re, im) pairs.
  auto segment_storage = Workspace::local().borrow<Complex>(seg);
  Complex* segment = segment_storage.data();
  double* segment_ri = reinterpret_cast<double*>(segment);
  const auto& kernels = simd::kernels();
  const double denom = sample_rate_hz * window_power;
  // One-sided periodogram scaling: the interior bins are doubled; DC and
  // (for even segments) Nyquist are not.  The interior run is one kernel
  // call; the one or two boundary bins stay scalar.
  const std::size_t last = out.psd.size() - 1;
  const std::size_t interior_end = 2 * last == seg ? last : last + 1;
  for (std::size_t start = 0; start + seg <= signal.size(); start += hop) {
    kernels.window_multiply_complex(signal.data() + start, window.data(),
                                    seg, segment_ri);
    plan->fft().apply({segment, seg});
    out.psd[0] += 1.0 * std::norm(segment[0]) / denom;
    if (interior_end > 1) {
      kernels.psd_accumulate(segment_ri + 2, interior_end - 1, 2.0, denom,
                             out.psd.data() + 1);
    }
    if (2 * last == seg) {
      out.psd[last] += 1.0 * std::norm(segment[last]) / denom;
    }
    ++out.segments_averaged;
    if (signal.size() < seg + hop) break;
  }
  SYBILTD_ASSERT(out.segments_averaged >= 1);
  for (double& p : out.psd) {
    p /= static_cast<double>(out.segments_averaged);
  }
}

PowerSpectralDensity welch_psd(std::span<const double> signal,
                               double sample_rate_hz,
                               const WelchOptions& options) {
  PowerSpectralDensity out;
  welch_psd_into(signal, sample_rate_hz, options, out);
  return out;
}

Spectrum to_spectrum(const PowerSpectralDensity& psd) {
  Spectrum s;
  s.sample_rate_hz = psd.sample_rate_hz;
  s.signal_length = psd.segment_length;
  s.magnitude.resize(psd.psd.size());
  for (std::size_t k = 0; k < psd.psd.size(); ++k) {
    s.magnitude[k] = std::sqrt(std::max(psd.psd[k], 0.0));
  }
  return s;
}

}  // namespace sybiltd::signal
