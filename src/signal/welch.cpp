#include "signal/welch.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "signal/fft.h"

namespace sybiltd::signal {

double PowerSpectralDensity::frequency(std::size_t bin) const {
  SYBILTD_CHECK(bin < psd.size(), "PSD bin out of range");
  if (segment_length == 0) return 0.0;
  return sample_rate_hz * static_cast<double>(bin) /
         static_cast<double>(segment_length);
}

PowerSpectralDensity welch_psd(std::span<const double> signal,
                               double sample_rate_hz,
                               const WelchOptions& options) {
  SYBILTD_CHECK(!signal.empty(), "Welch PSD of an empty signal");
  SYBILTD_CHECK(sample_rate_hz > 0.0, "sample rate must be positive");
  SYBILTD_CHECK(options.overlap >= 0.0 && options.overlap < 1.0,
                "overlap must be in [0, 1)");
  SYBILTD_CHECK(options.segment_length >= 2, "segment too short");

  const std::size_t seg =
      std::min(options.segment_length, signal.size());
  const std::size_t hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(seg) * (1.0 - options.overlap))));

  const auto window = make_window(options.window, seg);
  double window_power = 0.0;
  for (double w : window) window_power += w * w;

  PowerSpectralDensity out;
  out.sample_rate_hz = sample_rate_hz;
  out.segment_length = seg;
  out.psd.assign(seg / 2 + 1, 0.0);

  for (std::size_t start = 0; start + seg <= signal.size(); start += hop) {
    std::vector<double> segment(seg);
    for (std::size_t i = 0; i < seg; ++i) {
      segment[i] = signal[start + i] * window[i];
    }
    const auto spectrum = fft_real(segment);
    for (std::size_t k = 0; k < out.psd.size(); ++k) {
      // One-sided periodogram scaling: double the interior bins.
      const double scale = (k == 0 || 2 * k == seg) ? 1.0 : 2.0;
      out.psd[k] += scale * std::norm(spectrum[k]) /
                    (sample_rate_hz * window_power);
    }
    ++out.segments_averaged;
    if (signal.size() < seg + hop) break;
  }
  SYBILTD_ASSERT(out.segments_averaged >= 1);
  for (double& p : out.psd) {
    p /= static_cast<double>(out.segments_averaged);
  }
  return out;
}

Spectrum to_spectrum(const PowerSpectralDensity& psd) {
  Spectrum s;
  s.sample_rate_hz = psd.sample_rate_hz;
  s.signal_length = psd.segment_length;
  s.magnitude.resize(psd.psd.size());
  for (std::size_t k = 0; k < psd.psd.size(); ++k) {
    s.magnitude[k] = std::sqrt(std::max(psd.psd[k], 0.0));
  }
  return s;
}

}  // namespace sybiltd::signal
