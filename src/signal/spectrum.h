// Magnitude spectra and spectral peak analysis.
#pragma once

#include <span>
#include <vector>

#include "signal/window.h"

namespace sybiltd::signal {

// One-sided magnitude spectrum of a real signal.
// bins() holds |X[k]| for k = 0..N/2; frequency(k) maps a bin to Hz.
struct Spectrum {
  std::vector<double> magnitude;  // one-sided, DC first
  double sample_rate_hz = 0.0;
  std::size_t signal_length = 0;

  std::size_t bins() const { return magnitude.size(); }
  double frequency(std::size_t bin) const;
  double nyquist() const { return sample_rate_hz / 2.0; }
};

// Compute the one-sided magnitude spectrum after applying `window`.
Spectrum compute_spectrum(std::span<const double> signal,
                          double sample_rate_hz,
                          WindowKind window = WindowKind::kHann);

// A local maximum of the magnitude spectrum.
struct SpectralPeak {
  double frequency_hz = 0.0;
  double magnitude = 0.0;
};

// Local maxima of the spectrum whose magnitude exceeds
// `relative_threshold` * max magnitude.  DC is excluded.
std::vector<SpectralPeak> find_peaks(const Spectrum& spectrum,
                                     double relative_threshold = 0.05);

}  // namespace sybiltd::signal
