#include "signal/window.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace sybiltd::signal {

std::vector<double> make_window(WindowKind kind, std::size_t length) {
  std::vector<double> w(length, 1.0);
  if (length <= 1) return w;
  const double denom = static_cast<double>(length - 1);
  for (std::size_t i = 0; i < length; ++i) {
    const double x = static_cast<double>(i) / denom;
    switch (kind) {
      case WindowKind::kRectangular:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * x);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(2.0 * std::numbers::pi * x) +
               0.08 * std::cos(4.0 * std::numbers::pi * x);
        break;
    }
  }
  return w;
}

std::vector<double> apply_window(std::span<const double> signal,
                                 std::span<const double> window) {
  SYBILTD_CHECK(signal.size() == window.size(),
                "window/signal length mismatch");
  std::vector<double> out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    out[i] = signal[i] * window[i];
  }
  return out;
}

}  // namespace sybiltd::signal
