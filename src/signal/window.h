// Window functions applied before spectral analysis to reduce leakage.
#pragma once

#include <span>
#include <vector>

namespace sybiltd::signal {

enum class WindowKind {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

// Window coefficients of the given length (symmetric form).
std::vector<double> make_window(WindowKind kind, std::size_t length);

// Element-wise product of the signal with the window (lengths must match).
std::vector<double> apply_window(std::span<const double> signal,
                                 std::span<const double> window);

}  // namespace sybiltd::signal
