#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace sybiltd::obs {

namespace detail {

std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

// --- Histogram --------------------------------------------------------------

std::size_t Histogram::bucket_for(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;
  const int exponent = std::ilogb(value);  // floor(log2(value))
  const int bucket = exponent + kBucketOffset;
  if (bucket < 0) return 0;
  if (bucket >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(bucket);
}

double Histogram::bucket_upper_edge(std::size_t bucket) {
  return std::ldexp(1.0, static_cast<int>(bucket) - kBucketOffset + 1);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (const Stripe& stripe : stripes_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      counts[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

void Histogram::drain_into(Histogram& dest) {
  // Everything drained lands in one stripe of `dest` (this is the cold
  // family-eviction path, not a recording path, so stripe balance does not
  // matter); counts move via exchange so concurrent record()s are never
  // double-counted or lost.
  Stripe& target = dest.stripes_[detail::thread_slot() & (kStripes - 1)];
  for (Stripe& stripe : stripes_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t moved =
          stripe.buckets[b].exchange(0, std::memory_order_relaxed);
      if (moved > 0) {
        target.buckets[b].fetch_add(moved, std::memory_order_relaxed);
      }
    }
    const std::uint64_t count =
        stripe.count.exchange(0, std::memory_order_relaxed);
    if (count > 0) target.count.fetch_add(count, std::memory_order_relaxed);
    const double sum = stripe.sum.exchange(0.0, std::memory_order_relaxed);
    if (sum != 0.0) {
      double current = target.sum.load(std::memory_order_relaxed);
      while (!target.sum.compare_exchange_weak(current, current + sum,
                                               std::memory_order_relaxed)) {
      }
    }
  }
}

namespace detail {

void recycle_into(Counter& from, Counter& overflow) {
  from.drain_into(overflow);
}

void recycle_into(Gauge& from, Gauge& overflow) {
  (void)overflow;  // a level has no meaningful aggregate
  from.reset();
}

void recycle_into(Histogram& from, Histogram& overflow) {
  from.drain_into(overflow);
}

}  // namespace detail

// --- Registry ---------------------------------------------------------------

struct MetricsRegistry::Impl {
  enum class Kind {
    kCounter,
    kGauge,
    kHistogram,
    kCounterFamily,
    kGaugeFamily,
    kHistogramFamily,
  };
  struct Entry {
    Kind kind;
    std::size_t index;  // into the matching deque
  };

  // Registry construction time, the reference point of the process-level
  // `uptime_seconds` gauge (refreshed on every snapshot so /metrics
  // scrapes can turn counter totals into rates).
  const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  std::mutex mutex;
  // Deques: instrument addresses never move once registered, so the
  // references handed to instrumented code are stable.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::deque<CounterFamily> counter_families;
  std::deque<GaugeFamily> gauge_families;
  std::deque<HistogramFamily> histogram_families;
  std::unordered_map<std::string, Entry> by_name;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  // Help text parallel to the name vectors; the first non-empty help for a
  // name wins (instrumented code may register the same name help-free).
  std::vector<std::string> counter_helps;
  std::vector<std::string> gauge_helps;
  std::vector<std::string> histogram_helps;

  Entry& lookup(std::string_view name, Kind kind, std::string_view help) {
    auto [it, inserted] = by_name.try_emplace(std::string(name));
    if (!inserted) {
      if (it->second.kind != kind) {
        throw std::logic_error("metric '" + it->first +
                               "' already registered as a different kind");
      }
      if (!help.empty()) {
        std::vector<std::string>* helps = nullptr;
        switch (kind) {
          case Kind::kCounter: helps = &counter_helps; break;
          case Kind::kGauge: helps = &gauge_helps; break;
          case Kind::kHistogram: helps = &histogram_helps; break;
          default: return it->second;  // families use family_lookup
        }
        if ((*helps)[it->second.index].empty()) {
          (*helps)[it->second.index] = std::string(help);
        }
      }
      return it->second;
    }
    switch (kind) {
      case Kind::kCounter:
        it->second = {kind, counters.size()};
        counters.emplace_back();
        counter_names.emplace_back(name);
        counter_helps.emplace_back(help);
        break;
      case Kind::kGauge:
        it->second = {kind, gauges.size()};
        gauges.emplace_back();
        gauge_names.emplace_back(name);
        gauge_helps.emplace_back(help);
        break;
      case Kind::kHistogram:
        it->second = {kind, histograms.size()};
        histograms.emplace_back();
        histogram_names.emplace_back(name);
        histogram_helps.emplace_back(help);
        break;
      default:
        throw std::logic_error("family kinds register via family_lookup");
    }
    return it->second;
  }

  // Register-or-fetch a labeled family.  The caller holds `mutex`.
  template <typename FamilyT>
  FamilyT& family_lookup(std::deque<FamilyT>& families, Kind kind,
                         std::string_view name, std::string_view label_key,
                         std::string_view help, std::size_t max_series) {
    auto [it, inserted] = by_name.try_emplace(std::string(name));
    if (!inserted) {
      if (it->second.kind != kind) {
        throw std::logic_error("metric '" + it->first +
                               "' already registered as a different kind");
      }
      FamilyT& family = families[it->second.index];
      if (family.label_key() != label_key) {
        throw std::logic_error("metric family '" + it->first +
                               "' already registered with label key '" +
                               family.label_key() + "'");
      }
      family.set_help_if_empty(help);
      return family;
    }
    it->second = {kind, families.size()};
    families.emplace_back(std::string(name), std::string(label_key),
                          std::string(help), max_series);
    return families.back();
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumented destructors (thread_local workspaces,
  // the global thread pool) may run after static destruction begins.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_
      ->counters[impl_->lookup(name, Impl::Kind::kCounter, help).index];
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->gauges[impl_->lookup(name, Impl::Kind::kGauge, help).index];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_
      ->histograms[impl_->lookup(name, Impl::Kind::kHistogram, help).index];
}

CounterFamily& MetricsRegistry::counter_family(std::string_view name,
                                               std::string_view label_key,
                                               std::string_view help,
                                               std::size_t max_series) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->family_lookup(impl_->counter_families,
                              Impl::Kind::kCounterFamily, name, label_key,
                              help, max_series);
}

GaugeFamily& MetricsRegistry::gauge_family(std::string_view name,
                                           std::string_view label_key,
                                           std::string_view help,
                                           std::size_t max_series) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->family_lookup(impl_->gauge_families, Impl::Kind::kGaugeFamily,
                              name, label_key, help, max_series);
}

HistogramFamily& MetricsRegistry::histogram_family(std::string_view name,
                                                   std::string_view label_key,
                                                   std::string_view help,
                                                   std::size_t max_series) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->family_lookup(impl_->histogram_families,
                              Impl::Kind::kHistogramFamily, name, label_key,
                              help, max_series);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Refresh the process uptime first, so every exposition — Prometheus,
  // JSON, or a direct snapshot() consumer — carries a current value.
  {
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      impl_->start)
            .count();
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const Impl::Entry& entry = impl_->lookup(
        "uptime_seconds", Impl::Kind::kGauge,
        "seconds since the process metrics registry was created");
    impl_->gauges[entry.index].set(uptime);
  }
  MetricsSnapshot out;
  // Collect names and stable instrument addresses under the lock (deque
  // elements never move, but the containers themselves may grow under a
  // concurrent registration); aggregate the striped cells outside it.
  struct Named {
    std::string name;
    std::string help;
  };
  std::vector<std::pair<Named, const Counter*>> counters;
  std::vector<std::pair<Named, const Gauge*>> gauges;
  std::vector<std::pair<Named, const Histogram*>> histograms;
  std::vector<const CounterFamily*> counter_families;
  std::vector<const GaugeFamily*> gauge_families;
  std::vector<const HistogramFamily*> histogram_families;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    counters.reserve(impl_->counters.size());
    for (std::size_t i = 0; i < impl_->counters.size(); ++i) {
      counters.emplace_back(
          Named{impl_->counter_names[i], impl_->counter_helps[i]},
          &impl_->counters[i]);
    }
    gauges.reserve(impl_->gauges.size());
    for (std::size_t i = 0; i < impl_->gauges.size(); ++i) {
      gauges.emplace_back(Named{impl_->gauge_names[i], impl_->gauge_helps[i]},
                          &impl_->gauges[i]);
    }
    histograms.reserve(impl_->histograms.size());
    for (std::size_t i = 0; i < impl_->histograms.size(); ++i) {
      histograms.emplace_back(
          Named{impl_->histogram_names[i], impl_->histogram_helps[i]},
          &impl_->histograms[i]);
    }
    // Family addresses are deque-stable too; their per-series state is
    // guarded by each family's own lock, read outside this one.
    counter_families.reserve(impl_->counter_families.size());
    for (const CounterFamily& family : impl_->counter_families) {
      counter_families.push_back(&family);
    }
    gauge_families.reserve(impl_->gauge_families.size());
    for (const GaugeFamily& family : impl_->gauge_families) {
      gauge_families.push_back(&family);
    }
    histogram_families.reserve(impl_->histogram_families.size());
    for (const HistogramFamily& family : impl_->histogram_families) {
      histogram_families.push_back(&family);
    }
  }
  out.counters.reserve(counters.size());
  for (auto& [named, counter] : counters) {
    out.counters.push_back(
        {std::move(named.name), std::move(named.help), counter->value(), {},
         {}});
  }
  out.gauges.reserve(gauges.size());
  for (auto& [named, gauge] : gauges) {
    out.gauges.push_back(
        {std::move(named.name), std::move(named.help), gauge->value(), {},
         {}});
  }
  out.histograms.reserve(histograms.size());
  for (auto& [named, histogram] : histograms) {
    HistogramValue value;
    value.name = std::move(named.name);
    value.help = std::move(named.help);
    value.count = histogram->count();
    value.sum = histogram->sum();
    const auto counts = histogram->bucket_counts();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] > 0) {
        value.buckets.push_back({Histogram::bucket_upper_edge(b), counts[b]});
      }
    }
    out.histograms.push_back(std::move(value));
  }
  for (const CounterFamily* family : counter_families) {
    std::vector<std::pair<std::string, const Counter*>> series;
    family->collect(series);
    for (auto& [label, counter] : series) {
      CounterValue value;
      value.name = family->name();
      value.help = family->help();
      value.value = counter->value();
      value.label_key = family->label_key();
      value.label_value = std::move(label);
      out.counters.push_back(std::move(value));
    }
  }
  for (const GaugeFamily* family : gauge_families) {
    std::vector<std::pair<std::string, const Gauge*>> series;
    family->collect(series);
    for (auto& [label, gauge] : series) {
      GaugeValue value;
      value.name = family->name();
      value.help = family->help();
      value.value = gauge->value();
      value.label_key = family->label_key();
      value.label_value = std::move(label);
      out.gauges.push_back(std::move(value));
    }
  }
  for (const HistogramFamily* family : histogram_families) {
    std::vector<std::pair<std::string, const Histogram*>> series;
    family->collect(series);
    for (auto& [label, histogram] : series) {
      HistogramValue value;
      value.name = family->name();
      value.help = family->help();
      value.count = histogram->count();
      value.sum = histogram->sum();
      const auto counts = histogram->bucket_counts();
      for (std::size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] > 0) {
          value.buckets.push_back(
              {Histogram::bucket_upper_edge(b), counts[b]});
        }
      }
      value.label_key = family->label_key();
      value.label_value = std::move(label);
      out.histograms.push_back(std::move(value));
    }
  }
  const auto by_name = [](const auto& lhs, const auto& rhs) {
    if (lhs.name != rhs.name) return lhs.name < rhs.name;
    return lhs.label_value < rhs.label_value;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

MetricsSnapshot snapshot() { return MetricsRegistry::global().snapshot(); }

// --- Exposition -------------------------------------------------------------

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

namespace {

// HELP text is free-form but must stay on one line; escape per the
// exposition format (backslash and newline only).
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Label values additionally escape the double quote that delimits them.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void append_help(std::string& out, const std::string& name,
                 const std::string& help) {
  if (help.empty()) return;
  out += "# HELP " + name + " " + escape_help(help) + "\n";
}

// `{key="value"}` for a labeled series, empty for a plain one.  An extra
// label (`le` for histogram buckets) composes via the `extra` argument.
std::string label_set(const CounterValue& v) {
  if (v.label_key.empty()) return {};
  return "{" + sanitize(v.label_key) + "=\"" +
         escape_label_value(v.label_value) + "\"}";
}

std::string label_set(const GaugeValue& v) {
  if (v.label_key.empty()) return {};
  return "{" + sanitize(v.label_key) + "=\"" +
         escape_label_value(v.label_value) + "\"}";
}

std::string histogram_label_set(const HistogramValue& v,
                                const std::string& le) {
  std::string inner;
  if (!v.label_key.empty()) {
    inner = sanitize(v.label_key) + "=\"" +
            escape_label_value(v.label_value) + "\"";
  }
  if (!le.empty()) {
    if (!inner.empty()) inner += ",";
    inner += "le=\"" + le + "\"";
  }
  return inner.empty() ? std::string() : "{" + inner + "}";
}

// Emit HELP/TYPE once per metric name.  The snapshot is sorted by
// (name, label), so a family's series arrive consecutively.
void append_header(std::string& out, std::string* last_name,
                   const std::string& name, const std::string& help,
                   const char* type) {
  if (*last_name == name) return;
  *last_name = name;
  append_help(out, name, help);
  out += "# TYPE " + name + " " + type + "\n";
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_name;
  for (const auto& c : snapshot.counters) {
    const std::string name = sanitize(c.name) + "_total";
    append_header(out, &last_name, name, c.help, "counter");
    out += name + label_set(c) + " " + std::to_string(c.value) + "\n";
  }
  last_name.clear();
  for (const auto& g : snapshot.gauges) {
    const std::string name = sanitize(g.name);
    append_header(out, &last_name, name, g.help, "gauge");
    out += name + label_set(g) + " " + format_double(g.value) + "\n";
  }
  last_name.clear();
  for (const auto& h : snapshot.histograms) {
    const std::string name = sanitize(h.name);
    append_header(out, &last_name, name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (const auto& bucket : h.buckets) {
      cumulative += bucket.count;
      out += name + "_bucket" +
             histogram_label_set(h, format_double(bucket.upper_edge)) + " " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket" + histogram_label_set(h, "+Inf") + " " +
           std::to_string(h.count) + "\n";
    out += name + "_sum" + histogram_label_set(h, {}) + " " +
           format_double(h.sum) + "\n";
    out += name + "_count" + histogram_label_set(h, {}) + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

namespace {

// Minimal JSON string escaping for metric names and label values.
std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (uc < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", uc);
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

template <typename Value>
void append_json_labels(std::string& out, const Value& v) {
  if (v.label_key.empty()) return;
  out += ", \"labels\": {\"" + escape_json(v.label_key) + "\": \"" +
         escape_json(v.label_value) + "\"}";
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": [";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + escape_json(c.name) + "\"";
    append_json_labels(out, c);
    out += ", \"value\": " + std::to_string(c.value) + "}";
  }
  out += "\n  ],\n  \"gauges\": [";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + escape_json(g.name) + "\"";
    append_json_labels(out, g);
    out += ", \"value\": " + format_double(g.value) + "}";
  }
  out += "\n  ],\n  \"histograms\": [";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + escape_json(h.name) + "\"";
    append_json_labels(out, h);
    out += ", \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + format_double(h.sum) + ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": " + format_double(h.buckets[b].upper_edge) +
             ", \"count\": " + std::to_string(h.buckets[b].count) + "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace sybiltd::obs
