#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace sybiltd::obs {

namespace detail {

std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

// --- Histogram --------------------------------------------------------------

std::size_t Histogram::bucket_for(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;
  const int exponent = std::ilogb(value);  // floor(log2(value))
  const int bucket = exponent + kBucketOffset;
  if (bucket < 0) return 0;
  if (bucket >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(bucket);
}

double Histogram::bucket_upper_edge(std::size_t bucket) {
  return std::ldexp(1.0, static_cast<int>(bucket) - kBucketOffset + 1);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (const Stripe& stripe : stripes_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      counts[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

// --- Registry ---------------------------------------------------------------

struct MetricsRegistry::Impl {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::size_t index;  // into the matching deque
  };

  // Registry construction time, the reference point of the process-level
  // `uptime_seconds` gauge (refreshed on every snapshot so /metrics
  // scrapes can turn counter totals into rates).
  const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  std::mutex mutex;
  // Deques: instrument addresses never move once registered, so the
  // references handed to instrumented code are stable.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::unordered_map<std::string, Entry> by_name;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  // Help text parallel to the name vectors; the first non-empty help for a
  // name wins (instrumented code may register the same name help-free).
  std::vector<std::string> counter_helps;
  std::vector<std::string> gauge_helps;
  std::vector<std::string> histogram_helps;

  Entry& lookup(std::string_view name, Kind kind, std::string_view help) {
    auto [it, inserted] = by_name.try_emplace(std::string(name));
    if (!inserted) {
      if (it->second.kind != kind) {
        throw std::logic_error("metric '" + it->first +
                               "' already registered as a different kind");
      }
      if (!help.empty()) {
        std::vector<std::string>* helps = nullptr;
        switch (kind) {
          case Kind::kCounter: helps = &counter_helps; break;
          case Kind::kGauge: helps = &gauge_helps; break;
          case Kind::kHistogram: helps = &histogram_helps; break;
        }
        if ((*helps)[it->second.index].empty()) {
          (*helps)[it->second.index] = std::string(help);
        }
      }
      return it->second;
    }
    switch (kind) {
      case Kind::kCounter:
        it->second = {kind, counters.size()};
        counters.emplace_back();
        counter_names.emplace_back(name);
        counter_helps.emplace_back(help);
        break;
      case Kind::kGauge:
        it->second = {kind, gauges.size()};
        gauges.emplace_back();
        gauge_names.emplace_back(name);
        gauge_helps.emplace_back(help);
        break;
      case Kind::kHistogram:
        it->second = {kind, histograms.size()};
        histograms.emplace_back();
        histogram_names.emplace_back(name);
        histogram_helps.emplace_back(help);
        break;
    }
    return it->second;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumented destructors (thread_local workspaces,
  // the global thread pool) may run after static destruction begins.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_
      ->counters[impl_->lookup(name, Impl::Kind::kCounter, help).index];
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->gauges[impl_->lookup(name, Impl::Kind::kGauge, help).index];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_
      ->histograms[impl_->lookup(name, Impl::Kind::kHistogram, help).index];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Refresh the process uptime first, so every exposition — Prometheus,
  // JSON, or a direct snapshot() consumer — carries a current value.
  {
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      impl_->start)
            .count();
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const Impl::Entry& entry = impl_->lookup(
        "uptime_seconds", Impl::Kind::kGauge,
        "seconds since the process metrics registry was created");
    impl_->gauges[entry.index].set(uptime);
  }
  MetricsSnapshot out;
  // Collect names and stable instrument addresses under the lock (deque
  // elements never move, but the containers themselves may grow under a
  // concurrent registration); aggregate the striped cells outside it.
  struct Named {
    std::string name;
    std::string help;
  };
  std::vector<std::pair<Named, const Counter*>> counters;
  std::vector<std::pair<Named, const Gauge*>> gauges;
  std::vector<std::pair<Named, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    counters.reserve(impl_->counters.size());
    for (std::size_t i = 0; i < impl_->counters.size(); ++i) {
      counters.emplace_back(
          Named{impl_->counter_names[i], impl_->counter_helps[i]},
          &impl_->counters[i]);
    }
    gauges.reserve(impl_->gauges.size());
    for (std::size_t i = 0; i < impl_->gauges.size(); ++i) {
      gauges.emplace_back(Named{impl_->gauge_names[i], impl_->gauge_helps[i]},
                          &impl_->gauges[i]);
    }
    histograms.reserve(impl_->histograms.size());
    for (std::size_t i = 0; i < impl_->histograms.size(); ++i) {
      histograms.emplace_back(
          Named{impl_->histogram_names[i], impl_->histogram_helps[i]},
          &impl_->histograms[i]);
    }
  }
  out.counters.reserve(counters.size());
  for (auto& [named, counter] : counters) {
    out.counters.push_back(
        {std::move(named.name), std::move(named.help), counter->value()});
  }
  out.gauges.reserve(gauges.size());
  for (auto& [named, gauge] : gauges) {
    out.gauges.push_back(
        {std::move(named.name), std::move(named.help), gauge->value()});
  }
  out.histograms.reserve(histograms.size());
  for (auto& [named, histogram] : histograms) {
    HistogramValue value;
    value.name = std::move(named.name);
    value.help = std::move(named.help);
    value.count = histogram->count();
    value.sum = histogram->sum();
    const auto counts = histogram->bucket_counts();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] > 0) {
        value.buckets.push_back({Histogram::bucket_upper_edge(b), counts[b]});
      }
    }
    out.histograms.push_back(std::move(value));
  }
  const auto by_name = [](const auto& lhs, const auto& rhs) {
    return lhs.name < rhs.name;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

MetricsSnapshot snapshot() { return MetricsRegistry::global().snapshot(); }

// --- Exposition -------------------------------------------------------------

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

namespace {

// HELP text is free-form but must stay on one line; escape per the
// exposition format (backslash and newline only).
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void append_help(std::string& out, const std::string& name,
                 const std::string& help) {
  if (help.empty()) return;
  out += "# HELP " + name + " " + escape_help(help) + "\n";
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = sanitize(c.name) + "_total";
    append_help(out, name, c.help);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = sanitize(g.name);
    append_help(out, name, g.help);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_double(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = sanitize(h.name);
    append_help(out, name, h.help);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& bucket : h.buckets) {
      cumulative += bucket.count;
      out += name + "_bucket{le=\"" + format_double(bucket.upper_edge) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + format_double(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": [";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + c.name +
           "\", \"value\": " + std::to_string(c.value) + "}";
  }
  out += "\n  ],\n  \"gauges\": [";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + g.name +
           "\", \"value\": " + format_double(g.value) + "}";
  }
  out += "\n  ],\n  \"histograms\": [";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + h.name +
           "\", \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + format_double(h.sum) + ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": " + format_double(h.buckets[b].upper_edge) +
             ", \"count\": " + std::to_string(h.buckets[b].count) + "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace sybiltd::obs
