#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace sybiltd::obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

// One recorded span.  PODs only: names are string literals, so the buffer
// never owns memory beyond its own storage.
struct Event {
  const char* name;
  std::uint64_t start_us;
  std::uint64_t duration_us;
  std::uint32_t tid;
  const char* key1;
  const char* key2;
  double value1;
  double value2;
};

// Bound the buffer so a span-happy run cannot grow without limit; drops are
// counted in the registry (obs.trace.dropped_spans).
constexpr std::size_t kMaxEvents = 1 << 20;

struct TraceState {
  std::mutex mutex;
  std::string path;
  std::vector<Event> events;
  Clock::time_point epoch = Clock::now();
};

// Leaked, like the metrics registry: spans may end during static or
// thread_local destruction.
TraceState& state() {
  static TraceState* trace_state = new TraceState();
  return *trace_state;
}

void flush_at_exit() { flush_trace(); }

// Reads SYBILTD_TRACE exactly once, before main-driven spans start.
const bool g_env_initialized = [] {
  const char* path = std::getenv("SYBILTD_TRACE");
  if (path != nullptr && *path != '\0') enable_trace(path);
  return true;
}();

}  // namespace

std::uint64_t trace_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            state().epoch)
          .count());
}

void trace_span_end(const char* name, std::uint64_t start_us,
                    const char* key1, double value1, const char* key2,
                    double value2) {
  const std::uint64_t end_us = trace_now_us();
  static thread_local const std::uint32_t tid =
      static_cast<std::uint32_t>(thread_slot());
  TraceState& trace_state = state();
  std::lock_guard<std::mutex> lock(trace_state.mutex);
  if (!g_trace_enabled.load(std::memory_order_relaxed)) return;
  if (trace_state.events.size() >= kMaxEvents) {
    MetricsRegistry::global()
        .counter("obs.trace.dropped_spans",
                 "spans discarded after the event buffer filled")
        .inc();
    return;
  }
  trace_state.events.push_back({name, start_us,
                                end_us >= start_us ? end_us - start_us : 0,
                                tid, key1, key2, value1, value2});
}

}  // namespace detail

void enable_trace(const std::string& path) {
  detail::TraceState& trace_state = detail::state();
  {
    std::lock_guard<std::mutex> lock(trace_state.mutex);
    trace_state.path = path;
    trace_state.events.clear();
    trace_state.epoch = detail::Clock::now();
  }
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
  static const bool registered = [] {
    std::atexit(detail::flush_at_exit);
    return true;
  }();
  (void)registered;
}

void disable_trace() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  detail::TraceState& trace_state = detail::state();
  std::lock_guard<std::mutex> lock(trace_state.mutex);
  return trace_state.events.size();
}

bool flush_trace() {
  detail::TraceState& trace_state = detail::state();
  std::lock_guard<std::mutex> lock(trace_state.mutex);
  if (trace_state.path.empty()) return false;
  std::FILE* file = std::fopen(trace_state.path.c_str(), "w");
  if (file == nullptr) return false;
  std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n", file);
  for (std::size_t i = 0; i < trace_state.events.size(); ++i) {
    const detail::Event& e = trace_state.events[i];
    std::fprintf(file,
                 "  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                 "\"tid\": %u, \"ts\": %llu, \"dur\": %llu",
                 e.name, e.tid,
                 static_cast<unsigned long long>(e.start_us),
                 static_cast<unsigned long long>(e.duration_us));
    if (e.key1 != nullptr) {
      std::fprintf(file, ", \"args\": {\"%s\": %.17g", e.key1, e.value1);
      if (e.key2 != nullptr) {
        std::fprintf(file, ", \"%s\": %.17g", e.key2, e.value2);
      }
      std::fputs("}", file);
    }
    std::fputs(i + 1 < trace_state.events.size() ? "},\n" : "}\n", file);
  }
  std::fputs("]}\n", file);
  return std::fclose(file) == 0;
}

}  // namespace sybiltd::obs
