// Process-wide metrics registry: the uniform collection point for every
// internal signal the engine produces.
//
// PRs 1–3 grew ad-hoc observability — pipeline::EngineCounters,
// core::AgTrStats prune rates, Workspace::stats() allocation counts, the
// FFT/Welch plan-cache sizes — each reachable only through its own struct,
// none exportable without bespoke glue.  The registry unifies them behind
// three instrument kinds with one collection path:
//
//   Counter   — monotonic u64, striped across cache-line-padded atomic
//               cells indexed by a per-thread slot.  inc() is one relaxed
//               fetch_add on a cell other threads rarely touch: no locks,
//               no allocation, safe from any thread including pool workers
//               inside zero-allocation kernels.
//   Gauge     — a single atomic double (set/add), for level-style signals
//               such as queue depth.
//   Histogram — fixed log2 buckets (2^-32 .. 2^31, 64 buckets) over
//               double-valued samples, striped like Counter; count and sum
//               per stripe so mean and tail shape both survive aggregation.
//
// Instruments are registered once by name (registration takes a mutex;
// re-registration returns the existing instrument so instrumented code can
// hold `static Counter&` references) and live forever — the registry is a
// leaked singleton, so references stay valid through thread_local and
// static destruction.  Reads (`value()`, `snapshot()`) aggregate over the
// stripes with relaxed loads: totals are monotonic and exact once writer
// threads are quiescent, and never torn within one cell.
//
// snapshot() returns a structured record; to_prometheus() renders the
// text exposition format and to_json() a machine-checkable JSON dump (the
// CI observability job validates its schema).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sybiltd::obs {

namespace detail {
// Small dense id for the calling thread, assigned on first use; instruments
// mask it down to their stripe count.
std::size_t thread_slot();

// One cache line per cell so concurrent writers on different stripes never
// false-share.
struct alignas(64) StripeCell {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

// Monotonic counter.  inc() from any thread, lock- and allocation-free.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;  // power of two

  void inc(std::uint64_t delta = 1) {
    cells_[detail::thread_slot() & (kStripes - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  detail::StripeCell cells_[kStripes];
};

// Level gauge: one atomic double with last-write-wins set() and CAS add().
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }

  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  // Raise the gauge to `value` if it is higher (high-watermark semantics).
  void track_max(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (current < value &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-log-bucket histogram over positive doubles.  Bucket i covers
// [2^(i-kBucketOffset), 2^(i-kBucketOffset+1)); values <= 0 or below the
// smallest edge land in bucket 0, values beyond the top edge in the last.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  static constexpr int kBucketOffset = 32;  // bucket 32 covers [1, 2)
  static constexpr std::size_t kStripes = 8;  // power of two

  static std::size_t bucket_for(double value);
  // Inclusive upper edge of bucket i: 2^(i - kBucketOffset + 1).
  static double bucket_upper_edge(std::size_t bucket);

  void record(double value) {
    Stripe& stripe = stripes_[detail::thread_slot() & (kStripes - 1)];
    stripe.buckets[bucket_for(value)].fetch_add(1,
                                                std::memory_order_relaxed);
    stripe.count.fetch_add(1, std::memory_order_relaxed);
    double current = stripe.sum.load(std::memory_order_relaxed);
    while (!stripe.sum.compare_exchange_weak(current, current + value,
                                             std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const;
  double sum() const;
  // Aggregated per-bucket counts (kBuckets entries).
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> buckets[kBuckets]{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  Stripe stripes_[kStripes];
};

// --- Snapshot --------------------------------------------------------------

struct CounterValue {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct HistogramBucket {
  double upper_edge = 0.0;    // inclusive upper bound of the bucket
  std::uint64_t count = 0;    // samples in this bucket (not cumulative)
};

struct HistogramValue {
  std::string name;
  std::string help;
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<HistogramBucket> buckets;  // non-empty buckets only
};

struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

// --- Registry --------------------------------------------------------------

class MetricsRegistry {
 public:
  // The process-wide registry.  Never destroyed, so instrument references
  // obtained from it stay valid during static/thread_local teardown.
  static MetricsRegistry& global();

  // Register-or-fetch by name.  Thread-safe; the returned reference is
  // stable forever.  Registering one name as two different kinds throws.
  // The first non-empty help string for a name is kept and surfaces in the
  // snapshot and the Prometheus `# HELP` lines.
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::string_view help = {});

  // Aggregated point-in-time view, sorted by name.  Concurrent writers keep
  // running; each cell is read atomically, so counters are monotonic
  // between snapshots and exact once writers are quiescent.
  MetricsSnapshot snapshot() const;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

// Convenience wrappers over MetricsRegistry::global().
MetricsSnapshot snapshot();

// Prometheus text exposition (names sanitized to [a-zA-Z0-9_:]).
std::string to_prometheus(const MetricsSnapshot& snapshot);

// JSON dump: {"counters": [...], "gauges": [...], "histograms": [...]}.
std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace sybiltd::obs
