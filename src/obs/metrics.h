// Process-wide metrics registry: the uniform collection point for every
// internal signal the engine produces.
//
// PRs 1–3 grew ad-hoc observability — pipeline::EngineCounters,
// core::AgTrStats prune rates, Workspace::stats() allocation counts, the
// FFT/Welch plan-cache sizes — each reachable only through its own struct,
// none exportable without bespoke glue.  The registry unifies them behind
// three instrument kinds with one collection path:
//
//   Counter   — monotonic u64, striped across cache-line-padded atomic
//               cells indexed by a per-thread slot.  inc() is one relaxed
//               fetch_add on a cell other threads rarely touch: no locks,
//               no allocation, safe from any thread including pool workers
//               inside zero-allocation kernels.
//   Gauge     — a single atomic double (set/add), for level-style signals
//               such as queue depth.
//   Histogram — fixed log2 buckets (2^-32 .. 2^31, 64 buckets) over
//               double-valued samples, striped like Counter; count and sum
//               per stripe so mean and tail shape both survive aggregation.
//
// Instruments are registered once by name (registration takes a mutex;
// re-registration returns the existing instrument so instrumented code can
// hold `static Counter&` references) and live forever — the registry is a
// leaked singleton, so references stay valid through thread_local and
// static destruction.  Reads (`value()`, `snapshot()`) aggregate over the
// stripes with relaxed loads: totals are monotonic and exact once writer
// threads are quiescent, and never torn within one cell.
//
// snapshot() returns a structured record; to_prometheus() renders the
// text exposition format and to_json() a machine-checkable JSON dump (the
// CI observability job validates its schema).
// Labeled families extend the same three kinds with one label dimension
// (`campaign=<id>`, `loop=<n>`, `endpoint=<path>`): a family is registered
// once by (name, label key) and hands out per-label-value series on demand.
// Cardinality is bounded — when a family is full, the least-recently-touched
// series is folded into a reserved `_other` series and its instrument is
// recycled for the new label, so a campaign flood can never grow the
// registry without bound while counter/histogram totals stay conserved.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sybiltd::obs {

namespace detail {
// Small dense id for the calling thread, assigned on first use; instruments
// mask it down to their stripe count.
std::size_t thread_slot();

// One cache line per cell so concurrent writers on different stripes never
// false-share.
struct alignas(64) StripeCell {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

// Monotonic counter.  inc() from any thread, lock- and allocation-free.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;  // power of two

  void inc(std::uint64_t delta = 1) {
    cells_[detail::thread_slot() & (kStripes - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Move this counter's total into `dest`, leaving this counter at zero —
  // how a labeled family folds an evicted series into its `_other`
  // aggregate.  Increments racing with the drain land in whichever counter
  // their cell belonged to at the exchange, so the combined total is exact.
  void drain_into(Counter& dest) {
    std::uint64_t total = 0;
    for (auto& cell : cells_) {
      total += cell.value.exchange(0, std::memory_order_relaxed);
    }
    if (total > 0) dest.inc(total);
  }

 private:
  detail::StripeCell cells_[kStripes];
};

// Level gauge: one atomic double with last-write-wins set() and CAS add().
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }

  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  // Raise the gauge to `value` if it is higher (high-watermark semantics).
  void track_max(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (current < value &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  // Return the gauge to zero (family eviction: a level has no meaningful
  // fold into an aggregate, so an evicted gauge series is simply dropped).
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-log-bucket histogram over positive doubles.  Bucket i covers
// [2^(i-kBucketOffset), 2^(i-kBucketOffset+1)); values <= 0 or below the
// smallest edge land in bucket 0, values beyond the top edge in the last.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  static constexpr int kBucketOffset = 32;  // bucket 32 covers [1, 2)
  static constexpr std::size_t kStripes = 8;  // power of two

  static std::size_t bucket_for(double value);
  // Inclusive upper edge of bucket i: 2^(i - kBucketOffset + 1).
  static double bucket_upper_edge(std::size_t bucket);

  void record(double value) {
    Stripe& stripe = stripes_[detail::thread_slot() & (kStripes - 1)];
    stripe.buckets[bucket_for(value)].fetch_add(1,
                                                std::memory_order_relaxed);
    stripe.count.fetch_add(1, std::memory_order_relaxed);
    double current = stripe.sum.load(std::memory_order_relaxed);
    while (!stripe.sum.compare_exchange_weak(current, current + value,
                                             std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const;
  double sum() const;
  // Aggregated per-bucket counts (kBuckets entries).
  std::vector<std::uint64_t> bucket_counts() const;

  // Move every recorded sample (bucket counts, count, sum) into `dest`,
  // leaving this histogram empty — the family-eviction fold.
  void drain_into(Histogram& dest);

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> buckets[kBuckets]{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  Stripe stripes_[kStripes];
};

// --- Labeled families -------------------------------------------------------

// Series that absorbs evicted siblings; reserved, never evicted itself.
inline constexpr std::string_view kOverflowLabel = "_other";

namespace detail {

// Heterogeneous hash so at(string_view) never materializes a std::string on
// the hot lookup path.
struct StringViewHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

void recycle_into(Counter& from, Counter& overflow);
void recycle_into(Gauge& from, Gauge& overflow);
void recycle_into(Histogram& from, Histogram& overflow);

// One metric name fanned out over the values of a single label key.
//
// at(label_value) is the hot path: a shared lock plus one heterogeneous
// hash lookup — no allocation for an existing series, so labeled increments
// stay legal inside zero-allocation kernels.  Unknown labels take the
// exclusive slow path; once `max_series` live series exist, the
// least-recently-touched one is folded into the `_other` series (counters
// and histograms conserve their totals; gauges reset) and its instrument
// is recycled for the new label.
//
// References returned by at() stay valid forever (series live in a deque),
// but after an eviction a cached reference counts toward whatever label the
// series was recycled for — callers with unbounded label sets must re-fetch
// at() per operation; callers with small fixed sets (loop or shard indices)
// may cache.
template <typename Instrument>
class Family {
 public:
  Family(std::string name, std::string label_key, std::string help,
         std::size_t max_series)
      : name_(std::move(name)),
        label_key_(std::move(label_key)),
        help_(std::move(help)),
        max_series_(max_series == 0 ? 1 : max_series) {}

  Family(const Family&) = delete;
  Family& operator=(const Family&) = delete;

  Instrument& at(std::string_view label_value) {
    const std::uint64_t stamp = epoch_.fetch_add(1, std::memory_order_relaxed);
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      const auto it = index_.find(label_value);
      if (it != index_.end()) {
        it->second->touch.store(stamp, std::memory_order_relaxed);
        return it->second->instrument;
      }
    }
    return materialize(label_value);
  }

  const std::string& name() const { return name_; }
  const std::string& label_key() const { return label_key_; }
  const std::string& help() const { return help_; }
  std::size_t max_series() const { return max_series_; }

  // First-non-empty-help-wins, matching plain instrument registration.
  // Called by the registry under its own mutex.
  void set_help_if_empty(std::string_view help) {
    if (help_.empty() && !help.empty()) help_ = std::string(help);
  }

  // Live series count, the `_other` aggregate included once it exists.
  std::size_t series_count() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return index_.size();
  }

  // Series folded into `_other` since construction.
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  // Label + stable instrument address per live series, for snapshot
  // aggregation outside the lock.
  void collect(
      std::vector<std::pair<std::string, const Instrument*>>& out) const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    out.reserve(out.size() + index_.size());
    for (const auto& [label, series] : index_) {
      out.emplace_back(label, &series->instrument);
    }
  }

 private:
  struct Series {
    std::string label;
    Instrument instrument;
    std::atomic<std::uint64_t> touch{0};
  };

  Instrument& materialize(std::string_view label_value) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (const auto it = index_.find(label_value); it != index_.end()) {
      return it->second->instrument;  // lost the registration race
    }
    Series* slot = nullptr;
    const std::size_t live = index_.size() - (overflow_ != nullptr ? 1 : 0);
    if (live >= max_series_ && label_value != kOverflowLabel) {
      Series* victim = nullptr;
      std::uint64_t oldest = 0;
      for (const auto& [label, series] : index_) {
        if (series == overflow_) continue;
        const std::uint64_t t = series->touch.load(std::memory_order_relaxed);
        if (victim == nullptr || t < oldest) {
          victim = series;
          oldest = t;
        }
      }
      if (overflow_ == nullptr) {
        const auto it = index_.find(kOverflowLabel);
        if (it != index_.end()) {
          overflow_ = it->second;  // a caller used the reserved label
        } else {
          series_.emplace_back();
          overflow_ = &series_.back();
          overflow_->label = std::string(kOverflowLabel);
          index_.emplace(overflow_->label, overflow_);
        }
      }
      index_.erase(victim->label);
      recycle_into(victim->instrument, overflow_->instrument);
      victim->label = std::string(label_value);
      slot = victim;
      evictions_.fetch_add(1, std::memory_order_relaxed);
    } else {
      series_.emplace_back();
      slot = &series_.back();
      slot->label = std::string(label_value);
    }
    slot->touch.store(epoch_.fetch_add(1, std::memory_order_relaxed),
                      std::memory_order_relaxed);
    index_.emplace(slot->label, slot);
    return slot->instrument;
  }

  const std::string name_;
  const std::string label_key_;
  std::string help_;  // mutated only via set_help_if_empty
  const std::size_t max_series_;
  mutable std::shared_mutex mutex_;
  // Deque: series addresses never move, so at() references are stable.
  std::deque<Series> series_;
  std::unordered_map<std::string, Series*, StringViewHash, std::equal_to<>>
      index_;
  Series* overflow_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace detail

using CounterFamily = detail::Family<Counter>;
using GaugeFamily = detail::Family<Gauge>;
using HistogramFamily = detail::Family<Histogram>;

// --- Snapshot --------------------------------------------------------------

struct CounterValue {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
  // Labeled series carry their family's label; empty key = unlabeled.
  std::string label_key;
  std::string label_value;
};

struct GaugeValue {
  std::string name;
  std::string help;
  double value = 0.0;
  std::string label_key;
  std::string label_value;
};

struct HistogramBucket {
  double upper_edge = 0.0;    // inclusive upper bound of the bucket
  std::uint64_t count = 0;    // samples in this bucket (not cumulative)
};

struct HistogramValue {
  std::string name;
  std::string help;
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<HistogramBucket> buckets;  // non-empty buckets only
  std::string label_key;
  std::string label_value;
};

struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

// --- Registry --------------------------------------------------------------

class MetricsRegistry {
 public:
  // The process-wide registry.  Never destroyed, so instrument references
  // obtained from it stay valid during static/thread_local teardown.
  static MetricsRegistry& global();

  // Register-or-fetch by name.  Thread-safe; the returned reference is
  // stable forever.  Registering one name as two different kinds throws.
  // The first non-empty help string for a name is kept and surfaces in the
  // snapshot and the Prometheus `# HELP` lines.
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::string_view help = {});

  // Cardinality cap per family when the caller does not pick one.
  static constexpr std::size_t kDefaultMaxSeries = 256;

  // Register-or-fetch a labeled family by name.  The label key and series
  // cap are fixed at first registration (re-registering with a different
  // label key throws); like plain instruments, the first non-empty help
  // wins and the returned reference is stable forever.
  CounterFamily& counter_family(std::string_view name,
                                std::string_view label_key,
                                std::string_view help = {},
                                std::size_t max_series = kDefaultMaxSeries);
  GaugeFamily& gauge_family(std::string_view name, std::string_view label_key,
                            std::string_view help = {},
                            std::size_t max_series = kDefaultMaxSeries);
  HistogramFamily& histogram_family(
      std::string_view name, std::string_view label_key,
      std::string_view help = {},
      std::size_t max_series = kDefaultMaxSeries);

  // Aggregated point-in-time view, sorted by name.  Concurrent writers keep
  // running; each cell is read atomically, so counters are monotonic
  // between snapshots and exact once writers are quiescent.
  MetricsSnapshot snapshot() const;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

// Convenience wrappers over MetricsRegistry::global().
MetricsSnapshot snapshot();

// Prometheus text exposition (names sanitized to [a-zA-Z0-9_:]).
std::string to_prometheus(const MetricsSnapshot& snapshot);

// JSON dump: {"counters": [...], "gauges": [...], "histograms": [...]}.
std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace sybiltd::obs
