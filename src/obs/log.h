// Structured logging: leveled JSON-lines events with an async ring-buffer
// writer.
//
// The metrics registry answers "how much / how fast"; the log answers
// "what happened to THIS request" — why a connection was shed, which
// campaign's batch was rejected, which request blew the slow threshold.
// Events are single-line JSON objects:
//
//   {"ts": 1754550000.123, "level": "warn", "event": "reports_rejected",
//    "campaign": 7, "rejected": 120}
//
// Design constraints, in order:
//
//   * Emission must never block a server event loop on disk I/O.  emit()
//     formats the line and pushes it into a bounded ring; a background
//     writer thread drains the ring to the sink.  When the ring is full
//     the line is dropped and counted (`obs.log.dropped`) — shedding log
//     lines beats shedding requests.
//   * Disabled logging must cost one relaxed load.  SYBILTD_LOG=<path>
//     (or the literal `stderr`) turns the subsystem on; unset means every
//     log_enabled() check short-circuits and no thread is ever started.
//   * Events that fire per failure (shed, reject, backpressure) go through
//     a RateLimiter so an attack or an overload cannot turn the log itself
//     into the bottleneck; suppressed lines are counted
//     (`obs.log.suppressed`).
//
// Environment:
//   SYBILTD_LOG         sink: a file path, or `stderr`; unset = disabled
//   SYBILTD_LOG_LEVEL   debug | info | warn | error   (default info)
//   SYBILTD_LOG_SLOW_MS slow-request threshold in ms  (default 100)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

namespace sybiltd::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// True when the sink is open and `level` passes the configured threshold.
// One relaxed load when logging is disabled — safe on any hot path.
bool log_enabled(LogLevel level);

// Configured slow-request threshold (SYBILTD_LOG_SLOW_MS), microseconds.
// Meaningful only when logging is enabled.
double log_slow_threshold_us();

// Programmatic control, primarily for tests: (re)open the sink at `path`
// ("stderr" for the stream) with the given threshold level.  Replaces any
// env-driven configuration.
void log_open(const std::string& path, LogLevel level);
void log_close();

// Block until every line emitted so far has reached the sink.  Called at
// process exit (atexit) and by tests before reading the file back.
void log_flush();

// Lines dropped because the ring was full (diagnostic; also a counter).
std::uint64_t log_dropped();

// One event under construction.  Appends typed fields, emits on
// destruction.  Cheap no-op when the level is filtered: callers should
// still guard hot paths with log_enabled() to skip the field formatting.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view event);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& field(std::string_view key, std::string_view value);
  LogEvent& field(std::string_view key, const char* value);
  LogEvent& field(std::string_view key, double value);
  LogEvent& field(std::string_view key, bool value);

  // Any integral type routes through one signed/unsigned 64-bit path, so
  // std::size_t, int, campaign ids etc. all format exactly.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  LogEvent& field(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return field_i64(key, static_cast<std::int64_t>(value));
    } else {
      return field_u64(key, static_cast<std::uint64_t>(value));
    }
  }

 private:
  LogEvent& field_u64(std::string_view key, std::uint64_t value);
  LogEvent& field_i64(std::string_view key, std::int64_t value);

  std::string line_;
  bool live_ = false;
};

// Token-bucket limiter for shed/reject warn paths: allow() grants up to
// `burst` events instantly and refills at `per_second`.  Suppressed calls
// bump `obs.log.suppressed`.  Thread-safe.
class LogRateLimiter {
 public:
  explicit LogRateLimiter(double per_second, double burst);

  bool allow();

 private:
  const double per_second_;
  const double burst_;
  std::mutex mutex_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace sybiltd::obs
