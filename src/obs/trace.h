// RAII trace spans emitting Chrome trace-event JSON.
//
// Set SYBILTD_TRACE=<path> (or call enable_trace) and every TraceSpan
// records one complete ("ph": "X") event — name, start timestamp, duration,
// a small thread id, and up to two numeric args — into an in-memory buffer
// that flush_trace() serializes to <path>.  The file loads directly in
// Perfetto / chrome://tracing, which is how an operator inspects where a
// shard step, a regroup, or a framework run spends its time.
//
// Cost model: when tracing is disabled (the default) the span constructor
// is one relaxed atomic load and the destructor a null check — no clock
// reads, no locks, and no allocation, so instrumented hot kernels keep
// their zero-allocation steady state (asserted by tests/obs_test.cpp with
// a counting operator new).  When enabled, each span end takes a mutex to
// append one POD event; spans mark macro work (a micro-batch, a regroup, a
// framework run), so the mutex is never on a per-element path.
//
// Span names must be string literals (the buffer stores the pointer, not a
// copy) — which is also what keeps the enabled path allocation-light.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace sybiltd::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
// Microseconds since the trace epoch (process start of tracing).
std::uint64_t trace_now_us();
void trace_span_end(const char* name, std::uint64_t start_us,
                    const char* key1, double value1, const char* key2,
                    double value2);
}  // namespace detail

// True when span recording is active (SYBILTD_TRACE was set at startup or
// enable_trace() was called).
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

// Programmatic control, primarily for tests; SYBILTD_TRACE drives the same
// switch at first use.  enable_trace resets the in-memory event buffer.
void enable_trace(const std::string& path);
void disable_trace();

// Serialize every recorded event to the configured path (Chrome trace JSON,
// {"traceEvents": [...]}).  Returns false when tracing is disabled or the
// file cannot be written.  Callable repeatedly — each call rewrites the
// file with the complete event set; also invoked automatically at process
// exit when tracing is on.
bool flush_trace();

// Events recorded so far (diagnostic; 0 when disabled).
std::size_t trace_event_count();

// RAII span: measures construction-to-destruction and records it under
// `name` (must be a string literal).  Up to two numeric args attached with
// arg() appear in the trace event's "args" dict.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      start_us_ = detail::trace_now_us();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::trace_span_end(name_, start_us_, key1_, value1_, key2_,
                             value2_);
    }
  }

  // Attach a numeric arg (key must be a string literal).  At most two args
  // are kept; extras are dropped.  No-op when tracing is disabled.
  void arg(const char* key, double value) {
    if (name_ == nullptr) return;
    if (key1_ == nullptr) {
      key1_ = key;
      value1_ = value;
    } else if (key2_ == nullptr) {
      key2_ = key;
      value2_ = value;
    }
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  const char* key1_ = nullptr;
  const char* key2_ = nullptr;
  double value1_ = 0.0;
  double value2_ = 0.0;
};

}  // namespace sybiltd::obs
