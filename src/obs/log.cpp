#include "obs/log.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sybiltd::obs {

namespace {

// Bound on buffered lines: at ~200 bytes/line this caps the ring near
// 1 MiB, and a writer stall sheds lines instead of memory.
constexpr std::size_t kRingCapacity = 4096;

Counter& dropped_counter() {
  static Counter& counter = MetricsRegistry::global().counter(
      "obs.log.dropped", "log lines dropped because the ring was full");
  return counter;
}

Counter& emitted_counter() {
  static Counter& counter = MetricsRegistry::global().counter(
      "obs.log.emitted", "log lines accepted into the ring");
  return counter;
}

Counter& suppressed_counter() {
  static Counter& counter = MetricsRegistry::global().counter(
      "obs.log.suppressed", "log lines withheld by a rate limiter");
  return counter;
}

struct Logger {
  std::mutex mutex;
  std::condition_variable ring_cv;    // writer: work available / quitting
  std::condition_variable flush_cv;   // flushers: ring drained
  std::deque<std::string> ring;
  std::thread writer;
  std::FILE* sink = nullptr;          // nullptr = disabled
  bool own_sink = false;              // close on reconfigure (not stderr)
  bool quit = false;
  std::size_t in_flight = 0;          // lines popped but not yet written

  // Relaxed mirrors of the configuration, readable without the mutex.
  std::atomic<bool> enabled{false};
  std::atomic<int> level{static_cast<int>(LogLevel::kInfo)};
  std::atomic<double> slow_us{100000.0};

  void writer_main() {
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      ring_cv.wait(lock, [this] { return quit || !ring.empty(); });
      if (ring.empty()) return;  // quit with nothing pending
      std::vector<std::string> batch(ring.begin(), ring.end());
      ring.clear();
      in_flight = batch.size();
      std::FILE* out = sink;
      lock.unlock();
      if (out != nullptr) {
        for (const std::string& line : batch) {
          std::fwrite(line.data(), 1, line.size(), out);
        }
        std::fflush(out);
      }
      lock.lock();
      in_flight = 0;
      flush_cv.notify_all();
      if (quit && ring.empty()) return;
    }
  }
};

// Leaked, like the metrics registry: events may be emitted during static
// destruction; the atexit flush below drains what the writer still owes.
Logger& logger() {
  static Logger* instance = new Logger();
  return *instance;
}

LogLevel parse_level(std::string_view text, LogLevel fallback) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  return fallback;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

// Opens the sink and starts the writer under `log.mutex`.
void open_locked(Logger& log, const std::string& path, LogLevel level) {
  if (log.sink != nullptr && log.own_sink) std::fclose(log.sink);
  log.sink = nullptr;
  log.own_sink = false;
  if (path == "stderr") {
    log.sink = stderr;
  } else if (!path.empty()) {
    log.sink = std::fopen(path.c_str(), "a");
    log.own_sink = log.sink != nullptr;
  }
  log.level.store(static_cast<int>(level), std::memory_order_relaxed);
  log.enabled.store(log.sink != nullptr, std::memory_order_relaxed);
  if (log.sink != nullptr && !log.writer.joinable()) {
    log.writer = std::thread([&log] { log.writer_main(); });
    // The writer thread is never joined (the logger leaks); flush at exit
    // so buffered lines reach the sink before the process ends.
    std::atexit([] { log_flush(); });
  }
}

// Reads SYBILTD_LOG* exactly once, before any emit.
const bool g_env_initialized = [] {
  const char* path = std::getenv("SYBILTD_LOG");
  if (path == nullptr || *path == '\0') return true;
  LogLevel level = LogLevel::kInfo;
  if (const char* env = std::getenv("SYBILTD_LOG_LEVEL")) {
    level = parse_level(env, level);
  }
  Logger& log = logger();
  if (const char* env = std::getenv("SYBILTD_LOG_SLOW_MS")) {
    char* end = nullptr;
    const double ms = std::strtod(env, &end);
    if (end != env && ms >= 0.0) {
      log.slow_us.store(ms * 1000.0, std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(log.mutex);
  open_locked(log, path, level);
  return true;
}();

void append_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (uc < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", uc);
      out += buffer;
    } else {
      out += c;
    }
  }
}

void append_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out += buffer;
}

}  // namespace

bool log_enabled(LogLevel level) {
  Logger& log = logger();
  return log.enabled.load(std::memory_order_relaxed) &&
         static_cast<int>(level) >= log.level.load(std::memory_order_relaxed);
}

double log_slow_threshold_us() {
  return logger().slow_us.load(std::memory_order_relaxed);
}

void log_open(const std::string& path, LogLevel level) {
  Logger& log = logger();
  std::lock_guard<std::mutex> lock(log.mutex);
  open_locked(log, path, level);
}

void log_close() {
  log_flush();
  Logger& log = logger();
  std::lock_guard<std::mutex> lock(log.mutex);
  log.enabled.store(false, std::memory_order_relaxed);
  if (log.sink != nullptr && log.own_sink) std::fclose(log.sink);
  log.sink = nullptr;
  log.own_sink = false;
}

void log_flush() {
  Logger& log = logger();
  std::unique_lock<std::mutex> lock(log.mutex);
  if (!log.writer.joinable()) return;
  log.ring_cv.notify_one();
  log.flush_cv.wait(
      lock, [&log] { return log.ring.empty() && log.in_flight == 0; });
}

std::uint64_t log_dropped() { return dropped_counter().value(); }

LogEvent::LogEvent(LogLevel level, std::string_view event) {
  if (!log_enabled(level)) return;
  live_ = true;
  const double ts =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  line_.reserve(128);
  line_ += "{\"ts\": ";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ts);
  line_ += buffer;
  line_ += ", \"level\": \"";
  line_ += level_name(level);
  line_ += "\", \"event\": \"";
  append_escaped(line_, event);
  line_ += '"';
}

LogEvent::~LogEvent() {
  if (!live_) return;
  line_ += "}\n";
  Logger& log = logger();
  {
    std::lock_guard<std::mutex> lock(log.mutex);
    if (log.sink == nullptr) return;
    if (log.ring.size() >= kRingCapacity) {
      dropped_counter().inc();
      return;
    }
    log.ring.push_back(std::move(line_));
  }
  emitted_counter().inc();
  log.ring_cv.notify_one();
}

LogEvent& LogEvent::field(std::string_view key, std::string_view value) {
  if (!live_) return *this;
  line_ += ", \"";
  append_escaped(line_, key);
  line_ += "\": \"";
  append_escaped(line_, value);
  line_ += '"';
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

LogEvent& LogEvent::field(std::string_view key, double value) {
  if (!live_) return *this;
  line_ += ", \"";
  append_escaped(line_, key);
  line_ += "\": ";
  append_number(line_, value);
  return *this;
}

LogEvent& LogEvent::field_u64(std::string_view key, std::uint64_t value) {
  if (!live_) return *this;
  line_ += ", \"";
  append_escaped(line_, key);
  line_ += "\": ";
  line_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::field_i64(std::string_view key, std::int64_t value) {
  if (!live_) return *this;
  line_ += ", \"";
  append_escaped(line_, key);
  line_ += "\": ";
  line_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, bool value) {
  if (!live_) return *this;
  line_ += ", \"";
  append_escaped(line_, key);
  line_ += "\": ";
  line_ += value ? "true" : "false";
  return *this;
}

LogRateLimiter::LogRateLimiter(double per_second, double burst)
    : per_second_(per_second > 0.0 ? per_second : 1.0),
      burst_(burst >= 1.0 ? burst : 1.0),
      tokens_(burst_),
      last_(std::chrono::steady_clock::now()) {}

bool LogRateLimiter::allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - last_).count();
  last_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * per_second_);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  suppressed_counter().inc();
  return false;
}

}  // namespace sybiltd::obs
