#include "ml/kmeans.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/thread_pool.h"
#include "simd/simd.h"

namespace sybiltd::ml {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  SYBILTD_CHECK(a.size() == b.size(), "distance of unequal-length vectors");
  // Fixed 4-lane reduction tree at vector levels (<= 1e-12 relative of the
  // serial sum); the scalar level is the original serial loop.
  return simd::kernels().squared_distance(a.data(), b.data(), a.size());
}

namespace {

// k-means++ seeding: first center uniform, then proportional to D^2.
Matrix seed_centroids(const Matrix& data, std::size_t k, Rng& rng) {
  const std::size_t n = data.rows();
  Matrix centroids(k, data.cols());
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());

  std::size_t first = static_cast<std::size_t>(rng.uniform_index(n));
  for (std::size_t c = 0; c < data.cols(); ++c) {
    centroids(0, c) = data(first, c);
  }
  for (std::size_t j = 1; j < k; ++j) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], squared_distance(data.row(i),
                                               centroids.row(j - 1)));
      total += d2[i];
    }
    std::size_t chosen = n - 1;
    if (total > 0.0) {
      double target = rng.uniform() * total;
      double running = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        running += d2[i];
        if (running >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      // All points coincide with existing centers; any choice is fine.
      chosen = static_cast<std::size_t>(rng.uniform_index(n));
    }
    for (std::size_t c = 0; c < data.cols(); ++c) {
      centroids(j, c) = data(chosen, c);
    }
  }
  return centroids;
}

struct SingleRun {
  Matrix centroids;
  std::vector<std::size_t> labels;
  double sse = 0.0;
  std::size_t iterations = 0;
};

SingleRun run_lloyd(const Matrix& data, std::size_t k,
                    const KMeansOptions& options, Rng& rng) {
  const std::size_t n = data.rows();
  SingleRun run;
  run.centroids = seed_centroids(data, k, rng);
  run.labels.assign(n, 0);

  // Update-step scratch hoisted out of the Lloyd loop: the accumulator
  // matrix and counts are zeroed and swapped each iteration instead of
  // reallocated.
  Matrix next(k, data.cols(), 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    run.iterations = iter + 1;
    // Assignment step: each point's nearest centroid depends only on the
    // frozen centroids, so points are assigned in parallel (each writes its
    // own label slot).  The update step below stays serial so the centroid
    // sums accumulate in a fixed order — bit-identical at any thread count.
    std::atomic<bool> changed{false};
    parallel_for(n, [&](std::size_t i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < k; ++j) {
        const double d = squared_distance(data.row(i), run.centroids.row(j));
        if (d < best) {
          best = d;
          best_j = j;
        }
      }
      if (run.labels[i] != best_j) {
        run.labels[i] = best_j;
        changed.store(true, std::memory_order_relaxed);
      }
    });
    // Update step.
    for (std::size_t j = 0; j < k; ++j) {
      auto next_row = next.row(j);
      std::fill(next_row.begin(), next_row.end(), 0.0);
    }
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = run.labels[i];
      ++counts[j];
      auto row = data.row(i);
      for (std::size_t c = 0; c < data.cols(); ++c) next(j, c) += row[c];
    }
    double max_move = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (counts[j] == 0) {
        // Re-seed empty clusters at the point farthest from its centroid.
        double worst = -1.0;
        std::size_t worst_i = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = squared_distance(
              data.row(i), run.centroids.row(run.labels[i]));
          if (d > worst) {
            worst = d;
            worst_i = i;
          }
        }
        for (std::size_t c = 0; c < data.cols(); ++c) {
          next(j, c) = data(worst_i, c);
        }
        run.labels[worst_i] = j;
        changed = true;
      } else {
        for (std::size_t c = 0; c < data.cols(); ++c) {
          next(j, c) /= static_cast<double>(counts[j]);
        }
      }
      max_move = std::max(
          max_move, squared_distance(next.row(j), run.centroids.row(j)));
    }
    std::swap(run.centroids, next);
    if (!changed || max_move < options.tolerance) break;
  }

  run.sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    run.sse += squared_distance(data.row(i),
                                run.centroids.row(run.labels[i]));
  }
  return run;
}

}  // namespace

KMeansResult kmeans(const Matrix& data, std::size_t k,
                    const KMeansOptions& options) {
  SYBILTD_CHECK(data.rows() > 0, "kmeans on an empty matrix");
  SYBILTD_CHECK(k >= 1 && k <= data.rows(),
                "kmeans k must be in [1, number of rows]");
  SYBILTD_CHECK(options.restarts >= 1, "kmeans needs at least one restart");

  Rng rng(options.seed);
  SingleRun best;
  best.sse = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    Rng child = rng.split();
    SingleRun run = run_lloyd(data, k, options, child);
    if (run.sse < best.sse) best = std::move(run);
  }
  return {std::move(best.centroids), std::move(best.labels), best.sse,
          best.iterations};
}

}  // namespace sybiltd::ml
