#include "ml/agglomerative.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "ml/kmeans.h"

namespace sybiltd::ml {

AgglomerativeResult agglomerative_cluster(
    const Matrix& data, const AgglomerativeOptions& options) {
  const std::size_t n = data.rows();
  SYBILTD_CHECK(n > 0, "agglomerative clustering on an empty matrix");
  SYBILTD_CHECK(options.target_clusters >= 1 ||
                    std::isfinite(options.merge_threshold),
                "need a stopping rule: target_clusters or merge_threshold");
  const std::size_t target =
      options.target_clusters >= 1 ? options.target_clusters : 1;

  // Pairwise Euclidean distances between points.
  std::vector<std::vector<double>> point_dist(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = std::sqrt(squared_distance(data.row(i), data.row(j)));
      point_dist[i][j] = point_dist[j][i] = d;
    }
  }

  // Active clusters as member lists; Lance–Williams would be faster but the
  // fingerprint matrices here are tiny (tens of rows).
  std::vector<std::vector<std::size_t>> clusters(n);
  for (std::size_t i = 0; i < n; ++i) clusters[i] = {i};

  AgglomerativeResult result;

  auto cluster_distance = [&](const std::vector<std::size_t>& a,
                              const std::vector<std::size_t>& b) {
    double best = options.linkage == Linkage::kSingle
                      ? std::numeric_limits<double>::infinity()
                      : 0.0;
    double total = 0.0;
    for (std::size_t x : a) {
      for (std::size_t y : b) {
        const double d = point_dist[x][y];
        switch (options.linkage) {
          case Linkage::kSingle:
            best = std::min(best, d);
            break;
          case Linkage::kComplete:
            best = std::max(best, d);
            break;
          case Linkage::kAverage:
            total += d;
            break;
        }
      }
    }
    if (options.linkage == Linkage::kAverage) {
      return total / static_cast<double>(a.size() * b.size());
    }
    return best;
  };

  while (clusters.size() > target) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        const double d = cluster_distance(clusters[i], clusters[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    if (best > options.merge_threshold) break;
    result.merge_distances.push_back(best);
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bj));
  }

  result.labels.assign(n, 0);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t member : clusters[c]) result.labels[member] = c;
  }
  result.cluster_count = clusters.size();
  return result;
}

}  // namespace sybiltd::ml
