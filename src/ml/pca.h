// Principal component analysis via a cyclic Jacobi eigensolver.
//
// Used to project fingerprint feature vectors into the PC1/PC2 plane for
// the Fig. 2 and Fig. 8 reproductions, and available to callers who want a
// decorrelated feature space before clustering.
#pragma once

#include <vector>

#include "common/matrix.h"

namespace sybiltd::ml {

// Eigen-decomposition of a symmetric matrix (values descending).
struct SymmetricEigen {
  std::vector<double> values;  // descending
  Matrix vectors;              // column j is the eigenvector of values[j]
};

// Cyclic Jacobi rotations; `a` must be square and symmetric.
SymmetricEigen jacobi_eigen_symmetric(const Matrix& a,
                                      std::size_t max_sweeps = 64,
                                      double tolerance = 1e-12);

struct PcaModel {
  std::vector<double> mean;          // column means of the training data
  Matrix components;                 // d x k, column j = j-th component
  std::vector<double> explained_variance;        // per component
  std::vector<double> explained_variance_ratio;  // sums to <= 1

  // Project rows of `data` onto the k components (returns n x k scores).
  Matrix transform(const Matrix& data) const;
};

// Fit PCA on the rows of `data`, keeping `components` directions
// (0 = keep all).  Uses the sample covariance (n-1 denominator).
PcaModel fit_pca(const Matrix& data, std::size_t components = 0);

}  // namespace sybiltd::ml
