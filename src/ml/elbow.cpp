#include "ml/elbow.h"

#include <algorithm>

#include "common/error.h"

namespace sybiltd::ml {

ElbowResult elbow_select_k(const Matrix& data, const ElbowOptions& options) {
  SYBILTD_CHECK(data.rows() > 0, "elbow method on an empty matrix");
  const std::size_t n = data.rows();
  const std::size_t min_k = std::max<std::size_t>(options.min_k, 1);
  const std::size_t max_k =
      options.max_k == 0 ? n : std::min(options.max_k, n);
  SYBILTD_CHECK(min_k <= max_k, "elbow k range is empty");

  ElbowResult result;
  KMeansOptions km = options.kmeans;
  Rng seed_stream(km.seed);
  for (std::size_t k = min_k; k <= max_k; ++k) {
    km.seed = seed_stream.next();
    const KMeansResult run = kmeans(data, k, km);
    result.sse_by_k.push_back(run.sse);
    if (run.sse <= 1e-12) break;  // perfect fit; no elbow beyond this point
  }

  const std::size_t scanned = result.sse_by_k.size();
  if (scanned <= 2) {
    // Not enough points for a knee estimate: prefer the smallest k that
    // already achieves (near-)zero SSE, else the last scanned.
    result.best_k = min_k + scanned - 1;
    if (scanned >= 1 && result.sse_by_k.front() <= 1e-12) {
      result.best_k = min_k;
    }
    return result;
  }

  // Discrete curvature: SSE(k-1) - 2*SSE(k) + SSE(k+1), reported for both
  // methods so callers can inspect the curve.
  result.curvature.assign(scanned, 0.0);
  double best_curv = -1.0;
  std::size_t best_curv_idx = 0;
  for (std::size_t i = 1; i + 1 < scanned; ++i) {
    const double curv = result.sse_by_k[i - 1] - 2.0 * result.sse_by_k[i] +
                        result.sse_by_k[i + 1];
    result.curvature[i] = curv;
    if (curv > best_curv) {
      best_curv = curv;
      best_curv_idx = i;
    }
  }

  switch (options.method) {
    case ElbowMethod::kCurvature:
      result.best_k = min_k + best_curv_idx;
      break;
    case ElbowMethod::kExplainedVariance: {
      const double base = result.sse_by_k.front();
      std::size_t idx = scanned - 1;
      if (base > 0.0) {
        for (std::size_t i = 0; i < scanned; ++i) {
          if (1.0 - result.sse_by_k[i] / base >=
              options.explained_variance_threshold) {
            idx = i;
            break;
          }
        }
      } else {
        idx = 0;
      }
      result.best_k = min_k + idx;
      break;
    }
  }
  return result;
}

}  // namespace sybiltd::ml
