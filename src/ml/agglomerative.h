// Agglomerative (hierarchical) clustering — an alternative to k-means for
// AG-FP.  Starts from singletons and repeatedly merges the closest pair of
// clusters under the chosen linkage until either the target cluster count
// is reached or no pairwise distance is below the merge threshold.
//
// The threshold-stopping mode is attractive for device fingerprints: it
// needs no k at all — captures of one device are within a characteristic
// radius, so the dendrogram is cut at that radius.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/matrix.h"

namespace sybiltd::ml {

enum class Linkage {
  kSingle,    // min pairwise distance between clusters
  kComplete,  // max pairwise distance
  kAverage,   // unweighted average pairwise distance (UPGMA)
};

struct AgglomerativeOptions {
  Linkage linkage = Linkage::kAverage;
  // Stop when this many clusters remain (0 = ignore; use threshold).
  std::size_t target_clusters = 0;
  // Stop when the closest pair is farther than this (Euclidean distance).
  // Ignored when infinite.
  double merge_threshold = std::numeric_limits<double>::infinity();
};

struct AgglomerativeResult {
  std::vector<std::size_t> labels;  // cluster index per row
  std::size_t cluster_count = 0;
  // Distances at which merges happened, in merge order (the dendrogram
  // heights) — useful for picking a threshold.
  std::vector<double> merge_distances;
};

// Cluster the rows of `data`.  At least one stopping rule must be active
// (target_clusters >= 1 or a finite merge_threshold).
AgglomerativeResult agglomerative_cluster(
    const Matrix& data, const AgglomerativeOptions& options);

}  // namespace sybiltd::ml
