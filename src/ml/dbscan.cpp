#include "ml/dbscan.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "ml/kmeans.h"

namespace sybiltd::ml {

std::vector<std::size_t> DbscanResult::partition_labels() const {
  std::vector<std::size_t> out = labels;
  std::size_t next = cluster_count;
  for (auto& label : out) {
    if (label == kDbscanNoise) label = next++;
  }
  return out;
}

DbscanResult dbscan(const Matrix& data, const DbscanOptions& options) {
  SYBILTD_CHECK(options.epsilon > 0.0, "DBSCAN epsilon must be positive");
  SYBILTD_CHECK(options.min_points >= 1, "DBSCAN min_points must be >= 1");
  const std::size_t n = data.rows();

  DbscanResult result;
  result.labels.assign(n, kDbscanNoise);
  if (n == 0) return result;

  const double eps_sq = options.epsilon * options.epsilon;
  auto neighbors_of = [&](std::size_t i) {
    std::vector<std::size_t> neighbors;
    for (std::size_t j = 0; j < n; ++j) {
      if (squared_distance(data.row(i), data.row(j)) <= eps_sq) {
        neighbors.push_back(j);  // includes i itself
      }
    }
    return neighbors;
  };

  std::vector<bool> visited(n, false);
  std::size_t cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = true;
    auto seeds = neighbors_of(i);
    if (seeds.size() < options.min_points) continue;  // noise (for now)

    result.labels[i] = cluster;
    // Expand the cluster through density-reachable points.
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const std::size_t q = seeds[s];
      if (result.labels[q] == kDbscanNoise) result.labels[q] = cluster;
      if (visited[q]) continue;
      visited[q] = true;
      const auto q_neighbors = neighbors_of(q);
      if (q_neighbors.size() >= options.min_points) {
        seeds.insert(seeds.end(), q_neighbors.begin(), q_neighbors.end());
      }
    }
    ++cluster;
  }
  result.cluster_count = cluster;
  return result;
}

double estimate_dbscan_epsilon(const Matrix& data, std::size_t k,
                               double quantile_q) {
  const std::size_t n = data.rows();
  SYBILTD_CHECK(n >= 2, "epsilon estimation needs at least two rows");
  SYBILTD_CHECK(k >= 1 && k < n, "k must be in [1, rows)");
  std::vector<double> kth_distances;
  kth_distances.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> dists;
    dists.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      dists.push_back(
          std::sqrt(squared_distance(data.row(i), data.row(j))));
    }
    std::nth_element(dists.begin(),
                     dists.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     dists.end());
    kth_distances.push_back(dists[k - 1]);
  }
  return quantile(kth_distances, quantile_q);
}

}  // namespace sybiltd::ml
