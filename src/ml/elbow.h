// The elbow method for choosing the number of clusters k (Kodinariya &
// Makwana 2013), as AG-FP uses to estimate the device count without
// knowing it a priori.
#pragma once

#include <vector>

#include "ml/kmeans.h"

namespace sybiltd::ml {

// How to read the knee off the SSE(k) curve.
enum class ElbowMethod {
  // Largest discrete second difference of SSE — the classic curvature
  // heuristic.  Biased toward small k when the curve drops steeply early.
  kCurvature,
  // Smallest k whose SSE explains at least `explained_variance_threshold`
  // of SSE(min_k) — i.e. the point where "SSE starts to diminish", the
  // phrasing of Kodinariya & Makwana that the paper cites.
  kExplainedVariance,
};

struct ElbowOptions {
  std::size_t min_k = 1;
  // 0 means "scan up to the number of rows".
  std::size_t max_k = 0;
  ElbowMethod method = ElbowMethod::kExplainedVariance;
  double explained_variance_threshold = 0.9;
  KMeansOptions kmeans;
};

struct ElbowResult {
  std::size_t best_k = 1;
  std::vector<double> sse_by_k;     // sse_by_k[i] is SSE at k = min_k + i
  std::vector<double> curvature;    // discrete second difference of SSE
};

// Run k-means for every k in [min_k, max_k] and pick the k where the SSE
// curve bends the most (largest discrete curvature).  Once the SSE reaches
// (numerically) zero, larger k cannot improve and the scan stops early.
ElbowResult elbow_select_k(const Matrix& data, const ElbowOptions& options = {});

}  // namespace sybiltd::ml
