// Clustering quality metrics.
//
// The paper evaluates account grouping with the Adjusted Rand Index
// (Hubert & Arabie 1985, Fig. 6); we also provide the raw Rand index,
// pairwise precision/recall/F1 (useful for diagnosing false-positives, the
// paper's recurring concern), purity, and mean silhouette.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.h"

namespace sybiltd::ml {

// Adjusted Rand Index between two labelings of the same items; in [-1, 1],
// 1 for identical partitions, ~0 for independent random partitions.
double adjusted_rand_index(std::span<const std::size_t> labels_a,
                           std::span<const std::size_t> labels_b);

// Unadjusted Rand index in [0, 1].
double rand_index(std::span<const std::size_t> labels_a,
                  std::span<const std::size_t> labels_b);

// Pairwise clustering precision/recall/F1: a "positive" is a pair of items
// placed in the same cluster.  `predicted` vs `truth`.
struct PairwiseScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
PairwiseScores pairwise_scores(std::span<const std::size_t> predicted,
                               std::span<const std::size_t> truth);

// Fraction of items whose predicted cluster's majority true label matches
// their own true label.
double purity(std::span<const std::size_t> predicted,
              std::span<const std::size_t> truth);

// Mean silhouette coefficient of a labeled dataset under squared-free
// Euclidean distance; in [-1, 1].  Returns 0 when every point is alone or
// all points share one cluster.
double mean_silhouette(const Matrix& data,
                       std::span<const std::size_t> labels);

}  // namespace sybiltd::ml
