#include "ml/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace sybiltd::ml {

SymmetricEigen jacobi_eigen_symmetric(const Matrix& a, std::size_t max_sweeps,
                                      double tolerance) {
  SYBILTD_CHECK(a.rows() == a.cols(), "jacobi needs a square matrix");
  const std::size_t n = a.rows();
  Matrix d = a;                      // working copy, driven to diagonal
  Matrix v = Matrix::identity(n);    // accumulated rotations

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of squared off-diagonal entries; convergence criterion.
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
    }
    if (off < tolerance) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(d(p, q)) < 1e-300) continue;
        // Compute the Jacobi rotation that zeroes d(p, q).
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t i = 0; i < n; ++i) {
          const double dip = d(i, p);
          const double diq = d(i, q);
          d(i, p) = c * dip - s * diq;
          d(i, q) = s * dip + c * diq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double dpi = d(p, i);
          const double dqi = d(q, i);
          d(p, i) = c * dpi - s * dqi;
          d(q, i) = s * dpi + c * dqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Extract and sort eigenpairs descending by value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = d(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return values[x] > values[y]; });

  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = values[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

Matrix PcaModel::transform(const Matrix& data) const {
  SYBILTD_CHECK(data.cols() == mean.size(), "PCA width mismatch");
  Matrix centered = data;
  centered.subtract_row_vector(mean);
  return centered * components;
}

PcaModel fit_pca(const Matrix& data, std::size_t components) {
  SYBILTD_CHECK(data.rows() >= 2, "PCA needs at least two rows");
  const std::size_t d = data.cols();
  const std::size_t k = components == 0 ? d : std::min(components, d);

  PcaModel model;
  model.mean = data.column_means();
  Matrix centered = data;
  centered.subtract_row_vector(model.mean);

  // Sample covariance.
  Matrix cov = centered.transpose() * centered;
  cov *= 1.0 / static_cast<double>(data.rows() - 1);

  const SymmetricEigen eig = jacobi_eigen_symmetric(cov);
  model.components = Matrix(d, k);
  model.explained_variance.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    model.explained_variance[j] = std::max(eig.values[j], 0.0);
    for (std::size_t i = 0; i < d; ++i) {
      model.components(i, j) = eig.vectors(i, j);
    }
  }
  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  model.explained_variance_ratio.resize(k, 0.0);
  if (total > 0.0) {
    for (std::size_t j = 0; j < k; ++j) {
      model.explained_variance_ratio[j] = model.explained_variance[j] / total;
    }
  }
  return model;
}

}  // namespace sybiltd::ml
