#include "ml/clustering_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/error.h"
#include "ml/kmeans.h"

namespace sybiltd::ml {

namespace {

// Contingency table between two labelings, plus row/col sums.
struct Contingency {
  std::vector<std::vector<std::size_t>> cells;
  std::vector<std::size_t> row_sums;
  std::vector<std::size_t> col_sums;
  std::size_t n = 0;
};

std::vector<std::size_t> normalize_labels(std::span<const std::size_t> labels,
                                          std::size_t& cluster_count) {
  std::unordered_map<std::size_t, std::size_t> remap;
  std::vector<std::size_t> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    auto [it, inserted] = remap.try_emplace(labels[i], remap.size());
    out[i] = it->second;
  }
  cluster_count = remap.size();
  return out;
}

Contingency build_contingency(std::span<const std::size_t> a,
                              std::span<const std::size_t> b) {
  SYBILTD_CHECK(a.size() == b.size(), "labelings must have equal length");
  std::size_t ka = 0, kb = 0;
  const auto na = normalize_labels(a, ka);
  const auto nb = normalize_labels(b, kb);
  Contingency c;
  c.n = a.size();
  c.cells.assign(ka, std::vector<std::size_t>(kb, 0));
  c.row_sums.assign(ka, 0);
  c.col_sums.assign(kb, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++c.cells[na[i]][nb[i]];
    ++c.row_sums[na[i]];
    ++c.col_sums[nb[i]];
  }
  return c;
}

double choose2(std::size_t x) {
  return static_cast<double>(x) * static_cast<double>(x > 0 ? x - 1 : 0) / 2.0;
}

}  // namespace

double adjusted_rand_index(std::span<const std::size_t> labels_a,
                           std::span<const std::size_t> labels_b) {
  const Contingency c = build_contingency(labels_a, labels_b);
  if (c.n < 2) return 1.0;

  double sum_cells = 0.0;
  for (const auto& row : c.cells) {
    for (std::size_t cell : row) sum_cells += choose2(cell);
  }
  double sum_rows = 0.0;
  for (std::size_t r : c.row_sums) sum_rows += choose2(r);
  double sum_cols = 0.0;
  for (std::size_t cl : c.col_sums) sum_cols += choose2(cl);

  const double total_pairs = choose2(c.n);
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  const double denom = max_index - expected;
  if (std::abs(denom) < 1e-15) {
    // Both partitions are all-singletons or all-one-cluster: they agree.
    return 1.0;
  }
  return (sum_cells - expected) / denom;
}

double rand_index(std::span<const std::size_t> labels_a,
                  std::span<const std::size_t> labels_b) {
  const Contingency c = build_contingency(labels_a, labels_b);
  if (c.n < 2) return 1.0;
  double sum_cells = 0.0;
  for (const auto& row : c.cells) {
    for (std::size_t cell : row) sum_cells += choose2(cell);
  }
  double sum_rows = 0.0;
  for (std::size_t r : c.row_sums) sum_rows += choose2(r);
  double sum_cols = 0.0;
  for (std::size_t cl : c.col_sums) sum_cols += choose2(cl);
  const double total = choose2(c.n);
  // agreements = pairs together in both + pairs apart in both
  const double agree = total + 2.0 * sum_cells - sum_rows - sum_cols;
  return agree / total;
}

PairwiseScores pairwise_scores(std::span<const std::size_t> predicted,
                               std::span<const std::size_t> truth) {
  const Contingency c = build_contingency(predicted, truth);
  double tp = 0.0;
  for (const auto& row : c.cells) {
    for (std::size_t cell : row) tp += choose2(cell);
  }
  double predicted_pairs = 0.0;
  for (std::size_t r : c.row_sums) predicted_pairs += choose2(r);
  double truth_pairs = 0.0;
  for (std::size_t cl : c.col_sums) truth_pairs += choose2(cl);

  PairwiseScores s;
  s.precision = predicted_pairs > 0.0 ? tp / predicted_pairs : 1.0;
  s.recall = truth_pairs > 0.0 ? tp / truth_pairs : 1.0;
  s.f1 = (s.precision + s.recall) > 0.0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

double purity(std::span<const std::size_t> predicted,
              std::span<const std::size_t> truth) {
  const Contingency c = build_contingency(predicted, truth);
  if (c.n == 0) return 1.0;
  std::size_t majority_total = 0;
  for (const auto& row : c.cells) {
    majority_total += *std::max_element(row.begin(), row.end());
  }
  return static_cast<double>(majority_total) / static_cast<double>(c.n);
}

double mean_silhouette(const Matrix& data,
                       std::span<const std::size_t> labels) {
  SYBILTD_CHECK(data.rows() == labels.size(),
                "silhouette labels/data size mismatch");
  const std::size_t n = data.rows();
  if (n < 2) return 0.0;
  std::size_t k = 0;
  const auto norm = normalize_labels(labels, k);
  if (k < 2 || k == n) return 0.0;

  std::vector<std::size_t> cluster_size(k, 0);
  for (std::size_t lab : norm) ++cluster_size[lab];

  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster_size[norm[i]] <= 1) continue;  // silhouette undefined
    std::vector<double> dist_sum(k, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      dist_sum[norm[j]] += std::sqrt(squared_distance(data.row(i),
                                                      data.row(j)));
    }
    const double a = dist_sum[norm[i]] /
                     static_cast<double>(cluster_size[norm[i]] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t cl = 0; cl < k; ++cl) {
      if (cl == norm[i] || cluster_size[cl] == 0) continue;
      b = std::min(b, dist_sum[cl] / static_cast<double>(cluster_size[cl]));
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace sybiltd::ml
