// DBSCAN (Ester et al. 1996) — density-based clustering for AG-FP that
// needs no cluster count at all: captures of one physical device form a
// dense blob of characteristic radius; fingerprints of devices nobody
// shares stay isolated and are reported as noise (their own groups).
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace sybiltd::ml {

struct DbscanOptions {
  double epsilon = 1.0;       // neighborhood radius (Euclidean)
  std::size_t min_points = 2; // core point threshold, including itself
};

// Label for points not assigned to any cluster.
inline constexpr std::size_t kDbscanNoise =
    static_cast<std::size_t>(-1);

struct DbscanResult {
  // Cluster index per row, or kDbscanNoise.
  std::vector<std::size_t> labels;
  std::size_t cluster_count = 0;

  // Labels with every noise point turned into its own singleton cluster —
  // the partition form account grouping needs.
  std::vector<std::size_t> partition_labels() const;
};

DbscanResult dbscan(const Matrix& data, const DbscanOptions& options);

// Heuristic epsilon: the `quantile` of the distribution of each point's
// k-th nearest neighbor distance (the standard k-distance elbow read).
double estimate_dbscan_epsilon(const Matrix& data, std::size_t k = 2,
                               double quantile = 0.5);

}  // namespace sybiltd::ml
