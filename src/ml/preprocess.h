// Feature preprocessing for clustering and PCA.
//
// Fingerprint features mix scales (Hz, counts, unitless ratios), so AG-FP
// z-scores every column before k-means; constant columns are left at zero
// rather than dividing by a zero standard deviation.
#pragma once

#include <vector>

#include "common/matrix.h"

namespace sybiltd::ml {

// Per-column affine transform fitted on one matrix, applicable to another.
struct Standardizer {
  std::vector<double> means;
  std::vector<double> stddevs;  // 1.0 substituted for constant columns

  static Standardizer fit(const Matrix& data);
  Matrix transform(const Matrix& data) const;
  Matrix inverse_transform(const Matrix& data) const;
};

// Fit-and-transform in one call.
Matrix standardize(const Matrix& data);

// Min-max scale each column into [0, 1]; constant columns map to 0.
Matrix min_max_scale(const Matrix& data);

using sybiltd::Matrix;

}  // namespace sybiltd::ml
