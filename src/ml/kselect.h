// Cluster-count selection beyond the elbow: silhouette maximization and
// the gap statistic (Tibshirani, Walther & Hastie 2001).  Used by the
// k-selection ablation bench to compare against AG-FP's default elbow.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/kmeans.h"

namespace sybiltd::ml {

struct KSelectOptions {
  std::size_t min_k = 1;
  std::size_t max_k = 0;  // 0 = number of rows
  KMeansOptions kmeans;
};

struct KSelectResult {
  std::size_t best_k = 1;
  std::vector<double> score_by_k;  // the criterion per scanned k
};

// Pick the k in [min_k, max_k] with the largest mean silhouette (k = 1 is
// skipped since the silhouette is undefined there; it scores 0).
KSelectResult select_k_silhouette(const Matrix& data,
                                  const KSelectOptions& options = {});

struct GapOptions {
  KSelectOptions base;
  std::size_t reference_sets = 10;  // Monte-Carlo uniform references
  std::uint64_t seed = 17;
};

// Gap statistic: compare log(SSE) against the expectation under a uniform
// null in the data's bounding box; best k is the smallest k with
// gap(k) >= gap(k+1) - s(k+1).
KSelectResult select_k_gap_statistic(const Matrix& data,
                                     const GapOptions& options = {});

}  // namespace sybiltd::ml
