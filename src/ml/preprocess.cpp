#include "ml/preprocess.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace sybiltd::ml {

Standardizer Standardizer::fit(const Matrix& data) {
  Standardizer s;
  s.means.resize(data.cols(), 0.0);
  s.stddevs.resize(data.cols(), 1.0);
  if (data.rows() == 0) return s;
  for (std::size_t c = 0; c < data.cols(); ++c) {
    const auto col = data.col(c);
    s.means[c] = mean(col);
    const double sd = stddev(col);
    s.stddevs[c] = sd > 1e-12 ? sd : 1.0;
  }
  return s;
}

Matrix Standardizer::transform(const Matrix& data) const {
  SYBILTD_CHECK(data.cols() == means.size(), "standardizer width mismatch");
  Matrix out = data;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) {
      row[c] = (row[c] - means[c]) / stddevs[c];
    }
  }
  return out;
}

Matrix Standardizer::inverse_transform(const Matrix& data) const {
  SYBILTD_CHECK(data.cols() == means.size(), "standardizer width mismatch");
  Matrix out = data;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) {
      row[c] = row[c] * stddevs[c] + means[c];
    }
  }
  return out;
}

Matrix standardize(const Matrix& data) {
  return Standardizer::fit(data).transform(data);
}

Matrix min_max_scale(const Matrix& data) {
  Matrix out = data;
  if (data.rows() == 0) return out;
  for (std::size_t c = 0; c < data.cols(); ++c) {
    const auto col = data.col(c);
    const double lo = *std::min_element(col.begin(), col.end());
    const double hi = *std::max_element(col.begin(), col.end());
    const double span = hi - lo;
    for (std::size_t r = 0; r < data.rows(); ++r) {
      out(r, c) = span > 1e-12 ? (data(r, c) - lo) / span : 0.0;
    }
  }
  return out;
}

}  // namespace sybiltd::ml
