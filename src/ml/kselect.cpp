#include "ml/kselect.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "ml/clustering_metrics.h"

namespace sybiltd::ml {

namespace {

std::size_t resolve_max_k(const Matrix& data, std::size_t max_k) {
  return max_k == 0 ? data.rows() : std::min(max_k, data.rows());
}

}  // namespace

KSelectResult select_k_silhouette(const Matrix& data,
                                  const KSelectOptions& options) {
  SYBILTD_CHECK(data.rows() > 0, "k selection on an empty matrix");
  const std::size_t min_k = std::max<std::size_t>(options.min_k, 1);
  const std::size_t max_k = resolve_max_k(data, options.max_k);
  SYBILTD_CHECK(min_k <= max_k, "k range is empty");

  KSelectResult result;
  double best_score = -2.0;
  KMeansOptions km = options.kmeans;
  Rng seeds(km.seed);
  for (std::size_t k = min_k; k <= max_k; ++k) {
    km.seed = seeds.next();
    double score = 0.0;
    if (k >= 2 && k < data.rows()) {
      const auto run = kmeans(data, k, km);
      score = mean_silhouette(data, run.labels);
    }
    result.score_by_k.push_back(score);
    if (score > best_score) {
      best_score = score;
      result.best_k = k;
    }
  }
  return result;
}

KSelectResult select_k_gap_statistic(const Matrix& data,
                                     const GapOptions& options) {
  SYBILTD_CHECK(data.rows() > 0, "k selection on an empty matrix");
  SYBILTD_CHECK(options.reference_sets >= 2,
                "gap statistic needs at least two reference sets");
  const std::size_t min_k = std::max<std::size_t>(options.base.min_k, 1);
  const std::size_t max_k = resolve_max_k(data, options.base.max_k);
  SYBILTD_CHECK(min_k <= max_k, "k range is empty");

  // Bounding box of the data for the uniform null.
  const std::size_t d = data.cols();
  std::vector<double> lo(d), hi(d);
  for (std::size_t c = 0; c < d; ++c) {
    const auto col = data.col(c);
    lo[c] = *std::min_element(col.begin(), col.end());
    hi[c] = *std::max_element(col.begin(), col.end());
  }

  Rng rng(options.seed);
  KMeansOptions km = options.base.kmeans;
  Rng seeds(km.seed);

  auto log_sse = [&](const Matrix& m, std::size_t k, std::uint64_t seed) {
    KMeansOptions opt = km;
    opt.seed = seed;
    const double sse = kmeans(m, k, opt).sse;
    return std::log(std::max(sse, 1e-12));
  };

  KSelectResult result;
  std::vector<double> gaps, sks;
  for (std::size_t k = min_k; k <= max_k; ++k) {
    const std::uint64_t kseed = seeds.next();
    const double observed = log_sse(data, k, kseed);
    // Reference distribution.
    double ref_mean = 0.0;
    std::vector<double> refs(options.reference_sets);
    for (std::size_t b = 0; b < options.reference_sets; ++b) {
      Matrix ref(data.rows(), d);
      for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < d; ++c) {
          ref(r, c) = rng.uniform(lo[c], hi[c] > lo[c] ? hi[c]
                                                        : lo[c] + 1e-12);
        }
      }
      refs[b] = log_sse(ref, k, kseed);
      ref_mean += refs[b];
    }
    ref_mean /= static_cast<double>(options.reference_sets);
    double ref_var = 0.0;
    for (double r : refs) ref_var += (r - ref_mean) * (r - ref_mean);
    ref_var /= static_cast<double>(options.reference_sets);
    const double sd = std::sqrt(ref_var);

    gaps.push_back(ref_mean - observed);
    sks.push_back(sd * std::sqrt(1.0 + 1.0 /
                                 static_cast<double>(options.reference_sets)));
    result.score_by_k.push_back(gaps.back());
  }

  // Smallest k with gap(k) >= gap(k+1) - s(k+1).
  result.best_k = max_k;
  for (std::size_t i = 0; i + 1 < gaps.size(); ++i) {
    if (gaps[i] >= gaps[i + 1] - sks[i + 1]) {
      result.best_k = min_k + i;
      break;
    }
  }
  return result;
}

}  // namespace sybiltd::ml
