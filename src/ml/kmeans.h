// Lloyd's k-means with k-means++ seeding — the clustering step of AG-FP.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace sybiltd::ml {

struct KMeansOptions {
  std::size_t max_iterations = 100;
  // Converged when no assignment changes, or when centroid movement
  // (max over clusters, squared L2) drops below this tolerance.
  double tolerance = 1e-8;
  // Independent restarts; the run with the lowest SSE wins.
  std::size_t restarts = 4;
  std::uint64_t seed = 1;
};

struct KMeansResult {
  Matrix centroids;                  // k x d
  std::vector<std::size_t> labels;   // n, cluster index per row
  double sse = 0.0;                  // sum of squared distances to centroid
  std::size_t iterations = 0;        // of the winning restart
};

// Cluster the rows of `data` into k groups.  Requires 1 <= k <= rows.
KMeansResult kmeans(const Matrix& data, std::size_t k,
                    const KMeansOptions& options = {});

// Squared Euclidean distance between two equal-length vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);

}  // namespace sybiltd::ml
