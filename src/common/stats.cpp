#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace sybiltd {

void RunningMoments::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void RunningMoments::merge(const RunningMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double new_mean = mean_ + delta * nb / n;
  const double new_m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double new_m3 = m3_ + other.m3_ +
                        delta3 * na * nb * (na - nb) / (n * n) +
                        3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double new_m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = new_mean;
  m2_ = new_m2;
  m3_ = new_m3;
  m4_ = new_m4;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningMoments::mean() const { return n_ > 0 ? mean_ : 0.0; }

double RunningMoments::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningMoments::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

double RunningMoments::skewness() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningMoments::excess_kurtosis() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double RunningMoments::min() const { return n_ > 0 ? min_ : 0.0; }
double RunningMoments::max() const { return n_ > 0 ? max_ : 0.0; }

namespace {
RunningMoments accumulate(std::span<const double> xs) {
  RunningMoments m;
  for (double x : xs) m.add(x);
  return m;
}
}  // namespace

double mean(std::span<const double> xs) { return accumulate(xs).mean(); }
double variance(std::span<const double> xs) {
  return accumulate(xs).variance();
}
double sample_variance(std::span<const double> xs) {
  return accumulate(xs).sample_variance();
}
double stddev(std::span<const double> xs) { return accumulate(xs).stddev(); }
double skewness(std::span<const double> xs) {
  return accumulate(xs).skewness();
}
double excess_kurtosis(std::span<const double> xs) {
  return accumulate(xs).excess_kurtosis();
}

double root_mean_square(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum_sq = 0.0;
  for (double x : xs) sum_sq += x * x;
  return std::sqrt(sum_sq / static_cast<double>(xs.size()));
}

double min_value(std::span<const double> xs) {
  SYBILTD_CHECK(!xs.empty(), "min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  SYBILTD_CHECK(!xs.empty(), "max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  SYBILTD_CHECK(!xs.empty(), "quantile of empty span");
  SYBILTD_CHECK(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double trimmed_mean(std::span<const double> xs, double trim) {
  SYBILTD_CHECK(!xs.empty(), "trimmed mean of empty span");
  SYBILTD_CHECK(trim >= 0.0 && trim < 0.5, "trim must be in [0, 0.5)");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t cut = static_cast<std::size_t>(
      trim * static_cast<double>(sorted.size()));
  double total = 0.0;
  std::size_t kept = 0;
  for (std::size_t i = cut; i + cut < sorted.size(); ++i) {
    total += sorted[i];
    ++kept;
  }
  // Over-aggressive trimming on tiny samples falls back to the median.
  if (kept == 0) return median(xs);
  return total / static_cast<double>(kept);
}

double median_absolute_deviation(std::span<const double> xs) {
  SYBILTD_CHECK(!xs.empty(), "MAD of empty span");
  const double center = median(xs);
  std::vector<double> deviations;
  deviations.reserve(xs.size());
  for (double x : xs) deviations.push_back(std::abs(x - center));
  return median(deviations);
}

double huber_location(std::span<const double> xs, double k,
                      std::size_t max_iterations, double tol) {
  SYBILTD_CHECK(!xs.empty(), "Huber location of empty span");
  SYBILTD_CHECK(k > 0.0, "Huber k must be positive");
  double center = median(xs);
  // Scale from the MAD (consistent for Gaussians up to 1.4826).
  const double scale = 1.4826 * median_absolute_deviation(xs);
  if (scale <= 1e-12) return center;  // majority identical: done
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    double num = 0.0, den = 0.0;
    for (double x : xs) {
      const double r = (x - center) / scale;
      const double w = std::abs(r) <= k ? 1.0 : k / std::abs(r);
      num += w * x;
      den += w;
    }
    const double next = num / den;
    const bool done = std::abs(next - center) < tol;
    center = next;
    if (done) break;
  }
  return center;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  SYBILTD_CHECK(xs.size() == ys.size(), "correlation needs equal lengths");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double zero_crossing_rate(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  std::size_t crossings = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if ((xs[i - 1] >= 0.0) != (xs[i] >= 0.0)) ++crossings;
  }
  return static_cast<double>(crossings) / static_cast<double>(xs.size() - 1);
}

std::size_t non_negative_count(std::span<const double> xs) {
  std::size_t count = 0;
  for (double x : xs) {
    if (x >= 0.0) ++count;
  }
  return count;
}

}  // namespace sybiltd
