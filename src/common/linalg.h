// Small dense linear-algebra solvers on top of Matrix: Cholesky
// factorization for symmetric positive-definite systems (used by the
// kriging interpolator) and a ridge-regularized solve helper.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.h"

namespace sybiltd {

// Lower-triangular Cholesky factor L with A = L·Lᵀ.  Throws
// std::invalid_argument if A is not (numerically) positive definite.
Matrix cholesky_decompose(const Matrix& a);

// Solve A·x = b given the Cholesky factor L of A (forward + back
// substitution).
std::vector<double> cholesky_solve(const Matrix& lower,
                                   std::span<const double> b);

// Solve (A + ridge·I)·x = b for symmetric positive semi-definite A.
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b,
                              double ridge = 0.0);

}  // namespace sybiltd
