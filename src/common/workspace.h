// Per-thread scratch arena for the hot kernels.
//
// PR 2 parallelized the quadratic kernels, which left per-call heap
// allocation as the dominant fixed cost of each scalar kernel invocation:
// DTW rebuilt its DP rows per pair, Bluestein FFT five vectors per
// transform, Welch one segment buffer per segment.  The workspace removes
// that cost without changing any kernel's numerics: each thread owns a
// size-class-bucketed pool of raw buffers, kernels check buffers out with
// RAII (`Workspace::local().borrow<double>(n)`) and the buffer returns to
// the pool at scope exit.  After one warm-up call per shape, the steady
// state performs zero heap allocations (asserted by
// tests/workspace_test.cpp with a counting operator new).
//
// Rules:
//  - A Borrowed<T> must stay on the thread that borrowed it and must not
//    outlive the pool task it was borrowed in.  The thread pool calls
//    end_task_scope() between tasks; a borrow leaked across that boundary
//    is orphaned (freed straight to the heap, never pooled) so a buggy
//    task cannot poison the next one's arena.
//  - Buffers hand back *uninitialized* memory — kernels must write before
//    they read, exactly as they would with a fresh std::vector only when
//    they relied on zero/infinity fills (those fills stay explicit).
//  - T must be trivially copyable and destructible (double, Complex,
//    POD cells); the arena stores raw bytes, nothing is constructed.
//
// The `stats()` counters (`heap_allocations` in particular) are the
// opt-in allocation accounting for tests: a test records the counter,
// runs the kernel, and asserts the counter did not move.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace sybiltd {

class Workspace {
 public:
  struct Stats {
    std::uint64_t borrows = 0;           // total checkouts since thread start
    std::uint64_t heap_allocations = 0;  // pool misses -> operator new
    std::uint64_t heap_bytes = 0;        // bytes fetched from the heap
    std::uint64_t orphaned = 0;          // borrows leaked across a task scope
    std::size_t live_borrows = 0;        // currently checked out
    std::size_t pooled_buffers = 0;      // idle buffers awaiting reuse
    std::size_t pooled_bytes = 0;        // bytes held by idle buffers
  };

  // RAII checkout.  Movable, not copyable; releases at destruction.
  template <typename T>
  class Borrowed {
   public:
    Borrowed() = default;
    Borrowed(Borrowed&& other) noexcept { *this = std::move(other); }
    Borrowed& operator=(Borrowed&& other) noexcept {
      if (this != &other) {
        reset();
        owner_ = other.owner_;
        raw_ = other.raw_;
        class_index_ = other.class_index_;
        generation_ = other.generation_;
        count_ = other.count_;
        other.owner_ = nullptr;
        other.raw_ = nullptr;
        other.count_ = 0;
      }
      return *this;
    }
    Borrowed(const Borrowed&) = delete;
    Borrowed& operator=(const Borrowed&) = delete;
    ~Borrowed() { reset(); }

    T* data() const { return static_cast<T*>(raw_); }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    T& operator[](std::size_t i) const { return data()[i]; }
    std::span<T> span() const { return {data(), count_}; }
    T* begin() const { return data(); }
    T* end() const { return data() + count_; }

    // Return the buffer to the arena early.
    void reset() {
      if (owner_ != nullptr) {
        owner_->release(raw_, class_index_, generation_);
        owner_ = nullptr;
        raw_ = nullptr;
        count_ = 0;
      }
    }

   private:
    friend class Workspace;
    Borrowed(Workspace* owner, void* raw, std::size_t class_index,
             std::uint64_t generation, std::size_t count)
        : owner_(owner),
          raw_(raw),
          class_index_(class_index),
          generation_(generation),
          count_(count) {}

    Workspace* owner_ = nullptr;
    void* raw_ = nullptr;
    std::size_t class_index_ = 0;
    std::uint64_t generation_ = 0;
    std::size_t count_ = 0;
  };

  Workspace() = default;
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // The calling thread's arena.
  static Workspace& local();

  // Check out uninitialized scratch for `count` elements of T.
  template <typename T>
  Borrowed<T> borrow(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "workspace buffers hold raw bytes; T must be trivial");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned workspace types are not supported");
    std::size_t class_index = 0;
    void* raw = acquire(count * sizeof(T), &class_index);
    return Borrowed<T>(this, raw, class_index, generation_, count);
  }

  Stats stats() const { return stats_; }

  // Task boundary hook (called by the thread pool between tasks).  A
  // well-behaved task has zero live borrows here; if one leaked, the
  // outstanding buffers are orphaned — their eventual release frees to the
  // heap instead of re-pooling a buffer the arena no longer tracks.
  void end_task_scope();

  // Free every pooled (idle) buffer back to the heap.
  void trim();

 private:
  // Size classes are powers of two from 64 B up; class i holds buffers of
  // exactly (kMinClassBytes << i) bytes.
  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kClassCount = 40;

  static std::size_t class_for(std::size_t bytes);
  static std::size_t class_bytes(std::size_t class_index) {
    return kMinClassBytes << class_index;
  }

  void* acquire(std::size_t bytes, std::size_t* class_index);
  void release(void* raw, std::size_t class_index, std::uint64_t generation);

  std::vector<void*> pool_[kClassCount];
  Stats stats_;
  std::uint64_t generation_ = 0;
};

}  // namespace sybiltd
