// Descriptive statistics shared across the feature extractors, truth
// discovery algorithms and the evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sybiltd {

// Single-pass accumulator for mean / variance / skewness / kurtosis using
// the numerically stable online moment updates (Pébay 2008).
class RunningMoments {
 public:
  void add(double x);
  void merge(const RunningMoments& other);

  std::size_t count() const { return n_; }
  double mean() const;
  // Population variance (divide by n).  sample_variance divides by n-1.
  double variance() const;
  double sample_variance() const;
  double stddev() const;
  // Fisher–Pearson skewness g1 = m3 / m2^(3/2).  0 for n < 2 or zero var.
  double skewness() const;
  // Excess kurtosis g2 = m4 / m2^2 - 3.  0 for n < 2 or zero variance.
  double excess_kurtosis() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Convenience batch statistics over a span of samples.
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);          // population
double sample_variance(std::span<const double> xs);   // n-1 denominator
double stddev(std::span<const double> xs);            // population
double skewness(std::span<const double> xs);
double excess_kurtosis(std::span<const double> xs);
double root_mean_square(std::span<const double> xs);
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);
// Linearly interpolated quantile; q in [0, 1].
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);
// Mean after discarding the `trim` fraction from each tail (trim < 0.5);
// degenerates to the plain mean at trim = 0 and toward the median as
// trim -> 0.5.
double trimmed_mean(std::span<const double> xs, double trim);
// Huber M-estimator of location: iteratively reweighted mean where
// residuals beyond k·MAD get linear (not quadratic) influence.  Robust to
// a minority of outliers while staying efficient on Gaussian data.
double huber_location(std::span<const double> xs, double k = 1.345,
                      std::size_t max_iterations = 50, double tol = 1e-9);
// Median absolute deviation (unscaled).
double median_absolute_deviation(std::span<const double> xs);
// Pearson correlation coefficient; 0 when either side has zero variance.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

// Rate of sign changes between consecutive samples, in [0, 1].
double zero_crossing_rate(std::span<const double> xs);
// Number of samples >= 0.
std::size_t non_negative_count(std::span<const double> xs);

}  // namespace sybiltd
