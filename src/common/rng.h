// Deterministic, splittable random number generation.
//
// Every stochastic component in sybiltd takes an explicit seed so that
// experiments are reproducible bit-for-bit.  Rng wraps a SplitMix64-seeded
// xoshiro256++ generator and offers the distributions the rest of the code
// needs.  split() derives an independent child stream, which lets a scenario
// hand out per-user / per-device generators without correlation.
#pragma once

#include <cstdint>
#include <vector>

namespace sybiltd {

// SplitMix64: used for seeding and cheap stateless hashing of seed material.
std::uint64_t splitmix64(std::uint64_t& state);

// xoshiro256++ PRNG with convenience distributions.  Satisfies the
// UniformRandomBitGenerator requirements so it can also drive <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Derive an independent child generator.  Successive calls yield distinct
  // streams; the parent's own sequence advances as well.
  Rng split();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box–Muller (cached spare value).
  double normal();
  // Normal with mean/stddev.
  double normal(double mean, double stddev);
  // Bernoulli trial.
  bool bernoulli(double p);
  // Exponential with rate lambda (> 0).
  double exponential(double lambda);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) in random order (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace sybiltd
