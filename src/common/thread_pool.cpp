#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <exception>

#include "common/error.h"
#include "common/workspace.h"
#include "obs/metrics.h"

namespace sybiltd {

namespace {

// Pool-wide instruments, registered once.  Queue-wait is submit-to-start,
// run-time is the task body itself; both in microseconds.
struct PoolMetrics {
  obs::Counter& submitted = obs::MetricsRegistry::global().counter(
      "threadpool.submitted", "tasks enqueued on the pool");
  obs::Counter& executed = obs::MetricsRegistry::global().counter(
      "threadpool.executed", "tasks run to completion");
  obs::Counter& stolen = obs::MetricsRegistry::global().counter(
      "threadpool.stolen", "tasks taken from another worker's deque");
  obs::Histogram& queue_wait_us = obs::MetricsRegistry::global().histogram(
      "threadpool.queue_wait_us", "submit-to-start latency per task");
  obs::Histogram& task_run_us = obs::MetricsRegistry::global().histogram(
      "threadpool.task_run_us", "task body run time");

  static PoolMetrics& get() {
    static PoolMetrics metrics;
    return metrics;
  }
};

double elapsed_us(std::chrono::steady_clock::time_point since,
                  std::chrono::steady_clock::time_point until) {
  return std::chrono::duration<double, std::micro>(until - since).count();
}

// Which pool (if any) owns the current thread, and whether the thread is
// inside a parallel_for region.  Both drive the inline-serial fallbacks.
thread_local ThreadPool* tl_worker_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;
thread_local bool tl_in_parallel_region = false;

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

// Shared state of one parallel_for invocation.  Runners (the caller plus
// any helper tasks) claim chunk indices from `next`; completion is when
// `done` reaches `total_chunks`.  shared_ptr ownership lets helper tasks
// that start after the loop already finished observe an exhausted counter
// and return without touching freed memory.
struct ThreadPool::LoopState {
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t total_chunks = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> abandoned{false};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t concurrency) {
  SYBILTD_CHECK(concurrency >= 1, "thread pool needs at least one thread");
  workers_.reserve(concurrency);
  auto& registry = obs::MetricsRegistry::global();
  for (std::size_t i = 0; i < concurrency; ++i) {
    auto worker = std::make_unique<Worker>();
    // Per-worker counters are keyed by index, so successive pools of the
    // same size (benchmark sweeps, set_global_concurrency) share them.
    const std::string prefix = "threadpool.worker" + std::to_string(i);
    worker->submitted = &registry.counter(prefix + ".submitted",
                                          "tasks routed to this worker");
    worker->steals = &registry.counter(prefix + ".steals",
                                       "tasks this worker stole");
    workers_.push_back(std::move(worker));
  }
  threads_.reserve(concurrency);
  for (std::size_t i = 0; i < concurrency; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
  // Tasks still queued were never started and are dropped with the deques.
  // parallel_for never depends on helpers running (the caller claims every
  // chunk itself if it must), so no loop can be stranded by this.
}

void ThreadPool::submit(std::function<void()> task) {
  SYBILTD_CHECK(task != nullptr, "submit() needs a callable task");
  std::size_t target;
  if (tl_worker_pool == this) {
    target = tl_worker_index;
  } else {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    target = next_worker_++ % workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->tasks.push_back(
        {std::move(task), std::chrono::steady_clock::now()});
  }
  PoolMetrics::get().submitted.inc();
  workers_[target]->submitted->inc();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++pending_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop_or_steal(std::size_t self, Task& task) {
  bool found = false;
  {
    // Own deque, oldest first: a chain that re-submits itself lands at the
    // back and cannot starve an older chain sharing the deque.
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
      found = true;
    }
  }
  for (std::size_t offset = 1; !found && offset < workers_.size(); ++offset) {
    Worker& victim = *workers_[(self + offset) % workers_.size()];
    {
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        found = true;
      }
    }
    if (found) {
      PoolMetrics::get().stolen.inc();
      workers_[self]->steals->inc();
    }
  }
  if (found) {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    --pending_;
  }
  return found;
}

void ThreadPool::worker_main(std::size_t self) {
  tl_worker_pool = this;
  tl_worker_index = self;
  for (;;) {
    Task task;
    if (try_pop_or_steal(self, task)) {
      PoolMetrics& metrics = PoolMetrics::get();
      const auto start = std::chrono::steady_clock::now();
      metrics.queue_wait_us.record(elapsed_us(task.enqueued, start));
      task.fn();  // a throwing task terminates, as it would on a raw thread
      metrics.task_run_us.record(
          elapsed_us(start, std::chrono::steady_clock::now()));
      metrics.executed.inc();
      // Reset this worker's scratch arena between tasks: a borrow leaked
      // by the task is orphaned rather than handed to the next task.
      Workspace::local().end_task_scope();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] { return stopping_ || pending_ > 0; });
    if (stopping_) break;
  }
}

void ThreadPool::run_loop_chunks(const std::shared_ptr<LoopState>& state) {
  const bool outer = tl_in_parallel_region;
  tl_in_parallel_region = true;
  for (;;) {
    const std::size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= state->total_chunks) break;
    if (!state->abandoned.load(std::memory_order_relaxed)) {
      try {
        const std::size_t begin = c * state->chunk;
        const std::size_t end = std::min(state->n, begin + state->chunk);
        for (std::size_t i = begin; i < end; ++i) (*state->body)(i);
      } catch (...) {
        state->abandoned.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
    }
    // acq_rel: publishes this chunk's writes to whoever observes `done`.
    const std::size_t finished =
        state->done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (finished == state->total_chunks) {
      {
        // Empty critical section pairs with the waiter's predicate check.
        std::lock_guard<std::mutex> lock(state->mutex);
      }
      state->cv.notify_all();
      break;
    }
  }
  tl_in_parallel_region = outer;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (concurrency() == 1 || tl_in_parallel_region || n == 1) {
    // Serial fallback: same index order, same writes, no synchronization.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<LoopState>();
  state->n = n;
  // ~4 chunks per thread: coarse enough to amortize dispatch, fine enough
  // that dynamic claiming balances uneven per-index cost.
  const std::size_t target_chunks = concurrency() * 4;
  state->chunk = std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);
  state->total_chunks = (n + state->chunk - 1) / state->chunk;
  state->body = &fn;

  const std::size_t helpers =
      std::min(concurrency() - 1, state->total_chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([state] { run_loop_chunks(state); });
  }
  run_loop_chunks(state);

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= state->total_chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

std::pair<std::size_t, std::size_t> ThreadPool::unrank_pair(std::size_t n,
                                                            std::size_t k) {
  SYBILTD_ASSERT(n >= 2 && k < pair_count(n));
  // Pairs before row i: off(i) = i*n - i*(i+1)/2.  Invert with the
  // quadratic formula, then fix up any floating-point off-by-one.
  const auto offset = [n](std::size_t i) { return i * n - i * (i + 1) / 2; };
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  double guess =
      std::floor((2.0 * nd - 1.0 -
                  std::sqrt((2.0 * nd - 1.0) * (2.0 * nd - 1.0) - 8.0 * kd)) /
                 2.0);
  std::size_t i = guess <= 0.0 ? 0 : static_cast<std::size_t>(guess);
  i = std::min(i, n - 2);
  while (i > 0 && offset(i) > k) --i;
  while (i + 1 < n - 1 && offset(i + 1) <= k) ++i;
  const std::size_t j = i + 1 + (k - offset(i));
  SYBILTD_ASSERT(j > i && j < n);
  return {i, j};
}

void ThreadPool::parallel_pairwise(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n < 2) return;
  parallel_for(pair_count(n), [n, &fn](std::size_t k) {
    const auto [i, j] = unrank_pair(n, k);
    fn(i, j);
  });
}

bool ThreadPool::in_parallel_region() { return tl_in_parallel_region; }

std::size_t ThreadPool::parse_concurrency(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  // Cap at something a process can actually spawn; protects against typos
  // like SYBILTD_THREADS=80000.
  return static_cast<std::size_t>(std::min(value, 1024ul));
}

std::size_t ThreadPool::configured_concurrency() {
  const std::size_t configured =
      parse_concurrency(std::getenv("SYBILTD_THREADS"));
  if (configured > 0) return configured;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(configured_concurrency());
  }
  return *g_global_pool;
}

void ThreadPool::set_global_concurrency(std::size_t concurrency) {
  auto fresh = std::make_unique<ThreadPool>(concurrency);
  {
    std::lock_guard<std::mutex> lock(g_global_mutex);
    g_global_pool.swap(fresh);
  }
  // `fresh` now holds the previous pool; destroying it outside the lock
  // joins its workers without serializing new global() callers behind them.
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

void parallel_pairwise(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::global().parallel_pairwise(n, fn);
}

}  // namespace sybiltd
