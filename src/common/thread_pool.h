// Process-wide work-stealing thread pool for the quadratic kernels.
//
// Every pairwise hot path in the framework — AG-TR's DTW matrix, AG-TS's
// affinity matrix, AG-FP's stream featurization and Lloyd assignment, and
// the evaluation sweeps — is embarrassingly parallel: each output slot is
// a pure function of the inputs.  The pool exploits that with two
// data-parallel primitives whose *result layout is identical at every
// concurrency level*:
//
//   parallel_for(n, fn)       — fn(i) for every i in [0, n)
//   parallel_pairwise(n, fn)  — fn(i, j) for every unordered pair i < j
//
// Determinism contract: fn must write only to slots owned by its index
// (no shared accumulation), in which case the output is bit-identical to
// the serial loop regardless of thread count.  Callers that need an
// ordered reduction compute per-index values in parallel and fold them
// serially afterwards.
//
// Scheduling: each worker owns a deque of tasks; submit() from a worker
// pushes to the back of its own deque (chains stay local), submit() from
// outside round-robins.  Owners pop the *front* of their deque — FIFO, so
// a self-resubmitting chain cannot starve its deque-mates even on a
// single-threaded pool — and idle workers steal from the *back* of other
// workers' deques.  parallel_for distributes chunks through a shared claim counter
// and the *calling thread participates*, so a loop always completes even
// when every worker is busy with long-running pipeline tasks — which is
// also why nested parallel_for cannot deadlock: a call from inside a
// parallel region runs inline serially, and a call from inside a plain
// pool task (e.g. a pipeline shard regrouping) may fan out but never
// depends on a free worker to finish.
//
// Concurrency budget: ThreadPool::global() is the one process-wide pool.
// Its size comes from the SYBILTD_THREADS environment variable (unset or
// "0" = hardware concurrency); at concurrency 1 the data-parallel
// primitives run serially on the caller with no synchronization.  The
// streaming pipeline schedules its shard workers on the same pool, so one
// budget governs ingestion and batch regrouping.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace sybiltd {

namespace obs {
class Counter;
}  // namespace obs

class ThreadPool {
 public:
  // Spawns `concurrency` worker threads (at least 1).
  explicit ThreadPool(std::size_t concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t concurrency() const { return workers_.size(); }

  // Enqueue a fire-and-forget task.  Tasks must not throw (a throwing task
  // terminates, matching the std::thread behaviour the pipeline had before
  // it moved onto the pool).  Long-running work should be cut into
  // cooperative steps that re-submit themselves, so no task monopolizes a
  // worker.
  void submit(std::function<void()> task);

  // Run fn(i) for every i in [0, n).  Blocks until every index ran; the
  // caller participates.  The first exception thrown by fn is rethrown
  // here after all in-flight chunks finish; remaining chunks are skipped.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  // Run fn(i, j) for every unordered pair 0 <= i < j < n.  Pairs are
  // flattened row-major — (0,1), (0,2), ..., (1,2), ... — and chunked over
  // the flat index so the load balances even though later rows are
  // shorter.  Same blocking/exception semantics as parallel_for.
  void parallel_pairwise(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn);

  // Number of unordered pairs parallel_pairwise(n) visits: n*(n-1)/2.
  static std::size_t pair_count(std::size_t n) {
    return n < 2 ? 0 : n * (n - 1) / 2;
  }
  // Inverse of the row-major pair flattening: flat index k -> (i, j).
  static std::pair<std::size_t, std::size_t> unrank_pair(std::size_t n,
                                                         std::size_t k);

  // True on a pool worker thread or inside a parallel region — where the
  // data-parallel primitives degrade to inline serial loops.
  static bool in_parallel_region();

  // The process-wide pool, created on first use with
  // configured_concurrency() threads.
  static ThreadPool& global();

  // SYBILTD_THREADS, or hardware concurrency when unset/0/unparsable.
  static std::size_t configured_concurrency();
  // Parse one SYBILTD_THREADS value (exposed for tests); 0 on failure.
  static std::size_t parse_concurrency(const char* text);

  // Replace the global pool (joins the old one's workers first).  For
  // tests and benchmarks that compare thread counts; must not race with
  // in-flight work on the old pool — in particular, no CampaignEngine may
  // be running.
  static void set_global_concurrency(std::size_t concurrency);

 private:
  // A queued task plus its enqueue timestamp, so the pool can report the
  // queue-wait distribution (threadpool.queue_wait_us in the metrics
  // registry) without a side table.
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  // One per-worker deque under its own mutex: owner pushes the back and
  // pops the front, thieves take the back.  A mutex per deque is plenty here — tasks are
  // macro-sized (a whole chunk of DTW pairs, a pipeline micro-batch), so
  // queue contention is not the bottleneck a lock-free Chase–Lev deque
  // exists to solve, and it keeps the invariants ThreadSanitizer-obvious.
  // The counters are registry-owned (`threadpool.worker<i>.*`), recording
  // per-worker submit routing and steal pressure.
  struct Worker {
    std::mutex mutex;
    std::deque<Task> tasks;
    obs::Counter* submitted = nullptr;
    obs::Counter* steals = nullptr;
  };
  struct LoopState;

  void worker_main(std::size_t self);
  bool try_pop_or_steal(std::size_t self, Task& task);
  static void run_loop_chunks(const std::shared_ptr<LoopState>& state);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stopping_ = false;
  // Submitted-but-unclaimed tasks, so idle workers can sleep.  Signed: a
  // racing consumer may decrement before the producer's increment lands.
  std::int64_t pending_ = 0;
  std::size_t next_worker_ = 0;  // round-robin target for external submits
};

// Convenience wrappers over ThreadPool::global().
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);
void parallel_pairwise(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace sybiltd
