#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace sybiltd {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() { return Rng(next() ^ 0xa5a5a5a55a5a5a5aULL); }

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SYBILTD_CHECK(lo <= hi, "uniform bounds out of order");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  SYBILTD_CHECK(n > 0, "uniform_index needs n > 0");
  // Lemire's nearly-divisionless bounded sampling with rejection.
  while (true) {
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l >= n || l >= (-n) % n) return static_cast<std::uint64_t>(m >> 64);
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SYBILTD_CHECK(lo <= hi, "uniform_int bounds out of order");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  SYBILTD_CHECK(stddev >= 0.0, "normal stddev must be non-negative");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  SYBILTD_CHECK(p >= 0.0 && p <= 1.0, "bernoulli p out of [0,1]");
  return uniform() < p;
}

double Rng::exponential(double lambda) {
  SYBILTD_CHECK(lambda > 0.0, "exponential rate must be positive");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  SYBILTD_CHECK(k <= n, "cannot sample more items than the population");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher–Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace sybiltd
