// Error handling primitives shared by all sybiltd libraries.
//
// Library code validates preconditions with SYBILTD_CHECK, which throws
// std::invalid_argument / std::logic_error so callers (and tests) can observe
// violations without aborting the process.  Internal invariants that indicate
// a bug in this library use SYBILTD_ASSERT.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sybiltd {

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert_failure(const char* expr,
                                              const char* file, int line) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ":"
     << line;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace sybiltd

// Precondition check: throws std::invalid_argument with context on failure.
#define SYBILTD_CHECK(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::sybiltd::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                             (msg));                      \
    }                                                                     \
  } while (false)

// Internal invariant: throws std::logic_error on failure (a bug in sybiltd).
#define SYBILTD_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::sybiltd::detail::throw_assert_failure(#expr, __FILE__, __LINE__); \
    }                                                                     \
  } while (false)
