// Dense row-major matrix of doubles.
//
// Deliberately small: the ML substrate (PCA, k-means) and the worked-example
// benches need straightforward dense linear algebra on matrices with at most
// a few hundred rows, not a full BLAS.  Throws on shape mismatches.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace sybiltd {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  // Construct from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  // Stack row vectors (all must share a length).
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;
  std::vector<double> col(std::size_t c) const;

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s);
  Matrix operator*(double s) const;

  // Matrix–vector product (v.size() must equal cols()).
  std::vector<double> multiply(std::span<const double> v) const;

  // Frobenius norm of (this - rhs).
  double distance_frobenius(const Matrix& rhs) const;

  // Column means as a vector of length cols().
  std::vector<double> column_means() const;
  // Subtract the given vector from every row in place.
  void subtract_row_vector(std::span<const double> v);

  std::string to_string(int precision = 4) const;

  bool operator==(const Matrix& rhs) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sybiltd
