#include "common/workspace.h"

#include <new>

#include "obs/metrics.h"

namespace sybiltd {

namespace {

// Process-wide aggregation of the per-thread Stats: every arena bumps the
// same registry counters, so obs::snapshot() sees allocation behaviour
// across all threads without walking thread_locals.  Increments are
// striped relaxed atomics — no locks, no allocation, so the zero-alloc
// steady-state contract of the arena itself is preserved.
struct WorkspaceMetrics {
  obs::Counter& borrows = obs::MetricsRegistry::global().counter(
      "workspace.borrows", "buffer checkouts across all threads");
  obs::Counter& heap_allocations = obs::MetricsRegistry::global().counter(
      "workspace.heap_allocations", "pool misses that hit operator new");
  obs::Counter& heap_bytes = obs::MetricsRegistry::global().counter(
      "workspace.heap_bytes", "bytes fetched from the heap on pool misses");
  obs::Counter& orphaned = obs::MetricsRegistry::global().counter(
      "workspace.orphaned", "borrows leaked across a task scope");

  static WorkspaceMetrics& get() {
    static WorkspaceMetrics metrics;
    return metrics;
  }
};

}  // namespace

Workspace& Workspace::local() {
  static thread_local Workspace workspace;
  return workspace;
}

Workspace::~Workspace() { trim(); }

std::size_t Workspace::class_for(std::size_t bytes) {
  std::size_t class_index = 0;
  while (class_bytes(class_index) < bytes) {
    ++class_index;
    SYBILTD_CHECK(class_index < kClassCount,
                  "workspace borrow exceeds the largest size class");
  }
  return class_index;
}

void* Workspace::acquire(std::size_t bytes, std::size_t* class_index) {
  const std::size_t cls = class_for(bytes);
  *class_index = cls;
  void* raw = nullptr;
  auto& bucket = pool_[cls];
  if (!bucket.empty()) {
    raw = bucket.back();
    bucket.pop_back();
    --stats_.pooled_buffers;
    stats_.pooled_bytes -= class_bytes(cls);
  } else {
    raw = ::operator new(class_bytes(cls));
    ++stats_.heap_allocations;
    stats_.heap_bytes += class_bytes(cls);
    WorkspaceMetrics::get().heap_allocations.inc();
    WorkspaceMetrics::get().heap_bytes.inc(class_bytes(cls));
  }
  ++stats_.borrows;
  ++stats_.live_borrows;
  WorkspaceMetrics::get().borrows.inc();
  return raw;
}

void Workspace::release(void* raw, std::size_t class_index,
                        std::uint64_t generation) {
  if (generation != generation_) {
    // Borrowed across an end_task_scope() boundary: the arena already
    // disowned this buffer, so send it straight back to the heap.
    ::operator delete(raw);
    ++stats_.orphaned;
    WorkspaceMetrics::get().orphaned.inc();
    return;
  }
  pool_[class_index].push_back(raw);
  ++stats_.pooled_buffers;
  stats_.pooled_bytes += class_bytes(class_index);
  --stats_.live_borrows;
}

void Workspace::end_task_scope() {
  if (stats_.live_borrows != 0) {
    // A task leaked a borrow.  Disown the outstanding buffers (their
    // release will hit the generation check above) so the next task starts
    // from a clean arena.
    ++generation_;
    stats_.live_borrows = 0;
  }
}

void Workspace::trim() {
  for (auto& bucket : pool_) {
    for (void* raw : bucket) ::operator delete(raw);
    bucket.clear();
  }
  stats_.pooled_buffers = 0;
  stats_.pooled_bytes = 0;
}

}  // namespace sybiltd
