#include "common/workspace.h"

#include <new>

namespace sybiltd {

Workspace& Workspace::local() {
  static thread_local Workspace workspace;
  return workspace;
}

Workspace::~Workspace() { trim(); }

std::size_t Workspace::class_for(std::size_t bytes) {
  std::size_t class_index = 0;
  while (class_bytes(class_index) < bytes) {
    ++class_index;
    SYBILTD_CHECK(class_index < kClassCount,
                  "workspace borrow exceeds the largest size class");
  }
  return class_index;
}

void* Workspace::acquire(std::size_t bytes, std::size_t* class_index) {
  const std::size_t cls = class_for(bytes);
  *class_index = cls;
  void* raw = nullptr;
  auto& bucket = pool_[cls];
  if (!bucket.empty()) {
    raw = bucket.back();
    bucket.pop_back();
    --stats_.pooled_buffers;
    stats_.pooled_bytes -= class_bytes(cls);
  } else {
    raw = ::operator new(class_bytes(cls));
    ++stats_.heap_allocations;
    stats_.heap_bytes += class_bytes(cls);
  }
  ++stats_.borrows;
  ++stats_.live_borrows;
  return raw;
}

void Workspace::release(void* raw, std::size_t class_index,
                        std::uint64_t generation) {
  if (generation != generation_) {
    // Borrowed across an end_task_scope() boundary: the arena already
    // disowned this buffer, so send it straight back to the heap.
    ::operator delete(raw);
    ++stats_.orphaned;
    return;
  }
  pool_[class_index].push_back(raw);
  ++stats_.pooled_buffers;
  stats_.pooled_bytes += class_bytes(class_index);
  --stats_.live_borrows;
}

void Workspace::end_task_scope() {
  if (stats_.live_borrows != 0) {
    // A task leaked a borrow.  Disown the outstanding buffers (their
    // release will hit the generation check above) so the next task starts
    // from a clean arena.
    ++generation_;
    stats_.live_borrows = 0;
  }
}

void Workspace::trim() {
  for (auto& bucket : pool_) {
    for (void* raw : bucket) ::operator delete(raw);
    bucket.clear();
  }
  stats_.pooled_buffers = 0;
  stats_.pooled_bytes = 0;
}

}  // namespace sybiltd
