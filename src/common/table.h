// Plain-text table rendering for the benchmark harness.
//
// Every table/figure bench prints its rows through TextTable so the output
// lines up with the layout the paper uses (e.g. Table I) and stays easy to
// diff between runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sybiltd {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Append a row; must match the header width.
  void add_row(std::vector<std::string> cells);
  // Convenience: format doubles with fixed precision; NaN renders as "x"
  // (the paper's marker for "no submission").
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Format a double with fixed precision; NaN renders as "x".
std::string format_cell(double value, int precision = 2);

// Write rows of doubles as CSV (used by benches to emit plottable series).
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<double>>& rows,
                   int precision = 6);

}  // namespace sybiltd
