#include "common/linalg.h"

#include <cmath>

#include "common/error.h"

namespace sybiltd {

Matrix cholesky_decompose(const Matrix& a) {
  SYBILTD_CHECK(a.rows() == a.cols(), "Cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix lower(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= lower(i, k) * lower(j, k);
      }
      if (i == j) {
        SYBILTD_CHECK(sum > 0.0, "matrix is not positive definite");
        lower(i, j) = std::sqrt(sum);
      } else {
        lower(i, j) = sum / lower(j, j);
      }
    }
  }
  return lower;
}

std::vector<double> cholesky_solve(const Matrix& lower,
                                   std::span<const double> b) {
  const std::size_t n = lower.rows();
  SYBILTD_CHECK(lower.cols() == n && b.size() == n,
                "Cholesky solve shape mismatch");
  // Forward substitution: L·y = b.
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= lower(i, k) * y[k];
    y[i] = sum / lower(i, i);
  }
  // Back substitution: Lᵀ·x = y.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= lower(k, i) * x[k];
    x[i] = sum / lower(i, i);
  }
  return x;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b,
                              double ridge) {
  Matrix regularized = a;
  if (ridge > 0.0) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      regularized(i, i) += ridge;
    }
  }
  return cholesky_solve(cholesky_decompose(regularized), b);
}

}  // namespace sybiltd
