#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace sybiltd {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SYBILTD_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  SYBILTD_CHECK(cells.size() == header_.size(),
                "row width does not match header");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  SYBILTD_CHECK(values.size() + 1 == header_.size(),
                "row width does not match header");
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_cell(v, precision));
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << "\n";
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string format_cell(double value, int precision) {
  if (std::isnan(value)) return "x";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<double>>& rows,
                   int precision) {
  std::ostringstream os;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c > 0) os << ",";
    os << header[c];
  }
  os << "\n";
  os << std::fixed << std::setprecision(precision);
  for (const auto& row : rows) {
    SYBILTD_CHECK(row.size() == header.size(), "csv row width mismatch");
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      if (std::isnan(row[c])) {
        os << "";
      } else {
        os << row[c];
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sybiltd
