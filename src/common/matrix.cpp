#include "common/matrix.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace sybiltd {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    SYBILTD_CHECK(r.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    SYBILTD_CHECK(rows[r].size() == m.cols_, "ragged rows in from_rows");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  SYBILTD_CHECK(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  SYBILTD_CHECK(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  SYBILTD_CHECK(r < rows_, "Matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  SYBILTD_CHECK(r < rows_, "Matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::col(std::size_t c) const {
  SYBILTD_CHECK(c < cols_, "Matrix col out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  SYBILTD_CHECK(cols_ == rhs.rows_, "Matrix product shape mismatch");
  Matrix out(rows_, rhs.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  SYBILTD_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "Matrix sum shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  SYBILTD_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "Matrix difference shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  SYBILTD_CHECK(v.size() == cols_, "Matrix·vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    auto rr = row(r);
    for (std::size_t c = 0; c < cols_; ++c) acc += rr[c] * v[c];
    out[r] = acc;
  }
  return out;
}

double Matrix::distance_frobenius(const Matrix& rhs) const {
  SYBILTD_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "Frobenius distance shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - rhs.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::vector<double> Matrix::column_means() const {
  std::vector<double> means(cols_, 0.0);
  if (rows_ == 0) return means;
  for (std::size_t r = 0; r < rows_; ++r) {
    auto rr = row(r);
    for (std::size_t c = 0; c < cols_; ++c) means[c] += rr[c];
  }
  for (double& m : means) m /= static_cast<double>(rows_);
  return means;
}

void Matrix::subtract_row_vector(std::span<const double> v) {
  SYBILTD_CHECK(v.size() == cols_, "row-vector subtraction shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    auto rr = row(r);
    for (std::size_t c = 0; c < cols_; ++c) rr[c] -= v[c];
  }
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace sybiltd
