#include "candidate/cascade.h"

#include <algorithm>

namespace sybiltd::candidate {

void CascadeStats::count(CascadeOutcome outcome) {
  ++evaluated;
  switch (outcome) {
    case CascadeOutcome::kEmptySeries:
      ++empty_series;
      break;
    case CascadeOutcome::kEndpointPruned:
      ++endpoint_pruned;
      break;
    case CascadeOutcome::kEnvelopePruned:
      ++envelope_pruned;
      break;
    case CascadeOutcome::kKeoghPruned:
      ++keogh_pruned;
      break;
    case CascadeOutcome::kTaskAbandoned:
      ++task_abandoned;
      break;
    case CascadeOutcome::kExact:
      ++exact_pairs;
      break;
  }
}

double LbCascade::term_dtw(std::span<const double> a,
                           std::span<const double> b) const {
  if (options_.approximate) {
    return dtw::fast_dtw(a, b, options_.fast_dtw).total_cost;
  }
  return dtw::dtw_total_cost(a, b, options_.dtw);
}

CascadeOutcome LbCascade::evaluate(std::size_t i, std::size_t j,
                                   double* dissimilarity) const {
  const std::vector<double>& xi = xs_[i];
  const std::vector<double>& xj = xs_[j];
  const std::vector<double>& yi = ys_[i];
  const std::vector<double>& yj = ys_[j];
  if (xi.empty() || xj.empty()) return CascadeOutcome::kEmptySeries;
  const double phi = options_.phi;

  // Stage 1: endpoint bounds, O(1).
  double bx = dtw::endpoint_lower_bound(xi, xj);
  double by = dtw::endpoint_lower_bound(yi, yj);
  if (bx + by >= phi) return CascadeOutcome::kEndpointPruned;

  // Stage 2: whole-series envelope bounds, O(len) per direction.
  bx = std::max(bx, envelope_bound(xi, fps_[j].task));
  bx = std::max(bx, envelope_bound(xj, fps_[i].task));
  by = std::max(by, envelope_bound(yi, fps_[j].time));
  by = std::max(by, envelope_bound(yj, fps_[i].time));
  if (bx + by >= phi) return CascadeOutcome::kEnvelopePruned;

  // Stage 3: strict LB_Keogh under the configured band (equal lengths only;
  // the x and y series of one account always have the same length).
  if (options_.dtw.band > 0 && xi.size() == xj.size()) {
    bx = std::max(bx, dtw::lb_keogh(xi, xj, options_.dtw.band));
    bx = std::max(bx, dtw::lb_keogh(xj, xi, options_.dtw.band));
    by = std::max(by, dtw::lb_keogh(yi, yj, options_.dtw.band));
    by = std::max(by, dtw::lb_keogh(yj, yi, options_.dtw.band));
    if (bx + by >= phi) return CascadeOutcome::kKeoghPruned;
  }

  // Stage 4: exact (or FastDTW) terms, task series first — the time term
  // can only add.
  const double task_d = term_dtw(xi, xj);
  if (task_d >= phi) return CascadeOutcome::kTaskAbandoned;
  *dissimilarity = task_d + term_dtw(yi, yj);
  return CascadeOutcome::kExact;
}

}  // namespace sybiltd::candidate
