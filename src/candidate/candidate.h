// Candidate-generation policy shared by the grouping methods and the
// pipeline's incremental regroup path.
//
// Three modes:
//   * kOff  — every consumer takes its pre-candidate all-pairs code path,
//     byte-for-byte (the escape hatch; also `SYBILTD_CANDIDATES=off`).
//   * kAuto — candidate generation engages once a campaign has at least
//     `min_accounts` accounts; small campaigns keep the legacy paths,
//     which are already fast there and pin down historical behavior.
//   * kOn   — candidate generation runs at every size (used by tests and
//     the recall benchmarks).
//
// The `SYBILTD_CANDIDATES` environment variable (off | auto | on)
// overrides the configured mode and is re-read on every resolve so tests
// and operators can flip it without rebuilding option structs.
#pragma once

#include <cstddef>

namespace sybiltd::candidate {

enum class Mode {
  kOff = 0,
  kAuto,
  kOn,
};

struct Policy {
  Mode mode = Mode::kAuto;
  // kAuto threshold: below this account count the all-pairs paths run.
  std::size_t min_accounts = 512;
};

// `configured` after applying the SYBILTD_CANDIDATES override (unset or
// "auto" keeps the configured mode; unrecognized values throw).
Mode resolve_mode(Mode configured);

// Should the candidate path run for `n` accounts under `policy`?
bool enabled(const Policy& policy, std::size_t n);

}  // namespace sybiltd::candidate
