// Sparse affinity-graph construction for AG-TS: find every account pair
// whose Eq. (6) affinity clears the edge threshold without evaluating the
// dense n x n matrix.
//
// Structure of the problem.  The affinity A(i,j) = (T - 2L)(T + L) / m is
// positive only when T > 2L, i.e. when the intersection dominates the
// symmetric difference; with the non-negative thresholds rho used in
// practice, an edge therefore requires Jaccard similarity
// J = T / (T + L) > 2/3.  That gap is what makes generate-then-verify
// work: the generator only has to surface pairs that *could* be that
// similar, and an exact verification of each candidate keeps the edge set
// truthful.
//
// Three tiers, cheapest first:
//   1. Signature collapse.  Accounts with byte-identical task sets (the
//      Sybil signature: replayed schedules share the exact set) are grouped
//      behind one representative; within such a group every pair has T = s,
//      L = 0, so one affinity check decides all of them and a star of edges
//      to the representative keeps the component intact.  This tier is
//      deterministic and loses nothing.
//   2. Candidate generation over *distinct* sets.  When the number of
//      distinct sets is at most `exact_distinct_cap`, all representative
//      pairs are verified — the join is exact by exhaustion.  Above the
//      cap, MinHash LSH (`bands` bands of `rows` rows, deterministic
//      seeds) surfaces pairs likely to have J > 2/3; a pair with Jaccard J
//      is caught with probability 1 - (1 - J^rows)^bands (>= 0.999 at the
//      default 32 x 4 for J just above 2/3, higher as J grows).  This is
//      the one probabilistic tier, and only for pairs of *different* sets.
//   3. Exact verification.  Every candidate pair's true T (sorted-vector
//      intersection) and L decide the edge; no false positives ever.
//
// The caller supplies the edge predicate, and guarantees it implies
// J > 2/3 (AG-TS checks rho >= 0 before taking this path; rho < 0 keeps
// the dense evaluation, where the necessity argument breaks down).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace sybiltd::candidate {

struct SetJoinOptions {
  std::size_t bands = 32;  // LSH bands ...
  std::size_t rows = 4;    // ... of this many MinHash rows each
  // Verify all representative pairs exhaustively at or below this many
  // distinct task sets (exact join); LSH engages only above it.
  std::size_t exact_distinct_cap = 4096;
  std::uint64_t seed = 0x5359424c54445uLL;  // deterministic hash seed
};

struct SetJoinStats {
  std::size_t accounts = 0;
  std::size_t distinct_sets = 0;   // non-empty distinct task sets
  std::size_t collapsed = 0;       // accounts folded behind a representative
  bool exhaustive = false;         // tier 2 ran exact instead of LSH
  std::size_t candidates = 0;      // representative pairs verified
  std::size_t edges = 0;           // spanning edges emitted
};

// Spanning edges (packed (i << 32) | j with i < j, sorted ascending) of the
// graph { (i,j) : is_edge(T_ij, L_ij) }.  "Spanning" means the connected
// components match the full graph's; within-group stars and cross-
// representative edges stand in for the cliques the dense path would build.
// `task_sets[i]` must be sorted and duplicate-free.
std::vector<std::uint64_t> sparse_affinity_edges(
    const std::vector<std::vector<std::uint32_t>>& task_sets,
    const std::function<bool(std::size_t both, std::size_t alone)>& is_edge,
    const SetJoinOptions& options = {}, SetJoinStats* stats = nullptr);

}  // namespace sybiltd::candidate
