// Endpoint-grid blocking for AG-TR: emit only the account pairs that could
// possibly have dissimilarity below phi, without ever touching the
// remaining pairs.
//
// Exactness argument.  AG-TR's dissimilarity is
//     D(i,j) = DTW(X_i, X_j) + DTW(Y_i, Y_j)
// and each DTW term is bounded below by its endpoint bound, which contains
// the additive terms (x_first_i - x_first_j)^2, (x_last_i - x_last_j)^2
// (and the y twins; when both series are singletons first == last, so the
// single collapsed term carries both coordinates).  Hash every account into
// a 4-d grid over (x.first, x.last, y.first, y.last) with cell width
// w = sqrt(phi).  If two accounts' cells differ by >= 2 along any axis,
// that coordinate pair differs by at least w, so one endpoint term alone is
// >= w^2 = phi, hence D >= phi and the pair can never be an edge.  Emitting
// exactly the pairs within Chebyshev cell distance <= 1 (the 3^4 neighbor
// box) therefore yields 100% recall by construction: blocking never drops a
// true edge, only pairs the exact path would have discarded anyway.
//
// Cost: O(n) to hash + O(occupied cells * 41 + candidates) to enumerate —
// no n^2 term.  Degenerate data (everything in one cell) degrades to the
// all-pairs candidate list, never to a wrong one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "candidate/features.h"

namespace sybiltd::candidate {

struct BlockingStats {
  std::size_t accounts = 0;        // accounts hashed (non-empty series only)
  std::size_t occupied_cells = 0;  // distinct grid cells
  std::size_t largest_cell = 0;    // accounts in the fullest cell
  std::size_t candidates = 0;      // unordered pairs emitted
};

// Unordered pairs (i < j) packed as (i << 32) | j, sorted ascending — the
// same lexicographic order the all-pairs loops visit, which is what keeps
// candidate-mode grouping bit-identical to exact mode.  Accounts with empty
// series are skipped (they are never edges).  phi <= 0 admits no edge at
// all, so the candidate list is empty.
std::vector<std::uint64_t> endpoint_grid_candidates(
    std::span<const TrajectoryFingerprint> fingerprints, double phi,
    BlockingStats* stats = nullptr);

// Pack / unpack helpers shared by the candidate consumers.
inline std::uint64_t pack_pair(std::size_t i, std::size_t j) {
  return (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint64_t>(j);
}
inline std::size_t pair_first(std::uint64_t packed) {
  return static_cast<std::size_t>(packed >> 32);
}
inline std::size_t pair_second(std::uint64_t packed) {
  return static_cast<std::size_t>(packed & 0xffffffffu);
}

}  // namespace sybiltd::candidate
