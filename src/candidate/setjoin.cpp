#include "candidate/setjoin.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "candidate/blocking.h"
#include "common/error.h"
#include "common/thread_pool.h"

namespace sybiltd::candidate {

namespace {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_task_set(const std::vector<std::uint32_t>& set) {
  std::uint64_t h = 0x243f6a8885a308d3ull ^ set.size();
  for (std::uint32_t t : set) h = splitmix64(h ^ t);
  return h;
}

std::size_t intersection_size(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  std::size_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

std::vector<std::uint64_t> sparse_affinity_edges(
    const std::vector<std::vector<std::uint32_t>>& task_sets,
    const std::function<bool(std::size_t both, std::size_t alone)>& is_edge,
    const SetJoinOptions& options, SetJoinStats* stats) {
  const std::size_t n = task_sets.size();
  SYBILTD_CHECK(n < (1ull << 32), "set join packs account ids into 32 bits");
  SYBILTD_CHECK(options.bands > 0 && options.rows > 0,
                "LSH needs at least one band of at least one row");
  SetJoinStats local;
  local.accounts = n;
  std::vector<std::uint64_t> edges;

  // Tier 1: collapse byte-identical task sets behind a representative.
  struct Group {
    std::uint32_t rep = 0;
    std::vector<std::uint32_t> members;  // ascending; members[0] == rep
  };
  std::vector<Group> groups;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash;
  by_hash.reserve(n);
  for (std::size_t a = 0; a < n; ++a) {
    const std::uint64_t h = hash_task_set(task_sets[a]);
    auto& bucket = by_hash[h];
    bool merged = false;
    for (std::uint32_t g : bucket) {
      if (task_sets[groups[g].rep] == task_sets[a]) {
        groups[g].members.push_back(static_cast<std::uint32_t>(a));
        merged = true;
        break;
      }
    }
    if (!merged) {
      bucket.push_back(static_cast<std::uint32_t>(groups.size()));
      groups.push_back(Group{static_cast<std::uint32_t>(a),
                             {static_cast<std::uint32_t>(a)}});
    }
  }
  std::vector<std::uint32_t> reps;  // non-empty distinct sets only
  reps.reserve(groups.size());
  for (const Group& g : groups) {
    if (g.members.size() > 1) {
      local.collapsed += g.members.size() - 1;
      // Identical sets: T = |set|, L = 0 for every within-group pair; one
      // check decides them all, and a star keeps the component connected.
      if (is_edge(task_sets[g.rep].size(), 0)) {
        for (std::size_t k = 1; k < g.members.size(); ++k) {
          edges.push_back(pack_pair(g.rep, g.members[k]));
        }
      }
    }
    if (!task_sets[g.rep].empty()) reps.push_back(g.rep);
  }
  const std::size_t distinct = reps.size();
  local.distinct_sets = distinct;

  // Tier 2: candidate representative pairs (indices into `reps`).
  std::vector<std::uint64_t> candidates;
  if (distinct <= options.exact_distinct_cap) {
    local.exhaustive = true;
    candidates.reserve(ThreadPool::pair_count(distinct));
    for (std::size_t i = 0; i < distinct; ++i) {
      for (std::size_t j = i + 1; j < distinct; ++j) {
        candidates.push_back(pack_pair(i, j));
      }
    }
  } else {
    // MinHash LSH, one band at a time so memory stays O(distinct).  Hash
    // functions are indexed by (band, row) and derived from the fixed seed,
    // so the candidate set is deterministic for a given input.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
    for (std::size_t band = 0; band < options.bands; ++band) {
      buckets.clear();
      buckets.reserve(distinct);
      for (std::size_t d = 0; d < distinct; ++d) {
        const std::vector<std::uint32_t>& set = task_sets[reps[d]];
        std::uint64_t key = 0x9ae16a3b2f90404full ^ band;
        for (std::size_t r = 0; r < options.rows; ++r) {
          const std::uint64_t k = band * options.rows + r;
          std::uint64_t mh = std::numeric_limits<std::uint64_t>::max();
          for (std::uint32_t t : set) {
            mh = std::min(mh, splitmix64(options.seed ^ (k << 32) ^ t));
          }
          key = splitmix64(key ^ mh);
        }
        buckets[key].push_back(static_cast<std::uint32_t>(d));
      }
      for (const auto& [key, members] : buckets) {
        (void)key;
        for (std::size_t a = 0; a < members.size(); ++a) {
          for (std::size_t b = a + 1; b < members.size(); ++b) {
            candidates.push_back(pack_pair(members[a], members[b]));
          }
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }
  local.candidates = candidates.size();

  // Tier 3: exact verification of every candidate (is_edge must be safe to
  // call concurrently; each slot is owned by one task, the fold is serial).
  std::vector<std::uint8_t> keep(candidates.size(), 0);
  parallel_for(candidates.size(), [&](std::size_t k) {
    const std::vector<std::uint32_t>& a = task_sets[reps[pair_first(candidates[k])]];
    const std::vector<std::uint32_t>& b =
        task_sets[reps[pair_second(candidates[k])]];
    const std::size_t both = intersection_size(a, b);
    const std::size_t alone = a.size() + b.size() - 2 * both;
    if (is_edge(both, alone)) keep[k] = 1;
  });
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    if (!keep[k]) continue;
    const std::uint32_t u = reps[pair_first(candidates[k])];
    const std::uint32_t v = reps[pair_second(candidates[k])];
    edges.push_back(u < v ? pack_pair(u, v) : pack_pair(v, u));
  }
  std::sort(edges.begin(), edges.end());
  local.edges = edges.size();
  if (stats != nullptr) *stats = local;
  return edges;
}

}  // namespace sybiltd::candidate
