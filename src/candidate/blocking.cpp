#include "candidate/blocking.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "common/error.h"

namespace sybiltd::candidate {

namespace {

using CellKey = std::array<std::int64_t, 4>;

struct CellKeyHash {
  std::size_t operator()(const CellKey& key) const {
    // splitmix64-style mix of the four coordinates.
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::int64_t c : key) {
      std::uint64_t x = static_cast<std::uint64_t>(c) + h;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebull;
      x ^= x >> 31;
      h = x;
    }
    return static_cast<std::size_t>(h);
  }
};

// The 40 offsets d in {-1,0,1}^4 \ {0} whose first non-zero component is
// positive: every unordered pair of distinct neighboring cells is visited
// exactly once (from its lexicographically smaller endpoint).
std::vector<CellKey> positive_offsets() {
  std::vector<CellKey> offsets;
  for (int a = -1; a <= 1; ++a) {
    for (int b = -1; b <= 1; ++b) {
      for (int c = -1; c <= 1; ++c) {
        for (int d = -1; d <= 1; ++d) {
          const std::array<int, 4> o{a, b, c, d};
          int first_nonzero = 0;
          for (int v : o) {
            if (v != 0) {
              first_nonzero = v;
              break;
            }
          }
          if (first_nonzero == 1) {
            offsets.push_back(CellKey{a, b, c, d});
          }
        }
      }
    }
  }
  return offsets;
}

inline std::int64_t cell_coord(double value, double width) {
  return static_cast<std::int64_t>(std::floor(value / width));
}

}  // namespace

std::vector<std::uint64_t> endpoint_grid_candidates(
    std::span<const TrajectoryFingerprint> fingerprints, double phi,
    BlockingStats* stats) {
  const std::size_t n = fingerprints.size();
  SYBILTD_CHECK(n < (1ull << 32), "blocking packs account ids into 32 bits");
  std::vector<std::uint64_t> candidates;
  BlockingStats local;
  if (phi <= 0.0 || !std::isfinite(phi)) {
    // No pair can satisfy D < phi <= 0 (DTW costs are non-negative), and a
    // non-finite phi has no meaningful cell width; callers gate the latter.
    if (stats != nullptr) *stats = local;
    return candidates;
  }
  const double width = std::sqrt(phi);

  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellKeyHash> grid;
  grid.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TrajectoryFingerprint& fp = fingerprints[i];
    if (fp.empty()) continue;
    ++local.accounts;
    const CellKey key{cell_coord(fp.task.first, width),
                      cell_coord(fp.task.last, width),
                      cell_coord(fp.time.first, width),
                      cell_coord(fp.time.last, width)};
    grid[key].push_back(static_cast<std::uint32_t>(i));
  }
  local.occupied_cells = grid.size();

  const std::vector<CellKey> offsets = positive_offsets();
  for (const auto& [key, members] : grid) {
    local.largest_cell = std::max(local.largest_cell, members.size());
    // Within-cell pairs (members are in ascending account order).
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        candidates.push_back(pack_pair(members[a], members[b]));
      }
    }
    // Cross pairs with each of the 40 lexicographically-larger neighbors.
    for (const CellKey& offset : offsets) {
      const CellKey neighbor{key[0] + offset[0], key[1] + offset[1],
                             key[2] + offset[2], key[3] + offset[3]};
      const auto it = grid.find(neighbor);
      if (it == grid.end()) continue;
      for (std::uint32_t u : members) {
        for (std::uint32_t v : it->second) {
          candidates.push_back(u < v ? pack_pair(u, v) : pack_pair(v, u));
        }
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  local.candidates = candidates.size();
  if (stats != nullptr) *stats = local;
  return candidates;
}

}  // namespace sybiltd::candidate
