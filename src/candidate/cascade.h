// The DTW lower-bound cascade: cheapest-first staged filtering of one
// candidate pair, short-circuiting to "pruned" as soon as any stage's bound
// reaches phi.
//
// Stages, each a valid lower bound on D(i,j) = DTW(X) + DTW(Y) in
// accumulated-squared-cost (total-cost) mode:
//   1. endpoint (LB_Kim flavor)  — O(1): warping aligns first-with-first
//      and last-with-last, so the endpoint squared distances are a floor.
//   2. envelope (degenerate LB_Keogh) — O(len): each element aligns with
//      *something* in the other series, so its distance to [lo, hi] counts.
//      Taken per term as max(endpoint, envelope both directions).
//   3. strict LB_Keogh — O(len), only when a Sakoe-Chiba band is configured
//      and the pair has equal lengths (the bound's validity conditions).
//   4. exact banded DTW, task series first: the time term can only add, so
//      a task cost >= phi abandons the pair before the second DP.
//
// Because the bounds are monotone across stages (each stage takes a max
// with the previous), the cascade prunes a pair if and only if the single
// combined bound the pre-candidate prefilter computed reaches phi — same
// decisions, same surviving pairs, same dissimilarity values, therefore
// bit-identical grouping.  The staging only changes how early the cheap
// rejections exit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "candidate/features.h"
#include "dtw/dtw.h"
#include "dtw/fastdtw.h"

namespace sybiltd::candidate {

enum class CascadeOutcome : std::uint8_t {
  kEmptySeries = 0,    // one side has no reports; never an edge
  kEndpointPruned,     // stage 1 reached phi
  kEnvelopePruned,     // stage 2 reached phi
  kKeoghPruned,        // stage 3 reached phi
  kTaskAbandoned,      // task-series DTW alone reached phi
  kExact,              // both DTW terms evaluated; value returned
};

struct CascadeStats {
  std::size_t evaluated = 0;
  std::size_t empty_series = 0;
  std::size_t endpoint_pruned = 0;
  std::size_t envelope_pruned = 0;
  std::size_t keogh_pruned = 0;
  std::size_t task_abandoned = 0;
  std::size_t exact_pairs = 0;

  std::size_t lb_pruned() const {
    return endpoint_pruned + envelope_pruned + keogh_pruned;
  }
  void count(CascadeOutcome outcome);
};

struct CascadeOptions {
  double phi = 1.0;
  dtw::DtwOptions dtw;       // band forwarded to the exact DP and LB_Keogh
  bool approximate = false;  // FastDTW instead of the exact DP (stage 4)
  dtw::FastDtwOptions fast_dtw;
};

// Stateless evaluator over borrowed per-account series and fingerprints;
// safe to call concurrently from the thread pool.
class LbCascade {
 public:
  LbCascade(std::span<const std::vector<double>> task_series,
            std::span<const std::vector<double>> time_series,
            std::span<const TrajectoryFingerprint> fingerprints,
            const CascadeOptions& options)
      : xs_(task_series),
        ys_(time_series),
        fps_(fingerprints),
        options_(options) {}

  // Evaluate one pair.  On kExact, *dissimilarity holds the total D(i,j)
  // (which may itself still be >= phi — the caller applies the edge rule);
  // on every other outcome it is untouched.
  CascadeOutcome evaluate(std::size_t i, std::size_t j,
                          double* dissimilarity) const;

 private:
  double term_dtw(std::span<const double> a, std::span<const double> b) const;

  std::span<const std::vector<double>> xs_;
  std::span<const std::vector<double>> ys_;
  std::span<const TrajectoryFingerprint> fps_;
  CascadeOptions options_;
};

}  // namespace sybiltd::candidate
