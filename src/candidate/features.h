// Activeness fingerprints: per-account constant-size summaries of the two
// AG-TR series (task-index and timestamp), computed once in O(length) and
// reused by every candidate-generation stage.
//
// A SeriesProfile caches exactly the statistics the DTW lower bounds need:
//   * first/last  — the endpoint bound (LB_Kim flavor): every warping path
//     aligns the two first elements and the two last elements, so
//     (a.first-b.first)^2 + (a.last-b.last)^2 never exceeds the DTW cost.
//   * lo/hi       — the whole-series envelope for the degenerate LB_Keogh
//     bound: each element of one series aligns with *some* element of the
//     other, so its squared distance to [lo, hi] is unbeatable.
// Both statements hold for the accumulated-squared-cost DTW at any pair of
// lengths and any band, which is what makes the blocking grid and the
// cascade exact (see docs/GROUPING.md).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace sybiltd::candidate {

struct SeriesProfile {
  double first = 0.0;
  double last = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t length = 0;
};

SeriesProfile profile_of(std::span<const double> series);

// One fingerprint per account: profiles of the task-index series and the
// timestamp series.  An account with no reports has empty profiles and is
// never a candidate (its DTW dissimilarity is +inf to everything).
struct TrajectoryFingerprint {
  SeriesProfile task;
  SeriesProfile time;

  bool empty() const { return task.length == 0; }
};

// Squared distance of each element of `query` to the [lo, hi] envelope of
// the other series — the degenerate whole-series LB_Keogh.  Bit-identical
// to the bound the pre-candidate AG-TR prefilter computed.
double envelope_bound(std::span<const double> query,
                      const SeriesProfile& candidate);

}  // namespace sybiltd::candidate
