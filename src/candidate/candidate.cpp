#include "candidate/candidate.h"

#include <cstdlib>
#include <string_view>

#include "common/error.h"

namespace sybiltd::candidate {

Mode resolve_mode(Mode configured) {
  const char* env = std::getenv("SYBILTD_CANDIDATES");
  if (env == nullptr) return configured;
  const std::string_view value(env);
  if (value.empty() || value == "auto") return configured;
  if (value == "off" || value == "0" || value == "false") return Mode::kOff;
  if (value == "on" || value == "1" || value == "true") return Mode::kOn;
  SYBILTD_CHECK(false, "SYBILTD_CANDIDATES must be off, auto, or on");
  return configured;
}

bool enabled(const Policy& policy, std::size_t n) {
  switch (resolve_mode(policy.mode)) {
    case Mode::kOff:
      return false;
    case Mode::kOn:
      return true;
    case Mode::kAuto:
      return n >= policy.min_accounts;
  }
  return false;
}

}  // namespace sybiltd::candidate
