#include "candidate/features.h"

namespace sybiltd::candidate {

namespace {
inline double sq(double v) { return v * v; }
}  // namespace

SeriesProfile profile_of(std::span<const double> series) {
  SeriesProfile p;
  p.length = series.size();
  if (series.empty()) return p;
  p.first = series.front();
  p.last = series.back();
  for (double v : series) {
    if (v < p.lo) p.lo = v;
    if (v > p.hi) p.hi = v;
  }
  return p;
}

double envelope_bound(std::span<const double> query,
                      const SeriesProfile& candidate) {
  double bound = 0.0;
  for (double v : query) {
    if (v > candidate.hi) {
      bound += sq(v - candidate.hi);
    } else if (v < candidate.lo) {
      bound += sq(candidate.lo - v);
    }
  }
  return bound;
}

}  // namespace sybiltd::candidate
