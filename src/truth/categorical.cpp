#include "truth/categorical.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sybiltd::truth {

CategoricalTable::CategoricalTable(std::size_t account_count,
                                   std::size_t task_count,
                                   std::size_t label_count)
    : account_count_(account_count),
      task_count_(task_count),
      label_count_(label_count),
      by_task_(task_count),
      by_account_(account_count) {
  SYBILTD_CHECK(label_count_ >= 2, "need at least two labels");
}

void CategoricalTable::add(std::size_t account, std::size_t task,
                           std::size_t label_id) {
  SYBILTD_CHECK(account < account_count_, "account index out of range");
  SYBILTD_CHECK(task < task_count_, "task index out of range");
  SYBILTD_CHECK(label_id < label_count_, "label out of range");
  SYBILTD_CHECK(!label(account, task).has_value(),
                "one account may label a task at most once");
  const std::size_t idx = observations_.size();
  observations_.push_back({account, task, label_id});
  by_task_[task].push_back(idx);
  by_account_[account].push_back(idx);
}

std::optional<std::size_t> CategoricalTable::label(std::size_t account,
                                                   std::size_t task) const {
  SYBILTD_CHECK(account < account_count_, "account index out of range");
  SYBILTD_CHECK(task < task_count_, "task index out of range");
  for (std::size_t idx : by_account_[account]) {
    if (observations_[idx].task == task) return observations_[idx].label;
  }
  return std::nullopt;
}

const std::vector<std::size_t>& CategoricalTable::task_observations(
    std::size_t task) const {
  SYBILTD_CHECK(task < task_count_, "task index out of range");
  return by_task_[task];
}

const std::vector<std::size_t>& CategoricalTable::account_observations(
    std::size_t account) const {
  SYBILTD_CHECK(account < account_count_, "account index out of range");
  return by_account_[account];
}

namespace {

// Weighted plurality; ties break toward the smallest label.
std::size_t weighted_plurality(const CategoricalTable& data,
                               std::size_t task,
                               const std::vector<double>& weights) {
  std::vector<double> votes(data.label_count(), 0.0);
  bool any = false;
  for (std::size_t idx : data.task_observations(task)) {
    const auto& obs = data.observations()[idx];
    votes[obs.label] += weights[obs.account];
    any = true;
  }
  if (!any) return kNoLabel;
  std::size_t best = 0;
  for (std::size_t l = 1; l < votes.size(); ++l) {
    if (votes[l] > votes[best]) best = l;
  }
  return best;
}

}  // namespace

CategoricalResult MajorityVote::run(const CategoricalTable& data) const {
  CategoricalResult result;
  result.account_weights.assign(data.account_count(), 1.0);
  result.labels.assign(data.task_count(), kNoLabel);
  for (std::size_t j = 0; j < data.task_count(); ++j) {
    result.labels[j] = weighted_plurality(data, j, result.account_weights);
  }
  result.iterations = 1;
  result.converged = true;
  return result;
}

CategoricalResult CategoricalCrh::run(const CategoricalTable& data) const {
  CategoricalResult result;
  result.account_weights.assign(data.account_count(), 1.0);
  result.labels.assign(data.task_count(), kNoLabel);
  // Init: unweighted plurality.
  for (std::size_t j = 0; j < data.task_count(); ++j) {
    result.labels[j] = weighted_plurality(data, j, result.account_weights);
  }

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Weight estimation: 0/1 losses against the current labels.
    std::vector<double> errors(data.account_count(), 0.0);
    double total = 0.0;
    for (const auto& obs : data.observations()) {
      if (result.labels[obs.task] == kNoLabel) continue;
      if (obs.label != result.labels[obs.task]) errors[obs.account] += 1.0;
    }
    for (std::size_t i = 0; i < data.account_count(); ++i) {
      if (data.account_observations(i).empty()) continue;
      errors[i] = std::max(errors[i], options_.loss_epsilon);
      total += errors[i];
    }
    for (std::size_t i = 0; i < data.account_count(); ++i) {
      if (data.account_observations(i).empty()) {
        result.account_weights[i] = 0.0;
      } else {
        result.account_weights[i] = std::log(total / errors[i]);
        if (result.account_weights[i] <= 0.0) result.account_weights[i] = 1.0;
      }
    }
    // Truth estimation: weighted plurality.
    bool changed = false;
    for (std::size_t j = 0; j < data.task_count(); ++j) {
      const std::size_t next =
          weighted_plurality(data, j, result.account_weights);
      if (next != result.labels[j]) changed = true;
      result.labels[j] = next;
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<std::vector<double>> DawidSkene::posteriors(
    const CategoricalTable& data) const {
  const std::size_t n_tasks = data.task_count();
  const std::size_t n_accounts = data.account_count();
  const std::size_t n_labels = data.label_count();

  // Initialize posteriors from vote shares.
  std::vector<std::vector<double>> posterior(
      n_tasks, std::vector<double>(n_labels, 0.0));
  for (std::size_t j = 0; j < n_tasks; ++j) {
    const auto& obs_idx = data.task_observations(j);
    if (obs_idx.empty()) continue;
    for (std::size_t idx : obs_idx) {
      posterior[j][data.observations()[idx].label] += 1.0;
    }
    for (double& p : posterior[j]) {
      p /= static_cast<double>(obs_idx.size());
    }
  }

  // confusion[i][t][l] = P(account i reports l | truth t)
  std::vector<std::vector<std::vector<double>>> confusion(
      n_accounts, std::vector<std::vector<double>>(
                      n_labels, std::vector<double>(n_labels, 0.0)));
  std::vector<double> prior(n_labels, 1.0 / static_cast<double>(n_labels));

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // M-step: confusion matrices and class priors from soft counts.
    for (auto& per_account : confusion) {
      for (auto& row : per_account) {
        std::fill(row.begin(), row.end(), options_.smoothing);
      }
    }
    std::vector<double> prior_counts(n_labels, options_.smoothing);
    for (const auto& obs : data.observations()) {
      for (std::size_t t = 0; t < n_labels; ++t) {
        confusion[obs.account][t][obs.label] += posterior[obs.task][t];
      }
    }
    double prior_total = 0.0;
    for (std::size_t j = 0; j < n_tasks; ++j) {
      for (std::size_t t = 0; t < n_labels; ++t) {
        prior_counts[t] += posterior[j][t];
      }
    }
    for (double c : prior_counts) prior_total += c;
    for (std::size_t t = 0; t < n_labels; ++t) {
      prior[t] = prior_counts[t] / prior_total;
    }
    for (auto& per_account : confusion) {
      for (auto& row : per_account) {
        double row_total = 0.0;
        for (double c : row) row_total += c;
        for (double& c : row) c /= row_total;
      }
    }

    // E-step: task posteriors from the likelihood of the observed labels.
    double max_change = 0.0;
    for (std::size_t j = 0; j < n_tasks; ++j) {
      const auto& obs_idx = data.task_observations(j);
      if (obs_idx.empty()) continue;
      std::vector<double> log_post(n_labels, 0.0);
      for (std::size_t t = 0; t < n_labels; ++t) {
        log_post[t] = std::log(std::max(prior[t], 1e-12));
        for (std::size_t idx : obs_idx) {
          const auto& obs = data.observations()[idx];
          log_post[t] +=
              std::log(std::max(confusion[obs.account][t][obs.label],
                                1e-12));
        }
      }
      const double max_log =
          *std::max_element(log_post.begin(), log_post.end());
      double norm = 0.0;
      std::vector<double> next(n_labels);
      for (std::size_t t = 0; t < n_labels; ++t) {
        next[t] = std::exp(log_post[t] - max_log);
        norm += next[t];
      }
      for (std::size_t t = 0; t < n_labels; ++t) {
        next[t] /= norm;
        max_change = std::max(max_change,
                              std::abs(next[t] - posterior[j][t]));
        posterior[j][t] = next[t];
      }
    }
    if (max_change < options_.tolerance) break;
  }
  return posterior;
}

CategoricalResult DawidSkene::run(const CategoricalTable& data) const {
  const auto posterior = posteriors(data);
  CategoricalResult result;
  result.labels.assign(data.task_count(), kNoLabel);
  for (std::size_t j = 0; j < data.task_count(); ++j) {
    if (data.task_observations(j).empty()) continue;
    result.labels[j] = static_cast<std::size_t>(
        std::max_element(posterior[j].begin(), posterior[j].end()) -
        posterior[j].begin());
  }
  // Account accuracy estimate: posterior-weighted agreement rate.
  result.account_weights.assign(data.account_count(), 0.0);
  std::vector<double> mass(data.account_count(), 0.0);
  for (const auto& obs : data.observations()) {
    result.account_weights[obs.account] += posterior[obs.task][obs.label];
    mass[obs.account] += 1.0;
  }
  for (std::size_t i = 0; i < data.account_count(); ++i) {
    if (mass[i] > 0.0) result.account_weights[i] /= mass[i];
  }
  result.iterations = options_.max_iterations;
  result.converged = true;
  return result;
}

}  // namespace sybiltd::truth
