// CATD — Confidence-Aware Truth Discovery (Li et al., VLDB'14), reference
// [9] of the paper.  Designed for long-tail participation: an account's
// weight is the upper bound of the (1-α) chi-squared confidence interval on
// its error variance, so accounts with few observations are not over-trusted:
//     w_i = chi2_inv(1 - alpha/2, n_i) / sum_j loss_ij
#pragma once

#include "truth/truth_discovery.h"

namespace sybiltd::truth {

struct CatdOptions {
  ConvergenceOptions convergence;
  double alpha = 0.05;       // confidence level of the interval
  double loss_epsilon = 1e-6;
};

class Catd final : public TruthDiscovery {
 public:
  explicit Catd(CatdOptions options = {}) : options_(options) {}
  std::string name() const override { return "CATD"; }
  Result run(const ObservationTable& data) const override;

 private:
  CatdOptions options_;
};

// Chi-squared quantile via the Wilson–Hilferty transformation; accurate to
// a few permille for k >= 1, which is ample for weighting purposes.
double chi_squared_quantile(double p, double k);
// Standard normal quantile (Acklam's rational approximation).
double standard_normal_quantile(double p);

}  // namespace sybiltd::truth
