// The sparse account × task observation table all truth discovery
// algorithms consume.  Accounts and tasks are dense indices; a task may
// have any subset of accounts reporting (the paper's "x" cells are simply
// absent observations).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace sybiltd::truth {

struct Observation {
  std::size_t account = 0;
  std::size_t task = 0;
  double value = 0.0;
};

class ObservationTable {
 public:
  ObservationTable(std::size_t account_count, std::size_t task_count);

  std::size_t account_count() const { return account_count_; }
  std::size_t task_count() const { return task_count_; }
  std::size_t observation_count() const { return observations_.size(); }

  // Each (account, task) pair may be reported at most once, matching the
  // paper's "each account submits at most one data per task" rule.
  void add(std::size_t account, std::size_t task, double value);
  std::optional<double> value(std::size_t account, std::size_t task) const;
  bool has(std::size_t account, std::size_t task) const;

  const std::vector<Observation>& observations() const {
    return observations_;
  }
  // Indices into observations() for one task / one account.
  const std::vector<std::size_t>& task_observations(std::size_t task) const;
  const std::vector<std::size_t>& account_observations(
      std::size_t account) const;

  // Accounts that reported task `task` (U_j in the paper).
  std::vector<std::size_t> accounts_for_task(std::size_t task) const;
  // Tasks account `account` performed (T_i in the paper).
  std::vector<std::size_t> tasks_for_account(std::size_t account) const;

  // Population stddev of the values reported for a task (used by CRH-style
  // loss normalization); 0 when fewer than 2 observations.
  double task_stddev(std::size_t task) const;
  // Arithmetic mean of the values reported for a task; NaN when empty.
  double task_mean(std::size_t task) const;

 private:
  std::size_t account_count_;
  std::size_t task_count_;
  std::vector<Observation> observations_;
  std::vector<std::vector<std::size_t>> by_task_;
  std::vector<std::vector<std::size_t>> by_account_;
};

}  // namespace sybiltd::truth
