#include "truth/truthfinder.h"

#include <algorithm>
#include <cmath>

namespace sybiltd::truth {

Result TruthFinder::run(const ObservationTable& data) const {
  const std::size_t n_tasks = data.task_count();
  const std::size_t n_accounts = data.account_count();

  Result result;
  result.truths.assign(n_tasks, nan_value());
  result.account_weights.assign(n_accounts, options_.initial_trust);

  // Kernel bandwidth per task: the spread of its reports.
  std::vector<double> bandwidth(n_tasks, 1.0);
  for (std::size_t j = 0; j < n_tasks; ++j) {
    const double sd = data.task_stddev(j);
    bandwidth[j] = sd > 1e-12 ? sd : 1.0;
  }

  std::vector<double> trust(n_accounts, options_.initial_trust);
  std::vector<double> confidence(data.observation_count(), 0.0);
  std::vector<double> prev_truths(n_tasks, nan_value());

  for (std::size_t iter = 0; iter < options_.convergence.max_iterations;
       ++iter) {
    result.iterations = iter + 1;

    // Trust scores tau = -ln(1 - t).
    std::vector<double> tau(n_accounts, 0.0);
    for (std::size_t i = 0; i < n_accounts; ++i) {
      const double t = std::min(trust[i], options_.trust_cap);
      tau[i] = -std::log(1.0 - t);
    }

    // Confidence of each observation: Gaussian-kernel weighted trust mass
    // of the reports agreeing with it on the same task.
    for (std::size_t j = 0; j < n_tasks; ++j) {
      const auto& obs_idx = data.task_observations(j);
      const double h = bandwidth[j];
      for (std::size_t a : obs_idx) {
        const double va = data.observations()[a].value;
        double support = 0.0;
        for (std::size_t b : obs_idx) {
          const Observation& ob = data.observations()[b];
          const double diff = (va - ob.value) / h;
          const double kernel =
              std::max(std::exp(-0.5 * diff * diff), options_.kernel_floor);
          support += tau[ob.account] * kernel;
        }
        confidence[a] = 1.0 - std::exp(-options_.gamma * support);
      }
    }

    // Trust update (damped mean of claim confidences).
    for (std::size_t i = 0; i < n_accounts; ++i) {
      const auto& obs_idx = data.account_observations(i);
      if (obs_idx.empty()) {
        trust[i] = 0.0;
        continue;
      }
      double mean_conf = 0.0;
      for (std::size_t idx : obs_idx) mean_conf += confidence[idx];
      mean_conf /= static_cast<double>(obs_idx.size());
      trust[i] = options_.rho * trust[i] + (1.0 - options_.rho) * mean_conf;
    }

    // Truth estimate: confidence-weighted mean per task.
    for (std::size_t j = 0; j < n_tasks; ++j) {
      double num = 0.0, den = 0.0;
      for (std::size_t idx : data.task_observations(j)) {
        num += confidence[idx] * data.observations()[idx].value;
        den += confidence[idx];
      }
      result.truths[j] = den > 0.0 ? num / den : nan_value();
    }

    const double delta = max_abs_difference(prev_truths, result.truths);
    prev_truths = result.truths;
    if (iter > 0 && delta < options_.convergence.truth_tolerance) {
      result.converged = true;
      break;
    }
  }
  result.account_weights = trust;
  return result;
}

}  // namespace sybiltd::truth
