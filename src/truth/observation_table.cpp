#include "truth/observation_table.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/stats.h"

namespace sybiltd::truth {

ObservationTable::ObservationTable(std::size_t account_count,
                                   std::size_t task_count)
    : account_count_(account_count),
      task_count_(task_count),
      by_task_(task_count),
      by_account_(account_count) {}

void ObservationTable::add(std::size_t account, std::size_t task,
                           double value) {
  SYBILTD_CHECK(account < account_count_, "account index out of range");
  SYBILTD_CHECK(task < task_count_, "task index out of range");
  SYBILTD_CHECK(!std::isnan(value), "observation value must not be NaN");
  SYBILTD_CHECK(!has(account, task),
                "one account may report a task at most once");
  const std::size_t idx = observations_.size();
  observations_.push_back({account, task, value});
  by_task_[task].push_back(idx);
  by_account_[account].push_back(idx);
}

std::optional<double> ObservationTable::value(std::size_t account,
                                              std::size_t task) const {
  SYBILTD_CHECK(account < account_count_, "account index out of range");
  SYBILTD_CHECK(task < task_count_, "task index out of range");
  for (std::size_t idx : by_account_[account]) {
    if (observations_[idx].task == task) return observations_[idx].value;
  }
  return std::nullopt;
}

bool ObservationTable::has(std::size_t account, std::size_t task) const {
  return value(account, task).has_value();
}

const std::vector<std::size_t>& ObservationTable::task_observations(
    std::size_t task) const {
  SYBILTD_CHECK(task < task_count_, "task index out of range");
  return by_task_[task];
}

const std::vector<std::size_t>& ObservationTable::account_observations(
    std::size_t account) const {
  SYBILTD_CHECK(account < account_count_, "account index out of range");
  return by_account_[account];
}

std::vector<std::size_t> ObservationTable::accounts_for_task(
    std::size_t task) const {
  std::vector<std::size_t> accounts;
  for (std::size_t idx : task_observations(task)) {
    accounts.push_back(observations_[idx].account);
  }
  return accounts;
}

std::vector<std::size_t> ObservationTable::tasks_for_account(
    std::size_t account) const {
  std::vector<std::size_t> tasks;
  for (std::size_t idx : account_observations(account)) {
    tasks.push_back(observations_[idx].task);
  }
  return tasks;
}

double ObservationTable::task_stddev(std::size_t task) const {
  std::vector<double> values;
  for (std::size_t idx : task_observations(task)) {
    values.push_back(observations_[idx].value);
  }
  if (values.size() < 2) return 0.0;
  return stddev(values);
}

double ObservationTable::task_mean(std::size_t task) const {
  std::vector<double> values;
  for (std::size_t idx : task_observations(task)) {
    values.push_back(observations_[idx].value);
  }
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  return mean(values);
}

}  // namespace sybiltd::truth
