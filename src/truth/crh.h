// CRH — Conflict Resolution on Heterogeneous data (Li et al., SIGMOD'14),
// the representative truth discovery baseline the paper attacks.
//
// Loss of account i on task j:  (d_ij - truth_j)^2 / std_j  (std-normalized
// squared loss for continuous data).  Weight update:
//     w_i = log( sum over all accounts of loss / loss_i )
// Truth update: weight-weighted mean per task.  Initialization: per-task
// mean (the paper's Algorithm 1 says random; the CRH paper uses mean/median
// — we default to mean and expose random init for the ablation bench).
#pragma once

#include <cstdint>

#include "truth/truth_discovery.h"

namespace sybiltd::truth {

struct CrhOptions {
  ConvergenceOptions convergence;
  // Floor applied to each account's total loss so perfect agreement does not
  // produce an infinite weight.
  double loss_epsilon = 1e-6;
  bool random_init = false;        // ablation: Algorithm 1's random guess
  std::uint64_t init_seed = 7;     // used only when random_init
};

class Crh final : public TruthDiscovery {
 public:
  explicit Crh(CrhOptions options = {}) : options_(options) {}
  std::string name() const override { return "CRH"; }
  Result run(const ObservationTable& data) const override;

 private:
  CrhOptions options_;
};

}  // namespace sybiltd::truth
