// Aggregation baselines that do not model account reliability: the plain
// mean and the median.  Useful both as comparison points in benches and as
// oracles in tests (CRH on clean symmetric data should approach the mean).
#pragma once

#include "truth/truth_discovery.h"

namespace sybiltd::truth {

class MeanAggregator final : public TruthDiscovery {
 public:
  std::string name() const override { return "Mean"; }
  Result run(const ObservationTable& data) const override;
};

class MedianAggregator final : public TruthDiscovery {
 public:
  std::string name() const override { return "Median"; }
  Result run(const ObservationTable& data) const override;
};

}  // namespace sybiltd::truth
