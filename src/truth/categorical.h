// Categorical truth discovery (extension).
//
// The paper's framework targets numerical sensing data, but much of the
// truth discovery literature it builds on (TruthFinder [34], Dawid–Skene)
// is categorical: tasks have one of L discrete labels ("is parking
// available?", "which species?").  This module provides the categorical
// substrate — majority vote, a CRH-style weighted-plurality algorithm, and
// Dawid–Skene EM with per-account confusion matrices — which
// core/categorical_framework.h lifts to a Sybil-resistant variant.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace sybiltd::truth {

inline constexpr std::size_t kNoLabel = static_cast<std::size_t>(-1);

struct CategoricalObservation {
  std::size_t account = 0;
  std::size_t task = 0;
  std::size_t label = 0;
};

class CategoricalTable {
 public:
  CategoricalTable(std::size_t account_count, std::size_t task_count,
                   std::size_t label_count);

  std::size_t account_count() const { return account_count_; }
  std::size_t task_count() const { return task_count_; }
  std::size_t label_count() const { return label_count_; }
  std::size_t observation_count() const { return observations_.size(); }

  // At most one report per (account, task) pair.
  void add(std::size_t account, std::size_t task, std::size_t label);
  std::optional<std::size_t> label(std::size_t account,
                                   std::size_t task) const;

  const std::vector<CategoricalObservation>& observations() const {
    return observations_;
  }
  const std::vector<std::size_t>& task_observations(std::size_t task) const;
  const std::vector<std::size_t>& account_observations(
      std::size_t account) const;

 private:
  std::size_t account_count_;
  std::size_t task_count_;
  std::size_t label_count_;
  std::vector<CategoricalObservation> observations_;
  std::vector<std::vector<std::size_t>> by_task_;
  std::vector<std::vector<std::size_t>> by_account_;
};

struct CategoricalResult {
  std::vector<std::size_t> labels;      // per task; kNoLabel if unobserved
  std::vector<double> account_weights;  // algorithm-specific scale
  std::size_t iterations = 0;
  bool converged = false;
};

class CategoricalTruthDiscovery {
 public:
  virtual ~CategoricalTruthDiscovery() = default;
  virtual std::string name() const = 0;
  virtual CategoricalResult run(const CategoricalTable& data) const = 0;
};

// Unweighted plurality per task; ties break toward the smallest label.
class MajorityVote final : public CategoricalTruthDiscovery {
 public:
  std::string name() const override { return "MajorityVote"; }
  CategoricalResult run(const CategoricalTable& data) const override;
};

// CRH with 0/1 loss: weight = log(total_errors / own_errors), truth =
// weighted plurality; initialization by unweighted plurality.
struct CategoricalCrhOptions {
  std::size_t max_iterations = 50;
  double loss_epsilon = 0.5;  // pseudo-error floor (half a mistake)
};

class CategoricalCrh final : public CategoricalTruthDiscovery {
 public:
  explicit CategoricalCrh(CategoricalCrhOptions options = {})
      : options_(options) {}
  std::string name() const override { return "CategoricalCRH"; }
  CategoricalResult run(const CategoricalTable& data) const override;

 private:
  CategoricalCrhOptions options_;
};

// Dawid & Skene (1979): EM over per-account confusion matrices and
// per-task label posteriors.  account_weights reports the mean diagonal of
// each account's confusion matrix (its estimated accuracy).
struct DawidSkeneOptions {
  std::size_t max_iterations = 50;
  double tolerance = 1e-6;       // max change in task posteriors
  double smoothing = 0.1;        // Laplace smoothing of confusion counts
};

class DawidSkene final : public CategoricalTruthDiscovery {
 public:
  explicit DawidSkene(DawidSkeneOptions options = {}) : options_(options) {}
  std::string name() const override { return "DawidSkene"; }
  CategoricalResult run(const CategoricalTable& data) const override;

  // Full posterior over labels per task (rows sum to 1 where observed).
  std::vector<std::vector<double>> posteriors(
      const CategoricalTable& data) const;

 private:
  DawidSkeneOptions options_;
};

}  // namespace sybiltd::truth
