#include "truth/catd.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sybiltd::truth {

double standard_normal_quantile(double p) {
  SYBILTD_CHECK(p > 0.0 && p < 1.0, "normal quantile needs p in (0,1)");
  // Acklam's rational approximation, |relative error| < 1.15e-9.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double chi_squared_quantile(double p, double k) {
  SYBILTD_CHECK(p > 0.0 && p < 1.0, "chi2 quantile needs p in (0,1)");
  SYBILTD_CHECK(k > 0.0, "chi2 quantile needs k > 0");
  // Wilson–Hilferty: chi2_p(k) ~ k * (1 - 2/(9k) + z_p * sqrt(2/(9k)))^3
  const double z = standard_normal_quantile(p);
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

Result Catd::run(const ObservationTable& data) const {
  const std::size_t n_tasks = data.task_count();
  const std::size_t n_accounts = data.account_count();

  Result result;
  result.truths.assign(n_tasks, nan_value());
  result.account_weights.assign(n_accounts, 1.0);

  std::vector<double> task_norm(n_tasks, 1.0);
  for (std::size_t j = 0; j < n_tasks; ++j) {
    const double sd = data.task_stddev(j);
    task_norm[j] = sd > 1e-12 ? sd : 1.0;
  }
  for (std::size_t j = 0; j < n_tasks; ++j) {
    result.truths[j] = data.task_mean(j);
  }

  std::vector<double> next_truths(n_tasks, nan_value());
  for (std::size_t iter = 0; iter < options_.convergence.max_iterations;
       ++iter) {
    result.iterations = iter + 1;

    // Weight: chi2 upper-tail quantile over the account's loss.
    std::vector<double> losses(n_accounts, 0.0);
    for (const Observation& obs : data.observations()) {
      if (std::isnan(result.truths[obs.task])) continue;
      const double diff =
          (obs.value - result.truths[obs.task]) / task_norm[obs.task];
      losses[obs.account] += diff * diff;
    }
    for (std::size_t i = 0; i < n_accounts; ++i) {
      const std::size_t n_i = data.account_observations(i).size();
      if (n_i == 0) {
        result.account_weights[i] = 0.0;
        continue;
      }
      const double quantile = chi_squared_quantile(
          1.0 - options_.alpha / 2.0, static_cast<double>(n_i));
      result.account_weights[i] =
          quantile / std::max(losses[i], options_.loss_epsilon);
    }

    for (std::size_t j = 0; j < n_tasks; ++j) {
      double num = 0.0, den = 0.0;
      for (std::size_t idx : data.task_observations(j)) {
        const Observation& obs = data.observations()[idx];
        num += result.account_weights[obs.account] * obs.value;
        den += result.account_weights[obs.account];
      }
      next_truths[j] = den > 0.0 ? num / den : nan_value();
    }

    const double delta = max_abs_difference(result.truths, next_truths);
    result.truths = next_truths;
    if (delta < options_.convergence.truth_tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace sybiltd::truth
