#include "truth/crh.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.h"
#include "common/rng.h"
#include "simd/simd.h"

namespace sybiltd::truth {

double max_abs_difference(const std::vector<double>& a,
                          const std::vector<double>& b) {
  SYBILTD_CHECK(a.size() == b.size(), "truth vectors differ in length");
  // Exact max with NaN pairs skipped — bit-identical at every dispatch
  // level.
  return simd::kernels().max_abs_diff(a.data(), b.data(), a.size());
}

Result Crh::run(const ObservationTable& data) const {
  const std::size_t n_tasks = data.task_count();
  const std::size_t n_accounts = data.account_count();

  Result result;
  result.truths.assign(n_tasks, nan_value());
  result.account_weights.assign(n_accounts, 1.0);

  // Per-task normalizer: std of reported values (1.0 when degenerate), so
  // tasks on different scales contribute comparable losses.
  std::vector<double> task_norm(n_tasks, 1.0);
  for (std::size_t j = 0; j < n_tasks; ++j) {
    const double sd = data.task_stddev(j);
    task_norm[j] = sd > 1e-12 ? sd : 1.0;
  }

  // Initialization.
  if (options_.random_init) {
    Rng rng(options_.init_seed);
    for (std::size_t j = 0; j < n_tasks; ++j) {
      // Min/max fold over the task's observations — no temporary vector.
      bool any = false;
      double lo = 0.0, hi = 0.0;
      for (std::size_t idx : data.task_observations(j)) {
        const double v = data.observations()[idx].value;
        if (!any) {
          lo = hi = v;
          any = true;
        } else {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
      if (!any) continue;
      result.truths[j] = rng.uniform(lo, hi == lo ? lo + 1.0 : hi);
    }
  } else {
    for (std::size_t j = 0; j < n_tasks; ++j) {
      result.truths[j] = data.task_mean(j);
    }
  }

  // Per-task SoA mirrors (contiguous values + account ids in
  // task_observations order) so the reductions below are single kernel
  // calls per task.
  const auto& kernels = simd::kernels();
  const bool vector_level =
      simd::active_level() != simd::Level::kScalar;
  std::vector<std::vector<double>> task_values(n_tasks);
  std::vector<std::vector<std::uint32_t>> task_accounts(n_tasks);
  std::size_t max_task_width = 0;
  for (std::size_t j = 0; j < n_tasks; ++j) {
    const auto& idxs = data.task_observations(j);
    task_values[j].reserve(idxs.size());
    task_accounts[j].reserve(idxs.size());
    for (std::size_t idx : idxs) {
      const Observation& obs = data.observations()[idx];
      task_values[j].push_back(obs.value);
      task_accounts[j].push_back(static_cast<std::uint32_t>(obs.account));
    }
    max_task_width = std::max(max_task_width, idxs.size());
  }

  // Per-iteration scratch, allocated once: the iteration loop itself is
  // heap-allocation-free (asserted in tests/workspace_test.cpp).
  std::vector<double> next_truths(n_tasks, nan_value());
  std::vector<double> losses(n_accounts, 0.0);
  std::vector<double> residuals(max_task_width, 0.0);
  std::vector<double> num(n_tasks, 0.0);
  std::vector<double> den(n_tasks, 0.0);
  for (std::size_t iter = 0; iter < options_.convergence.max_iterations;
       ++iter) {
    result.iterations = iter + 1;

    // --- Weight estimation (Eq. 1 with W = log(sum/·)) ------------------
    std::fill(losses.begin(), losses.end(), 0.0);
    double total_loss = 0.0;
    if (vector_level) {
      // Vector levels accumulate task by task (one residual_sq kernel call
      // per task, serial scatter into the account slots); the per-account
      // sums pick up the observations in (task, index) instead of flat
      // index order, a pure reassociation within the documented envelope.
      for (std::size_t j = 0; j < n_tasks; ++j) {
        if (std::isnan(result.truths[j])) continue;
        const auto& values = task_values[j];
        kernels.residual_sq(values.data(), values.size(), result.truths[j],
                            task_norm[j], residuals.data());
        for (std::size_t i = 0; i < values.size(); ++i) {
          losses[task_accounts[j][i]] += residuals[i];
        }
      }
    } else {
      // The scalar level keeps the original flat observation-order loop so
      // SYBILTD_SIMD=scalar reproduces the pre-SIMD bytes exactly.
      for (const Observation& obs : data.observations()) {
        if (std::isnan(result.truths[obs.task])) continue;
        const double diff =
            (obs.value - result.truths[obs.task]) / task_norm[obs.task];
        losses[obs.account] += diff * diff;
      }
    }
    for (std::size_t i = 0; i < n_accounts; ++i) {
      if (data.account_observations(i).empty()) {
        losses[i] = 0.0;
        continue;
      }
      losses[i] = std::max(losses[i], options_.loss_epsilon);
      total_loss += losses[i];
    }
    for (std::size_t i = 0; i < n_accounts; ++i) {
      if (data.account_observations(i).empty()) {
        result.account_weights[i] = 0.0;
      } else {
        result.account_weights[i] = std::log(total_loss / losses[i]);
        // With a single participating account, total == its own loss and the
        // log collapses to 0; give it unit weight instead.
        if (result.account_weights[i] <= 0.0) result.account_weights[i] = 1.0;
      }
    }

    // --- Truth estimation (Eq. 2) ----------------------------------------
    // Weighted sums through the gather kernel: the scalar table runs the
    // original serial loop; vector levels use the fixed 4-lane tree.
    for (std::size_t j = 0; j < n_tasks; ++j) {
      kernels.weighted_sum_gather(task_values[j].data(),
                                  task_accounts[j].data(),
                                  result.account_weights.data(),
                                  task_values[j].size(), &num[j], &den[j]);
    }
    kernels.safe_divide(num.data(), den.data(), n_tasks,
                        next_truths.data());

    const double delta = max_abs_difference(result.truths, next_truths);
    // Swap instead of copy: next_truths' old contents are fully rewritten
    // at the top of the next iteration.
    std::swap(result.truths, next_truths);
    if (delta < options_.convergence.truth_tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace sybiltd::truth
