#include "truth/baselines.h"

#include "common/stats.h"

namespace sybiltd::truth {

Result MeanAggregator::run(const ObservationTable& data) const {
  Result result;
  result.truths.assign(data.task_count(), nan_value());
  result.account_weights.assign(data.account_count(), 1.0);
  result.iterations = 1;
  result.converged = true;
  for (std::size_t j = 0; j < data.task_count(); ++j) {
    result.truths[j] = data.task_mean(j);
  }
  return result;
}

Result MedianAggregator::run(const ObservationTable& data) const {
  Result result;
  result.truths.assign(data.task_count(), nan_value());
  result.account_weights.assign(data.account_count(), 1.0);
  result.iterations = 1;
  result.converged = true;
  for (std::size_t j = 0; j < data.task_count(); ++j) {
    std::vector<double> values;
    for (std::size_t idx : data.task_observations(j)) {
      values.push_back(data.observations()[idx].value);
    }
    if (!values.empty()) result.truths[j] = median(values);
  }
  return result;
}

}  // namespace sybiltd::truth
