// GTM — a Gaussian Truth Model in the spirit of Zhao & Han's GTM (QDB'12)
// and the "evolving truth" line of work (reference [11] of the paper):
// every account i draws its report for task j from N(truth_j, sigma_i^2).
// EM alternates
//   E-step: truth_j = sum_i d_ij / sigma_i^2  /  sum_i 1 / sigma_i^2
//   M-step: sigma_i^2 = (beta + sum_j (d_ij - truth_j)^2) / (alpha + n_i)
// with a weak inverse-gamma prior (alpha, beta) regularizing small sources.
#pragma once

#include "truth/truth_discovery.h"

namespace sybiltd::truth {

struct GtmOptions {
  ConvergenceOptions convergence;
  double prior_alpha = 1.0;   // pseudo-count of the variance prior
  double prior_beta = 0.25;   // pseudo sum-of-squares (in normalized units)
  double variance_floor = 1e-6;
};

class Gtm final : public TruthDiscovery {
 public:
  explicit Gtm(GtmOptions options = {}) : options_(options) {}
  std::string name() const override { return "GTM"; }
  Result run(const ObservationTable& data) const override;

 private:
  GtmOptions options_;
};

}  // namespace sybiltd::truth
