#include "truth/gtm.h"

#include <algorithm>
#include <cmath>

namespace sybiltd::truth {

Result Gtm::run(const ObservationTable& data) const {
  const std::size_t n_tasks = data.task_count();
  const std::size_t n_accounts = data.account_count();

  Result result;
  result.truths.assign(n_tasks, nan_value());
  result.account_weights.assign(n_accounts, 1.0);

  std::vector<double> task_norm(n_tasks, 1.0);
  for (std::size_t j = 0; j < n_tasks; ++j) {
    const double sd = data.task_stddev(j);
    task_norm[j] = sd > 1e-12 ? sd : 1.0;
  }
  for (std::size_t j = 0; j < n_tasks; ++j) {
    result.truths[j] = data.task_mean(j);
  }

  // sigma^2 per account, in task-normalized units.
  std::vector<double> variance(n_accounts, 1.0);
  std::vector<double> next_truths(n_tasks, nan_value());

  for (std::size_t iter = 0; iter < options_.convergence.max_iterations;
       ++iter) {
    result.iterations = iter + 1;

    // M-step: per-account variance from residuals under the prior.
    std::vector<double> sum_sq(n_accounts, 0.0);
    for (const Observation& obs : data.observations()) {
      if (std::isnan(result.truths[obs.task])) continue;
      const double diff =
          (obs.value - result.truths[obs.task]) / task_norm[obs.task];
      sum_sq[obs.account] += diff * diff;
    }
    for (std::size_t i = 0; i < n_accounts; ++i) {
      const double n_i =
          static_cast<double>(data.account_observations(i).size());
      variance[i] = std::max(
          (options_.prior_beta + sum_sq[i]) / (options_.prior_alpha + n_i),
          options_.variance_floor);
      result.account_weights[i] = n_i > 0.0 ? 1.0 / variance[i] : 0.0;
    }

    // E-step: precision-weighted truth.
    for (std::size_t j = 0; j < n_tasks; ++j) {
      double num = 0.0, den = 0.0;
      for (std::size_t idx : data.task_observations(j)) {
        const Observation& obs = data.observations()[idx];
        const double w = result.account_weights[obs.account];
        num += w * obs.value;
        den += w;
      }
      next_truths[j] = den > 0.0 ? num / den : nan_value();
    }

    const double delta = max_abs_difference(result.truths, next_truths);
    result.truths = next_truths;
    if (delta < options_.convergence.truth_tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace sybiltd::truth
