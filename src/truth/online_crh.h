// Online (incremental) CRH-style truth discovery (extension).
//
// MCS platforms receive submissions as a stream; re-running batch CRH from
// scratch after every report is wasteful, and when the underlying truths
// drift ("evolving truth", reference [11] of the paper) old data should
// fade.  OnlineCrh keeps the observation multiset with exponential decay
// by age and, after each observe() call, refines the current truth/weight
// state with a small number of warm-started CRH iterations.
//
// With decay = 1 and enough refinement iterations the state converges to
// exactly what batch CRH computes on the same data (tested).
#pragma once

#include <cstddef>
#include <vector>

#include "truth/crh.h"

namespace sybiltd::truth {

struct OnlineCrhOptions {
  // Multiplicative decay applied per unit of age (in observe-steps) to an
  // observation's influence; 1 = never forget.
  double decay = 1.0;
  // CRH refinement iterations run after each new observation.
  std::size_t refine_iterations = 2;
  double loss_epsilon = 1e-6;
  // Observations whose decayed influence drops below this are dropped.
  double influence_floor = 1e-4;
};

class OnlineCrh {
 public:
  OnlineCrh(std::size_t account_count, std::size_t task_count,
            OnlineCrhOptions options = {});

  std::size_t account_count() const { return account_count_; }
  std::size_t task_count() const { return task_count_; }
  std::size_t live_observation_count() const { return observations_.size(); }

  // Ingest one report and refine the estimates.
  void observe(std::size_t account, std::size_t task, double value);

  // Current truth estimates (NaN where no live data).
  const std::vector<double>& truths() const { return truths_; }
  // Current account weights (0 for accounts with no live data).
  const std::vector<double>& weights() const { return weights_; }

  // Run extra refinement sweeps (e.g. to force convergence before reading).
  void refine(std::size_t iterations);

 private:
  struct Decayed {
    std::size_t account;
    std::size_t task;
    double value;
    std::size_t born;  // observe-step of arrival
  };

  double influence(const Decayed& obs) const;
  void iterate_once();

  std::size_t account_count_;
  std::size_t task_count_;
  OnlineCrhOptions options_;
  std::vector<Decayed> observations_;
  std::vector<double> truths_;
  std::vector<double> weights_;
  std::size_t step_ = 0;
};

}  // namespace sybiltd::truth
