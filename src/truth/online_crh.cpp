#include "truth/online_crh.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "common/workspace.h"
#include "simd/simd.h"

namespace sybiltd::truth {

OnlineCrh::OnlineCrh(std::size_t account_count, std::size_t task_count,
                     OnlineCrhOptions options)
    : account_count_(account_count),
      task_count_(task_count),
      options_(options),
      truths_(task_count, nan_value()),
      weights_(account_count, 0.0) {
  SYBILTD_CHECK(options_.decay > 0.0 && options_.decay <= 1.0,
                "decay must be in (0, 1]");
  SYBILTD_CHECK(options_.refine_iterations >= 1,
                "need at least one refinement iteration");
}

double OnlineCrh::influence(const Decayed& obs) const {
  return std::pow(options_.decay, static_cast<double>(step_ - obs.born));
}

void OnlineCrh::observe(std::size_t account, std::size_t task,
                        double value) {
  SYBILTD_CHECK(account < account_count_, "account index out of range");
  SYBILTD_CHECK(task < task_count_, "task index out of range");
  SYBILTD_CHECK(!std::isnan(value), "observation value must not be NaN");
  ++step_;
  observations_.push_back({account, task, value, step_});

  // Evict observations whose influence has decayed away.
  if (options_.decay < 1.0) {
    observations_.erase(
        std::remove_if(observations_.begin(), observations_.end(),
                       [&](const Decayed& obs) {
                         return influence(obs) < options_.influence_floor;
                       }),
        observations_.end());
  }

  // Warm start for a fresh task: seed with the incoming value so the first
  // iteration has a defined residual.
  if (std::isnan(truths_[task])) truths_[task] = value;
  refine(options_.refine_iterations);
}

void OnlineCrh::refine(std::size_t iterations) {
  for (std::size_t i = 0; i < iterations; ++i) iterate_once();
}

void OnlineCrh::iterate_once() {
  if (observations_.empty()) return;

  // All per-iteration scratch comes from the per-thread workspace: after
  // the first call every buffer is a warm pool hit, so a steady-state
  // refinement sweep performs zero heap allocations.
  auto& workspace = Workspace::local();

  // Per-task scale (influence-weighted std of live values; 1 if degenerate).
  auto task_stats = workspace.borrow<RunningMoments>(task_count_);
  std::fill(task_stats.begin(), task_stats.end(), RunningMoments{});
  for (const Decayed& obs : observations_) {
    task_stats[obs.task].add(obs.value);
  }
  auto norm = workspace.borrow<double>(task_count_);
  for (std::size_t j = 0; j < task_count_; ++j) {
    const double sd = task_stats[j].stddev();
    norm[j] = sd > 1e-12 ? sd : 1.0;
  }

  // Weight estimation with decayed losses.
  auto losses = workspace.borrow<double>(account_count_);
  auto mass = workspace.borrow<double>(account_count_);
  std::fill(losses.begin(), losses.end(), 0.0);
  std::fill(mass.begin(), mass.end(), 0.0);
  for (const Decayed& obs : observations_) {
    if (std::isnan(truths_[obs.task])) continue;
    const double w = influence(obs);
    const double diff = (obs.value - truths_[obs.task]) / norm[obs.task];
    losses[obs.account] += w * diff * diff;
    mass[obs.account] += w;
  }
  double total_loss = 0.0;
  for (std::size_t i = 0; i < account_count_; ++i) {
    if (mass[i] <= 0.0) continue;
    losses[i] = std::max(losses[i], options_.loss_epsilon);
    total_loss += losses[i];
  }
  for (std::size_t i = 0; i < account_count_; ++i) {
    if (mass[i] <= 0.0) {
      weights_[i] = 0.0;
    } else {
      weights_[i] = std::log(total_loss / losses[i]);
      if (weights_[i] <= 0.0) weights_[i] = 1.0;
    }
  }

  // Truth estimation with decay-weighted, weight-weighted means.
  auto num = workspace.borrow<double>(task_count_);
  auto den = workspace.borrow<double>(task_count_);
  std::fill(num.begin(), num.end(), 0.0);
  std::fill(den.begin(), den.end(), 0.0);
  for (const Decayed& obs : observations_) {
    const double w = influence(obs) * weights_[obs.account];
    num[obs.task] += w * obs.value;
    den[obs.task] += w;
  }
  // Elementwise guarded divide — bit-identical at every dispatch level.
  simd::kernels().safe_divide(num.data(), den.data(), task_count_,
                              truths_.data());
}

}  // namespace sybiltd::truth
