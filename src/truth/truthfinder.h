// TruthFinder (Yin, Han & Yu, TKDE'08 — reference [34] of the paper),
// adapted from categorical facts to numerical sensing data.
//
// Original TruthFinder iterates between source trustworthiness t(i) and
// fact confidence s(f), where facts support each other through an
// implication function.  For numeric values we use a Gaussian kernel as the
// implication: a report v' supports v with strength exp(-(v-v')^2 / 2h^2),
// h being the per-task report spread.  Per iteration:
//   tau(i)  = -ln(1 - t(i))                  (trust score)
//   s(d_ij) = 1 - exp(-gamma * sum_{i' in U_j} tau(i') * K(d_ij, d_i'j))
//   t(i)    = mean over its reports of s(d_ij), damped by rho
// Truths are the confidence-weighted means per task.
#pragma once

#include "truth/truth_discovery.h"

namespace sybiltd::truth {

struct TruthFinderOptions {
  ConvergenceOptions convergence;
  double initial_trust = 0.9;
  double gamma = 0.3;       // dampens the confidence saturation
  double rho = 0.5;         // weight of the previous trust (damping)
  double trust_cap = 1.0 - 1e-9;
  double kernel_floor = 1e-12;
};

class TruthFinder final : public TruthDiscovery {
 public:
  explicit TruthFinder(TruthFinderOptions options = {}) : options_(options) {}
  std::string name() const override { return "TruthFinder"; }
  Result run(const ObservationTable& data) const override;

 private:
  TruthFinderOptions options_;
};

}  // namespace sybiltd::truth
