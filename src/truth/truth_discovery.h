// Common interface of all truth discovery algorithms (Algorithm 1 of the
// paper): iterate weight estimation and truth estimation until convergence.
// Tasks with no observations get a NaN truth.
#pragma once

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "truth/observation_table.h"

namespace sybiltd::truth {

struct ConvergenceOptions {
  std::size_t max_iterations = 100;
  // Converged when the max absolute truth change across tasks drops below
  // this threshold.
  double truth_tolerance = 1e-6;
};

struct Result {
  std::vector<double> truths;           // per task; NaN if unobserved
  std::vector<double> account_weights;  // per account (algorithm-specific scale)
  std::size_t iterations = 0;
  bool converged = false;
};

class TruthDiscovery {
 public:
  virtual ~TruthDiscovery() = default;
  virtual std::string name() const = 0;
  virtual Result run(const ObservationTable& data) const = 0;
};

inline double nan_value() { return std::numeric_limits<double>::quiet_NaN(); }

// Max |a - b| over indices where both are finite; used as the convergence
// measure on successive truth vectors.
double max_abs_difference(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace sybiltd::truth
