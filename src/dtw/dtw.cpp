#include "dtw/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/stats.h"

namespace sybiltd::dtw {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double sq(double x) { return x * x; }

// Effective band: widen to |m-n| so the end cell stays reachable.
std::size_t effective_band(std::size_t m, std::size_t n, std::size_t band) {
  if (band == 0) return std::max(m, n);  // unconstrained
  const std::size_t diff = m > n ? m - n : n - m;
  return std::max(band, diff);
}

}  // namespace

DtwResult dtw_full(std::span<const double> a, std::span<const double> b,
                   const DtwOptions& options) {
  SYBILTD_CHECK(!a.empty() && !b.empty(), "DTW of an empty series");
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t w = effective_band(m, n, options.band);

  // r(i, j) = cost(i, j) + min(r(i-1,j-1), r(i-1,j), r(i,j-1))
  std::vector<double> r(m * n, kInf);
  auto at = [&](std::size_t i, std::size_t j) -> double& {
    return r[i * n + j];
  };

  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j_lo = i > w ? i - w : 0;
    const std::size_t j_hi = std::min(n - 1, i + w);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = sq(a[i] - b[j]);
      double best = kInf;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        if (i > 0 && j > 0) best = std::min(best, at(i - 1, j - 1));
        if (i > 0) best = std::min(best, at(i - 1, j));
        if (j > 0) best = std::min(best, at(i, j - 1));
      }
      at(i, j) = cost + best;
    }
  }
  SYBILTD_ASSERT(at(m - 1, n - 1) < kInf);

  DtwResult result;
  result.total_cost = at(m - 1, n - 1);

  // Recover the optimal path by walking back along minimal predecessors.
  std::size_t i = m - 1, j = n - 1;
  result.path.emplace_back(i, j);
  while (i > 0 || j > 0) {
    double best = kInf;
    std::size_t bi = i, bj = j;
    if (i > 0 && j > 0 && at(i - 1, j - 1) < best) {
      best = at(i - 1, j - 1);
      bi = i - 1;
      bj = j - 1;
    }
    if (i > 0 && at(i - 1, j) < best) {
      best = at(i - 1, j);
      bi = i - 1;
      bj = j;
    }
    if (j > 0 && at(i, j - 1) < best) {
      best = at(i, j - 1);
      bi = i;
      bj = j - 1;
    }
    SYBILTD_ASSERT(best < kInf);
    i = bi;
    j = bj;
    result.path.emplace_back(i, j);
  }
  std::reverse(result.path.begin(), result.path.end());

  result.distance = std::sqrt(result.total_cost /
                              static_cast<double>(result.path.size()));
  return result;
}

double dtw_distance(std::span<const double> a, std::span<const double> b,
                    const DtwOptions& options) {
  SYBILTD_CHECK(!a.empty() && !b.empty(), "DTW of an empty series");
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t w = effective_band(m, n, options.band);

  // Two-row DP carrying (cost, path length) so we can apply Eq. (7)'s
  // normalization without materializing the path.  Ties in cost are broken
  // toward the shorter path, matching the path recovered by dtw_full.
  struct Cell {
    double cost = kInf;
    std::size_t len = 0;
  };
  std::vector<Cell> prev(n), curr(n);

  for (std::size_t i = 0; i < m; ++i) {
    std::fill(curr.begin(), curr.end(), Cell{});
    const std::size_t j_lo = i > w ? i - w : 0;
    const std::size_t j_hi = std::min(n - 1, i + w);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = sq(a[i] - b[j]);
      Cell best{kInf, 0};
      auto consider = [&](const Cell& c) {
        if (c.cost < best.cost ||
            (c.cost == best.cost && c.len < best.len)) {
          best = c;
        }
      };
      if (i == 0 && j == 0) {
        best = {0.0, 0};
      } else {
        if (i > 0 && j > 0) consider(prev[j - 1]);
        if (i > 0) consider(prev[j]);
        if (j > 0) consider(curr[j - 1]);
      }
      curr[j] = {cost + best.cost, best.len + 1};
    }
    std::swap(prev, curr);
  }
  const Cell end = prev[n - 1];
  SYBILTD_ASSERT(end.cost < kInf && end.len > 0);
  return std::sqrt(end.cost / static_cast<double>(end.len));
}

double dtw_distance_znorm(std::span<const double> a,
                          std::span<const double> b,
                          const DtwOptions& options) {
  auto znorm = [](std::span<const double> xs) {
    std::vector<double> out(xs.begin(), xs.end());
    const double mu = mean(xs);
    const double sd = stddev(xs);
    for (double& x : out) x = sd > 1e-12 ? (x - mu) / sd : 0.0;
    return out;
  };
  const auto na = znorm(a);
  const auto nb = znorm(b);
  return dtw_distance(na, nb, options);
}

}  // namespace sybiltd::dtw
