#include "dtw/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/stats.h"
#include "common/workspace.h"
#include "obs/metrics.h"

namespace sybiltd::dtw {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double sq(double x) { return x * x; }

// Full dynamic programs actually run (the pruned ones never get here), so
// the AG-TR lower-bound effectiveness is `dtw.evals` vs `agtr.pairs`.
obs::Counter& dtw_evals() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "dtw.evals", "DTW dynamic programs evaluated");
  return counter;
}

// Effective band: widen to |m-n| so the end cell stays reachable.
std::size_t effective_band(std::size_t m, std::size_t n, std::size_t band) {
  if (band == 0) return std::max(m, n);  // unconstrained
  const std::size_t diff = m > n ? m - n : n - m;
  return std::max(band, diff);
}

// DP cell for the distance-only recursion: (cost, path length), so Eq. (7)
// normalization works without materializing the path.
struct Cell {
  double cost;
  std::size_t len;
};
constexpr Cell kInfCell{kInf, 0};

}  // namespace

DtwResult dtw_full(std::span<const double> a, std::span<const double> b,
                   const DtwOptions& options) {
  SYBILTD_CHECK(!a.empty() && !b.empty(), "DTW of an empty series");
  dtw_evals().inc();
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t w = effective_band(m, n, options.band);

  // r(i, j) = cost(i, j) + min(r(i-1,j-1), r(i-1,j), r(i,j-1)), stored
  // band-only: row i keeps columns [base(i), min(n-1, i+w)], at most
  // min(n, 2w+1) cells, instead of the dense m*n infinity matrix.  Every
  // in-band cell is written before it is read, so no fill is needed;
  // out-of-band reads return infinity from the accessor, exactly as the
  // dense matrix's untouched cells did.
  const std::size_t width = std::min(n, 2 * w + 1);
  auto band_storage = Workspace::local().borrow<double>(m * width);
  double* band = band_storage.data();
  auto base = [&](std::size_t i) { return i > w ? i - w : 0; };
  auto at = [&](std::size_t i, std::size_t j) -> double& {
    return band[i * width + (j - base(i))];
  };
  auto in_band = [&](std::size_t i, std::size_t j) {
    return j >= base(i) && j <= i + w && j < n;
  };
  auto cost_at = [&](std::size_t i, std::size_t j) {
    return in_band(i, j) ? at(i, j) : kInf;
  };

  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j_lo = base(i);
    const std::size_t j_hi = std::min(n - 1, i + w);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = sq(a[i] - b[j]);
      double best = kInf;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        if (i > 0 && j > 0) best = std::min(best, cost_at(i - 1, j - 1));
        if (i > 0) best = std::min(best, cost_at(i - 1, j));
        if (j > 0) best = std::min(best, cost_at(i, j - 1));
      }
      at(i, j) = cost + best;
    }
  }
  SYBILTD_ASSERT(cost_at(m - 1, n - 1) < kInf);

  DtwResult result;
  result.total_cost = at(m - 1, n - 1);

  // Recover the optimal path by walking back along minimal predecessors.
  std::size_t i = m - 1, j = n - 1;
  result.path.emplace_back(i, j);
  while (i > 0 || j > 0) {
    double best = kInf;
    std::size_t bi = i, bj = j;
    if (i > 0 && j > 0 && cost_at(i - 1, j - 1) < best) {
      best = at(i - 1, j - 1);
      bi = i - 1;
      bj = j - 1;
    }
    if (i > 0 && cost_at(i - 1, j) < best) {
      best = at(i - 1, j);
      bi = i - 1;
      bj = j;
    }
    if (j > 0 && cost_at(i, j - 1) < best) {
      best = at(i, j - 1);
      bi = i;
      bj = j - 1;
    }
    SYBILTD_ASSERT(best < kInf);
    i = bi;
    j = bj;
    result.path.emplace_back(i, j);
  }
  std::reverse(result.path.begin(), result.path.end());

  result.distance = std::sqrt(result.total_cost /
                              static_cast<double>(result.path.size()));
  return result;
}

double dtw_distance(std::span<const double> a, std::span<const double> b,
                    const DtwOptions& options) {
  SYBILTD_CHECK(!a.empty() && !b.empty(), "DTW of an empty series");
  dtw_evals().inc();
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t w = effective_band(m, n, options.band);

  // Two rolling rows from the per-thread workspace.  The rows start
  // uninitialized and only the band-edge cells are ever cleared: row i
  // writes its whole band [j_lo, j_hi], so the only cells a later row can
  // read without this row having written them are the two just outside the
  // band (the bands of consecutive rows shift by at most one column).
  // Those get an explicit infinity; everything further out is unreachable.
  auto prev_storage = Workspace::local().borrow<Cell>(n);
  auto curr_storage = Workspace::local().borrow<Cell>(n);
  Cell* prev = prev_storage.data();
  Cell* curr = curr_storage.data();

  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j_lo = i > w ? i - w : 0;
    const std::size_t j_hi = std::min(n - 1, i + w);
    // Left edge: curr[j_lo - 1] is read as this row's in-row predecessor
    // and as the next row's diagonal/vertical predecessor.
    if (j_lo > 0) curr[j_lo - 1] = kInfCell;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = sq(a[i] - b[j]);
      Cell best{kInf, 0};
      auto consider = [&](const Cell& c) {
        if (c.cost < best.cost ||
            (c.cost == best.cost && c.len < best.len)) {
          best = c;
        }
      };
      if (i == 0 && j == 0) {
        best = {0.0, 0};
      } else {
        if (i > 0 && j > 0) consider(prev[j - 1]);
        if (i > 0) consider(prev[j]);
        if (j > 0) consider(curr[j - 1]);
      }
      curr[j] = {cost + best.cost, best.len + 1};
    }
    // Right edge: the next row's band may reach one past this row's.
    if (j_hi + 1 < n) curr[j_hi + 1] = kInfCell;
    std::swap(prev, curr);
  }
  const Cell end = prev[n - 1];
  SYBILTD_ASSERT(end.cost < kInf && end.len > 0);
  return std::sqrt(end.cost / static_cast<double>(end.len));
}

double dtw_distance_znorm(std::span<const double> a,
                          std::span<const double> b,
                          const DtwOptions& options) {
  auto& workspace = Workspace::local();
  auto na = workspace.borrow<double>(a.size());
  auto nb = workspace.borrow<double>(b.size());
  auto znorm = [](std::span<const double> xs, double* out) {
    const double mu = mean(xs);
    const double sd = stddev(xs);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out[i] = sd > 1e-12 ? (xs[i] - mu) / sd : 0.0;
    }
  };
  znorm(a, na.data());
  znorm(b, nb.data());
  return dtw_distance(na.span(), nb.span(), options);
}

}  // namespace sybiltd::dtw
