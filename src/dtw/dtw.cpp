#include "dtw/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/stats.h"
#include "common/workspace.h"
#include "obs/metrics.h"
#include "simd/simd.h"

namespace sybiltd::dtw {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double sq(double x) { return x * x; }

// Full dynamic programs actually run (the pruned ones never get here), so
// the AG-TR lower-bound effectiveness is `dtw.evals` vs `agtr.pairs`.
obs::Counter& dtw_evals() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "dtw.evals", "DTW dynamic programs evaluated");
  return counter;
}

// Effective band: widen to |m-n| so the end cell stays reachable.
std::size_t effective_band(std::size_t m, std::size_t n, std::size_t band) {
  if (band == 0) return std::max(m, n);  // unconstrained
  const std::size_t diff = m > n ? m - n : n - m;
  return std::max(band, diff);
}

// DP cell for the distance-only recursion: (cost, path length), so Eq. (7)
// normalization works without materializing the path.
struct Cell {
  double cost;
  std::size_t len;
};
constexpr Cell kInfCell{kInf, 0};

// --- Diagonal wavefront (vector dispatch levels) ---------------------------
//
// Cells on anti-diagonal d = i + j depend only on diagonals d-1 (the
// vertical (i-1, j) and horizontal (i, j-1) predecessors) and d-2 (the
// diagonal (i-1, j-1) predecessor), so a whole diagonal is computed with
// one SIMD kernel call instead of a serial row scan.  Indexing is by i;
// three rolling buffers of length m+2 hold diagonals d, d-1 and d-2 with
// cell i stored at index i+1, so the i-1 reads at the band edge fall on a
// maintained infinity cell instead of branching.
//
// The in-band range of diagonal d is
//     lo(d) = max(0, d-(n-1), d > w ? ceil((d-w)/2) : 0)
//     hi(d) = min(d, m-1, (d+w)/2)
// Both bounds are non-decreasing in d and hi grows by at most one per
// diagonal, so after computing [lo, hi] it suffices to reset the single
// cell on each side to infinity: every out-of-range read of the next two
// diagonals lands on a freshly maintained edge cell.  The reversed copy of
// b makes the cost row contiguous: b[d-i] == b_rev[n-1-d+i].
//
// The band region is connected (every in-band cell with i+j > 0 has an
// in-band predecessor), so computed cells are always finite and the
// edge cells' {inf, 0} never reaches a finite result; the compare/blend
// tie-break in the kernel then selects exactly the cell the serial
// rolling-row recurrence selects, bit for bit.

struct WaveBounds {
  std::size_t lo;
  std::size_t hi;
};

inline WaveBounds wave_bounds(std::size_t d, std::size_t m, std::size_t n,
                              std::size_t w) {
  std::size_t lo = d >= n ? d - (n - 1) : 0;
  if (d > w) lo = std::max(lo, (d - w + 1) / 2);
  std::size_t hi = std::min(d, m - 1);
  hi = std::min(hi, (d + w) / 2);
  return {lo, hi};
}

double wave_distance(std::span<const double> a, std::span<const double> b,
                     std::size_t w) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const auto& kernels = simd::kernels();
  auto& workspace = Workspace::local();

  auto brev_storage = workspace.borrow<double>(n);
  double* brev = brev_storage.data();
  for (std::size_t t = 0; t < n; ++t) brev[t] = b[n - 1 - t];

  const std::size_t len = m + 2;
  auto c0 = workspace.borrow<double>(len);
  auto c1 = workspace.borrow<double>(len);
  auto c2 = workspace.borrow<double>(len);
  auto l0 = workspace.borrow<double>(len);
  auto l1 = workspace.borrow<double>(len);
  auto l2 = workspace.borrow<double>(len);
  auto cost_storage = workspace.borrow<double>(m);
  double* cost = cost_storage.data();
  double* D0c = c0.data();
  double* D1c = c1.data();
  double* D2c = c2.data();
  double* D0l = l0.data();
  double* D1l = l1.data();
  double* D2l = l2.data();
  std::fill(D0c, D0c + len, kInf);
  std::fill(D1c, D1c + len, kInf);
  std::fill(D2c, D2c + len, kInf);
  std::fill(D0l, D0l + len, 0.0);
  std::fill(D1l, D1l + len, 0.0);
  std::fill(D2l, D2l + len, 0.0);

  for (std::size_t d = 0; d <= m + n - 2; ++d) {
    const auto [lo, hi] = wave_bounds(d, m, n, w);
    const std::size_t count = hi - lo + 1;
    kernels.sq_diff(a.data() + lo, brev + (n - 1 - d + lo), count, cost);
    if (d == 0) {
      D0c[1] = cost[0];
      D0l[1] = 1.0;
    } else {
      kernels.dtw_wave_cell(cost, D2c + lo, D2l + lo, D1c + lo, D1l + lo,
                            D1c + lo + 1, D1l + lo + 1, count, D0c + lo + 1,
                            D0l + lo + 1);
    }
    D0c[lo] = kInf;
    D0l[lo] = 0.0;
    D0c[hi + 2] = kInf;
    D0l[hi + 2] = 0.0;
    double* tc = D2c;
    double* tl = D2l;
    D2c = D1c;
    D2l = D1l;
    D1c = D0c;
    D1l = D0l;
    D0c = tc;
    D0l = tl;
  }
  const double end_cost = D1c[m];
  const double end_len = D1l[m];
  SYBILTD_ASSERT(end_cost < kInf && end_len > 0.0);
  return std::sqrt(end_cost / end_len);
}

double wave_total_cost(std::span<const double> a, std::span<const double> b,
                       std::size_t w) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const auto& kernels = simd::kernels();
  auto& workspace = Workspace::local();

  auto brev_storage = workspace.borrow<double>(n);
  double* brev = brev_storage.data();
  for (std::size_t t = 0; t < n; ++t) brev[t] = b[n - 1 - t];

  const std::size_t len = m + 2;
  auto c0 = workspace.borrow<double>(len);
  auto c1 = workspace.borrow<double>(len);
  auto c2 = workspace.borrow<double>(len);
  auto cost_storage = workspace.borrow<double>(m);
  double* cost = cost_storage.data();
  double* D0 = c0.data();
  double* D1 = c1.data();
  double* D2 = c2.data();
  std::fill(D0, D0 + len, kInf);
  std::fill(D1, D1 + len, kInf);
  std::fill(D2, D2 + len, kInf);

  for (std::size_t d = 0; d <= m + n - 2; ++d) {
    const auto [lo, hi] = wave_bounds(d, m, n, w);
    const std::size_t count = hi - lo + 1;
    kernels.sq_diff(a.data() + lo, brev + (n - 1 - d + lo), count, cost);
    if (d == 0) {
      D0[1] = cost[0];
    } else {
      kernels.dtw_wave_cost(cost, D2 + lo, D1 + lo, D1 + lo + 1, count,
                            D0 + lo + 1);
    }
    D0[lo] = kInf;
    D0[hi + 2] = kInf;
    double* t = D2;
    D2 = D1;
    D1 = D0;
    D0 = t;
  }
  const double end_cost = D1[m];
  SYBILTD_ASSERT(end_cost < kInf);
  return end_cost;
}

}  // namespace

DtwResult dtw_full(std::span<const double> a, std::span<const double> b,
                   const DtwOptions& options) {
  SYBILTD_CHECK(!a.empty() && !b.empty(), "DTW of an empty series");
  dtw_evals().inc();
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t w = effective_band(m, n, options.band);

  // r(i, j) = cost(i, j) + min(r(i-1,j-1), r(i-1,j), r(i,j-1)), stored
  // band-only: row i keeps columns [base(i), min(n-1, i+w)], at most
  // min(n, 2w+1) cells, instead of the dense m*n infinity matrix.  Every
  // in-band cell is written before it is read, so no fill is needed;
  // out-of-band reads return infinity from the accessor, exactly as the
  // dense matrix's untouched cells did.
  const std::size_t width = std::min(n, 2 * w + 1);
  auto band_storage = Workspace::local().borrow<double>(m * width);
  double* band = band_storage.data();
  auto base = [&](std::size_t i) { return i > w ? i - w : 0; };
  auto at = [&](std::size_t i, std::size_t j) -> double& {
    return band[i * width + (j - base(i))];
  };
  auto in_band = [&](std::size_t i, std::size_t j) {
    return j >= base(i) && j <= i + w && j < n;
  };
  auto cost_at = [&](std::size_t i, std::size_t j) {
    return in_band(i, j) ? at(i, j) : kInf;
  };

  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j_lo = base(i);
    const std::size_t j_hi = std::min(n - 1, i + w);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = sq(a[i] - b[j]);
      double best = kInf;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        if (i > 0 && j > 0) best = std::min(best, cost_at(i - 1, j - 1));
        if (i > 0) best = std::min(best, cost_at(i - 1, j));
        if (j > 0) best = std::min(best, cost_at(i, j - 1));
      }
      at(i, j) = cost + best;
    }
  }
  SYBILTD_ASSERT(cost_at(m - 1, n - 1) < kInf);

  DtwResult result;
  result.total_cost = at(m - 1, n - 1);

  // Recover the optimal path by walking back along minimal predecessors.
  std::size_t i = m - 1, j = n - 1;
  result.path.emplace_back(i, j);
  while (i > 0 || j > 0) {
    double best = kInf;
    std::size_t bi = i, bj = j;
    if (i > 0 && j > 0 && cost_at(i - 1, j - 1) < best) {
      best = at(i - 1, j - 1);
      bi = i - 1;
      bj = j - 1;
    }
    if (i > 0 && cost_at(i - 1, j) < best) {
      best = at(i - 1, j);
      bi = i - 1;
      bj = j;
    }
    if (j > 0 && cost_at(i, j - 1) < best) {
      best = at(i, j - 1);
      bi = i;
      bj = j - 1;
    }
    SYBILTD_ASSERT(best < kInf);
    i = bi;
    j = bj;
    result.path.emplace_back(i, j);
  }
  std::reverse(result.path.begin(), result.path.end());

  result.distance = std::sqrt(result.total_cost /
                              static_cast<double>(result.path.size()));
  return result;
}

double dtw_distance(std::span<const double> a, std::span<const double> b,
                    const DtwOptions& options) {
  SYBILTD_CHECK(!a.empty() && !b.empty(), "DTW of an empty series");
  dtw_evals().inc();
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t w = effective_band(m, n, options.band);

  // Vector levels run the diagonal-wavefront formulation (bit-identical to
  // the rolling rows below — see the proof sketch at wave_distance); the
  // scalar level keeps the original serial row scan.
  if (simd::active_level() != simd::Level::kScalar) {
    return wave_distance(a, b, w);
  }

  // Two rolling rows from the per-thread workspace.  The rows start
  // uninitialized and only the band-edge cells are ever cleared: row i
  // writes its whole band [j_lo, j_hi], so the only cells a later row can
  // read without this row having written them are the two just outside the
  // band (the bands of consecutive rows shift by at most one column).
  // Those get an explicit infinity; everything further out is unreachable.
  auto prev_storage = Workspace::local().borrow<Cell>(n);
  auto curr_storage = Workspace::local().borrow<Cell>(n);
  Cell* prev = prev_storage.data();
  Cell* curr = curr_storage.data();

  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j_lo = i > w ? i - w : 0;
    const std::size_t j_hi = std::min(n - 1, i + w);
    // Left edge: curr[j_lo - 1] is read as this row's in-row predecessor
    // and as the next row's diagonal/vertical predecessor.
    if (j_lo > 0) curr[j_lo - 1] = kInfCell;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = sq(a[i] - b[j]);
      Cell best{kInf, 0};
      auto consider = [&](const Cell& c) {
        if (c.cost < best.cost ||
            (c.cost == best.cost && c.len < best.len)) {
          best = c;
        }
      };
      if (i == 0 && j == 0) {
        best = {0.0, 0};
      } else {
        if (i > 0 && j > 0) consider(prev[j - 1]);
        if (i > 0) consider(prev[j]);
        if (j > 0) consider(curr[j - 1]);
      }
      curr[j] = {cost + best.cost, best.len + 1};
    }
    // Right edge: the next row's band may reach one past this row's.
    if (j_hi + 1 < n) curr[j_hi + 1] = kInfCell;
    std::swap(prev, curr);
  }
  const Cell end = prev[n - 1];
  SYBILTD_ASSERT(end.cost < kInf && end.len > 0);
  return std::sqrt(end.cost / static_cast<double>(end.len));
}

double dtw_total_cost(std::span<const double> a, std::span<const double> b,
                      const DtwOptions& options) {
  SYBILTD_CHECK(!a.empty() && !b.empty(), "DTW of an empty series");
  dtw_evals().inc();
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t w = effective_band(m, n, options.band);

  if (simd::active_level() != simd::Level::kScalar) {
    return wave_total_cost(a, b, w);
  }

  // Cost-only rolling rows, same structure as dtw_distance without the
  // path-length tracking.  The min over exact values makes this identical
  // to dtw_full's total_cost.
  auto prev_storage = Workspace::local().borrow<double>(n);
  auto curr_storage = Workspace::local().borrow<double>(n);
  double* prev = prev_storage.data();
  double* curr = curr_storage.data();

  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j_lo = i > w ? i - w : 0;
    const std::size_t j_hi = std::min(n - 1, i + w);
    if (j_lo > 0) curr[j_lo - 1] = kInf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = sq(a[i] - b[j]);
      double best = kInf;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);
        if (i > 0) best = std::min(best, prev[j]);
        if (j > 0) best = std::min(best, curr[j - 1]);
      }
      curr[j] = cost + best;
    }
    if (j_hi + 1 < n) curr[j_hi + 1] = kInf;
    std::swap(prev, curr);
  }
  const double end = prev[n - 1];
  SYBILTD_ASSERT(end < kInf);
  return end;
}

double dtw_distance_znorm(std::span<const double> a,
                          std::span<const double> b,
                          const DtwOptions& options) {
  auto& workspace = Workspace::local();
  auto na = workspace.borrow<double>(a.size());
  auto nb = workspace.borrow<double>(b.size());
  auto znorm = [](std::span<const double> xs, double* out) {
    const double mu = mean(xs);
    const double sd = stddev(xs);
    simd::kernels().znorm(xs.data(), xs.size(), mu, sd, out);
  };
  znorm(a, na.data());
  znorm(b, nb.data());
  return dtw_distance(na.span(), nb.span(), options);
}

}  // namespace sybiltd::dtw
