// Dynamic Time Warping (Berndt & Clifford 1994).
//
// AG-TR measures trajectory dissimilarity as the sum of DTW distances over
// an account's task-index series and timestamp series (Eq. 8).  The paper
// uses the Ratanamahatana–Keogh normalization (Eq. 7):
//     DTW(A, B) = sqrt( sum of squared distances along the optimal path / K )
// where K is the path length.  This file provides the full O(mn) dynamic
// program, an optional Sakoe–Chiba band constraint, warping-path recovery,
// and a z-normalized variant.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace sybiltd::dtw {

struct DtwOptions {
  // Sakoe–Chiba band half-width; 0 means unconstrained.  With a band w,
  // cell (i, j) is admissible iff |i - j| <= max(w, |m - n|), which keeps
  // the corner-to-corner path feasible for unequal lengths.
  std::size_t band = 0;
};

struct DtwResult {
  // Normalized distance per Eq. (7): sqrt(total squared cost / path length).
  double distance = 0.0;
  // Total accumulated squared distance along the optimal path.
  double total_cost = 0.0;
  // Optimal warping path as (i, j) index pairs from (0,0) to (m-1,n-1).
  std::vector<std::pair<std::size_t, std::size_t>> path;
};

// Full DTW with path recovery.  Both series must be non-empty.
DtwResult dtw_full(std::span<const double> a, std::span<const double> b,
                   const DtwOptions& options = {});

// Distance only (no path materialization; O(min(m,n)) memory).
double dtw_distance(std::span<const double> a, std::span<const double> b,
                    const DtwOptions& options = {});

// Total accumulated squared cost only — the value dtw_full reports as
// total_cost, bit-identical, without materializing the path.  The cost
// recurrence is a pure min over exact values, so the result is the same
// at every SIMD dispatch level.
double dtw_total_cost(std::span<const double> a, std::span<const double> b,
                      const DtwOptions& options = {});

// DTW distance after z-normalizing both series (constant series map to 0).
double dtw_distance_znorm(std::span<const double> a,
                          std::span<const double> b,
                          const DtwOptions& options = {});

}  // namespace sybiltd::dtw
