#include "dtw/fastdtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace sybiltd::dtw {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double sq(double x) { return x * x; }

// Halve a series by averaging adjacent pairs (odd tail kept as-is).
std::vector<double> shrink(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size() / 2 + 1);
  std::size_t i = 0;
  for (; i + 1 < xs.size(); i += 2) {
    out.push_back((xs[i] + xs[i + 1]) / 2.0);
  }
  if (i < xs.size()) out.push_back(xs[i]);
  return out;
}

// Per-row admissible column range [lo, hi] (inclusive).
struct Window {
  std::vector<std::size_t> lo;
  std::vector<std::size_t> hi;
};

Window full_window(std::size_t m, std::size_t n) {
  Window w;
  w.lo.assign(m, 0);
  w.hi.assign(m, n - 1);
  return w;
}

// Project a coarse warp path onto the fine grid and expand by `radius`.
Window expand_window(
    const std::vector<std::pair<std::size_t, std::size_t>>& coarse_path,
    std::size_t m, std::size_t n, std::size_t radius) {
  Window w;
  w.lo.assign(m, n);  // empty ranges initially (lo > hi)
  w.hi.assign(m, 0);
  auto mark = [&](std::ptrdiff_t i, std::ptrdiff_t j) {
    if (i < 0 || j < 0 || i >= static_cast<std::ptrdiff_t>(m)) return;
    const std::size_t jj = std::min<std::size_t>(
        static_cast<std::size_t>(std::max<std::ptrdiff_t>(j, 0)), n - 1);
    const std::size_t ii = static_cast<std::size_t>(i);
    w.lo[ii] = std::min(w.lo[ii], jj);
    w.hi[ii] = std::max(w.hi[ii], jj);
  };
  const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(radius);
  for (const auto& [ci, cj] : coarse_path) {
    // Each coarse cell covers a 2x2 block on the fine grid.
    for (std::ptrdiff_t di = -r; di <= 1 + r; ++di) {
      for (std::ptrdiff_t dj = -r; dj <= 1 + r; ++dj) {
        mark(static_cast<std::ptrdiff_t>(2 * ci) + di,
             static_cast<std::ptrdiff_t>(2 * cj) + dj);
      }
    }
  }
  // Guarantee the corners and per-row continuity so a path exists.
  w.lo[0] = 0;
  w.hi[m - 1] = n - 1;
  for (std::size_t i = 1; i < m; ++i) {
    if (w.lo[i] > w.hi[i]) {  // row untouched; bridge from neighbor
      w.lo[i] = w.lo[i - 1];
      w.hi[i] = w.hi[i - 1];
    }
    // Ranges must not move backwards, or the path breaks.
    w.lo[i] = std::min(w.lo[i], w.hi[i]);
    if (w.hi[i] < w.hi[i - 1]) w.hi[i] = w.hi[i - 1];
    if (w.lo[i] > w.hi[i - 1] + 1) w.lo[i] = w.hi[i - 1] + 1;
  }
  return w;
}

// Exact DP restricted to a window, with path recovery.
DtwResult windowed_dtw(std::span<const double> a, std::span<const double> b,
                       const Window& window) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  std::vector<double> r(m * n, kInf);
  auto at = [&](std::size_t i, std::size_t j) -> double& {
    return r[i * n + j];
  };
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = window.lo[i]; j <= window.hi[i]; ++j) {
      const double cost = sq(a[i] - b[j]);
      double best = kInf;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        if (i > 0 && j > 0) best = std::min(best, at(i - 1, j - 1));
        if (i > 0) best = std::min(best, at(i - 1, j));
        if (j > 0) best = std::min(best, at(i, j - 1));
      }
      at(i, j) = cost + best;
    }
  }
  SYBILTD_ASSERT(at(m - 1, n - 1) < kInf);

  DtwResult result;
  result.total_cost = at(m - 1, n - 1);
  std::size_t i = m - 1, j = n - 1;
  result.path.emplace_back(i, j);
  while (i > 0 || j > 0) {
    double best = kInf;
    std::size_t bi = i, bj = j;
    if (i > 0 && j > 0 && at(i - 1, j - 1) < best) {
      best = at(i - 1, j - 1);
      bi = i - 1;
      bj = j - 1;
    }
    if (i > 0 && at(i - 1, j) < best) {
      best = at(i - 1, j);
      bi = i - 1;
      bj = j;
    }
    if (j > 0 && at(i, j - 1) < best) {
      best = at(i, j - 1);
      bi = i;
      bj = j - 1;
    }
    SYBILTD_ASSERT(best < kInf);
    i = bi;
    j = bj;
    result.path.emplace_back(i, j);
  }
  std::reverse(result.path.begin(), result.path.end());
  result.distance = std::sqrt(result.total_cost /
                              static_cast<double>(result.path.size()));
  return result;
}

}  // namespace

double lb_keogh(std::span<const double> query,
                std::span<const double> candidate, std::size_t band) {
  SYBILTD_CHECK(query.size() == candidate.size(),
                "LB_Keogh needs equal-length series");
  SYBILTD_CHECK(!query.empty(), "LB_Keogh of an empty series");
  const std::size_t n = query.size();
  double bound = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i > band ? i - band : 0;
    const std::size_t hi = std::min(n - 1, i + band);
    double upper = -kInf, lower = kInf;
    for (std::size_t j = lo; j <= hi; ++j) {
      upper = std::max(upper, candidate[j]);
      lower = std::min(lower, candidate[j]);
    }
    if (query[i] > upper) {
      bound += sq(query[i] - upper);
    } else if (query[i] < lower) {
      bound += sq(query[i] - lower);
    }
  }
  return bound;
}

double endpoint_lower_bound(std::span<const double> a,
                            std::span<const double> b) {
  SYBILTD_CHECK(!a.empty() && !b.empty(),
                "endpoint bound of an empty series");
  const double first = sq(a.front() - b.front());
  if (a.size() == 1 && b.size() == 1) return first;
  return first + sq(a.back() - b.back());
}

DtwResult fast_dtw(std::span<const double> a, std::span<const double> b,
                   const FastDtwOptions& options) {
  SYBILTD_CHECK(!a.empty() && !b.empty(), "FastDTW of an empty series");
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  if (m <= options.base_case_length || n <= options.base_case_length) {
    return windowed_dtw(a, b, full_window(m, n));
  }
  const auto coarse_a = shrink(a);
  const auto coarse_b = shrink(b);
  const DtwResult coarse = fast_dtw(coarse_a, coarse_b, options);
  const Window window = expand_window(coarse.path, m, n, options.radius);
  return windowed_dtw(a, b, window);
}

}  // namespace sybiltd::dtw
