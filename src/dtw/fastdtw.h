// Approximate and pruned DTW:
//   * LB_Keogh (Keogh & Ratanamahatana 2005) — a cheap lower bound on the
//     DTW cost under a Sakoe–Chiba band, used to skip exact computations
//     when screening many account pairs in AG-TR.
//   * FastDTW (Salvador & Chan 2007) — multilevel approximation: coarsen
//     the series, solve recursively, and refine the projected warp path
//     within a radius.  O(n) cells touched instead of O(n^2).
#pragma once

#include <span>
#include <vector>

#include "dtw/dtw.h"

namespace sybiltd::dtw {

// LB_Keogh lower bound on the *total squared cost* of any band-constrained
// warping of `candidate` onto `query`.  Requires equal lengths (pad or
// resample first); band is the Sakoe–Chiba half-width used for the bound's
// envelope.
double lb_keogh(std::span<const double> query,
                std::span<const double> candidate, std::size_t band);

// A cheaper, unconditional lower bound on the unconstrained DTW total
// cost: every warping path must align the first elements and the last
// elements, so (a0-b0)^2 + (a_end-b_end)^2 can never be beaten (for
// length >= 2 on both sides; singletons contribute the single alignment).
// Used by AG-TR to skip exact DTW on clearly-dissimilar account pairs.
double endpoint_lower_bound(std::span<const double> a,
                            std::span<const double> b);

struct FastDtwOptions {
  // Radius of the refinement corridor around the projected path.  Larger
  // radius = closer to exact DTW, more cells.
  std::size_t radius = 1;
  // Series at or below this length are solved exactly.
  std::size_t base_case_length = 16;
};

// Approximate DTW: returns the same fields as dtw_full.  The cost is an
// upper bound on (and typically within a few percent of) the exact cost.
DtwResult fast_dtw(std::span<const double> a, std::span<const double> b,
                   const FastDtwOptions& options = {});

}  // namespace sybiltd::dtw
