#include "core/framework.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "common/workspace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sybiltd::core {

using truth::nan_value;

namespace {

// Convergence telemetry: every run_framework call — batch evaluation or a
// pipeline drain — lands in these distributions, so obs::snapshot() shows
// how hard the CRH iteration is working across the whole process.
struct FrameworkMetrics {
  obs::Counter& runs = obs::MetricsRegistry::global().counter(
      "framework.runs", "run_framework invocations");
  obs::Counter& converged_runs = obs::MetricsRegistry::global().counter(
      "framework.converged_runs", "runs that met the truth tolerance");
  obs::Histogram& iterations = obs::MetricsRegistry::global().histogram(
      "framework.iterations", "CRH iterations per run");
  obs::Histogram& final_residual = obs::MetricsRegistry::global().histogram(
      "framework.final_residual", "max truth change of the last iteration");
  obs::Histogram& weight_entropy = obs::MetricsRegistry::global().histogram(
      "framework.weight_entropy", "entropy of the final group weights");

  static FrameworkMetrics& get() {
    static FrameworkMetrics metrics;
    return metrics;
  }
};

}  // namespace

double group_weight_entropy(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    entropy -= p * std::log(p);
  }
  return entropy;
}

// Per-task scale normalizer over the *grouped* values, mirroring the CRH
// baseline's std-normalized loss.
std::vector<double> framework_task_normalizers(const GroupedData& grouped,
                                               std::size_t task_count) {
  SYBILTD_CHECK(grouped.per_task.size() == task_count,
                "grouped data does not match the task count");
  std::vector<double> norm(task_count, 1.0);
  // Scratch for the per-task value list lives in the per-thread workspace
  // instead of a fresh vector per task.
  std::size_t max_group_size = 0;
  for (const auto& per_task : grouped.per_task) {
    max_group_size = std::max(max_group_size, per_task.size());
  }
  auto values = Workspace::local().borrow<double>(max_group_size);
  for (std::size_t j = 0; j < task_count; ++j) {
    const auto& per_task = grouped.per_task[j];
    for (std::size_t i = 0; i < per_task.size(); ++i) {
      values[i] = per_task[i].value;
    }
    if (per_task.size() >= 2) {
      const double sd = stddev(values.span().first(per_task.size()));
      if (sd > 1e-12) norm[j] = sd;
    }
  }
  return norm;
}

std::vector<double> framework_initial_truths(const GroupedData& grouped,
                                             std::size_t task_count,
                                             bool init_with_eq5) {
  SYBILTD_CHECK(grouped.per_task.size() == task_count,
                "grouped data does not match the task count");
  std::vector<double> truths(task_count, nan_value());
  for (std::size_t j = 0; j < task_count; ++j) {
    double num = 0.0, den = 0.0;
    for (const auto& datum : grouped.per_task[j]) {
      const double w = init_with_eq5 ? datum.initial_weight : 1.0;
      num += w * datum.value;
      den += w;
    }
    if (den > 0.0) truths[j] = num / den;
  }
  return truths;
}

double framework_iterate_once(const GroupedData& grouped,
                              const std::vector<double>& normalizers,
                              double loss_epsilon, std::vector<double>& truths,
                              std::vector<double>& group_weights) {
  const std::size_t n_tasks = grouped.per_task.size();
  const std::size_t n_groups = grouped.tasks_of_group.size();
  SYBILTD_CHECK(truths.size() == n_tasks,
                "truth vector does not match the grouped data");
  SYBILTD_CHECK(normalizers.size() == n_tasks,
                "normalizers do not match the grouped data");

  // Group weight estimation: W over the group's aggregated residuals.
  // Per-iteration scratch comes from the per-thread workspace, so a warm
  // iteration performs zero heap allocations.
  auto losses_storage = Workspace::local().borrow<double>(n_groups);
  std::span<double> losses = losses_storage.span();
  std::fill(losses.begin(), losses.end(), 0.0);
  double total_loss = 0.0;
  for (std::size_t j = 0; j < n_tasks; ++j) {
    if (std::isnan(truths[j])) continue;
    for (const auto& datum : grouped.per_task[j]) {
      const double diff = (datum.value - truths[j]) / normalizers[j];
      losses[datum.group] += diff * diff;
    }
  }
  for (std::size_t k = 0; k < n_groups; ++k) {
    if (grouped.tasks_of_group[k].empty()) {
      losses[k] = 0.0;
      continue;
    }
    losses[k] = std::max(losses[k], loss_epsilon);
    total_loss += losses[k];
  }
  group_weights.assign(n_groups, 0.0);
  for (std::size_t k = 0; k < n_groups; ++k) {
    if (grouped.tasks_of_group[k].empty()) {
      group_weights[k] = 0.0;
    } else {
      group_weights[k] = std::log(total_loss / losses[k]);
      if (group_weights[k] <= 0.0) group_weights[k] = 1.0;
    }
  }

  // Truth estimation over groups.
  auto next_storage = Workspace::local().borrow<double>(n_tasks);
  std::span<double> next_truths = next_storage.span();
  for (std::size_t j = 0; j < n_tasks; ++j) {
    double num = 0.0, den = 0.0;
    for (const auto& datum : grouped.per_task[j]) {
      num += group_weights[datum.group] * datum.value;
      den += group_weights[datum.group];
    }
    next_truths[j] = den > 0.0 ? num / den : nan_value();
  }

  double delta = 0.0;
  for (std::size_t j = 0; j < n_tasks; ++j) {
    if (!std::isnan(truths[j]) && !std::isnan(next_truths[j])) {
      delta = std::max(delta, std::abs(truths[j] - next_truths[j]));
    }
    truths[j] = next_truths[j];
  }
  return delta;
}

FrameworkResult run_framework(const FrameworkInput& input,
                              const AccountGrouping& grouping,
                              const FrameworkOptions& options) {
  obs::TraceSpan run_span("framework/run");
  const std::size_t n_tasks = input.task_count;

  FrameworkResult result;
  result.grouping = grouping;
  result.group_weights.assign(grouping.group_count(), 1.0);

  const GroupedData grouped =
      group_data(input, grouping, options.data_grouping);
  const std::vector<double> norm = framework_task_normalizers(grouped, n_tasks);

  // --- Initialization (Eq. 5 with the Eq. 4 weights) ----------------------
  result.truths =
      framework_initial_truths(grouped, n_tasks, options.init_with_eq5);

  // --- Iterations (Algorithm 2, lines 8–15) -------------------------------
  for (std::size_t iter = 0; iter < options.convergence.max_iterations;
       ++iter) {
    result.iterations = iter + 1;
    obs::TraceSpan iterate_span("framework/iterate");
    iterate_span.arg("iteration", static_cast<double>(iter + 1));
    const double delta =
        framework_iterate_once(grouped, norm, options.loss_epsilon,
                               result.truths, result.group_weights);
    result.final_residual = delta;
    if (delta < options.convergence.truth_tolerance) {
      result.converged = true;
      break;
    }
  }
  result.weight_entropy = group_weight_entropy(result.group_weights);

  auto& metrics = FrameworkMetrics::get();
  metrics.runs.inc();
  if (result.converged) metrics.converged_runs.inc();
  metrics.iterations.record(static_cast<double>(result.iterations));
  metrics.final_residual.record(result.final_residual);
  metrics.weight_entropy.record(result.weight_entropy);
  run_span.arg("iterations", static_cast<double>(result.iterations));
  run_span.arg("converged", result.converged ? 1.0 : 0.0);
  return result;
}

FrameworkResult run_framework(const FrameworkInput& input,
                              const AccountGrouper& grouper,
                              const FrameworkOptions& options) {
  return run_framework(input, grouper.group(input), options);
}

}  // namespace sybiltd::core
